"""The observability layer: span tracing, telemetry, flight recorder.

The contract under test has two halves:

* **Tracing is inert.**  ``maybe_span`` with a ``None`` tracer returns
  the shared no-op singleton (no allocation), and running the same
  scenario with tracing on vs off produces bit-identical session
  fingerprints — observability never touches a verdict.
* **Tracing is useful.**  Traced sessions produce a span tree with the
  canonical stage taxonomy and sane parentage, per-stage percentiles in
  the telemetry snapshot, valid Prometheus/JSON exports, and a bounded
  flight ring that violations dump to disk as JSON evidence.
"""

import json
import re
import threading

from repro.core.caches import DigestCache
from repro.core.service import WitnessConfig, WitnessService
from repro.crypto import CertificateAuthority
from repro.obs import (
    NULL_SPAN,
    ROOT_STAGE,
    STAGES,
    FlightRecorder,
    FrameTrace,
    SpanTracer,
    maybe_span,
    span_snapshots,
)
from repro.runtime import RuntimeMetrics
from repro.runtime.metrics import Histogram
from repro.scenarios.soak import run_scenario
from repro.scenarios.spec import ScenarioSpec


# -- histogram percentiles -------------------------------------------------


def _histogram(bounds):
    return Histogram(threading.Lock(), bounds)


def test_histogram_percentile_empty():
    h = _histogram((1, 10))
    assert h.percentile(50) == 0.0
    assert h.percentile(99) == 0.0


def test_histogram_percentile_interpolates_within_buckets():
    h = _histogram((1, 10, 100))
    for v in (0.5, 3, 7, 50, 200):
        h.observe(v)
    # p0/p100 clamp to the exact observed extremes.
    assert h.percentile(0) == 0.5
    assert h.percentile(100) == 200.0
    # Interior percentiles interpolate within bucket bounds, clamped to
    # the observed min/max: every estimate stays inside [min, max] and
    # they are monotone in q.
    estimates = [h.percentile(q) for q in (10, 25, 50, 75, 90, 95, 99)]
    assert all(0.5 <= e <= 200.0 for e in estimates)
    assert estimates == sorted(estimates)
    # The median of {0.5, 3, 7, 50, 200} must land in the (1, 10] bucket.
    assert 1.0 <= h.percentile(50) <= 10.0


def test_histogram_percentile_clamps_q():
    h = _histogram((1,))
    h.observe(0.5)
    h.observe(2.0)
    assert h.percentile(-10) == h.percentile(0) == 0.5
    assert h.percentile(150) == h.percentile(100) == 2.0


def test_histogram_snapshot_carries_bounds_and_percentiles():
    h = _histogram((1, 10))
    for v in (0.2, 5, 5, 20):
        h.observe(v)
    snap = h.snapshot()
    assert snap["bounds"] == [1, 10]
    assert snap["count"] == 4
    for key in ("p50", "p95", "p99"):
        assert isinstance(snap[key], float)
    # The buckets dict keeps its stable exact shape (bounds are a
    # sibling key, not merged into it).
    assert list(snap["buckets"]) == ["le_1", "le_10", "le_inf"]


# -- digest cache counters -------------------------------------------------


def test_digest_cache_counts_evictions():
    cache = DigestCache(max_entries=2)
    cache.put("a", (True,))
    cache.put("b", (True,))
    assert cache.evictions == 0
    cache.put("a", (False,))  # overwrite refreshes recency, never evicts
    assert cache.evictions == 0
    cache.put("c", (True,))  # at capacity: evicts the LRU entry ("b")
    assert cache.evictions == 1
    assert cache.get("b") is None  # miss
    assert cache.get("c") == (True,)  # hit
    stats = cache.stats()
    assert stats["entries"] == 2
    assert stats["capacity"] == 2
    assert stats["evictions"] == 1
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["hit_rate"] == 0.5
    # The scoped view aggregates on the parent.
    scoped = cache.scoped("text")
    assert scoped.evictions == 1
    assert scoped.stats() == cache.stats()


# -- null span / disabled tracing ------------------------------------------


def test_maybe_span_disabled_is_the_shared_noop():
    assert maybe_span(None, "plan.execute") is NULL_SPAN
    assert maybe_span(None, "anything") is NULL_SPAN  # same object, always
    with maybe_span(None, "frame.sample"):
        pass  # no-op context manager


def test_maybe_span_enabled_times_the_stage():
    metrics = RuntimeMetrics()
    tracer = SpanTracer(1, metrics)
    with maybe_span(tracer, "plan.collect"):
        pass
    snaps = span_snapshots(metrics)
    assert snaps["plan.collect"]["count"] == 1


# -- span tree shape -------------------------------------------------------


def test_span_tree_nests_by_thread_stack():
    metrics = RuntimeMetrics()
    recorder = FlightRecorder(capacity=4)
    tracer = SpanTracer(7, metrics, recorder=recorder)
    tracer.begin_frame(0)
    with tracer.span("plan.execute"):
        with tracer.span("forward.text"):
            pass
    # A span opened on a *different* thread starts from an empty stack
    # and parents to the synthetic root.
    def pool_side():
        with tracer.span("forward.image"):
            pass

    t = threading.Thread(target=pool_side, name="pool-0")
    t.start()
    t.join()
    trace = tracer._trace
    by_stage = {s["stage"]: s for s in trace.spans}
    assert by_stage["forward.text"]["parent"] == "plan.execute"
    assert by_stage["plan.execute"]["parent"] == ROOT_STAGE
    assert by_stage["forward.image"]["parent"] == ROOT_STAGE
    assert by_stage["forward.image"]["thread"] == "pool-0"


# -- flight recorder -------------------------------------------------------


def _trace(session_id: int, index: int) -> FrameTrace:
    return FrameTrace(session_id=session_id, index=index)


def test_flight_ring_is_bounded_and_evicts_oldest():
    rec = FlightRecorder(capacity=4)
    for i in range(10):
        rec.record(_trace(1, i))
    assert len(rec) == 4
    stats = rec.stats()
    assert stats == {"capacity": 4, "frames": 4, "recorded": 10, "evicted": 6, "dumps": 0}
    frames = rec.snapshot()
    assert [f["index"] for f in frames] == [6, 7, 8, 9]  # oldest first


def test_flight_snapshot_filters_by_session():
    rec = FlightRecorder(capacity=8)
    for i in range(3):
        rec.record(_trace(1, i))
        rec.record(_trace(2, i))
    assert [f["index"] for f in rec.snapshot(session_ids={2})] == [0, 1, 2]
    assert all(f["session_id"] == 2 for f in rec.snapshot(session_ids={2}))


def test_flight_dump_writes_json_artifact(tmp_path):
    rec = FlightRecorder(capacity=4)
    for i in range(6):
        rec.record(_trace(3, i))
    path = rec.dump(str(tmp_path / "sub" / "ring.json"), reason="unit-test")
    payload = json.loads((tmp_path / "sub" / "ring.json").read_text())
    assert payload["reason"] == "unit-test"
    assert payload["recorded_total"] == 6
    assert payload["evicted_total"] == 2
    assert [f["index"] for f in payload["frames"]] == [2, 3, 4, 5]
    assert rec.stats()["dumps"] == 1
    assert path == str(tmp_path / "sub" / "ring.json")


# -- traced sessions end to end --------------------------------------------


SMALL_SPEC = ScenarioSpec("letterbox", script="honest")
TAMPERED_SPEC = ScenarioSpec("tall-form", script="tampered")


def _run(spec, text_model, image_model, **cfg_kwargs):
    cfg = WitnessConfig(batched=True, **cfg_kwargs)
    service = WitnessService(
        CertificateAuthority(), cfg, text_model=text_model, image_model=image_model
    )
    with service:
        outcome = run_scenario(spec.build(), service)
    return outcome, service


def test_tracing_preserves_fingerprint(text_model, image_model):
    off, _ = _run(SMALL_SPEC, text_model, image_model, tracing=False)
    on, _ = _run(SMALL_SPEC, text_model, image_model, tracing=True)
    assert on.fingerprint == off.fingerprint


def test_tracing_preserves_fingerprint_shared_executor(text_model, image_model):
    off, _ = _run(
        SMALL_SPEC, text_model, image_model, executor="shared", tracing=False
    )
    on, _ = _run(SMALL_SPEC, text_model, image_model, executor="shared", tracing=True)
    assert on.fingerprint == off.fingerprint


def test_traced_session_produces_canonical_spans(text_model, image_model):
    outcome, service = _run(SMALL_SPEC, text_model, image_model, tracing=True)
    snaps = span_snapshots(service.span_metrics)
    assert snaps, "traced run produced no span histograms"
    # Only canonical stages appear, and the root covers every frame.
    assert set(snaps) <= set(STAGES)
    assert snaps[ROOT_STAGE]["count"] == outcome.frames
    assert {"frame.sample", "plan.collect", "plan.execute"} <= set(snaps)
    for snap in snaps.values():
        assert snap["p50"] <= snap["p95"] <= snap["p99"]
    # The flight ring holds the tail of the session's frames.
    recorder = service.flight_recorder
    assert recorder is not None and len(recorder) > 0
    for frame in recorder.snapshot():
        assert frame["session_id"] in outcome.session_ids
        for span in frame["spans"]:
            assert span["stage"] in STAGES
            # Parentage is either the synthetic root or another stage
            # recorded in this frame's tree vocabulary.
            assert span["parent"] in STAGES


def test_traced_spans_thread_confinement_shared_executor(text_model, image_model):
    _, service = _run(
        SMALL_SPEC, text_model, image_model, executor="shared", tracing=True
    )
    recorder = service.flight_recorder
    session_thread = threading.current_thread().name
    cross = [
        span
        for frame in recorder.snapshot()
        for span in frame["spans"]
        if span["thread"] != session_thread
    ]
    # Any span recorded off the session thread started from an empty
    # thread-local stack and must parent to the synthetic root.
    for span in cross:
        assert span["parent"] == ROOT_STAGE


def test_untraced_service_has_no_obs_state(text_model, image_model):
    _, service = _run(SMALL_SPEC, text_model, image_model, tracing=False)
    assert service.span_metrics is None
    assert service.flight_recorder is None


# -- violation-triggered artifacts -----------------------------------------


def test_violation_dumps_flight_artifact(text_model, image_model, tmp_path):
    from repro.server import WitnessedSite
    from repro.web import HonestUser
    from repro.web.extension import InputHint

    from tests.conftest import make_transfer_page

    config = WitnessConfig(batched=True, tracing=True, flight_dir=str(tmp_path))
    site = WitnessedSite(config=config, text_model=text_model, image_model=image_model)
    site.register_page("transfer", make_transfer_page())
    client = site.connect("transfer")
    user = HonestUser(client.browser)
    user.fill_text_input("recipient", "ACC-1")
    field = client.browser.page.find_input("amount")
    # A dishonest extension hints a value never shown on the display:
    # the witness records a violation, which must dump the flight ring.
    client.witness.receive_hint(
        InputHint(
            timestamp=client.machine.clock.now(),
            input_name="amount",
            rect=field.rect.as_tuple(),
            value="999999",
        )
    )
    client.machine.clock.advance(1200)
    decision = client.submit()
    assert not decision.certified
    artifacts = sorted(tmp_path.glob("flight-*.json"))
    assert artifacts, "violation produced no flight artifacts"
    payloads = [json.loads(p.read_text()) for p in artifacts]
    assert any(p["reason"].startswith("violation:") for p in payloads)
    violation_dump = next(p for p in payloads if p["reason"].startswith("violation:"))
    # The dump is written right after the offending frame seals, so the
    # ring's newest frames carry the recorded violation.
    assert any(f["violations"] for f in violation_dump["frames"])
    assert all(
        f["session_id"] == client.witness.id for f in violation_dump["frames"]
    )


def test_rejected_decision_dumps_flight_artifact(text_model, image_model, tmp_path):
    # Submission-level tampering never certifies; the rejected decision
    # ships the session's recent frames even though every frame rendered
    # cleanly (the tamper is in the submitted body, not the display).
    outcome, _ = _run(
        TAMPERED_SPEC, text_model, image_model, tracing=True, flight_dir=str(tmp_path)
    )
    payloads = [json.loads(p.read_text()) for p in sorted(tmp_path.glob("flight-*.json"))]
    assert any(p["reason"].startswith("decision-rejected:") for p in payloads)
    for payload in payloads:
        assert payload["frames"], "artifact carries no frame traces"
        assert {f["session_id"] for f in payload["frames"]} <= set(outcome.session_ids)


# -- telemetry hub ---------------------------------------------------------


def test_runtime_stats_sections_without_executor(text_model, image_model):
    # Inline config: the shared executor is never built, but session and
    # cache stats still merge into runtime_stats().
    _, service = _run(SMALL_SPEC, text_model, image_model, tracing=False)
    stats = service.runtime_stats()
    assert stats["sessions"]["total_opened"] >= 1
    assert stats["cache"]["hits"] == service.shared_cache.hits
    assert set(stats["cache"]) == {
        "entries", "capacity", "hits", "misses", "evictions", "hit_rate",
    }
    assert stats["runtime"] is None


def test_telemetry_snapshot_sections_and_json(text_model, image_model):
    _, service = _run(SMALL_SPEC, text_model, image_model, tracing=True)
    snap = service.telemetry()
    d = snap.as_dict()
    for section in ("service", "sessions", "cache", "spans", "flight", "arenas", "planbuf"):
        assert section in d, f"missing telemetry section {section}"
    assert d["service"]["tracing"] is True
    assert d["flight"]["recorded"] > 0
    # JSON round-trip.
    restored = json.loads(snap.to_json())
    assert restored["sessions"] == d["sessions"]
    assert set(restored["spans"]) == set(d["spans"])


def test_telemetry_prometheus_export(text_model, image_model):
    _, service = _run(SMALL_SPEC, text_model, image_model, tracing=True)
    text = service.telemetry().to_prometheus()
    lines = [l for l in text.splitlines() if l and not l.startswith("#")]
    line_re = re.compile(r'^repro_[a-zA-Z0-9_]+(\{le="[^"]+"\})? (-?[0-9.eE+-]+|inf)$')
    for line in lines:
        assert line_re.match(line), f"malformed prometheus line: {line!r}"
    # Histogram contract: cumulative buckets are monotone and the +Inf
    # bucket equals the series count.
    frame_buckets = [
        float(l.rsplit(" ", 1)[1])
        for l in lines
        if l.startswith("repro_spans_frame_bucket{")
    ]
    assert frame_buckets == sorted(frame_buckets)
    count = next(
        float(l.rsplit(" ", 1)[1]) for l in lines if l.startswith("repro_spans_frame_count")
    )
    assert frame_buckets[-1] == count
    assert any(l.startswith("repro_spans_frame_p95") for l in lines)


# -- traced soak -----------------------------------------------------------


def test_traced_soak_percentiles_and_clean_run(text_model, image_model, tmp_path):
    from repro.scenarios.soak import ENGINE_COMBOS, combo_by_name, run_soak

    res = run_soak(
        [SMALL_SPEC],
        combos=(ENGINE_COMBOS[0], combo_by_name("sequential-inline-frozen")),
        text_model=text_model,
        image_model=image_model,
        tracing=True,
        flight_dir=str(tmp_path),
    )
    assert res.ok, res.summary()
    # Tracing on: the baseline combo's per-stage percentiles surface.
    assert "frame" in res.span_percentiles
    frame = res.span_percentiles["frame"]
    assert frame["count"] == res.frames_total // len(res.combos)
    assert frame["p50"] <= frame["p95"] <= frame["p99"]
    assert "frame latency" in res.summary()
    # A clean soak writes no divergence artifacts.
    assert res.flight_artifacts == []
    assert list(tmp_path.glob("*.json")) == []


def test_soak_divergence_artifact_helpers():
    from repro.scenarios.soak import ScenarioOutcome, _scenario_frames, _slug
    from repro.scenarios.spec import ScenarioSpec as Spec

    assert _slug("letterbox/honest seed=0") == "letterbox-honest-seed-0"
    ring = [
        {"session_id": 1, "index": 0},
        {"session_id": 2, "index": 0},
        {"session_id": 1, "index": 1},
    ]
    outcome = ScenarioOutcome(
        spec=Spec("letterbox"), combo="x", fingerprint=(), sessions=1,
        frames=2, certified=1, session_ids=[1],
    )
    assert _scenario_frames(ring, outcome) == [ring[0], ring[2]]
    assert _scenario_frames(ring, None) == []


def test_obs_cli_renders_flight_dump(tmp_path, capsys):
    from repro.obs.__main__ import main

    rec = FlightRecorder(capacity=4)
    trace = _trace(5, 0)
    trace.violations.append({"rule": "viewport", "detail": "lost"})
    trace.ok = False
    rec.record(trace)
    path = rec.dump(str(tmp_path / "ring.json"), reason="cli-test")
    assert main([path]) == 0
    out = capsys.readouterr().out
    assert "cli-test" in out
    assert "viewport" in out


def test_obs_cli_renders_telemetry(tmp_path, capsys, text_model, image_model):
    from repro.obs.__main__ import main

    _, service = _run(SMALL_SPEC, text_model, image_model, tracing=True)
    path = tmp_path / "telemetry.json"
    path.write_text(service.telemetry().to_json())
    assert main([str(path), "--format", "prom"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# ") or out.startswith("repro_")
