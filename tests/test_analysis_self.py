"""witness-lint self-check: the shipped tree runs clean (tier-1 gate).

Three invariants the repo commits to:

* ``python -m repro.analysis src/repro`` exits 0 — no new findings
  beyond the checked-in baseline;
* every baseline entry carries a real justification (no ``TODO``) and
  still matches a live finding (no stale debt entries);
* every inline ``allow`` pragma actually fires — a pragma whose
  violation was fixed must be deleted with it.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.runner import run_analysis

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC_TREE = REPO_ROOT / "src" / "repro"
BASELINE_PATH = REPO_ROOT / "witness-lint-baseline.json"


@pytest.fixture(scope="module")
def result():
    return run_analysis([str(SRC_TREE)], baseline=Baseline.load(str(BASELINE_PATH)))


def test_tree_is_clean(result):
    lines = [f"{f.location()} [{f.rule}] {f.message}" for f in result.findings]
    assert result.clean, "new witness-lint findings:\n" + "\n".join(lines)


def test_baseline_entries_are_justified():
    baseline = Baseline.load(str(BASELINE_PATH))
    bad = baseline.unjustified()
    assert not bad, f"unjustified baseline entries: {[e.key() for e in bad]}"


def test_baseline_is_empty():
    # PR 7's zero-copy plan transport retired the last grandfathered
    # findings; from here on the tree carries no lint debt — new findings
    # must be fixed (or pragma'd with a justification), never baselined.
    baseline = Baseline.load(str(BASELINE_PATH))
    assert not baseline.entries, (
        f"witness-lint baseline regained entries: {[e.key() for e in baseline.entries]}"
    )


def test_baseline_has_no_stale_entries(result):
    stale = result.stale_baseline
    assert not stale, f"baseline entries matching nothing: {[e.key() for e in stale]}"


def _linted_modules(result):
    # Mirror the runner's self-exclusion: the analyzer's own sources show
    # pragma *examples* in docstrings/comments that never fire.
    return [
        module
        for module in result.project.modules
        if module.module != "repro.analysis"
        and not module.module.startswith("repro.analysis.")
    ]


def test_every_pragma_fires(result):
    used = {id(pragma) for _f, pragma in result.suppressed}
    stale = [
        (module.path, pragma.line, pragma.rules)
        for module in _linted_modules(result)
        for pragma in module.pragmas
        if id(pragma) not in used
    ]
    assert not stale, f"stale allow[] pragmas (violation gone, pragma left): {stale}"


def test_every_pragma_is_justified(result):
    bare = [
        (module.path, pragma.line)
        for module in _linted_modules(result)
        for pragma in module.pragmas
        if not pragma.justification
    ]
    assert not bare, f"allow[] pragmas without a `-- why` justification: {bare}"


def test_cli_exits_zero():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(SRC_TREE)],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
