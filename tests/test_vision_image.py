"""Unit tests for the Image container (bounds-checked raster geometry)."""

import numpy as np
import pytest

from repro.vision.image import Image, as_array, to_uint8


class TestConstruction:
    def test_blank_has_requested_geometry_and_color(self):
        img = Image.blank(10, 6, 200.0)
        assert img.width == 10
        assert img.height == 6
        assert np.all(img.pixels == 200.0)

    def test_blank_rejects_non_positive_dims(self):
        with pytest.raises(ValueError):
            Image.blank(0, 5)
        with pytest.raises(ValueError):
            Image.blank(5, -1)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            Image(np.zeros((2, 2, 3)))

    def test_from_bitmap_maps_ink(self):
        img = Image.from_bitmap([[1, 0], [0, 1]], on=0.0, off=255.0)
        assert img.pixels[0, 0] == 0.0
        assert img.pixels[0, 1] == 255.0

    def test_as_array_accepts_image_and_lists(self):
        assert as_array(Image.blank(2, 2)).shape == (2, 2)
        assert as_array([[1.0, 2.0]]).shape == (1, 2)
        with pytest.raises(ValueError):
            as_array([1.0, 2.0])


class TestRegions:
    def test_crop_returns_copy(self):
        img = Image.blank(8, 8, 100.0)
        region = img.crop(2, 2, 3, 3)
        region.pixels[...] = 0.0
        assert np.all(img.pixels == 100.0)

    def test_crop_rejects_out_of_bounds(self):
        img = Image.blank(8, 8)
        with pytest.raises(ValueError):
            img.crop(6, 6, 4, 4)
        with pytest.raises(ValueError):
            img.crop(-1, 0, 2, 2)
        with pytest.raises(ValueError):
            img.crop(0, 0, 0, 2)

    def test_crop_clipped_pads_with_fill(self):
        img = Image.blank(4, 4, 10.0)
        region = img.crop_clipped(-2, -2, 4, 4, fill=99.0)
        assert region.pixels[0, 0] == 99.0
        assert region.pixels[3, 3] == 10.0

    def test_crop_clipped_fully_outside_is_all_fill(self):
        img = Image.blank(4, 4, 10.0)
        region = img.crop_clipped(10, 10, 3, 3, fill=7.0)
        assert np.all(region.pixels == 7.0)

    def test_paste_roundtrip(self):
        img = Image.blank(8, 8, 0.0)
        patch = Image.blank(3, 3, 50.0)
        img.paste(patch, 2, 4)
        assert np.all(img.crop(2, 4, 3, 3).pixels == 50.0)
        assert img.pixels[0, 0] == 0.0

    def test_paste_out_of_bounds_raises(self):
        img = Image.blank(4, 4)
        with pytest.raises(ValueError):
            img.paste(Image.blank(3, 3), 2, 2)

    def test_blend_alpha_limits(self):
        img = Image.blank(4, 4, 0.0)
        img.blend(Image.blank(4, 4, 100.0), 0, 0, alpha=0.5)
        assert np.allclose(img.pixels, 50.0)
        with pytest.raises(ValueError):
            img.blend(Image.blank(4, 4), 0, 0, alpha=1.5)


class TestDrawing:
    def test_fill_rect(self):
        img = Image.blank(6, 6, 255.0)
        img.fill_rect(1, 1, 2, 3, 0.0)
        assert np.all(img.pixels[1:4, 1:3] == 0.0)
        assert img.pixels[0, 0] == 255.0

    def test_draw_border_leaves_interior(self):
        img = Image.blank(10, 10, 255.0)
        img.draw_border(1, 1, 8, 8, 0.0, thickness=1)
        assert img.pixels[1, 1] == 0.0
        assert img.pixels[5, 5] == 255.0
        assert img.pixels[8, 8] == 0.0

    def test_vline_hline(self):
        img = Image.blank(10, 10, 255.0)
        img.draw_vline(3, 2, 5, 0.0, thickness=2)
        assert np.all(img.pixels[2:7, 3:5] == 0.0)
        img.draw_hline(0, 9, 10, 7.0)
        assert np.all(img.pixels[9, :] == 7.0)


class TestComparisons:
    def test_equals_tolerance(self):
        a = Image.blank(3, 3, 10.0)
        b = Image.blank(3, 3, 12.0)
        assert not a.equals(b)
        assert a.equals(b, tolerance=2.0)
        assert not a.equals(Image.blank(2, 3, 10.0))

    def test_mean_abs_diff(self):
        a = Image.blank(2, 2, 10.0)
        b = Image.blank(2, 2, 14.0)
        assert a.mean_abs_diff(b) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            a.mean_abs_diff(Image.blank(3, 2))

    def test_to_uint8_clips(self):
        img = Image(np.asarray([[-5.0, 300.0]]))
        out = to_uint8(img)
        assert out.dtype == np.uint8
        assert out[0, 0] == 0
        assert out[0, 1] == 255

    def test_clip_bounds_values(self):
        img = Image(np.asarray([[-5.0, 300.0]]))
        clipped = img.clip()
        assert clipped.pixels[0, 0] == 0.0
        assert clipped.pixels[0, 1] == 255.0
