"""Direct unit tests of the display validator (paper §III-C1)."""

import copy

import numpy as np
import pytest

from repro.core.caches import DigestCache
from repro.core.display import DisplayValidator
from repro.core.verifiers import ImageVerifier, TextVerifier
from repro.raster.stacks import stack_registry
from repro.server.generate import build_vspec
from repro.vision.image import Image
from repro.web import layout as lay
from repro.web.browser import Browser
from repro.web.elements import (
    Button,
    Checkbox,
    ImageElement,
    Page,
    ScrollableList,
    SelectBox,
    TextBlock,
    TextInput,
)
from repro.web.hypervisor import Machine


def _page():
    return Page(
        title="Demo",
        width=640,
        elements=[
            TextBlock("Review and submit your order", 14),
            ImageElement("icon", "lock", width=32, height=32),
            TextInput("qty", label="Quantity"),
            Checkbox("gift", "Gift wrap"),
            SelectBox("size", ["Small", "Large"]),
            ScrollableList("depot", ["North", "South", "East", "West", "Harbour"], visible_rows=2),
            Button("Buy", action="submit"),
        ],
    )


@pytest.fixture
def bench(text_model, image_model):
    page = _page()
    vspec = build_vspec(copy.deepcopy(page), "demo")
    machine = Machine(640, min(600, vspec.height))
    browser = Browser(machine, copy.deepcopy(page), stack=stack_registry()[2])
    browser.paint()
    cache = DigestCache()
    validator = DisplayValidator(
        vspec,
        TextVerifier(text_model, batched=True, cache=cache),
        ImageVerifier(image_model, batched=True, cache=cache),
    )
    return machine, browser, vspec, validator


class TestBenignFrames:
    def test_clean_frame_validates(self, bench):
        machine, _browser, _vspec, validator = bench
        result = validator.validate(machine.sample_framebuffer().pixels)
        assert result.ok, [f.reason for f in result.failures]
        assert result.offset_y == 0
        assert result.text_invocations > 0

    def test_all_stacks_validate(self, text_model, image_model):
        page = _page()
        vspec = build_vspec(copy.deepcopy(page), "demo")
        for stack in stack_registry():
            machine = Machine(640, min(600, vspec.height))
            browser = Browser(machine, copy.deepcopy(page), stack=stack)
            browser.paint()
            validator = DisplayValidator(
                vspec,
                TextVerifier(text_model, batched=True),
                ImageVerifier(image_model, batched=True),
            )
            result = validator.validate(machine.sample_framebuffer().pixels)
            assert result.ok, (stack.name, [f.reason for f in result.failures][:3])

    def test_changed_rects_limit_work(self, bench):
        machine, _browser, _vspec, validator = bench
        frame = machine.sample_framebuffer().pixels
        full = validator.validate(frame)
        from repro.vision.components import Rect

        partial = validator.validate(frame, changed_rects=[Rect(0, 0, 10, 10)])
        assert partial.entries_checked <= full.entries_checked
        assert partial.text_invocations <= full.text_invocations

    def test_scrolled_frame_locates_offset(self, text_model, image_model):
        # Distinct section texts: near-periodic filler would make the
        # viewport location genuinely ambiguous.
        topics = [
            "Shipping policy details", "Refund terms apply here",
            "Contact our support desk", "Warranty covers two years",
            "Payment methods accepted", "Delivery windows by region",
            "Data privacy statement", "Loyalty points program",
            "Gift card redemption", "Store opening hours",
        ]
        filler = [TextBlock(t, 14) for t in topics]
        page = Page(title="Tall", width=640, elements=filler + [TextInput("f", label="Field")])
        vspec = build_vspec(copy.deepcopy(page), "tall")
        machine = Machine(640, 300)
        browser = Browser(machine, copy.deepcopy(page))
        browser.scroll_y = 150
        browser.paint()  # clamps to max_scroll
        validator = DisplayValidator(
            vspec, TextVerifier(text_model, batched=True), ImageVerifier(image_model, batched=True)
        )
        result = validator.validate(machine.sample_framebuffer().pixels)
        assert result.ok, [f.reason for f in result.failures][:3]
        assert abs(result.offset_y - browser.scroll_y) <= 2

    def test_periodic_tall_form_locates_offset_when_filled(self, text_model, image_model):
        """Soak regression: a near-periodic tall form with typed values
        must still locate the true viewport when the tracker's state is
        supplied (the stateful expected appearance + the 2-D coarse pass)."""
        fields = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"]
        page = Page(
            title="Periodic",
            width=640,
            elements=[TextInput(n, label=n.title()) for n in fields],
        )
        vspec = build_vspec(copy.deepcopy(page), "periodic")
        machine = Machine(640, 300)
        client_page = copy.deepcopy(page)
        browser = Browser(machine, client_page)
        tracked = {}
        for name in fields[:4]:
            client_page.find_input(name).value = f"value-{name}"
            tracked[name] = f"value-{name}"
        browser.scroll_y = 120
        browser.paint()
        validator = DisplayValidator(
            vspec, TextVerifier(text_model, batched=True), ImageVerifier(image_model, batched=True)
        )
        offset, score = validator.locate_viewport(
            machine.sample_framebuffer().pixels, tracked
        )
        assert offset == browser.scroll_y
        assert score > 0.9

    def test_stateful_expected_replaces_prefilled_value(self, text_model, image_model):
        """A prefilled input whose value the user changes must compose the
        *current* value into the expected appearance, not overstrike it."""
        def page_with(value):
            return Page(
                title="Prefilled",
                width=640,
                elements=[TextInput("note", label="Note", value=value)],
            )

        vspec = build_vspec(copy.deepcopy(page_with("draft")), "prefilled")
        validator = DisplayValidator(
            vspec, TextVerifier(text_model, batched=True), ImageVerifier(image_model, batched=True)
        )
        composed = validator._expected_for({"note": "final"})
        baked = build_vspec(copy.deepcopy(page_with("final")), "prefilled").expected
        entry = vspec.entry_for_input("note")
        box = entry.rect
        assert np.array_equal(
            composed[box.y : box.y2, box.x : box.x2],
            baked[box.y : box.y2, box.x : box.x2],
        )

    def test_incremental_recomposition_matches_fresh(self, text_model, image_model):
        """Evolving the tracked state keystroke-by-keystroke (the
        incremental cache path) must compose the same raster as a fresh
        validator composing the final state in one step."""
        page = Page(
            title="Two fields",
            width=640,
            elements=[
                TextInput("a", label="A"),
                TextInput("b", label="B"),
                Checkbox("c", "Agree"),
            ],
        )
        vspec = build_vspec(copy.deepcopy(page), "incr")

        def make_validator():
            return DisplayValidator(
                vspec,
                TextVerifier(text_model, batched=True),
                ImageVerifier(image_model, batched=True),
            )

        evolving = make_validator()
        for tracked in (
            {"a": "h"},
            {"a": "he"},
            {"a": "he", "b": "x"},
            {"a": "he", "b": "x", "c": "on"},
            {"a": "he", "b": "", "c": "on"},  # b reverts to initial
        ):
            evolved = evolving._expected_for(tracked)
            fresh = make_validator()._expected_for(tracked)
            assert np.array_equal(evolved, fresh), tracked


class TestTamperedFrames:
    def test_swapped_heading_detected(self, bench):
        machine, _browser, _vspec, validator = bench
        from repro.attacks.tamper import swap_text_on_display

        swap_text_on_display(machine, 24, 44, "Free money inside!!", size=14)
        result = validator.validate(machine.sample_framebuffer().pixels)
        assert not result.ok
        assert any(f.kind == "text" for f in result.failures)

    def test_image_swap_detected(self, bench):
        machine, browser, vspec, validator = bench
        from repro.raster.icons import render_icon

        icon_entry = next(e for e in vspec.entries if e.kind == "image")
        machine.framebuffer_handle().paste(
            render_icon("cart", 32), icon_entry.rect.x, icon_entry.rect.y
        )
        result = validator.validate(machine.sample_framebuffer().pixels)
        assert not result.ok
        assert any(f.kind == "image" for f in result.failures)

    def test_background_injection_detected(self, bench):
        machine, _browser, _vspec, validator = bench
        fb = machine.framebuffer_handle()
        fb.fill_rect(420, 40, 150, 40, 120.0)  # content where none belongs
        result = validator.validate(machine.sample_framebuffer().pixels)
        assert not result.ok
        assert any(f.kind == "background" for f in result.failures)

    def test_input_value_mismatch_detected(self, bench):
        machine, browser, _vspec, validator = bench
        field = browser.page.find_input("qty")
        field.value = "999"
        browser.paint()
        # vWitness tracked nothing for qty: the display must show "".
        result = validator.validate(machine.sample_framebuffer().pixels)
        assert not result.ok
        assert any("qty" in f.reason for f in result.failures)

    def test_input_value_match_accepted(self, bench):
        machine, browser, _vspec, validator = bench
        field = browser.page.find_input("qty")
        field.value = "42"
        browser.paint()
        result = validator.validate(
            machine.sample_framebuffer().pixels, tracked_inputs={"qty": "42"}
        )
        assert result.ok, [f.reason for f in result.failures]

    def test_checkbox_state_mismatch_detected(self, bench):
        machine, browser, _vspec, validator = bench
        browser.page.find_input("gift").checked = True
        browser.paint()
        result = validator.validate(machine.sample_framebuffer().pixels)  # tracked: off
        assert not result.ok
        assert any(f.kind == "checkbox" for f in result.failures)

    def test_select_text_tamper_detected(self, bench):
        machine, browser, vspec, validator = bench
        from repro.attacks.tamper import swap_text_on_display

        entry = vspec.entry_for_input("size")
        swap_text_on_display(
            machine, entry.rect.x + 6, entry.rect.y + 8, "Jumbo", size=14, background=252.0
        )
        result = validator.validate(machine.sample_framebuffer().pixels)
        assert not result.ok

    def test_unknown_state_rejected(self, bench):
        machine, _browser, _vspec, validator = bench
        result = validator.validate(
            machine.sample_framebuffer().pixels, tracked_inputs={"size": "Gigantic"}
        )
        assert not result.ok
        assert any("no appearance for state" in f.reason for f in result.failures)


class TestScrollable:
    def test_scrolled_list_content_validates(self, bench):
        machine, browser, _vspec, validator = bench
        browser.scroll_element(browser.page.find_input("depot").element_id, 2)
        result = validator.validate(machine.sample_framebuffer().pixels)
        assert result.ok, [f.reason for f in result.failures][:3]

    def test_tampered_list_row_detected(self, bench):
        machine, browser, vspec, validator = bench
        from repro.attacks.tamper import swap_text_on_display

        entry = vspec.entry_for_input("depot")
        swap_text_on_display(
            machine, entry.rect.x + 8, entry.rect.y + 6, "EVIL1", size=13, background=252.0
        )
        result = validator.validate(machine.sample_framebuffer().pixels)
        assert not result.ok


class TestWidthGuard:
    def test_wrong_width_frame_rejected(self, bench):
        _machine, _browser, _vspec, validator = bench
        with pytest.raises(ValueError, match="width"):
            validator.locate_viewport(np.zeros((100, 320)))
