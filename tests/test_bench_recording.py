"""Benchmark recording: ``bench_summary.json`` survives interrupted writes.

The summary file accumulates every benchmark's metrics across runs; PR 6
made :func:`record_metrics` write it atomically (temp file +
``os.replace``) so a crash mid-``json.dump`` can never truncate the
accumulated record.  These tests kill a write mid-stream — via an
unserializable metric value, the exact failure a buggy benchmark would
inject — and assert the prior file is byte-identical afterwards.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

CONFTEST = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "conftest.py"


@pytest.fixture()
def recorder(tmp_path, monkeypatch):
    """The benchmarks conftest loaded standalone, redirected at tmp_path."""
    spec = importlib.util.spec_from_file_location("bench_conftest", CONFTEST)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "RESULTS_DIR", str(tmp_path))
    monkeypatch.setattr(module, "SUMMARY_PATH", str(tmp_path / "bench_summary.json"))
    return module


def test_record_metrics_round_trip(recorder):
    path = recorder.record_metrics("bench_a", {"p50_ms": 1.5})
    recorder.record_metrics("bench_b", {"qps": 300})
    data = json.loads(pathlib.Path(path).read_text())
    assert data == {"bench_a": {"p50_ms": 1.5}, "bench_b": {"qps": 300}}


def test_interrupted_write_preserves_prior_summary(recorder):
    path = pathlib.Path(recorder.record_metrics("bench_a", {"p50_ms": 1.5}))
    before = path.read_text()
    # A bare object() is not JSON-serializable: json.dump dies after it
    # has already emitted a partial document to its stream.
    with pytest.raises(TypeError):
        recorder.record_metrics("bench_b", {"handle": object()})
    assert path.read_text() == before
    # and the failed attempt leaves no temp-file litter behind.
    leftovers = [p.name for p in path.parent.iterdir() if p.name != path.name]
    assert leftovers == []


def test_interrupted_first_write_leaves_no_file(recorder, tmp_path):
    with pytest.raises(TypeError):
        recorder.record_metrics("bench_a", {"handle": object()})
    assert not (tmp_path / "bench_summary.json").exists()
    assert list(tmp_path.iterdir()) == []


def test_corrupt_summary_is_rebuilt(recorder, tmp_path):
    (tmp_path / "bench_summary.json").write_text("{ not json")
    path = recorder.record_metrics("bench_a", {"p50_ms": 1.5})
    assert json.loads(pathlib.Path(path).read_text()) == {"bench_a": {"p50_ms": 1.5}}
