"""The service-oriented witness API: WitnessService/WitnessSession/hooks.

Covers the multi-session redesign: one service concurrently witnessing
several guest machines over one warm model set, immutable configuration,
per-session teardown hygiene, event hooks, and the namespaced
cross-session digest cache.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.caches import DigestCache
from repro.core.service import WitnessConfig, WitnessService
from repro.core.session import install_vwitness
from repro.crypto import CertificateAuthority
from repro.server import WebServer, WitnessedSite
from repro.web import Browser, HonestUser, Machine
from repro.web.extension import BrowserExtension, InputHint

from tests.conftest import make_transfer_page


def make_site(text_model, image_model, **config_overrides) -> WitnessedSite:
    config = WitnessConfig(batched=True).replace(**config_overrides)
    site = WitnessedSite(config=config, text_model=text_model, image_model=image_model)
    site.register_page("transfer", make_transfer_page())
    return site


class TestMultiSession:
    def test_two_concurrent_sessions_independent(self, text_model, image_model):
        """Two guests through one service: interleaved, independent verdicts."""
        site = make_site(text_model, image_model)
        alice = site.connect("transfer")
        bob = site.connect("transfer")
        assert site.service.active_sessions == 2
        assert alice.witness is not bob.witness
        assert alice.vspec.session_id != bob.vspec.session_id

        # Interleave the two guests' activity.
        alice_user = HonestUser(alice.browser)
        bob_user = HonestUser(bob.browser)
        alice_user.fill_text_input("recipient", "ACC-1111")
        bob_user.fill_text_input("recipient", "ACC-2222")
        alice_user.fill_text_input("amount", "10")
        bob_user.fill_text_input("amount", "99")
        alice_user.toggle_checkbox("confirm", True)
        bob_user.toggle_checkbox("confirm", True)

        alice_decision = alice.submit()
        bob_decision = bob.submit()
        assert alice_decision.certified, alice_decision.reason
        assert bob_decision.certified, bob_decision.reason
        assert alice_decision.request.body["recipient"] == "ACC-1111"
        assert bob_decision.request.body["recipient"] == "ACC-2222"
        assert alice.witness.report is not bob.witness.report
        assert site.verify(alice_decision).ok
        assert site.verify(bob_decision).ok
        assert site.service.active_sessions == 0

    def test_violation_in_one_session_does_not_leak(self, text_model, image_model):
        """A tampering guest fails alone; a concurrent honest guest certifies."""
        from repro.attacks.tamper import swap_text_on_display

        site = make_site(text_model, image_model)
        honest = site.connect("transfer")
        victim = site.connect("transfer")
        HonestUser(honest.browser).fill_text_input("recipient", "ACC-OK")
        swap_text_on_display(victim.machine, 24, 44, "Totally different text", size=16)
        victim.machine.clock.advance(1500)
        user = HonestUser(honest.browser)
        user.fill_text_input("amount", "5")
        user.toggle_checkbox("confirm", True)

        assert not victim.submit().certified
        decision = honest.submit()
        assert decision.certified, decision.reason

    def test_eight_concurrent_sessions_share_one_warm_model_set(
        self, text_model, image_model
    ):
        from repro.nn import zoo

        before = zoo.model_registry_stats()
        site = make_site(text_model, image_model)
        clients = [site.connect("transfer") for _ in range(8)]
        assert site.service.registry.peak_active >= 8
        assert site.service.active_sessions == 8

        def drive(pair):
            index, client = pair
            user = HonestUser(client.browser)
            user.fill_text_input("recipient", f"ACC-{index}")
            user.fill_text_input("amount", str(10 + index))
            user.toggle_checkbox("confirm", True)
            return client.submit()

        with ThreadPoolExecutor(max_workers=8) as pool:
            decisions = list(pool.map(drive, enumerate(clients)))

        assert all(d.certified for d in decisions), [d.reason for d in decisions]
        bodies = [d.request.body["recipient"] for d in decisions]
        assert bodies == [f"ACC-{i}" for i in range(8)]
        # One warm model set: no additional training (or even reloading)
        # happened to serve eight guests.
        after = zoo.model_registry_stats()
        assert after["trains"] == before["trains"]
        assert after["loads"] == before["loads"]
        # Every session's verifiers wrapped the very same model objects.
        assert site.service.text_model is text_model
        assert site.service.image_model is image_model

    def test_second_service_does_not_retrain(self, text_model, image_model):
        from repro.nn import zoo

        first = zoo.get_text_model("base")
        before = zoo.model_registry_stats()
        ca = CertificateAuthority()
        service = WitnessService(ca)  # no models passed: resolves via the zoo
        after = zoo.model_registry_stats()
        assert service.text_model is first
        assert after["trains"] == before["trains"]
        assert after["loads"] == before["loads"]
        assert after["hits"] > before["hits"]


class TestConfig:
    def test_config_is_immutable(self):
        config = WitnessConfig()
        with pytest.raises(Exception):
            config.batched = True

    def test_replace_derives_new_config(self):
        config = WitnessConfig(batched=True)
        derived = config.replace(sampler_seed=7)
        assert derived.sampler_seed == 7
        assert derived.batched is True
        assert config.sampler_seed == 0
        assert derived is not config

    def test_pinned_sampler_seed_honored(self, text_model, image_model):
        """Auto-offsetting applies only when the caller pinned nothing."""
        ca = CertificateAuthority()
        config = WitnessConfig(sampler_seed=3)
        service = WitnessService(ca, config, text_model=text_model, image_model=image_model)
        from repro.core.service import _SEED_STRIDE

        first = service.open_session(Machine(640, 480))
        second = service.open_session(Machine(640, 480))
        assert first.sampler_seed == 3
        assert second.sampler_seed == 3 + _SEED_STRIDE  # distinct by default
        pinned = service.open_session(Machine(640, 480), sampler_seed=7)
        assert pinned.sampler_seed == 7
        via_config = service.open_session(
            Machine(640, 480), config=config.replace(sampler_seed=9)
        )
        assert via_config.sampler_seed == 9

    def test_per_session_config_override(self, text_model, image_model):
        ca = CertificateAuthority()
        service = WitnessService(
            ca, WitnessConfig(caching=True), text_model=text_model, image_model=image_model
        )
        machine = Machine(640, 480)
        session = service.open_session(
            machine, config=service.config.replace(caching=False)
        )
        assert session.config.caching is False
        assert service.config.caching is True


class TestHooks:
    def test_frame_and_decision_hooks_fire(self, text_model, image_model):
        site = make_site(text_model, image_model)
        frames, decisions = [], []
        site.service.on_frame(lambda session, outcome: frames.append(outcome))
        site.service.on_decision(lambda session, decision: decisions.append(decision))
        client = site.connect("transfer")
        user = HonestUser(client.browser)
        user.fill_text_input("recipient", "ACC-1")
        user.fill_text_input("amount", "3")
        user.toggle_checkbox("confirm", True)
        decision = client.submit()
        assert decisions == [decision]
        assert len(frames) == client.witness.report.frames_sampled
        assert [f.index for f in frames] == list(range(len(frames)))
        assert frames[0].sampled_at_ms <= frames[-1].sampled_at_ms

    def test_violation_hook_fires_on_forged_hint(self, text_model, image_model):
        site = make_site(text_model, image_model)
        violations = []
        site.service.on_violation(lambda session, violation: violations.append(violation))
        client = site.connect("transfer")
        field = client.browser.page.find_input("recipient")
        # A dishonest extension hints a value never shown on the display.
        client.witness.receive_hint(
            InputHint(
                timestamp=client.machine.clock.now(),
                input_name="recipient",
                rect=field.rect.as_tuple(),
                value="attacker-account",
            )
        )
        client.machine.clock.advance(1200)
        decision = client.submit()
        assert not decision.certified
        assert violations, "hint-mismatch violation should have reached the hook"

    def test_clean_start_violation_lands_on_frame_zero_outcome(
        self, text_model, image_model
    ):
        """Hooks must see the clean-start violation on the very first frame."""
        from repro.web.elements import Button, Page, TextBlock, TextInput

        ca = CertificateAuthority()
        server = WebServer(ca)
        server.register_page(
            "long",
            Page(
                title="Long Form",
                width=640,
                elements=[TextBlock(f"Section {i} text", 14) for i in range(8)]
                + [TextInput("late", label="Late field"), Button("Send")],
            ),
        )
        service = WitnessService(
            ca, WitnessConfig(batched=True), text_model=text_model, image_model=image_model
        )
        machine = Machine(640, 300)
        browser = Browser(machine, server.serve_page("long"))
        witness = service.open_session(machine)
        extension = BrowserExtension(browser, server, witness)
        extension.acquire_vspecs("long")
        browser.scroll(200)  # guest starts mid-page: not a clean start
        browser.paint()
        outcomes = []
        witness.on_frame(lambda session, outcome: outcomes.append(outcome))
        extension.begin_session()
        first = outcomes[0]
        assert any(v.rule == "clean-start" for v in first.new_violations)
        assert not first.clean
        assert witness.report.outcomes[0] is first

    def test_session_level_hooks_are_per_session(self, text_model, image_model):
        site = make_site(text_model, image_model)
        one = site.connect("transfer")
        two = site.connect("transfer")
        seen = []
        one.witness.on_frame(lambda session, outcome: seen.append(session.id))
        two.machine.clock.advance(1000)  # drives only session two's sampling
        assert seen == []
        one.machine.clock.advance(1000)
        assert seen and set(seen) == {one.witness.id}
        one.submit()
        two.submit()


class TestLifecycle:
    def test_session_is_single_use(self, text_model, image_model):
        site = make_site(text_model, image_model)
        client = site.connect("transfer")
        HonestUser(client.browser).toggle_checkbox("confirm", True)
        client.submit()
        witness = client.witness
        assert witness.state == "ended"
        with pytest.raises(RuntimeError, match="already ended"):
            witness.end_session({})
        with pytest.raises(RuntimeError, match="open a new session"):
            witness.begin_session(client.vspec)
        with pytest.raises(RuntimeError, match="no active session"):
            witness.receive_hint(None)

    def test_teardown_drops_per_session_state(self, text_model, image_model):
        site = make_site(text_model, image_model)
        client = site.connect("transfer")
        witness = client.witness
        assert witness._sampler is not None and witness._tracker is not None
        report = witness.report
        frames_before_end = report.frames_sampled
        client.submit()
        assert witness._sampler is None
        assert witness._tracker is None
        assert witness._display is None
        # The report survives teardown for inspection.
        assert witness.report is report
        assert witness.report.frames_sampled >= frames_before_end
        # The machine's clock no longer drives this session.
        client.machine.clock.advance(2000)
        assert witness.report.frames_sampled == report.frames_sampled

    def test_context_manager_closes_abandoned_session(self, text_model, image_model):
        ca = CertificateAuthority()
        server = WebServer(ca)
        server.register_page("transfer", make_transfer_page())
        service = WitnessService(
            ca, WitnessConfig(batched=True), text_model=text_model, image_model=image_model
        )
        machine = Machine(640, 480)
        browser = Browser(machine, server.serve_page("transfer"))
        with service.open_session(machine) as witness:
            extension = BrowserExtension(browser, server, witness)
            extension.acquire_vspecs("transfer")
            browser.paint()
            extension.begin_session()
            assert service.active_sessions == 1
        # Abandoned without end_session: closed, unregistered, detached.
        assert witness.state == "closed"
        assert service.active_sessions == 0
        machine.clock.advance(2000)  # no observer left to fire
        with pytest.raises(RuntimeError):
            witness.end_session({})

    def test_abandoned_client_connection_does_not_leak(self, text_model, image_model):
        """A guest that never submits must not stay registered forever."""
        site = make_site(text_model, image_model)
        with site.connect("transfer") as client:
            assert site.service.active_sessions == 1
        assert site.service.active_sessions == 0
        assert client.witness.state == "closed"
        explicit = site.connect("transfer")
        explicit.close()
        explicit.close()  # idempotent
        assert site.service.active_sessions == 0

    def test_hook_exception_leaves_report_consistent(self, text_model, image_model):
        """A raising hook surfaces to the driver but never half-records a frame."""
        site = make_site(text_model, image_model)
        client = site.connect("transfer")

        @site.service.on_frame
        def _explode(session, outcome):
            raise ValueError("observer bug")

        with pytest.raises(ValueError, match="observer bug"):
            client.machine.clock.advance(1000)
        report = client.witness.report
        assert len(report.frame_results) == report.frames_sampled
        assert len(report.timing.frame_times) == report.frames_sampled
        assert len(report.outcomes) == report.frames_sampled
        client.close()

    def test_compat_shim_second_end_session_raises(self, text_model, image_model):
        ca = CertificateAuthority()
        server = WebServer(ca)
        server.register_page("transfer", make_transfer_page())
        machine = Machine(640, 480)
        browser = Browser(machine, server.serve_page("transfer"))
        vwitness = install_vwitness(
            machine, ca, text_model=text_model, image_model=image_model, batched=True
        )
        extension = BrowserExtension(browser, server, vwitness)
        vspec = extension.acquire_vspecs("transfer")
        browser.paint()
        extension.begin_session()
        HonestUser(browser).toggle_checkbox("confirm", True)
        body = dict(browser.page.form_values(), session_id=vspec.session_id)
        vwitness.end_session(body)
        # Stale per-session state is gone; re-certifying must fail loudly.
        assert vwitness._session is None
        with pytest.raises(RuntimeError, match="no active session"):
            vwitness.end_session(body)
        with pytest.raises(RuntimeError, match="no active session"):
            vwitness.receive_hint(None)
        # The last report stays readable after teardown.
        assert vwitness.report.frames_sampled > 0

    def test_registry_counts(self, text_model, image_model):
        site = make_site(text_model, image_model)
        assert site.service.registry.total_opened == 0
        a = site.connect("transfer")
        b = site.connect("transfer")
        assert site.service.registry.total_opened == 2
        assert site.service.registry.peak_active == 2
        assert len(site.service.registry) == 2
        HonestUser(a.browser).toggle_checkbox("confirm", True)
        a.submit()
        assert site.service.registry.active_count == 1
        assert site.service.registry.active() == [b.witness]
        b.submit()
        assert site.service.registry.active_count == 0
        assert site.service.registry.peak_active == 2


class TestCacheNamespacing:
    def test_scoped_views_are_disjoint(self):
        cache = DigestCache()
        text = cache.scoped("text")
        image = cache.scoped("image")
        text.put("digest-123", True)
        assert text.get("digest-123") is True
        assert image.get("digest-123") is None
        image.put("digest-123", False)
        assert text.get("digest-123") is True
        assert image.get("digest-123") is False
        assert len(cache) == 2
        assert len(text) == 1 and len(image) == 1

    def test_scoped_stats_aggregate_on_parent(self):
        cache = DigestCache()
        text = cache.scoped("text")
        text.get("missing")
        text.put("k", True)
        text.get("k")
        assert cache.misses == 1 and cache.hits == 1
        assert text.hit_rate == cache.hit_rate == 0.5

    def test_sessions_share_one_namespaced_cache(self, text_model, image_model):
        """Both verifier kinds sit over one store, in disjoint namespaces."""
        site = make_site(text_model, image_model)
        client = site.connect("transfer")
        shared = site.service.shared_cache
        assert client.witness._text_verifier.cache.parent is shared
        assert client.witness._image_verifier.cache.parent is shared
        assert client.witness._text_verifier.cache.namespace == "text"
        assert client.witness._image_verifier.cache.namespace == "image"
        HonestUser(client.browser).toggle_checkbox("confirm", True)
        client.submit()
        assert len(shared) > 0
        # A second guest warm-starts from the first guest's verdicts.
        hits_before = shared.hits
        second = site.connect("transfer")
        HonestUser(second.browser).toggle_checkbox("confirm", True)
        second.submit()
        assert shared.hits > hits_before
