"""Tests for the adversarial attack implementations and evaluation harness."""

import numpy as np
import pytest

from repro.adversarial.attacks import (
    AttackConfig,
    bim,
    classifier_objective,
    fgm,
    matcher_objective,
    project,
    quantize,
    run_attack,
)
from repro.adversarial.defenses import multi_unit_attack_success, perturbation_visibility
from repro.adversarial.evaluate import (
    EPSILONS_L2,
    EPSILONS_LINF,
    RobustnessReport,
    attacked_accuracy_matcher,
    robustness_grid,
)
from repro.nn.data import text_dataset
from repro.raster.fonts import font_registry


@pytest.fixture(scope="module")
def false_pairs(text_model):
    fonts = font_registry()[:1]
    obs, exp, labels = text_dataset(fonts, styles=("normal",), expansions=0, seed=77)
    mask = labels < 0.5
    return obs[mask][:24], exp[mask][:24]


class TestProjection:
    def test_linf_projection_bounds_delta(self):
        rng = np.random.default_rng(0)
        x0 = rng.uniform(0.2, 0.8, (4, 1, 8, 8))
        x = x0 + rng.normal(0, 1, x0.shape)
        proj = project(x, x0, epsilon=0.1, norm="linf")
        assert np.all(np.abs(proj - x0) <= 0.1 + 1e-12)
        assert proj.min() >= 0.0 and proj.max() <= 1.0

    def test_l2_projection_bounds_norm(self):
        rng = np.random.default_rng(1)
        x0 = rng.uniform(0.3, 0.7, (3, 1, 8, 8))
        x = x0 + rng.normal(0, 5, x0.shape)
        proj = project(x, x0, epsilon=2.0, norm="l2")
        deltas = (proj - x0).reshape(3, -1)
        assert np.all(np.linalg.norm(deltas, axis=1) <= 2.0 + 1e-9)

    def test_inside_ball_untouched(self):
        x0 = np.full((1, 1, 4, 4), 0.5)
        x = x0 + 0.05
        assert np.allclose(project(x, x0, 0.1, "linf"), x)

    def test_unknown_norm_rejected(self):
        with pytest.raises(ValueError):
            project(np.zeros((1, 4)), np.zeros((1, 4)), 0.1, "l1")

    def test_quantize_to_pixel_grid(self):
        x = np.asarray([0.1234, 0.9999, -0.2])
        q = quantize(x)
        assert np.all(q >= 0) and np.all(q <= 1)
        assert np.allclose(q * 255, np.rint(q * 255))


class TestObjectives:
    def test_matcher_objective_margin_sign(self, text_model, false_pairs):
        obs, exp = false_pairs
        objective = matcher_objective(text_model, exp[:4], target_match=True)
        margin, grad = objective(obs[:4])
        assert margin.shape == (4,)
        assert grad.shape == obs[:4].shape
        # Model (mostly) rejects tampered pairs => margins mostly positive.
        assert (margin > 0).mean() >= 0.5

    def test_matcher_objective_threshold_awareness(self, text_model, false_pairs):
        obs, exp = false_pairs
        base = matcher_objective(text_model, exp[:8])(obs[:8])[0]
        hard = matcher_objective(text_model.with_threshold(0.99), exp[:8])(obs[:8])[0]
        assert np.all(hard > base)  # higher threshold -> larger margins

    def test_classifier_objective_gradient_descends(self):
        from repro.nn.zoo import get_text_reference

        model = get_text_reference()
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, (2, 1, 32, 32)).astype(np.float32)
        targets = np.asarray([5, 9])
        objective = classifier_objective(model, targets)
        margin0, grad = objective(x)
        stepped = np.clip(x - 0.05 * np.sign(grad), 0, 1)
        margin1, _ = objective(stepped)
        assert margin1.mean() < margin0.mean()


class TestAttacks:
    @pytest.mark.parametrize("attack", ["FGM", "BIM", "MOM", "APGD", "FAB"])
    def test_attacks_respect_epsilon_ball(self, text_model, false_pairs, attack):
        obs, exp = false_pairs
        objective = matcher_objective(text_model, exp[:6])
        x_adv = run_attack(attack, objective, obs[:6], 0.1254, "linf", AttackConfig(steps=8))
        assert np.all(np.abs(x_adv - obs[:6]) <= 0.1254 + 1.0 / 255.0 + 1e-9)
        assert x_adv.min() >= 0 and x_adv.max() <= 1

    def test_iterative_beats_single_step(self, text_model, false_pairs):
        obs, exp = false_pairs
        objective = matcher_objective(text_model, exp)
        x_fgm = fgm(objective, obs, 0.2509, "linf")
        x_bim = bim(objective, obs, 0.2509, "linf", AttackConfig(steps=12))
        margin_fgm = objective(x_fgm)[0].mean()
        margin_bim = objective(x_bim)[0].mean()
        assert margin_bim <= margin_fgm + 1e-6

    def test_cw_only_returns_successful_perturbations(self, text_model, false_pairs):
        obs, exp = false_pairs
        objective = matcher_objective(text_model, exp[:8])
        x_adv = run_attack("CW2", objective, obs[:8], 3.0, "l2", AttackConfig(steps=10))
        margins, _ = objective(x_adv)
        # CW never worsens a sample: each output is either the original
        # input (up to tanh/pixel quantization noise) or a lower-margin
        # adversarial point.
        assert np.all(margins <= objective(obs[:8])[0] + 0.1)

    def test_unknown_attack_rejected(self, text_model, false_pairs):
        obs, exp = false_pairs
        with pytest.raises(ValueError):
            run_attack("DeepFool", matcher_objective(text_model, exp[:2]), obs[:2], 0.1, "linf")


class TestEvaluation:
    def test_attacked_accuracy_in_unit_interval(self, text_model, false_pairs):
        obs, exp = false_pairs
        acc = attacked_accuracy_matcher(
            text_model, obs[:8], exp[:8], "FGM", EPSILONS_LINF[0], "linf"
        )
        assert 0.0 <= acc <= 1.0

    def test_high_threshold_is_more_robust(self, text_model, false_pairs):
        obs, exp = false_pairs
        config = AttackConfig(steps=10)
        base = attacked_accuracy_matcher(text_model, obs, exp, "BIM", 0.2509, "linf", config)
        hard = attacked_accuracy_matcher(
            text_model.with_threshold(0.99), obs, exp, "BIM", 0.2509, "linf", config
        )
        assert hard >= base

    def test_robustness_grid_structure(self, text_model, false_pairs):
        obs, exp = false_pairs
        report = robustness_grid(
            "matcher",
            text_model,
            obs[:6],
            exp[:6],
            model_name="unit-test",
            attacks=("FGM", "CW2"),
            config=AttackConfig(steps=4),
        )
        assert set(report.grid) == {"FGM", "CW2"}
        assert set(report.grid["FGM"]) == {"linf", "l2"}
        assert len(report.grid["FGM"]["linf"]) == len(EPSILONS_LINF)
        # CW2 is L2-only, filled across epsilons with its single value.
        assert len(set(report.grid["CW2"]["l2"].values())) == 1
        assert 0.0 <= report.average_attacked_accuracy <= 1.0

    def test_robustness_factor(self):
        ref = RobustnessReport("ref", clean_accuracy=0.9)
        ref.record("FGM", "linf", 0.1, 0.10)
        ours = RobustnessReport("ours", clean_accuracy=0.95)
        ours.record("FGM", "linf", 0.1, 0.50)
        assert ours.robustness_factor(ref) == pytest.approx(5.0)


class TestDefenses:
    def test_multi_unit_amplification(self):
        assert multi_unit_attack_success(0.5, 4) == pytest.approx(0.0625)
        with pytest.raises(ValueError):
            multi_unit_attack_success(1.5, 2)
        with pytest.raises(ValueError):
            multi_unit_attack_success(0.5, 0)

    def test_perturbation_visibility_stats(self):
        x0 = np.zeros((4, 4))
        x = x0.copy()
        x[0, 0] = 0.5
        stats = perturbation_visibility(x0, x)
        assert stats["max"] == pytest.approx(0.5)
        assert stats["changed_fraction"] == pytest.approx(1 / 16)
