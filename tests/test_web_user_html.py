"""Tests for the honest-user model, the hypervisor boundary and the HTML bridge."""

import numpy as np
import pytest

from repro.web.browser import Browser
from repro.web.elements import Button, Checkbox, Page, SelectBox, TextBlock, TextInput
from repro.web.html import TAG_TO_VALIDATION_TYPE, page_to_html, parse_form
from repro.web.hypervisor import Machine, SimulatedClock
from repro.web.user import HonestUser, ReflectiveValidationError


def _bench(elements, display=(640, 300)):
    page = Page(title="T", width=640, elements=elements)
    machine = Machine(*display)
    browser = Browser(machine, page)
    browser.paint()
    return machine, browser, page


class TestClock:
    def test_advance_and_observers(self):
        clock = SimulatedClock()
        seen = []
        clock.add_observer(seen.append)
        clock.advance(100)
        clock.advance(50)
        assert seen == [100.0, 150.0]
        clock.remove_observer(seen.append)
        clock.advance(10)
        assert len(seen) == 2

    def test_rewind_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)


class TestHypervisorBoundary:
    def test_sample_is_a_private_copy(self):
        machine = Machine(8, 8)
        snap = machine.sample_framebuffer()
        snap.pixels[...] = 123.0
        assert not np.any(machine.sample_framebuffer().pixels == 123.0)

    def test_io_ledger_windows(self):
        machine = Machine(8, 8)
        machine.clock.advance(100)
        machine.record_hardware_io("key")
        machine.clock.advance(100)
        machine.record_hardware_io("mouse")
        assert len(machine.io_events_between(0, 150)) == 1
        assert len(machine.io_events_between(0, 300)) == 2
        assert machine.last_io_before(150).kind == "key"
        assert machine.last_io_before(50) is None
        with pytest.raises(ValueError):
            machine.record_hardware_io("telepathy")

    def test_guest_writes_visible_to_sampling(self):
        machine = Machine(8, 8)
        from repro.vision.image import Image

        machine.write_framebuffer(Image.blank(8, 8, 77.0))
        assert np.all(machine.sample_framebuffer().pixels == 77.0)


class TestHonestUser:
    def test_fill_generates_hardware_io(self):
        machine, browser, page = _bench([TextInput("name", label="Name")])
        user = HonestUser(browser)
        user.fill_text_input("name", "abc")
        events = machine.io_events_between(0, machine.clock.now())
        assert len(events) >= 4  # click + 3 keys
        assert any(e.kind == "mouse" for e in events)
        assert sum(e.kind == "key" for e in events) >= 3
        assert page.elements[0].value == "abc"

    def test_reflective_validation_passes_for_honest_display(self):
        machine, browser, page = _bench([TextInput("amount", label="Amount")])
        HonestUser(browser).fill_text_input("amount", "125.00")
        assert page.elements[0].value == "125.00"

    def test_reflective_validation_catches_lying_display(self):
        machine, browser, page = _bench([TextInput("amount", label="Amount")])

        # Malware: whenever the browser paints, overwrite the field's
        # displayed digits with a different value.
        real_paint = browser.paint

        def evil_paint():
            real_paint()
            from repro.attacks.tamper import swap_text_on_display
            from repro.web import layout as lay

            field = page.elements[0]
            if field.value:
                box = lay.input_box_rect(field)
                ox, oy = lay.text_origin_in_input(field)
                swap_text_on_display(
                    machine, ox, oy - browser.scroll_y, "9" * len(field.value),
                    size=field.text_size, background=252.0,
                )

        browser.paint = evil_paint
        user = HonestUser(browser)
        with pytest.raises(ReflectiveValidationError):
            user.fill_text_input("amount", "125.00", max_retries=1)

    def test_user_scrolls_to_reach_offscreen_field(self):
        elements = [TextBlock(f"filler {i}") for i in range(20)] + [
            TextInput("late", label="Late")
        ]
        machine, browser, page = _bench(elements)
        user = HonestUser(browser)
        user.fill_text_input("late", "x")
        assert page.elements[-1].value == "x"
        assert browser.scroll_y > 0

    def test_clock_advances_with_typing(self):
        machine, browser, page = _bench([TextInput("a", label="A")])
        t0 = machine.clock.now()
        HonestUser(browser, typing_delay_ms=80).fill_text_input("a", "abcde")
        assert machine.clock.now() - t0 > 5 * 40  # at least ~half the nominal delay


class TestHtmlBridge:
    def _page(self):
        return Page(
            title="Order",
            width=640,
            elements=[
                TextBlock("Order details"),
                TextInput("qty", label="Quantity", max_length=3),
                Checkbox("gift", "Gift wrap"),
                SelectBox("size", ["S", "M", "L"], selected=1),
                Button("Buy"),
            ],
        )

    def test_round_trip_structure(self):
        html = page_to_html(self._page(), css="body { font: sans; }")
        form = parse_form(html)
        assert form.title == "Order"
        assert form.width == 640
        inputs = form.inputs()
        assert len(inputs) == 3  # qty + gift + size
        assert form.css.strip() == "body { font: sans; }"

    def test_maxlength_survives_serialization(self):
        html = page_to_html(self._page())
        qty = [t for t in parse_form(html).find_all("input") if t.attrs.get("name") == "qty"]
        assert qty[0].attrs["maxlength"] == "3"

    def test_external_iframes_detected(self):
        from repro.web.elements import IFrame

        page = Page(title="T", elements=[IFrame("https://ads.example/ad"), IFrame("/local")])
        form = parse_form(page_to_html(page))
        externals = form.external_iframes()
        assert len(externals) == 1
        assert externals[0].attrs["src"] == "https://ads.example/ad"

    def test_tag_mapping_covers_core_tags(self):
        for tag in ("input", "img", "p", "select", "button", "iframe", "video"):
            assert tag in TAG_TO_VALIDATION_TYPE
