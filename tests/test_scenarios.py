"""Tests for the scenario generator and the soak driver.

The cheap structural properties run without models; the driver and
parity tests reuse the session-scoped trained models.
"""

import numpy as np
import pytest

from repro.scenarios import (
    ARCHETYPES,
    DISPLAYS,
    ENGINE_COMBOS,
    SCRIPTS,
    ScenarioSpec,
    baseline_combo,
    combo_by_name,
    default_soak_specs,
    run_soak,
)
from repro.scenarios.soak import _describe_divergence
from repro.web.elements import ScrollableList
from repro.web.layout import layout_page


class TestGenerator:
    def test_every_archetype_builds(self):
        for archetype in ARCHETYPES:
            scenario = ScenarioSpec(archetype, seed=3).build()
            assert scenario.pages
            for _page_id, page in scenario.pages:
                assert page.width == scenario.display[0]
                assert layout_page(page) > 0

    def test_generation_is_deterministic(self):
        for archetype in ARCHETYPES:
            a = ScenarioSpec(archetype, seed=5).build()
            b = ScenarioSpec(archetype, seed=5).build()
            assert a.sampler_seed == b.sampler_seed
            assert a.stack == b.stack
            assert a.entries == b.entries
            for (_ia, pa), (_ib, pb) in zip(a.pages, b.pages):
                assert [type(e).__name__ for e in pa.elements] == [
                    type(e).__name__ for e in pb.elements
                ]
                assert layout_page(pa) == layout_page(pb)

    def test_seeds_vary_the_pages(self):
        kinds = set()
        for seed in range(4):
            scenario = ScenarioSpec("tall-form", seed=seed).build()
            kinds.add(
                tuple(
                    getattr(e, "name", None)
                    for e in scenario.pages[0][1].elements
                )
            )
        assert len(kinds) > 1

    def test_tall_form_scrolls(self):
        scenario = ScenarioSpec("tall-form").build()
        assert layout_page(scenario.pages[0][1]) > scenario.display[1]

    def test_letterbox_page_shorter_than_display(self):
        scenario = ScenarioSpec("letterbox").build()
        assert layout_page(scenario.pages[0][1]) < scenario.display[1]

    def test_wizard_has_multiple_steps(self):
        scenario = ScenarioSpec("wizard").build()
        assert scenario.steps == 3
        assert len({pid for pid, _ in scenario.pages}) == 3
        assert len(scenario.entries) == 3

    def test_nested_scroll_list_below_the_fold(self):
        scenario = ScenarioSpec("nested-scroll").build()
        page = scenario.pages[0][1]
        layout_page(page)
        lists = [e for e in page.elements if isinstance(e, ScrollableList)]
        assert len(lists) == 1
        assert lists[0].rect.y2 > scenario.display[1]  # needs page scroll

    def test_mixed_stack_uses_randomized_stack(self):
        scenario = ScenarioSpec("mixed-stack", seed=2).build()
        assert scenario.stack.name.startswith("random-")

    def test_unknown_archetype_and_script_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec("kiosk")
        with pytest.raises(ValueError):
            ScenarioSpec("tall-form", script="chaotic")

    def test_spec_key_identifies_instance(self):
        spec = ScenarioSpec("dashboard", script="tampered", seed=7)
        assert spec.key == "dashboard/tampered#7"
        assert spec.with_seed(9).key == "dashboard/tampered#9"

    def test_default_matrix_covers_everything(self):
        specs = default_soak_specs()
        assert set(ARCHETYPES) == {s.archetype for s in specs}
        assert set(SCRIPTS) == {s.script for s in specs}


class TestCombos:
    def test_six_valid_combos(self):
        assert len(ENGINE_COMBOS) == 6
        for combo in ENGINE_COMBOS:
            config = combo.config()  # must validate (shared requires batched)
            assert config.executor == combo.executor
            assert config.inference == combo.inference

    def test_baseline_combo_matches_knobs(self):
        assert baseline_combo("shared", "training").name == "batched-shared-training"
        assert baseline_combo().name == "batched-inline-frozen"
        with pytest.raises(KeyError):
            combo_by_name("batched-quantum-frozen")

    def test_describe_divergence_pinpoints_field(self):
        base = ((("True", "ok"), True, (), True, ((0, 1.0, True, 0, False, (), ()),)),)
        other = ((("True", "ok"), True, (), True, ((0, 1.0, False, 0, False, (), ()),)),)
        detail = _describe_divergence(base, other)
        assert "frame 0" in detail and "ok" in detail
        shorter = (((("True", "ok")), True, (), True, ()),)
        assert "session" in _describe_divergence(base, shorter)


class TestSoakDriver:
    @pytest.fixture(scope="class")
    def tiny_soak(self, text_model, image_model):
        """One cheap archetype, honest + tampered, two engine combos."""
        return run_soak(
            [
                ScenarioSpec("letterbox", script="honest"),
                ScenarioSpec("letterbox", script="tampered"),
                ScenarioSpec("letterbox", script="abandoning"),
            ],
            combos=(ENGINE_COMBOS[0], combo_by_name("sequential-inline-training")),
            text_model=text_model,
            image_model=image_model,
        )

    def test_soak_is_clean(self, tiny_soak):
        assert tiny_soak.ok, tiny_soak.summary()

    def test_soak_accounting(self, tiny_soak):
        assert tiny_soak.scenarios == 3
        assert tiny_soak.sessions_total == 6  # 3 scenarios x 2 combos
        assert tiny_soak.certified_total == 2  # honest certifies in each combo
        assert set(tiny_soak.sessions_per_combo) == set(tiny_soak.combos)
        assert tiny_soak.frames_total > 0
        assert tiny_soak.sessions_per_second > 0
        assert "letterbox" in tiny_soak.summary()

    def test_fingerprints_scrub_session_nonces(self, text_model, image_model):
        """Two runs of the same spec under the same combo fingerprint
        identically even though session ids and key material differ."""
        spec = ScenarioSpec("letterbox", script="honest")
        results = [
            run_soak([spec], combos=ENGINE_COMBOS[:1],
                     text_model=text_model, image_model=image_model)
            for _ in range(2)
        ]
        assert results[0].ok and results[1].ok

    def test_baseline_reordering(self, text_model, image_model):
        res = run_soak(
            [ScenarioSpec("letterbox")],
            combos=(ENGINE_COMBOS[0], ENGINE_COMBOS[1]),
            baseline="batched-inline-training",
            text_model=text_model,
            image_model=image_model,
        )
        assert res.baseline == "batched-inline-training"
        assert res.combos[0] == "batched-inline-training"
        assert res.ok, res.summary()


class TestConcurrentFleets:
    def test_threaded_fleet_fingerprints_match_inline(self, text_model, image_model):
        """Driving scenario fleets concurrently through the shared runtime
        coalesces their rounds into cross-session micro-batches — and the
        fingerprints must *still* match single-threaded inline execution,
        because per-session verdicts never depend on batch composition."""
        res = run_soak(
            [
                ScenarioSpec("letterbox", script="honest"),
                ScenarioSpec("letterbox", script="tampered", seed=1),
                ScenarioSpec("letterbox", script="abandoning", seed=2),
            ],
            combos=(ENGINE_COMBOS[0], combo_by_name("batched-shared-frozen")),
            text_model=text_model,
            image_model=image_model,
            threads=3,
        )
        assert res.ok, res.summary()
        assert res.sessions_per_combo["batched-shared-frozen"] == 3


class TestScrollRefocusParity:
    def test_interleaved_scroll_focus_type_parity(self, text_model, image_model):
        """Satellite: a session with interleaved scroll/focus/type events
        (the tall form's fill + scroll-back-and-retype revisit) yields
        identical verdicts batched vs sequential and frozen vs training."""
        res = run_soak(
            [ScenarioSpec("tall-form", script="honest", seed=1)],
            combos=(
                combo_by_name("batched-inline-frozen"),
                combo_by_name("sequential-inline-frozen"),
                combo_by_name("batched-inline-training"),
            ),
            text_model=text_model,
            image_model=image_model,
        )
        assert res.ok, res.summary()
        assert res.certified_total == 3  # one honest certification per combo
