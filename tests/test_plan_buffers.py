"""Zero-copy plan transport: pooled buffers from collect to forward.

Covers the :mod:`repro.core.planbuf` pool layer (reuse across frames,
thread confinement, LRU bounding, growth semantics), the retry-ring
buffer reuse in :meth:`TextVerifier.execute_plan`, and — the load-bearing
property — that moving unit inputs into pooled buffers changed nothing
about verdicts: batched vs sequential and shared vs inline stay
bit-identical over randomized honest/tampered frames.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.caches import DigestCache
from repro.core.display import DisplayValidator
from repro.core.planbuf import PLAN_DTYPE, PlanBuffers, thread_pool
from repro.core.verifiers import TILE, ImageVerifier, TextVerifier, ValidationPlan
from repro.runtime import ValidationExecutor

from tests.test_validation_plan import _render, _tampered_frame, _validator


# ---------------------------------------------------------------------------
# PlanBuffers unit behavior
# ---------------------------------------------------------------------------


class TestPlanBuffers:
    def test_reserve_allocates_once_and_reuses(self):
        pool = PlanBuffers()
        a = pool.reserve("k", 8, (TILE, TILE))
        b = pool.reserve("k", 5, (TILE, TILE))
        assert b is a
        assert a.dtype == PLAN_DTYPE
        assert a.shape[0] >= 8
        assert pool.allocations == 1
        assert pool.hits == 1

    def test_growth_preserves_written_rows(self):
        pool = PlanBuffers()
        first = pool.reserve("k", 2, (4,))
        first[0] = 1.5
        first[1] = 2.5
        grown = pool.reserve("k", 5, (4,))
        assert grown.shape[0] >= 5
        assert np.all(grown[0] == 1.5) and np.all(grown[1] == 2.5)
        assert pool.allocations == 2

    def test_trailing_or_dtype_change_replaces_buffer(self):
        pool = PlanBuffers()
        a = pool.reserve("k", 4, (TILE, TILE))
        b = pool.reserve("k", 4, (TILE,))
        assert b.shape[1:] == (TILE,)
        c = pool.reserve("k", 4, (TILE,), dtype=np.float64)
        assert c.dtype == np.float64
        assert a.shape[1:] == (TILE, TILE)  # old backing untouched

    def test_lru_eviction_past_max_shapes(self):
        pool = PlanBuffers(max_shapes=2)
        pool.reserve("a", 1, (2,))
        pool.reserve("b", 1, (2,))
        pool.reserve("c", 1, (2,))
        assert pool.peek("a") is None  # least recently used fell out
        assert pool.peek("b") is not None and pool.peek("c") is not None
        assert pool.evictions == 1
        # Touching "b" marks it most recent; the next insert evicts "c".
        pool.reserve("b", 1, (2,))
        pool.reserve("d", 1, (2,))
        assert pool.peek("c") is None and pool.peek("b") is not None

    def test_max_shapes_validated(self):
        with pytest.raises(ValueError):
            PlanBuffers(max_shapes=0)

    def test_thread_pool_is_thread_confined(self):
        pools = {}

        def grab(slot):
            pools[slot] = thread_pool()
            assert thread_pool() is pools[slot]  # stable within a thread

        grab("main")
        threads = [threading.Thread(target=grab, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        distinct = {id(p) for p in pools.values()}
        assert len(distinct) == 3


# ---------------------------------------------------------------------------
# Plan-level reuse
# ---------------------------------------------------------------------------


class TestPlanReuse:
    def test_reset_keeps_buffers_resident(self):
        plan = ValidationPlan()
        frame = np.full((64, 64), 255.0)
        region = np.full((40, 40), 128.0)
        plan.add_region(region, region)
        backing = plan.buffers.peek(ValidationPlan.IMAGE_OBS_KEY)
        assert backing is not None
        plan.reset()
        assert plan.text_unit_count == 0 and plan.image_pair_count == 0
        assert plan.image_groups == []
        plan.add_region(region, region)
        assert plan.buffers.peek(ValidationPlan.IMAGE_OBS_KEY) is backing

    def test_add_region_writes_float32_and_checks_shapes(self):
        plan = ValidationPlan()
        region = np.full((40, 40), 128.0)
        plan.add_region(region, region)
        assert plan.image_observed.dtype == PLAN_DTYPE
        assert plan.image_expected.dtype == PLAN_DTYPE
        with pytest.raises(ValueError):
            plan.add_region(region, np.full((40, 41), 128.0))

    def test_validator_reuses_plan_buffers_across_frames(self, text_model, image_model):
        vspec, machine, _browser = _render(5)
        frame = machine.sample_framebuffer().pixels
        validator = _validator(vspec, text_model, image_model, batched=True)
        validator.validate(frame)  # warm: buffers sized to the frame
        plan = validator._plan
        ids = {
            key: id(plan.buffers.peek(key))
            for key in (ValidationPlan.TEXT_KEY, ValidationPlan.IMAGE_OBS_KEY)
            if plan.buffers.peek(key) is not None
        }
        assert ids, "warm frame collected no units"
        allocations = plan.buffers.allocations
        for _ in range(2):
            result = validator.validate(frame)
            assert result.ok
        assert plan.buffers.allocations == allocations  # no growth
        for key, backing_id in ids.items():
            assert id(plan.buffers.peek(key)) == backing_id  # same buffers

    def test_retry_ring_buffer_reused_across_frames(self, text_model, image_model):
        vspec, machine, _browser = _render(3)
        frame = machine.sample_framebuffer().pixels
        shifted = np.vstack(
            [np.full((1, frame.shape[1]), vspec.background), frame[:-1]]
        )
        validator = _validator(vspec, text_model, image_model, batched=True)
        first = validator.validate(shifted)
        assert first.text_retry_rounds > 0  # the shifted frame exercises the rings
        ring = thread_pool().peek(("text-retry",))
        assert ring is not None
        validator.validate(shifted)
        assert thread_pool().peek(("text-retry",)) is ring


# ---------------------------------------------------------------------------
# Verdict parity on the pooled path
# ---------------------------------------------------------------------------


def _shared_validator(vspec, text_model, image_model, executor) -> DisplayValidator:
    cache = DigestCache()
    return DisplayValidator(
        vspec,
        TextVerifier(text_model, batched=True, cache=cache.scoped("text"), runtime=executor),
        ImageVerifier(image_model, batched=True, cache=cache.scoped("image"), runtime=executor),
        runtime=executor,
    )


class TestPooledPathParity:
    @settings(max_examples=3, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        kind=st.sampled_from(["none", "fill", "text", "shift"]),
    )
    def test_batched_sequential_and_shared_inline_agree(
        self, text_model, image_model, seed, kind
    ):
        """All four execution strategies agree verdict-for-verdict."""
        rng = np.random.default_rng(seed)
        vspec, machine, _browser = _render(seed % 23)
        frame = _tampered_frame(machine, vspec, kind, rng)

        batched = _validator(vspec, text_model, image_model, batched=True).validate(frame)
        sequential = _validator(vspec, text_model, image_model, batched=False).validate(frame)
        with ValidationExecutor(
            text_model, image_model, max_batch_units=64, flush_deadline_ms=1.0
        ) as executor:
            with ThreadPoolExecutor(max_workers=2) as tpool:
                shared = list(
                    tpool.map(
                        lambda _i: _shared_validator(
                            vspec, text_model, image_model, executor
                        ).validate(frame),
                        range(2),
                    )
                )

        for other in [sequential, *shared]:
            assert other.ok == batched.ok
            assert other.failures == batched.failures
            assert other.offset_y == batched.offset_y
            assert other.plan_text_units == batched.plan_text_units
            assert other.plan_image_pairs == batched.plan_image_pairs
