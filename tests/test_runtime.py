"""The cross-session validation runtime: coalescing, backpressure, parity.

Three layers of coverage:

* unit tests of the runtime building blocks (metrics instruments, the
  admission gate, the micro-batcher, the executor facade) against fake
  models, where flush/backpressure behavior can be forced
  deterministically;
* the parity property: routing a session's model forwards through the
  shared executor — including concurrently with other sessions — is a
  pure execution strategy, bit-identical to inline execution on
  randomized tampered/shifted frames;
* service-level integration: many short-lived shared-mode sessions
  through one :class:`WitnessService`, with consistent registry and
  runtime statistics.
"""

import copy
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.caches import DigestCache
from repro.core.display import DisplayValidator
from repro.core.service import SessionRegistry, WitnessConfig, WitnessService
from repro.core.verifiers import ImageVerifier, TextVerifier
from repro.crypto import CertificateAuthority
from repro.datasets.forms import jotform_page
from repro.raster.stacks import stack_registry
from repro.runtime import (
    AdmissionGate,
    MicroBatcher,
    RuntimeMetrics,
    ValidationExecutor,
    chunks_touched,
    forwards_for,
)
from repro.server.generate import build_vspec
from repro.server.webserver import WitnessedSite
from repro.web import HonestUser
from repro.web.browser import Browser
from repro.web.hypervisor import Machine

from tests.conftest import make_transfer_page


class FakeModel:
    """Row-independent deterministic stand-in for a matcher model."""

    def __init__(self, delay: float = 0.0):
        self.forwards = 0
        self.delay = delay
        self._lock = threading.Lock()

    def predict(self, observed, expected, chunk_size=None):
        with self._lock:
            self.forwards += forwards_for(len(observed), chunk_size)
        if self.delay:
            import time

            time.sleep(self.delay)
        return observed.reshape(len(observed), -1).sum(axis=1) > 0


def rows(n: int, value: float = 1.0) -> np.ndarray:
    return np.full((n, 1, 2, 2), value, dtype=np.float32)


class TestMetrics:
    def test_counter_gauge_histogram(self):
        metrics = RuntimeMetrics()
        metrics.counter("c").inc()
        metrics.counter("c").inc(4)
        metrics.gauge("g").set(3.5)
        metrics.gauge("g").add(-1.5)
        hist = metrics.histogram("h", buckets=(1, 10))
        for v in (0.5, 5, 100):
            hist.observe(v)
        snap = metrics.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.0
        h = snap["histograms"]["h"]
        assert h["count"] == 3 and h["min"] == 0.5 and h["max"] == 100
        assert h["buckets"] == {"le_1": 1, "le_10": 1, "le_inf": 1}
        assert h["mean"] == pytest.approx((0.5 + 5 + 100) / 3)

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError, match="only go up"):
            RuntimeMetrics().counter("c").inc(-1)

    def test_instruments_are_create_or_get(self):
        metrics = RuntimeMetrics()
        assert metrics.counter("x") is metrics.counter("x")
        assert metrics.histogram("y") is metrics.histogram("y")


class TestForwardAccounting:
    def test_forwards_for(self):
        assert forwards_for(0, 512) == 0
        assert forwards_for(1, None) == 1
        assert forwards_for(512, 512) == 1
        assert forwards_for(513, 512) == 2

    def test_chunks_touched(self):
        # Rows [0, 5) of a chunk-4 flush span chunks 0 and 1.
        assert chunks_touched(0, 5, 4) == 2
        assert chunks_touched(4, 8, 4) == 1
        assert chunks_touched(3, 4, 4) == 1
        assert chunks_touched(2, 2, 4) == 0
        assert chunks_touched(0, 100, None) == 1


class TestAdmissionGate:
    def test_shed_when_full(self):
        gate = AdmissionGate(10, policy="shed")
        assert gate.acquire(8)
        assert not gate.acquire(5)
        assert gate.shed == 1
        gate.release(8)
        assert gate.acquire(5)

    def test_block_until_released(self):
        gate = AdmissionGate(10, policy="block", block_timeout=5.0)
        assert gate.acquire(9)
        admitted = []

        def second():
            admitted.append(gate.acquire(5))

        t = threading.Thread(target=second)
        t.start()
        t.join(0.05)
        assert t.is_alive(), "second submission should be waiting for room"
        gate.release(9)
        t.join(2.0)
        assert admitted == [True]
        assert gate.blocked == 1
        gate.release(5)
        assert gate.inflight_units == 0

    def test_block_timeout_raises(self):
        gate = AdmissionGate(4, policy="block", block_timeout=0.05)
        gate.acquire(4)
        with pytest.raises(RuntimeError, match="stalled"):
            gate.acquire(1)

    def test_oversized_submission_admitted_alone(self):
        gate = AdmissionGate(4, policy="block")
        assert gate.acquire(100)  # empty runtime: must run somewhere
        gate.release(100)
        gate = AdmissionGate(4, policy="shed")
        assert gate.acquire(100)

    def test_oversized_waiter_drains_instead_of_starving(self):
        """Small rounds must not be admitted past a waiting oversized plan."""
        gate = AdmissionGate(4, policy="block", block_timeout=5.0)
        assert gate.acquire(2)
        admitted = []
        oversized = threading.Thread(target=lambda: admitted.append(gate.acquire(100)))
        oversized.start()
        while gate._drain_waiters == 0:  # the big plan is now at the door
            pass
        # A small round that would normally fit (2 + 2 <= 4) must wait
        # behind the draining gate rather than keep inflight pinned > 0.
        small = threading.Thread(target=lambda: admitted.append(gate.acquire(2)))
        small.start()
        small.join(0.05)
        assert small.is_alive(), "small round was admitted past the oversized waiter"
        gate.release(2)  # runtime empties: the oversized plan goes first
        oversized.join(2.0)
        assert admitted == [True]
        gate.release(100)
        small.join(2.0)
        assert admitted == [True, True]
        gate.release(2)
        assert gate.inflight_units == 0

    def test_empty_runtime_still_held_for_a_drain_waiter(self):
        """A small round arriving at the exact moment the runtime empties
        must not jump ahead of a waiting oversized plan."""
        gate = AdmissionGate(4, policy="block")
        gate._drain_waiters = 1  # an oversized plan is at the door
        assert not gate._has_room(2)  # ordinary round: wait behind it
        assert gate._has_room(100)  # the oversized plan itself: admitted
        gate._drain_waiters = 0
        assert gate._has_room(2)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_inflight_units"):
            AdmissionGate(0)
        with pytest.raises(ValueError, match="policy"):
            AdmissionGate(10, policy="drop")


class TestMicroBatcher:
    def test_concurrent_submissions_coalesce_into_one_flush(self):
        model = FakeModel()
        batcher = MicroBatcher(
            "text", model.predict, max_batch_units=8, flush_deadline=2.0, chunk_size=None
        )
        try:
            results = [None, None]

            def submit(i):
                results[i] = batcher.submit(rows(4, value=i), rows(4, value=i))

            threads = [threading.Thread(target=submit, args=(i,)) for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(5.0)
            # 4 + 4 units hit the occupancy threshold: one flush, one forward.
            assert model.forwards == 1
            v0, f0 = results[0]
            v1, f1 = results[1]
            assert not v0.any() and v1.all()  # value-0 rows sum to 0
            assert f0 == f1 == 1  # both rode the same single chunk-forward
            snap = batcher.metrics.snapshot()
            assert snap["counters"]["flushes_total.text"] == 1
            assert snap["counters"]["units_total.text"] == 8
            assert snap["counters"]["forwards_saved_total.text"] == 1
            assert snap["histograms"]["submissions_per_flush.text"]["max"] == 2
            assert snap["histograms"]["batch_occupancy.text"]["max"] == 8
        finally:
            batcher.close()

    def test_deadline_flushes_a_lone_submission(self):
        model = FakeModel()
        batcher = MicroBatcher(
            "text", model.predict, max_batch_units=10_000, flush_deadline=0.01
        )
        try:
            verdicts, forwards = batcher.submit(rows(3), rows(3))
            assert verdicts.tolist() == [True, True, True]
            assert forwards == 1
            assert model.forwards == 1
        finally:
            batcher.close()

    def test_error_propagates_to_every_submitter(self):
        from repro.runtime import RuntimeFlushError

        def explode(observed, expected, chunk_size=None):
            raise ValueError("model bug")

        batcher = MicroBatcher("text", explode, max_batch_units=1, flush_deadline=0.0)
        try:
            # Typed per-submitter wrapper with the flush exception chained.
            with pytest.raises(RuntimeFlushError, match="model bug") as info:
                batcher.submit(rows(2), rows(2))
            assert isinstance(info.value.__cause__, ValueError)
            snap = batcher.metrics.snapshot()
            assert snap["counters"]["flush_errors.text"] == 1
        finally:
            batcher.close()

    def test_close_is_idempotent_and_rejects_new_submissions(self):
        batcher = MicroBatcher("text", FakeModel().predict)
        batcher.close()
        batcher.close()
        assert batcher.closed
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(rows(1), rows(1))

    def test_empty_submission_short_circuits(self):
        model = FakeModel()
        batcher = MicroBatcher("text", model.predict)
        try:
            verdicts, forwards = batcher.submit(rows(0), rows(0))
            assert len(verdicts) == 0 and forwards == 0
            assert model.forwards == 0
        finally:
            batcher.close()

    def test_row_count_mismatch_rejected(self):
        batcher = MicroBatcher("text", FakeModel().predict)
        try:
            with pytest.raises(ValueError, match="row mismatch"):
                batcher.submit(rows(2), rows(3))
        finally:
            batcher.close()


class TestValidationExecutor:
    def make(self, **kwargs) -> tuple:
        text, image = FakeModel(), FakeModel()
        defaults = dict(max_batch_units=4, flush_deadline_ms=1.0, chunk_size=None)
        defaults.update(kwargs)
        return ValidationExecutor(text, image, **defaults), text, image

    def test_predict_routes_per_kind(self):
        executor, text, image = self.make()
        with executor:
            verdicts, _ = executor.predict("text", rows(2), rows(2))
            assert verdicts.all()
            verdicts, _ = executor.predict("image", rows(3, 0.0), rows(3, 0.0))
            assert not verdicts.any()
            assert text.forwards == 1 and image.forwards == 1
        with pytest.raises(ValueError, match="unknown model kind"):
            self.make()[0].predict("audio", rows(1), rows(1))

    def test_shed_falls_back_to_inline_forward(self):
        executor, text, _ = self.make(max_inflight_units=2, admission="shed")
        with executor:
            release = threading.Event()

            def slow_predict(observed, expected, chunk_size=None):
                release.wait(5.0)
                return FakeModel().predict(observed, expected, chunk_size)

            executor._batchers["text"].predict_fn = slow_predict
            # Occupy the gate with a flush that cannot finish yet...
            occupant = threading.Thread(
                target=executor.predict, args=("text", rows(2), rows(2))
            )
            occupant.start()
            while executor.gate.inflight_units < 2:
                pass
            # ...so this submission sheds and runs inline — still correct.
            verdicts, forwards = executor.predict("text", rows(3), rows(3))
            release.set()
            occupant.join(5.0)
            assert verdicts.all() and forwards == 1
            assert executor.stats()["counters"]["sheds_total"] == 1

    def test_stats_aggregates_forwards(self):
        executor, _, _ = self.make()
        with executor:
            executor.predict("text", rows(2), rows(2))
            executor.predict("image", rows(2), rows(2))
            stats = executor.stats()
            assert stats["forwards_total"] == 2
            assert stats["counters"]["submissions_total.text"] == 1
            assert stats["counters"]["submissions_total.image"] == 1
            assert "queue_depth.text" in stats["gauges"]
        assert executor.closed

    def test_empty_rows_do_not_touch_the_gate(self):
        executor, text, _ = self.make(max_inflight_units=1)
        with executor:
            verdicts, forwards = executor.predict("text", rows(0), rows(0))
            assert len(verdicts) == 0 and forwards == 0
            assert text.forwards == 0

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ValidationExecutor(FakeModel(), FakeModel(), workers=0)
        with pytest.raises(ValueError, match="admission"):
            ValidationExecutor(FakeModel(), FakeModel(), admission="nope")


# -- parity: shared execution must be invisible in the verdicts -------------


def _render(seed: int):
    page = jotform_page(seed % 50)
    vspec = build_vspec(copy.deepcopy(page), f"rt-{seed}")
    machine = Machine(640, min(600, vspec.height))
    browser = Browser(
        machine, copy.deepcopy(page), stack=stack_registry()[seed % len(stack_registry())]
    )
    browser.paint()
    return vspec, machine


def _tamper(frame: np.ndarray, vspec, kind: str, rng) -> np.ndarray:
    if kind == "fill":
        y = int(rng.integers(0, max(frame.shape[0] - 30, 1)))
        x = int(rng.integers(0, max(frame.shape[1] - 60, 1)))
        frame = frame.copy()
        frame[y : y + 24, x : x + 48] = 120.0
    elif kind == "shift":
        frame = np.vstack([np.full((1, frame.shape[1]), vspec.background), frame[:-1]])
    return frame


def _validator(vspec, text_model, image_model, runtime=None) -> DisplayValidator:
    cache = DigestCache()
    return DisplayValidator(
        vspec,
        TextVerifier(text_model, batched=True, cache=cache.scoped("text"), runtime=runtime),
        ImageVerifier(image_model, batched=True, cache=cache.scoped("image"), runtime=runtime),
        runtime=runtime,
    )


def _assert_results_equal(shared, inline):
    assert shared.ok == inline.ok
    assert shared.offset_y == inline.offset_y
    assert shared.failures == inline.failures
    assert shared.entries_checked == inline.entries_checked
    assert shared.plan_text_units == inline.plan_text_units
    assert shared.plan_image_pairs == inline.plan_image_pairs
    assert shared.text_retry_rounds == inline.text_retry_rounds
    assert shared.text_invocations == inline.text_invocations
    assert shared.image_invocations == inline.image_invocations


class TestSharedInlineParity:
    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        tampers=st.lists(st.sampled_from(["none", "fill", "shift"]), min_size=2, max_size=3),
    )
    def test_concurrent_shared_sessions_match_inline(
        self, text_model, image_model, seed, tampers
    ):
        """N sessions' frames through one executor == each frame inline."""
        rng = np.random.default_rng(seed)
        frames = []
        for i, kind in enumerate(tampers):
            vspec, machine = _render(seed + i)
            frames.append((vspec, _tamper(machine.sample_framebuffer().pixels, vspec, kind, rng)))

        inline_results = [
            _validator(vspec, text_model, image_model).validate(frame)
            for vspec, frame in frames
        ]
        with ValidationExecutor(
            text_model, image_model, max_batch_units=64, flush_deadline_ms=1.0
        ) as executor:
            with ThreadPoolExecutor(max_workers=len(frames)) as pool:
                shared_results = list(
                    pool.map(
                        lambda pair: _validator(
                            pair[0], text_model, image_model, runtime=executor
                        ).validate(pair[1]),
                        frames,
                    )
                )
        for shared, inline in zip(shared_results, inline_results):
            _assert_results_equal(shared, inline)

    def test_shed_admission_keeps_verdicts_identical(self, text_model, image_model):
        """Overload shedding degrades coalescing, never correctness."""
        vspec, machine = _render(11)
        frame = machine.sample_framebuffer().pixels
        inline = _validator(vspec, text_model, image_model).validate(frame)
        with ValidationExecutor(
            text_model,
            image_model,
            max_inflight_units=1,  # absurdly tight: every round sheds or runs alone
            admission="shed",
            flush_deadline_ms=0.5,
        ) as executor:
            shared = _validator(vspec, text_model, image_model, runtime=executor).validate(frame)
        _assert_results_equal(shared, inline)


# -- service integration -----------------------------------------------------


def _drive(pair):
    index, client = pair
    user = HonestUser(client.browser)
    user.fill_text_input("recipient", f"ACC-{index}")
    user.fill_text_input("amount", str(10 + index))
    user.toggle_checkbox("confirm", True)
    return client.submit()


class TestServiceRuntime:
    def test_shared_config_requires_batched(self):
        with pytest.raises(ValueError, match="batched=True"):
            WitnessConfig(executor="shared")
        with pytest.raises(ValueError, match="executor"):
            WitnessConfig(executor="turbo")
        with pytest.raises(ValueError, match="runtime_admission"):
            WitnessConfig(batched=True, executor="shared", runtime_admission="drop")
        with pytest.raises(ValueError, match="runtime_max_batch_units"):
            WitnessConfig(batched=True, executor="shared", runtime_max_batch_units=0)
        with pytest.raises(ValueError, match="runtime_flush_deadline_ms"):
            WitnessConfig(batched=True, executor="shared", runtime_flush_deadline_ms=-1)
        with pytest.raises(ValueError, match="runtime_workers"):
            WitnessConfig(batched=True, executor="shared", runtime_workers=0)
        with pytest.raises(ValueError, match="runtime_max_inflight_units"):
            WitnessConfig(batched=True, executor="shared", runtime_max_inflight_units=0)

    def test_inline_service_never_builds_a_runtime(self, text_model, image_model):
        ca = CertificateAuthority()
        with WitnessService(
            ca, WitnessConfig(batched=True), text_model=text_model, image_model=image_model
        ) as service:
            session = service.open_session(Machine(640, 480))
            assert service.runtime is None
            stats = service.runtime_stats()
            assert stats["executor"] == "inline"
            assert stats["runtime"] is None
            assert stats["sessions"]["active"] == 1
            session.close()

    def test_runtime_stats_shape(self, text_model, image_model):
        site = WitnessedSite(
            config=WitnessConfig(batched=True, executor="shared"),
            text_model=text_model,
            image_model=image_model,
        )
        site.register_page("transfer", make_transfer_page())
        with site.service:
            client = site.connect("transfer")
            _drive((0, client))
            stats = site.service.runtime_stats()
            assert stats["executor"] == "shared"
            assert stats["sessions"] == {"active": 0, "total_opened": 1, "peak_active": 1}
            runtime = stats["runtime"]
            assert runtime["counters"]["submissions_total.text"] > 0
            assert runtime["forwards_total"] > 0
            assert runtime["forwards_saved_total"] >= 0
            assert "flush_wait_ms.text" in runtime["histograms"]
        # close() stops the executor but keeps its final counters readable.
        assert site.service.runtime is not None and site.service.runtime.closed
        after = site.service.runtime_stats()["runtime"]
        assert after["counters"] == runtime["counters"]

    def test_many_short_lived_shared_sessions(self, text_model, image_model):
        """Stress: a churn of short sessions through one shared runtime."""
        site = WitnessedSite(
            config=WitnessConfig(batched=True, executor="shared"),
            text_model=text_model,
            image_model=image_model,
        )
        site.register_page("transfer", make_transfer_page())
        with site.service:
            decisions = []
            for wave in range(3):  # short-lived: sessions open and die in waves
                clients = [site.connect("transfer") for _ in range(6)]
                with ThreadPoolExecutor(max_workers=6) as pool:
                    decisions.extend(pool.map(_drive, enumerate(clients)))
            assert all(d.certified for d in decisions), [d.reason for d in decisions]
            stats = site.service.runtime_stats()
            assert stats["sessions"] == {
                "active": 0,
                "total_opened": 18,
                "peak_active": 6,
            }
            runtime = stats["runtime"]
            assert runtime["counters"]["units_total.text"] > 0
            assert runtime["gauges"]["inflight_units"] == 0
            occupancy = runtime["histograms"]["batch_occupancy.text"]
            assert occupancy["count"] == runtime["counters"]["flushes_total.text"]

    def test_sessions_share_one_runtime_and_recreate_after_close(
        self, text_model, image_model
    ):
        ca = CertificateAuthority()
        config = WitnessConfig(batched=True, executor="shared")
        service = WitnessService(ca, config, text_model=text_model, image_model=image_model)
        first = service.session_runtime(config)
        assert service.session_runtime(config) is first
        service.close()
        assert first.closed
        second = service.session_runtime(config)
        assert second is not first and not second.closed
        service.close()


class TestRegistryStats:
    def test_stats_snapshot_is_consistent_under_churn(self):
        registry = SessionRegistry()

        class StubSession:
            id = 0

        def churn():
            for _ in range(200):
                session = StubSession()
                session.id = registry.register(session)
                snap = registry.stats()
                # A snapshot can never tear: every opened session is
                # either active or was active before this peak.
                assert snap["peak_active"] >= snap["active"]
                assert snap["total_opened"] >= snap["active"]
                registry.unregister(session)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        final = registry.stats()
        assert final == {"active": 0, "total_opened": 800, "peak_active": final["peak_active"]}
        assert registry.total_opened == 800
        assert 1 <= registry.peak_active <= 4
