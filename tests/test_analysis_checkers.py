"""witness-lint checker tests: each rule flags its historical bug shape.

The fixture tree under ``tests/analysis_fixtures/witnessfix`` mirrors the
``repro`` package layout (the analysis config is re-rooted onto it with
:meth:`AnalysisConfig.scoped_to`), with one module per checker containing
the exact shapes of the PR 3/4/5 incidents the rules descend from, plus
known-good twins that must stay silent.  Assertions are exact — rule IDs
*and* line numbers — so a checker that drifts (new false positive, lost
detection, off-by-one location) fails loudly.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.checkers import all_rules
from repro.analysis.core import AnalysisConfig
from repro.analysis.runner import run_analysis

FIXTURES = pathlib.Path(__file__).resolve().parent / "analysis_fixtures" / "witnessfix"


@pytest.fixture(scope="module")
def result():
    config = AnalysisConfig().scoped_to("witnessfix")
    return run_analysis([str(FIXTURES)], config=config, baseline=Baseline.empty())


def findings_for(result, filename):
    return sorted(
        (f.line, f.rule) for f in result.findings if f.path.endswith(filename)
    )


def test_fixture_tree_resolves(result):
    # 10 fixture modules + 5 __init__.py — nothing skipped, nothing doubled.
    assert result.modules_scanned == 15


def test_dtype_checker_flags_pr4_shapes(result):
    assert findings_for(result, "vision/bad_dtype.py") == [
        (7, "dtype-missing"),   # np.zeros without dtype=
        (11, "dtype-missing"),  # np.asarray over a float literal
        (15, "dtype-float64"),  # astype(np.float64)
        (19, "dtype-float64"),  # dtype=float
        (23, "dtype-float64"),  # dtype="float64"
    ]


def test_determinism_checker_flags_pr5_shapes(result):
    assert findings_for(result, "core/bad_det.py") == [
        (10, "det-wallclock"),     # time.time()
        (14, "det-unseeded-rng"),  # random.random()
        (18, "det-unseeded-rng"),  # legacy np.random.rand
        (22, "det-unseeded-rng"),  # default_rng() without a seed
        (36, "det-id-key"),        # the padded-expected cache bug shape
        (40, "det-set-order"),     # list({...}) order escape
    ]


def test_lock_checker_flags_pr3_registry_race(result):
    assert findings_for(result, "runtime/bad_locks.py") == [
        (15, "lock-guard"),  # self._total_opened += 1 outside the lock
        (18, "lock-guard"),  # self._sessions = {} outside the lock
    ]


def test_concurrency_checker_flags_cycle_and_blocking(result):
    assert findings_for(result, "runtime/bad_conc.py") == [
        (12, "conc-lock-cycle"),           # ab(): B under A
        (18, "conc-lock-cycle"),           # ba(): A under B — the other half
        (29, "conc-lock-cycle"),           # ab_via_call(): B via _take_b()
        (40, "conc-blocking-under-lock"),  # model forward under self._lock
        (44, "conc-blocking-under-lock"),  # time.sleep under self._lock
        (51, "conc-blocking-under-lock"),  # sleep reached via self._drain()
    ]


def test_cycle_message_names_the_call_chain(result):
    via = [
        f
        for f in result.findings
        if f.rule == "conc-lock-cycle" and f.line == 29
    ]
    assert len(via) == 1
    assert "_take_b" in via[0].message  # interprocedural edge shows its chain


def test_escape_checker_flags_stash_and_handoff(result):
    assert findings_for(result, "core/bad_escape.py") == [
        (15, "conc-escape"),  # row stored on self._keep
        (20, "conc-escape"),  # reshape view stored on self
        (23, "conc-escape"),  # Workspace.buf arena reservation stored on self
        (28, "conc-escape"),  # lambda over row passed to executor.submit
        (37, "conc-escape"),  # nested def over row passed to threading.Thread
    ]


def test_hotpath_checker_flags_decorated_function(result):
    assert findings_for(result, "nn/bad_hot.py") == [
        (10, "hot-alloc"),  # np.zeros
        (11, "hot-alloc"),  # np.matmul without out=
        (13, "hot-alloc"),  # .copy()
    ]


def test_hotpath_checker_honors_config_pins(result):
    # witnessfix/nn/infer.py's _ConvStage.run has no decorator; the
    # re-rooted config pin alone makes it hot.
    assert findings_for(result, "nn/infer.py") == [(8, "hot-alloc")]


def test_lifecycle_checker_flags_freeze_misuse(result):
    assert findings_for(result, "core/bad_frozen.py") == [
        (11, "frozen-save"),          # pickle.dumps(net) where net = freeze(...)
        (15, "frozen-save"),          # pickle.dumps(freeze(model))
        (22, "frozen-save"),          # serializer inside an is_frozen class
        (26, "frozen-config-write"),  # config.threshold = ...
        (30, "frozen-config-write"),  # object.__setattr__ bypass
    ]


def test_every_rule_has_fixture_coverage(result):
    fired = {f.rule for f in result.findings}
    fired.update(f.rule for f, _ in result.suppressed)
    assert fired == {rule.id for rule in all_rules()}


def test_known_good_twins_stay_silent(result):
    flagged_contexts = {f.context for f in result.findings}
    for clean in (
        "clean_zeros",
        "clean_asarray",
        "seeded_factory_ok",
        "sorted_ok",
        "Registry.snapshot",
        "Lockless.bump",
        "workspace_forward",
        "cold_helper",
        "persist_training_model_ok",
        "Matcher.wait_own_cond_ok",
        "Matcher.forward_outside_lock_ok",
        "Transport.local_use_ok",
        "Transport.copy_ok",
        "Transport.own_pool_ok",
    ):
        assert clean not in flagged_contexts


def test_pragma_suppresses_exactly_one_finding(result):
    reported = findings_for(result, "vision/pragma_case.py")
    # Three identical violations; the trailing pragma (line 5) and the
    # standalone pragma above line 9 each silence exactly their own line.
    assert reported == [(6, "dtype-missing")]
    suppressed = sorted(
        (f.line, f.rule)
        for f, _ in result.suppressed
        if f.path.endswith("pragma_case.py")
    )
    assert suppressed == [(5, "dtype-missing"), (9, "dtype-missing")]
    for _f, pragma in result.suppressed:
        assert pragma.used


def test_rule_catalog_is_documented():
    for rule in all_rules():
        assert rule.summary
        assert rule.incident, f"{rule.id} has no incident lineage"
        assert rule.hint, f"{rule.id} has no remediation hint"


def test_only_filter_restricts_rules():
    config = AnalysisConfig().scoped_to("witnessfix")
    res = run_analysis(
        [str(FIXTURES)],
        config=config,
        baseline=Baseline.empty(),
        only=["conc-lock-cycle", "conc-escape"],
    )
    fired = {f.rule for f in res.findings}
    assert fired == {"conc-lock-cycle", "conc-escape"}
    # The concurrency checker ran (it owns conc-lock-cycle) but its other
    # rule's findings were dropped post-check.
    assert not any(f.rule == "conc-blocking-under-lock" for f in res.findings)


def test_only_filter_rejects_unknown_rule():
    config = AnalysisConfig().scoped_to("witnessfix")
    with pytest.raises(ValueError, match="conc-typo"):
        run_analysis(
            [str(FIXTURES)],
            config=config,
            baseline=Baseline.empty(),
            only=["conc-typo"],
        )


def test_paths_restrict_the_scan():
    config = AnalysisConfig().scoped_to("witnessfix")
    res = run_analysis(
        [
            str(FIXTURES / "runtime" / "bad_conc.py"),
            str(FIXTURES / "core" / "planbuf.py"),
        ],
        config=config,
        baseline=Baseline.empty(),
    )
    assert res.modules_scanned == 2
    assert {f.rule for f in res.findings} == {
        "conc-lock-cycle",
        "conc-blocking-under-lock",
    }


def test_cli_only_and_paths_flags():
    import os
    import subprocess
    import sys

    repo_root = FIXTURES.parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    base = [sys.executable, "-m", "repro.analysis", "--no-baseline"]
    src_tree = str(repo_root / "src" / "repro")

    ok = subprocess.run(
        base + ["--only", "conc-lock-cycle,conc-escape", "--paths", src_tree],
        env=env,
        capture_output=True,
        text=True,
    )
    assert ok.returncode == 0, ok.stdout + ok.stderr

    typo = subprocess.run(
        base + ["--only", "no-such-rule", src_tree],
        env=env,
        capture_output=True,
        text=True,
    )
    assert typo.returncode == 2
    assert "no-such-rule" in typo.stderr
