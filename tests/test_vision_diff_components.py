"""Tests for frame differencing, connected components and Rect geometry."""

import numpy as np
import pytest

from repro.vision.components import Rect, bounding_rect, connected_components, find_rectangles
from repro.vision.diff import changed_regions, frame_difference
from repro.vision.image import Image


class TestRect:
    def test_basic_properties(self):
        r = Rect(2, 3, 4, 5)
        assert r.x2 == 6
        assert r.y2 == 8
        assert r.area == 20
        assert r.center == (4, 5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 5)

    def test_contains_and_intersects(self):
        outer = Rect(0, 0, 10, 10)
        inner = Rect(2, 2, 3, 3)
        disjoint = Rect(20, 20, 2, 2)
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.intersects(inner)
        assert not outer.intersects(disjoint)

    def test_touching_rects_do_not_intersect(self):
        assert not Rect(0, 0, 5, 5).intersects(Rect(5, 0, 5, 5))

    def test_intersection_and_union(self):
        a = Rect(0, 0, 6, 6)
        b = Rect(4, 4, 6, 6)
        inter = a.intersection(b)
        assert inter == Rect(4, 4, 2, 2)
        assert a.union(b) == Rect(0, 0, 10, 10)
        assert a.intersection(Rect(20, 20, 2, 2)) is None

    def test_translate_and_expand(self):
        r = Rect(5, 5, 4, 4)
        assert r.translated(-2, 3) == Rect(3, 8, 4, 4)
        assert r.expanded(2) == Rect(3, 3, 8, 8)

    def test_contains_point_boundary(self):
        r = Rect(1, 1, 3, 3)
        assert r.contains_point(1, 1)
        assert r.contains_point(3, 3)
        assert not r.contains_point(4, 4)


class TestConnectedComponents:
    def test_two_blobs(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[1:3, 1:3] = True
        mask[6:9, 5:8] = True
        rects = connected_components(mask)
        assert rects == [Rect(1, 1, 2, 2), Rect(5, 6, 3, 3)]

    def test_diagonal_connectivity(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = mask[1, 1] = True
        assert len(connected_components(mask, connectivity=8)) == 1
        assert len(connected_components(mask, connectivity=4)) == 2

    def test_empty_mask(self):
        assert connected_components(np.zeros((5, 5), dtype=bool)) == []

    def test_invalid_connectivity(self):
        with pytest.raises(ValueError):
            connected_components(np.zeros((2, 2), dtype=bool), connectivity=6)

    def test_bounding_rect(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[2, 3] = mask[5, 6] = True
        assert bounding_rect(mask) == Rect(3, 2, 4, 4)
        assert bounding_rect(np.zeros((3, 3), dtype=bool)) is None


class TestFindRectangles:
    def test_detects_hollow_outline(self):
        img = Image.blank(40, 30, 0.0)
        img.draw_border(5, 5, 30, 20, 255.0, thickness=2)
        mask = img.pixels > 128
        rects = find_rectangles(mask, min_width=10, min_height=10)
        assert rects == [Rect(5, 5, 30, 20)]

    def test_solid_blob_rejected(self):
        mask = np.zeros((30, 30), dtype=bool)
        mask[5:25, 5:25] = True
        assert find_rectangles(mask, min_width=5, min_height=5) == []

    def test_small_outline_filtered_by_min_size(self):
        img = Image.blank(20, 20, 0.0)
        img.draw_border(2, 2, 6, 6, 255.0)
        mask = img.pixels > 128
        assert find_rectangles(mask, min_width=10, min_height=10) == []


class TestFrameDiff:
    def test_identical_frames_no_regions(self):
        frame = np.random.default_rng(0).uniform(0, 255, (20, 20))
        assert changed_regions(frame, frame) == []

    def test_sub_threshold_noise_ignored(self):
        rng = np.random.default_rng(1)
        frame = rng.uniform(0, 255, (20, 20))
        noisy = frame + rng.uniform(-2, 2, frame.shape)
        assert changed_regions(frame, noisy, threshold=4.0) == []

    def test_localized_change_found(self):
        frame_a = np.full((40, 40), 255.0)
        frame_b = frame_a.copy()
        frame_b[10:15, 20:30] = 0.0
        regions = changed_regions(frame_a, frame_b, merge_radius=0)
        assert len(regions) == 1
        assert regions[0].rect == Rect(20, 10, 10, 5)
        assert regions[0].max_delta == 255.0

    def test_nearby_changes_merge(self):
        frame_a = np.full((40, 40), 255.0)
        frame_b = frame_a.copy()
        frame_b[10, 10] = 0.0
        frame_b[10, 14] = 0.0
        merged = changed_regions(frame_a, frame_b, merge_radius=3)
        assert len(merged) == 1
        separate = changed_regions(frame_a, frame_b, merge_radius=0)
        assert len(separate) == 2

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            frame_difference(np.zeros((4, 4)), np.zeros((5, 4)))
