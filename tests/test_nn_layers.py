"""Gradient checks and shape contracts for the NN layers.

Gradient checks run in float64 (the layers default to float32 for
training speed) and compare analytic backward passes against central
differences — including the gradient w.r.t. the *input*, which the
adversarial attacks depend on.
"""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.losses import bce_loss_with_logits, ce_loss_with_logits
from repro.nn.model import MatcherModel, Sequential
from repro.nn.tensorops import col2im, conv_output_size, im2col, one_hot


def _num_grad(fn, x, index, eps=1e-6):
    xp = x.copy()
    xp[index] += eps
    xm = x.copy()
    xm[index] -= eps
    return (fn(xp) - fn(xm)) / (2 * eps)


def _check_input_grad(net, x, loss_of):
    loss, grad_logits = loss_of(net.forward(x))
    dx = net.backward(grad_logits)
    rng = np.random.default_rng(0)
    for _ in range(6):
        index = tuple(int(rng.integers(0, s)) for s in x.shape)
        numeric = _num_grad(lambda xv: loss_of(net.forward(xv))[0], x, index)
        assert dx[index] == pytest.approx(numeric, abs=1e-5)


class TestTensorOps:
    def test_conv_output_size(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 2, 2, 0) == 16
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)

    def test_im2col_col2im_adjoint(self):
        # <im2col(x), y> == <x, col2im(y)> — the defining adjoint identity.
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 6, 6))
        col = im2col(x, kernel=3, stride=1, pad=1)
        y = rng.normal(size=col.shape)
        lhs = float((col * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 1, 1)).sum())
        assert lhs == pytest.approx(rhs)

    def test_one_hot(self):
        out = one_hot([0, 2], 3)
        assert out.shape == (2, 3)
        assert out[0, 0] == 1.0 and out[1, 2] == 1.0
        with pytest.raises(ValueError):
            one_hot([3], 3)
        with pytest.raises(ValueError):
            one_hot([[1]], 3)


class TestDense:
    def test_forward_shape_and_backward_grads(self):
        rng = np.random.default_rng(2)
        layer = Dense(5, 3, rng=rng, dtype=np.float64)
        x = rng.normal(size=(4, 5))
        out = layer.forward(x)
        assert out.shape == (4, 3)
        grad_out = rng.normal(size=(4, 3))
        dx = layer.backward(grad_out)
        assert dx.shape == x.shape
        assert layer.dw.shape == layer.w.shape
        # Analytic vs numeric weight gradient.
        loss = lambda: float((layer.forward(x) * grad_out).sum())
        idx = (2, 1)
        orig = layer.w[idx]
        layer.w[idx] = orig + 1e-6
        up = loss()
        layer.w[idx] = orig - 1e-6
        down = loss()
        layer.w[idx] = orig
        layer.forward(x)
        layer.backward(grad_out)
        assert layer.dw[idx] == pytest.approx((up - down) / 2e-6, rel=1e-4)

    def test_rejects_bad_shapes(self):
        layer = Dense(5, 3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((4, 6)))
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2).backward(np.zeros((1, 2)))


class TestConvNetGradients:
    def test_classifier_input_gradient(self):
        rng = np.random.default_rng(3)
        net = Sequential(
            [
                Conv2D(1, 2, kernel=3, pad=1, rng=rng, dtype=np.float64),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(2 * 4 * 4, 3, rng=rng, dtype=np.float64),
            ]
        )
        x = rng.normal(size=(2, 1, 8, 8))
        labels = np.asarray([0, 2])
        _check_input_grad(net, x, lambda z: ce_loss_with_logits(z, labels))

    def test_conv_weight_gradient(self):
        rng = np.random.default_rng(4)
        conv = Conv2D(2, 3, kernel=3, stride=1, pad=1, rng=rng, dtype=np.float64)
        x = rng.normal(size=(2, 2, 5, 5))
        grad_out_fixed = rng.normal(size=(2, 3, 5, 5))
        conv.forward(x)
        conv.backward(grad_out_fixed)
        analytic = conv.dw.copy()
        idx = (7, 1)
        orig = conv.w[idx]
        conv.w[idx] = orig + 1e-6
        up = float((conv.forward(x) * grad_out_fixed).sum())
        conv.w[idx] = orig - 1e-6
        down = float((conv.forward(x) * grad_out_fixed).sum())
        conv.w[idx] = orig
        assert analytic[idx] == pytest.approx((up - down) / 2e-6, rel=1e-4)

    def test_strided_conv_shapes(self):
        conv = Conv2D(1, 4, kernel=3, stride=2, pad=1)
        out = conv.forward(np.zeros((1, 1, 8, 8), dtype=np.float32))
        assert out.shape == (1, 4, 4, 4)

    def test_conv_rejects_wrong_channels(self):
        with pytest.raises(ValueError):
            Conv2D(2, 4).forward(np.zeros((1, 3, 8, 8)))


class TestPoolAndActivations:
    def test_maxpool_gradient_routing(self):
        x = np.asarray([[[[1.0, 2.0], [3.0, 4.0]]]])
        pool = MaxPool2D(2)
        out = pool.forward(x)
        assert out[0, 0, 0, 0] == 4.0
        dx = pool.backward(np.ones_like(out))
        assert dx[0, 0, 1, 1] == 1.0
        assert dx.sum() == 1.0

    def test_maxpool_tie_splitting_is_exact_adjoint(self):
        x = np.full((1, 1, 2, 2), 5.0)
        pool = MaxPool2D(2)
        out = pool.forward(x)
        dx = pool.backward(np.ones_like(out))
        assert dx.sum() == pytest.approx(1.0)

    def test_maxpool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(np.zeros((1, 1, 5, 4)))

    def test_relu_masks_negative(self):
        relu = ReLU()
        out = relu.forward(np.asarray([[-1.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 2.0]])
        dx = relu.backward(np.asarray([[5.0, 5.0]]))
        assert np.array_equal(dx, [[0.0, 5.0]])

    def test_flatten_round_trip(self):
        flat = Flatten()
        x = np.zeros((2, 3, 4, 4))
        out = flat.forward(x)
        assert out.shape == (2, 48)
        assert flat.backward(out).shape == x.shape


class TestMatcherGradients:
    def test_two_input_matcher_observed_gradient(self):
        rng = np.random.default_rng(5)
        obs_branch = Sequential(
            [
                Conv2D(1, 2, kernel=3, pad=1, rng=rng, dtype=np.float64),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(2 * 4 * 4, 6, rng=rng, dtype=np.float64),
                ReLU(),
            ]
        )
        exp_branch = Sequential([Dense(4, 6, rng=rng, dtype=np.float64), ReLU()])
        head = Sequential([Dense(12, 1, rng=rng, dtype=np.float64)])
        model = MatcherModel(obs_branch, exp_branch, head)
        observed = rng.normal(size=(2, 1, 8, 8))
        expected = one_hot([1, 3], 4)
        targets = np.asarray([[1.0], [0.0]])

        def loss_at(x):
            logits = model.forward(x, expected)
            loss, _ = bce_loss_with_logits(logits, targets)
            return loss

        logits = model.forward(observed, expected)
        _, grad = bce_loss_with_logits(logits, targets)
        d_obs, d_exp = model.backward(grad)
        assert d_exp.shape == expected.shape
        for _ in range(5):
            index = tuple(int(rng.integers(0, s)) for s in observed.shape)
            numeric = _num_grad(loss_at, observed, index)
            assert d_obs[index] == pytest.approx(numeric, abs=1e-6)

    def test_threshold_view_shares_parameters(self):
        from repro.nn.zoo import build_text_matcher

        model = build_text_matcher(seed=1)
        hard = model.with_threshold(0.99)
        assert hard.threshold == 0.99
        assert hard.head is model.head
        with pytest.raises(ValueError):
            model.with_threshold(1.0)

    def test_batch_mismatch_raises(self):
        from repro.nn.zoo import build_text_matcher

        model = build_text_matcher(seed=1)
        with pytest.raises(ValueError):
            model.forward(np.zeros((2, 1, 32, 32), dtype=np.float32), np.zeros((3, 94), dtype=np.float32))


class TestDtypeStability:
    """The hot path must stay in DEFAULT_DTYPE end to end (PR-4 satellite):
    no helper may silently upcast float32 inputs to float64, and float64
    gradient-check inputs must keep their precision."""

    def test_im2col_and_col2im_preserve_dtype(self):
        for dtype in (np.float32, np.float64):
            x = np.random.default_rng(0).random((2, 3, 8, 8)).astype(dtype)
            col = im2col(x, kernel=3, stride=1, pad=1)
            assert col.dtype == dtype
            back = col2im(col, x.shape, kernel=3, stride=1, pad=1)
            assert back.dtype == dtype

    def test_one_hot_defaults_to_default_dtype(self):
        from repro.nn.tensorops import DEFAULT_DTYPE

        assert one_hot([0, 1], 3).dtype == DEFAULT_DTYPE
        assert one_hot([0, 1], 3, dtype=np.float64).dtype == np.float64

    def test_losses_and_activations_preserve_dtype(self):
        from repro.nn.losses import binary_margin_loss, margin_loss, sigmoid, softmax

        for dtype in (np.float32, np.float64):
            z = np.random.default_rng(1).standard_normal((6, 4)).astype(dtype)
            assert sigmoid(z).dtype == dtype
            assert softmax(z).dtype == dtype
            loss, grad = ce_loss_with_logits(z, np.array([0, 1, 2, 3, 0, 1]))
            assert isinstance(loss, float) and grad.dtype == dtype
            zb = z[:, :1]
            loss, grad = bce_loss_with_logits(zb, np.ones_like(zb))
            assert isinstance(loss, float) and grad.dtype == dtype
            margin, grad = margin_loss(z, np.array([0, 1, 2, 3, 0, 1]))
            assert margin.dtype == dtype and grad.dtype == dtype
            margin, grad = binary_margin_loss(zb, np.ones(6))
            assert margin.dtype == dtype and grad.dtype == dtype

    def test_integer_logits_promote_to_float64(self):
        from repro.nn.losses import sigmoid

        assert sigmoid(np.array([0, 1, -1])).dtype == np.float64

    def test_layer_forwards_preserve_float32(self):
        rng = np.random.default_rng(2)
        net = Sequential(
            [
                Conv2D(1, 4, rng=rng),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(4 * 16 * 16, 8, rng=rng),
            ]
        )
        x = rng.random((2, 1, 32, 32), dtype=np.float32)
        out = x
        for layer in net.layers:
            out = layer.forward(out)
            assert out.dtype == np.float32, f"{type(layer).__name__} upcast to {out.dtype}"

    def test_matcher_probability_stays_float32(self):
        from repro.nn.zoo import build_text_matcher

        model = build_text_matcher(seed=3)
        obs = np.random.default_rng(4).random((3, 1, 32, 32), dtype=np.float32)
        exp = one_hot([0, 1, 2], 94)
        assert model.match_probability(obs, exp).dtype == np.float32
        assert model.match_probability(obs, exp, frozen=True).dtype == np.float32
