"""Security analysis integration tests (paper §V, Table I).

Every attack vector the paper analyzes must end in one of the two safe
outcomes: the request is *not certified* by vWitness, or the certified
request is *rejected by the server*.
"""

import numpy as np
import pytest

from repro.attacks.forgery import DishonestExtension, forge_request_body, tamper_request_field
from repro.attacks.pof_forgery import draw_caret_and_highlight, draw_second_outline
from repro.attacks.replay import ReplayAttacker
from repro.attacks.tamper import overlay_rectangle, swap_text_on_display
from repro.attacks.toctou import DisplayFlipper
from repro.crypto.keys import MeasuredState, SealedSigningKey, SealError, generate_signing_key
from repro.vision.components import Rect
from tests.conftest import TransferScenario, make_transfer_page


class TestRequestForgery:
    def test_forged_request_without_user_denied(self, scenario):
        """Scranos-style: malware submits with zero user interaction."""
        scenario.begin()
        body = forge_request_body(
            scenario.browser.page.form_values(),
            recipient="attacker-acct",
            amount="9999",
            session_id=scenario.vspec.session_id,
        )
        decision = scenario.end(body)
        assert not decision.certified
        # The bare request also fails at the server without certification.
        assert not scenario.server.accept_uncertified(body).ok

    def test_tampered_request_field_denied(self, scenario):
        """User fills honestly; malware rewrites the recipient at submit."""
        scenario.begin()
        scenario.honest_fill()
        body = tamper_request_field(scenario.submit_body(), "recipient", "attacker-acct")
        decision = scenario.end(body)
        assert not decision.certified
        assert "validation function" in decision.reason

    def test_malware_driven_browser_input_denied(self, scenario):
        """Malware types via the browser (no hardware interrupts)."""
        scenario.begin()
        field = scenario.browser.page.find_input("amount")
        from repro.web import layout as lay

        scenario.browser.click(*lay.input_box_rect(field).center)
        scenario.machine.clock.advance(40)
        scenario.browser.type_text("666")  # no record_hardware_io calls
        scenario.machine.clock.advance(600)
        decision = scenario.end()
        assert not decision.certified

    def test_amount_inflation_after_honest_entry_denied(self, scenario):
        """Page logic inflates the amount the honest user typed."""
        scenario.begin()
        scenario.honest_fill()
        body = scenario.submit_body()
        body["amount"] = "250000.00"
        decision = scenario.end(body)
        assert not decision.certified


class TestUITampering:
    def test_text_swap_detected(self, scenario):
        scenario.begin()
        scenario.user.fill_text_input("amount", "250.00")
        swap_text_on_display(scenario.machine, 24, 44, "Everything is fine", size=16)
        scenario.machine.clock.advance(1200)  # sampling observes the lie
        decision = scenario.end()
        assert not decision.certified

    def test_overlay_detected(self, scenario):
        scenario.begin()
        scenario.user.fill_text_input("amount", "1.00")
        overlay_rectangle(scenario.machine, 24, 60, 300, 60, color=250.0, text="Free gift")
        scenario.machine.clock.advance(1200)
        decision = scenario.end()
        assert not decision.certified

    def test_displayed_value_rewrite_detected(self, scenario):
        """Malware repaints the amount field with a different value."""
        from repro.web import layout as lay

        scenario.begin()
        scenario.user.fill_text_input("amount", "250.00")
        field = scenario.browser.page.find_input("amount")
        box = lay.input_box_rect(field)
        ox, oy = lay.text_origin_in_input(field)
        swap_text_on_display(
            scenario.machine, ox, oy, "999.99", size=field.text_size, background=252.0
        )
        scenario.machine.clock.advance(1200)
        decision = scenario.end()
        assert not decision.certified


class TestTOCTOU:
    def _frames(self, scenario):
        honest = scenario.machine.sample_framebuffer().pixels.copy()
        tampered = honest.copy()
        img = scenario.machine.framebuffer_handle()
        overlay_rectangle(scenario.machine, 24, 44, 400, 30, color=252.0, text="Send to attacker")
        tampered = scenario.machine.sample_framebuffer().pixels.copy()
        img.pixels[...] = honest
        return honest, tampered

    def test_display_flipping_caught_by_random_sampling(self, scenario):
        scenario.begin()
        honest, tampered = self._frames(scenario)
        flipper = DisplayFlipper(
            scenario.machine, honest, tampered, period_ms=400.0, tampered_fraction=0.5
        )
        flipper.drive(total_ms=4000.0)
        scenario.machine.framebuffer_handle().pixels[...] = honest
        decision = scenario.end(scenario.submit_body())
        assert not decision.certified

    def test_flipping_evades_periodic_sampling(self, text_model, image_model):
        """The ablation: periodic sampling CAN be dodged by synchronizing."""
        scenario = TransferScenario(
            text_model, image_model, periodic_sampling=True, sampler_seed=3
        )
        scenario.begin()
        honest, tampered = self._frames(scenario)
        # Attacker knows the 250ms period: shows tampered content only in
        # windows that never contain a multiple of 250ms.
        flipper = DisplayFlipper(
            scenario.machine, honest, tampered, period_ms=250.0,
            tampered_fraction=0.4, offset_ms=-145.0,
        )
        flipper.drive(total_ms=3000.0)
        scenario.machine.framebuffer_handle().pixels[...] = honest
        decision = scenario.end(scenario.submit_body())
        # Periodic sampling misses the tampered windows entirely.
        assert decision.certified, decision.reason


class TestDishonestExtension:
    def _scenario_with_evil_extension(self, text_model, image_model):
        scenario = TransferScenario.__new__(TransferScenario)
        from repro.core.session import install_vwitness
        from repro.crypto import CertificateAuthority
        from repro.server import WebServer
        from repro.web import Browser, HonestUser, Machine

        scenario.ca = CertificateAuthority()
        scenario.server = WebServer(scenario.ca)
        scenario.server.register_page("transfer", make_transfer_page())
        scenario.machine = Machine(640, 480)
        scenario.browser = Browser(scenario.machine, scenario.server.serve_page("transfer"))
        scenario.vwitness = install_vwitness(
            scenario.machine, scenario.ca, text_model=text_model, image_model=image_model, batched=True
        )
        scenario.extension = DishonestExtension(scenario.browser, scenario.server, scenario.vwitness)
        scenario.user = HonestUser(scenario.browser)
        scenario.vspec = None
        return scenario

    def test_forged_hint_for_untouched_field_denied(self, text_model, image_model):
        scenario = self._scenario_with_evil_extension(text_model, image_model)
        scenario.begin()
        scenario.user.fill_text_input("amount", "10")
        scenario.extension.forge_hint("recipient", "attacker-acct")
        scenario.user.toggle_checkbox("confirm", True)
        body = scenario.submit_body(recipient="attacker-acct")
        decision = scenario.end(body)
        assert not decision.certified

    def test_hint_value_override_denied(self, text_model, image_model):
        """Extension reports a different value than the user typed."""
        scenario = self._scenario_with_evil_extension(text_model, image_model)
        scenario.extension.value_overrides["amount"] = "99999"
        scenario.begin()
        scenario.user.fill_text_input("amount", "10")
        scenario.user.toggle_checkbox("confirm", True)
        body = scenario.submit_body(amount="99999")
        decision = scenario.end(body)
        assert not decision.certified

    def test_wrong_width_fails_viewport(self, text_model, image_model):
        scenario = self._scenario_with_evil_extension(text_model, image_model)
        scenario.extension.width_lie = 640  # page truly is 640...
        scenario.begin()
        # ...so lie the other way: narrow the page after VSPEC acquisition
        # is not possible in-model; instead check the server-side guard.
        with pytest.raises(ValueError):
            scenario.server.vspec_for("transfer", 800)

    def test_suppressed_hints_leave_inputs_untracked(self, text_model, image_model):
        scenario = self._scenario_with_evil_extension(text_model, image_model)
        scenario.extension.suppress_hints = True
        scenario.begin()
        scenario.user.fill_text_input("amount", "10")
        body = scenario.submit_body()
        decision = scenario.end(body)
        # vWitness tracked nothing, display shows "10" but tracked is "",
        # so either display validation or the validation function fails.
        assert not decision.certified


class TestPOFForgery:
    def test_second_outline_violates_consistency(self, scenario):
        scenario.begin()
        scenario.user.fill_text_input("amount", "10")
        from repro.web import layout as lay

        other = scenario.browser.page.find_input("recipient")
        box = lay.input_box_rect(other)
        draw_second_outline(
            scenario.machine,
            Rect(box.x, box.y - scenario.browser.scroll_y, box.w, box.h),
            Rect(box.x, box.y - scenario.browser.scroll_y + 60, box.w, box.h),
        )
        scenario.machine.clock.advance(900)
        decision = scenario.end()
        assert not decision.certified

    def test_caret_plus_highlight_violates_exclusivity(self, scenario):
        scenario.begin()
        scenario.user.fill_text_input("amount", "10")
        from repro.web import layout as lay

        field = scenario.browser.page.find_input("amount")
        box = lay.input_box_rect(field)
        vy = box.y - scenario.browser.scroll_y
        draw_caret_and_highlight(
            scenario.machine,
            caret_x=box.x2 - 12,
            caret_y=vy + 5,
            highlight=Rect(box.x + 30, vy + 8, 30, 14),
        )
        scenario.machine.clock.advance(900)
        decision = scenario.end()
        assert not decision.certified


class TestReplayAndCrypto:
    def test_replayed_request_rejected_by_server(self, scenario):
        scenario.begin()
        scenario.honest_fill()
        decision = scenario.end()
        assert decision.certified
        attacker = ReplayAttacker()
        attacker.capture(decision.request)
        assert scenario.server.verify(decision.request).ok
        replayed = scenario.server.verify(attacker.replay_last())
        assert not replayed.ok
        assert "replayed" in replayed.reason

    def test_replay_with_body_swap_breaks_signature(self, scenario):
        scenario.begin()
        scenario.honest_fill()
        decision = scenario.end()
        attacker = ReplayAttacker()
        attacker.capture(decision.request)
        swapped = attacker.replay_with_body_swap(amount="99999")
        result = scenario.server.verify(swapped)
        assert not result.ok
        assert "signature" in result.reason

    def test_tampered_stack_cannot_unseal(self):
        state = MeasuredState.measure({"vwitness-core": b"good"})
        sealed = SealedSigningKey(generate_signing_key(), state)
        rooted = state.with_tampered("vwitness-core", b"malicious")
        with pytest.raises(SealError):
            sealed.unseal(rooted)

    def test_session_with_tampered_stack_refuses_to_certify(self, text_model, image_model, scenario):
        scenario.begin()
        scenario.honest_fill()
        # Malware flips the measured state before submission.
        scenario.vwitness.submission.measured_state = (
            scenario.vwitness.submission.measured_state.with_tampered(
                "vwitness-core", b"patched"
            )
        )
        decision = scenario.end()
        assert not decision.certified
        assert "unsealing" in decision.reason
