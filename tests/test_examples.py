"""Smoke tests: every shipped example must run to completion.

The examples double as end-to-end acceptance tests — each asserts its own
security outcomes internally (honest runs certify, attacks are refused).
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)


def _run_example(name: str) -> None:
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "banking_attack.py", "voting_clickjacking.py", "fleet_simulation.py"],
)
def test_example_runs(script, text_model, image_model, monkeypatch):
    # Examples call the zoo themselves; models are already cached by the
    # session fixtures, so this exercises the real public entry points.
    _run_example(script)
