"""Unit tests for raster filtering, morphology and resampling."""

import numpy as np
import pytest

from repro.vision.ops import (
    box_blur,
    convolve2d,
    dilate,
    erode,
    gaussian_blur,
    gaussian_kernel,
    max_pool,
    resize_bilinear,
    resize_nearest,
    sobel_edges,
)


def _naive_correlate(img, ker):
    kh, kw = ker.shape
    ph, pw = kh // 2, kw // 2
    padded = np.pad(img, ((ph, kh - 1 - ph), (pw, kw - 1 - pw)))
    out = np.zeros_like(img, dtype=float)
    for y in range(img.shape[0]):
        for x in range(img.shape[1]):
            out[y, x] = np.sum(padded[y : y + kh, x : x + kw] * ker)
    return out


class TestConvolution:
    def test_matches_naive_implementation(self):
        rng = np.random.default_rng(1)
        img = rng.uniform(0, 255, (9, 11))
        ker = rng.normal(size=(3, 5))
        assert np.allclose(convolve2d(img, ker), _naive_correlate(img, ker))

    def test_identity_kernel(self):
        img = np.arange(20.0).reshape(4, 5)
        ker = np.zeros((3, 3))
        ker[1, 1] = 1.0
        assert np.allclose(convolve2d(img, ker), img)

    def test_rejects_non_2d_kernel(self):
        with pytest.raises(ValueError):
            convolve2d(np.zeros((4, 4)), np.zeros(3))


class TestBlurs:
    def test_gaussian_kernel_normalized_and_symmetric(self):
        ker = gaussian_kernel(1.0)
        assert ker.sum() == pytest.approx(1.0)
        assert np.allclose(ker, ker.T)
        with pytest.raises(ValueError):
            gaussian_kernel(0.0)

    def test_gaussian_blur_preserves_constant_images(self):
        img = np.full((10, 10), 42.0)
        assert np.allclose(gaussian_blur(img, 1.5), 42.0)

    def test_gaussian_blur_reduces_variance(self):
        rng = np.random.default_rng(2)
        img = rng.uniform(0, 255, (20, 20))
        assert gaussian_blur(img, 2.0).std() < img.std()

    def test_gaussian_blur_zero_sigma_is_identity(self):
        img = np.arange(16.0).reshape(4, 4)
        assert np.allclose(gaussian_blur(img, 0.0), img)

    def test_box_blur_mean_property(self):
        img = np.zeros((5, 5))
        img[2, 2] = 9.0
        out = box_blur(img, 1)
        assert out[2, 2] == pytest.approx(1.0)  # 9 / 9 pixels


class TestMorphology:
    def test_erode_shrinks_dilate_grows(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[3:6, 3:6] = True
        assert erode(mask, 1).sum() == 1
        assert dilate(mask, 1).sum() == 25

    def test_dilate_then_erode_recovers_solid_square(self):
        mask = np.zeros((12, 12), dtype=bool)
        mask[4:8, 4:8] = True
        assert np.array_equal(erode(dilate(mask, 1), 1), mask)


class TestResampling:
    def test_max_pool_blocks(self):
        img = np.arange(16.0).reshape(4, 4)
        out = max_pool(img, 2)
        assert out.shape == (2, 2)
        assert out[0, 0] == 5.0
        assert out[1, 1] == 15.0

    def test_max_pool_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            max_pool(np.zeros((4, 4)), 0)
        with pytest.raises(ValueError):
            max_pool(np.zeros((1, 1)), 2)

    def test_resize_nearest_shape_and_values(self):
        img = np.asarray([[0.0, 255.0]])
        out = resize_nearest(img, 2, 4)
        assert out.shape == (2, 4)
        assert out[0, 0] == 0.0
        assert out[0, 3] == 255.0

    def test_resize_bilinear_constant_invariance(self):
        img = np.full((5, 7), 33.0)
        assert np.allclose(resize_bilinear(img, 9, 13), 33.0)

    def test_resize_bilinear_identity(self):
        rng = np.random.default_rng(3)
        img = rng.uniform(0, 255, (6, 6))
        assert np.allclose(resize_bilinear(img, 6, 6), img, atol=1e-9)

    def test_resize_rejects_bad_target(self):
        with pytest.raises(ValueError):
            resize_nearest(np.zeros((4, 4)), 0, 4)
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((4, 4)), 4, -1)


class TestEdges:
    def test_sobel_flags_step_edge(self):
        img = np.zeros((8, 8))
        img[:, 4:] = 255.0
        edges = sobel_edges(img)
        assert edges[:, 3:5].max() > edges[:, 0].max()
