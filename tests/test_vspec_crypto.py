"""Tests for the VSPEC data model, validation functions, and crypto."""

import numpy as np
import pytest

from repro.crypto.ca import CertificateAuthority, CertificateError
from repro.crypto.keys import MeasuredState, SealedSigningKey, SealError, generate_signing_key
from repro.crypto.signing import SignatureError, canonical_body, sign_request, verify_request
from repro.vision.components import Rect
from repro.vspec.serialize import vspec_digest, vspec_from_payload, vspec_to_payload
from repro.vspec.spec import CharCell, ManifestEntry, VSpec
from repro.vspec.validation import (
    Constraint,
    ConstraintValidation,
    JsonMatchValidation,
    ValidationError,
    run_validation,
)


def _tiny_vspec(**overrides):
    kwargs = dict(
        page_id="p",
        width=40,
        height=60,
        expected=np.full((60, 40), 255.0),
        entries=[
            ManifestEntry(
                kind="text",
                rect=Rect(2, 2, 20, 10),
                chars=[CharCell(2, 2, 10, 10, "A")],
            ),
            ManifestEntry(kind="input", rect=Rect(2, 20, 30, 12), input_name="amount"),
        ],
        validation=JsonMatchValidation(fields=("amount",)),
        session_id="s1",
        extra_fields={"session_id": "s1"},
    )
    kwargs.update(overrides)
    return VSpec(**kwargs)


class TestVSpecModel:
    def test_shape_must_match(self):
        with pytest.raises(ValueError):
            _tiny_vspec(expected=np.zeros((10, 10)))

    def test_visible_entries(self):
        spec = _tiny_vspec()
        top = spec.visible_entries(Rect(0, 0, 40, 15))
        assert len(top) == 1 and top[0].kind == "text"
        assert len(spec.visible_entries(Rect(0, 0, 40, 60))) == 2

    def test_entry_for_input(self):
        spec = _tiny_vspec()
        assert spec.entry_for_input("amount").kind == "input"
        with pytest.raises(KeyError):
            spec.entry_for_input("other")

    def test_expected_region_bounds(self):
        spec = _tiny_vspec()
        region = spec.expected_region(Rect(0, 0, 10, 10))
        assert region.shape == (10, 10)
        with pytest.raises(ValueError):
            spec.expected_region(Rect(35, 55, 10, 10))

    def test_with_session_copies(self):
        spec = _tiny_vspec()
        fresh = spec.with_session("s2", {"session_id": "s2"})
        assert fresh.session_id == "s2"
        assert spec.session_id == "s1"
        assert fresh.entries is spec.entries

    def test_bad_entry_kind_rejected(self):
        with pytest.raises(ValueError):
            ManifestEntry(kind="hologram", rect=Rect(0, 0, 1, 1))


class TestValidationFunctions:
    def test_json_match_accepts_exact(self):
        spec = _tiny_vspec()
        assert run_validation(spec, {"amount": "5"}, {"amount": "5", "session_id": "s1"})

    def test_json_match_rejects_tampered_value(self):
        spec = _tiny_vspec()
        with pytest.raises(ValidationError, match="amount"):
            run_validation(spec, {"amount": "5"}, {"amount": "500", "session_id": "s1"})

    def test_json_match_rejects_missing_and_extra(self):
        spec = _tiny_vspec()
        with pytest.raises(ValidationError, match="missing"):
            run_validation(spec, {"amount": "5"}, {"session_id": "s1"})
        with pytest.raises(ValidationError, match="unexpected"):
            run_validation(
                spec, {"amount": "5"}, {"amount": "5", "bonus": "1", "session_id": "s1"}
            )

    def test_extra_fields_must_round_trip(self):
        spec = _tiny_vspec()
        with pytest.raises(ValidationError, match="session_id"):
            run_validation(spec, {"amount": "5"}, {"amount": "5", "session_id": "WRONG"})

    def test_constraint_validation_ops(self):
        spec = _tiny_vspec(
            validation=ConstraintValidation(
                constraints=(
                    Constraint("amount", "matches-observed"),
                    Constraint("amount", "numeric-max", 1000),
                    Constraint("amount", "nonempty"),
                    Constraint("currency", "in", ("USD", "EUR")),
                )
            )
        )
        body = {"amount": "250", "currency": "USD", "session_id": "s1"}
        assert run_validation(spec, {"amount": "250"}, body)
        with pytest.raises(ValidationError, match="exceeds"):
            run_validation(spec, {"amount": "2500"}, dict(body, amount="2500"))
        with pytest.raises(ValidationError, match="not in"):
            run_validation(spec, {"amount": "250"}, dict(body, currency="BTC"))
        with pytest.raises(ValidationError, match="not numeric"):
            run_validation(spec, {"amount": "abc"}, dict(body, amount="abc"))

    def test_unknown_constraint_op_rejected_at_build(self):
        with pytest.raises(ValueError):
            Constraint("a", "regex", ".*")

    def test_missing_validation_function(self):
        spec = _tiny_vspec(validation=None)
        with pytest.raises(ValidationError, match="no validation function"):
            run_validation(spec, {}, {"session_id": "s1"})


class TestVSpecSerialization:
    def test_digest_deterministic_and_session_sensitive(self):
        a = _tiny_vspec()
        b = _tiny_vspec()
        assert vspec_digest(a) == vspec_digest(b)
        c = _tiny_vspec(session_id="s2", extra_fields={"session_id": "s2"})
        assert vspec_digest(a) != vspec_digest(c)

    def test_digest_sensitive_to_expected_appearance(self):
        tampered_pixels = np.full((60, 40), 255.0)
        tampered_pixels[5, 5] = 0.0
        assert vspec_digest(_tiny_vspec()) != vspec_digest(_tiny_vspec(expected=tampered_pixels))

    def test_payload_round_trip(self):
        spec = _tiny_vspec()
        payload = vspec_to_payload(spec)
        rebuilt = vspec_from_payload(payload, spec.expected)
        assert vspec_digest(rebuilt) == vspec_digest(spec)
        assert rebuilt.entries[1].input_name == "amount"

    def test_payload_rejects_wrong_raster(self):
        spec = _tiny_vspec()
        payload = vspec_to_payload(spec)
        with pytest.raises(ValueError, match="digest"):
            vspec_from_payload(payload, np.zeros((60, 40)))


class TestSealing:
    def test_unseal_under_correct_state(self):
        state = MeasuredState.measure({"hv": b"xen", "core": b"v1"})
        key = generate_signing_key()
        sealed = SealedSigningKey(key, state)
        recovered = sealed.unseal(state)
        message = b"hello"
        key.public_key().verify(recovered.sign(message), message)

    def test_unseal_fails_after_component_tamper(self):
        state = MeasuredState.measure({"hv": b"xen", "core": b"v1"})
        sealed = SealedSigningKey(generate_signing_key(), state)
        evil = state.with_tampered("core", b"v1-with-rootkit")
        with pytest.raises(SealError):
            sealed.unseal(evil)

    def test_measurement_order_independent(self):
        a = MeasuredState.measure({"a": b"1", "b": b"2"})
        b = MeasuredState.measure({"b": b"2", "a": b"1"})
        assert a.digest() == b.digest()

    def test_tamper_unknown_component_raises(self):
        state = MeasuredState.measure({"a": b"1"})
        with pytest.raises(KeyError):
            state.with_tampered("zz", b"")


class TestCertificatesAndSignatures:
    def test_issue_and_verify(self):
        ca = CertificateAuthority()
        key = generate_signing_key()
        cert = ca.issue("client-7", key.public_key())
        ca.verify(cert)  # no exception

    def test_wrong_ca_rejected(self):
        ca1 = CertificateAuthority("ca-one")
        ca2 = CertificateAuthority("ca-two")
        cert = ca1.issue("c", generate_signing_key().public_key())
        with pytest.raises(CertificateError):
            ca2.verify(cert)

    def test_forged_certificate_rejected(self):
        ca = CertificateAuthority()
        cert = ca.issue("c", generate_signing_key().public_key())
        from dataclasses import replace

        forged = replace(cert, subject="admin")
        with pytest.raises(CertificateError):
            ca.verify(forged)

    def test_request_sign_verify_round_trip(self):
        ca = CertificateAuthority()
        key = generate_signing_key()
        cert = ca.issue("c", key.public_key())
        request = sign_request(key, {"amount": "5"}, "digest123", cert)
        verify_request(request, ca)  # no exception

    def test_body_tamper_breaks_signature(self):
        ca = CertificateAuthority()
        key = generate_signing_key()
        cert = ca.issue("c", key.public_key())
        request = sign_request(key, {"amount": "5"}, "digest123", cert)
        from dataclasses import replace

        tampered = replace(request, body={"amount": "5000"})
        with pytest.raises(SignatureError):
            verify_request(tampered, ca)
        rebound = replace(request, vspec_digest="other")
        with pytest.raises(SignatureError):
            verify_request(rebound, ca)

    def test_canonical_body_is_order_insensitive(self):
        assert canonical_body({"a": 1, "b": 2}) == canonical_body({"b": 2, "a": 1})
