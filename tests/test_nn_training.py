"""Losses, optimizers, training loops, datasets and serialization."""

import os

import numpy as np
import pytest

from repro.nn.data import (
    CHAR_TO_INDEX,
    chars_conflict,
    collapse_char,
    image_dataset,
    reference_text_dataset,
    text_dataset,
    ui_fragment,
)
from repro.nn.layers import Dense
from repro.nn.losses import (
    bce_loss_with_logits,
    binary_margin_loss,
    ce_loss_with_logits,
    margin_loss,
    sigmoid,
    softmax,
)
from repro.nn.model import Sequential
from repro.nn.optim import SGD, Adam
from repro.nn.serialize import load_model, save_model
from repro.nn.train import train_classifier, train_matcher
from repro.nn.zoo import build_text_matcher
from repro.raster.fonts import font_registry
from repro.raster.stacks import reference_stack, stack_registry


class TestLosses:
    def test_sigmoid_stable_at_extremes(self):
        assert sigmoid(np.asarray([1000.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.asarray([-1000.0]))[0] == pytest.approx(0.0)

    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.asarray([[1.0, 2.0, 3.0], [1000.0, 0.0, 0.0]]))
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert not np.any(np.isnan(probs))

    def test_bce_matches_closed_form(self):
        logits = np.asarray([[0.0]])
        loss, grad = bce_loss_with_logits(logits, np.asarray([[1.0]]))
        assert loss == pytest.approx(np.log(2.0))
        assert grad[0, 0] == pytest.approx(-0.5)

    def test_bce_gradient_numeric(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 1))
        targets = (rng.uniform(size=(5, 1)) > 0.5).astype(float)
        loss, grad = bce_loss_with_logits(logits, targets)
        eps = 1e-6
        bumped = logits.copy()
        bumped[2, 0] += eps
        up, _ = bce_loss_with_logits(bumped, targets)
        assert grad[2, 0] == pytest.approx((up - loss) / eps, rel=1e-3)

    def test_ce_gradient_numeric(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(4, 3))
        labels = np.asarray([0, 1, 2, 1])
        loss, grad = ce_loss_with_logits(logits, labels)
        eps = 1e-6
        bumped = logits.copy()
        bumped[1, 2] += eps
        up, _ = ce_loss_with_logits(bumped, labels)
        assert grad[1, 2] == pytest.approx((up - loss) / eps, rel=1e-3)

    def test_ce_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ce_loss_with_logits(np.zeros(4), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            ce_loss_with_logits(np.zeros((4, 2)), np.zeros(3, dtype=int))

    def test_margin_loss_sign(self):
        logits = np.asarray([[2.0, 0.0], [0.0, 2.0]])
        margins, grad = margin_loss(logits, np.asarray([0, 0]))
        assert margins[0] < 0  # already classified as target
        assert margins[1] > 0  # not yet
        assert grad[1, 0] == -1.0 and grad[1, 1] == 1.0

    def test_binary_margin_direction(self):
        logits = np.asarray([[-3.0]])
        margins, grad = binary_margin_loss(logits, np.asarray([1.0]))
        assert margins[0] == 3.0  # far from a positive verdict
        assert grad[0, 0] == -1.0  # increase logit to reduce margin


class TestOptimizers:
    def _quadratic_layer(self):
        layer = Dense(1, 1, dtype=np.float64)
        layer.w[...] = 5.0
        layer.b[...] = 0.0
        return layer

    def _step_convergence(self, make_optimizer, steps=200):
        layer = self._quadratic_layer()
        optimizer = make_optimizer(layer)
        x = np.ones((1, 1))
        for _ in range(steps):
            out = layer.forward(x)
            layer.backward(2 * out)  # d/dtheta (w x + b)^2
            optimizer.step()
        # The quadratic's minimum is the w + b = 0 line.
        return abs(float(layer.forward(x)[0, 0]))

    def test_sgd_converges_on_quadratic(self):
        assert self._step_convergence(lambda t: SGD(t, lr=0.05, momentum=0.5)) < 0.05

    def test_adam_converges_on_quadratic(self):
        assert self._step_convergence(lambda t: Adam(t, lr=0.1)) < 0.05

    def test_bad_lr_rejected(self):
        layer = self._quadratic_layer()
        with pytest.raises(ValueError):
            SGD(layer, lr=0.0)
        with pytest.raises(ValueError):
            Adam(layer, lr=-1.0)


class TestDatasets:
    def test_text_dataset_balanced_and_shaped(self):
        fonts = font_registry()[:1]
        obs, exp, labels = text_dataset(fonts, styles=("normal",), expansions=0, seed=3)
        assert obs.shape[1:] == (1, 32, 32)
        assert exp.shape[1] == 94
        assert labels.mean() == pytest.approx(0.5)
        assert obs.dtype == np.float32
        assert 0.0 <= obs.min() and obs.max() <= 1.0

    def test_text_dataset_requires_fonts(self):
        with pytest.raises(ValueError):
            text_dataset([], seed=0)

    def test_collapse_groups(self):
        assert collapse_char("S") == collapse_char("s")
        assert chars_conflict("0", "O")
        assert not chars_conflict("a", "b")
        assert collapse_char("q") == "q"

    def test_collapsed_negatives_avoid_ambiguous_pairs(self):
        fonts = font_registry()[:1]
        obs, exp, labels = text_dataset(
            fonts, styles=("normal",), chars="sSoO0", expansions=0, seed=4
        )
        # Every negative's expected char must not conflict with a charset
        # member that renders identically; spot-check via reconstruction.
        neg_idx = np.flatnonzero(labels < 0.5)
        chars = list("sSoO0")
        charset = sorted(CHAR_TO_INDEX, key=CHAR_TO_INDEX.get)
        for i, j in zip(neg_idx, range(len(neg_idx))):
            expected_char = charset[int(exp[i].argmax())]
            rendered_char = chars[(int(i) // 2) % len(chars)]
            assert not chars_conflict(expected_char, rendered_char)

    def test_image_dataset_shapes(self):
        obs, exp, labels = image_dataset(stacks=stack_registry()[:1], n_icons=3, n_patches=3, seed=5)
        assert obs.shape == exp.shape
        assert obs.shape[1:] == (1, 32, 32)
        assert set(np.unique(labels)) == {0.0, 1.0}
        # Per pool item: 1 identity positive, plus per stack 2 positives
        # (cross-stack + self) and 3 negatives => balanced at one stack.
        assert labels.mean() == pytest.approx(0.5, abs=0.02)

    def test_reference_text_dataset_labels(self):
        x, y = reference_text_dataset(font_registry()[:1], chars="ABC", seed=6)
        assert x.shape[0] == y.shape[0]
        assert set(np.unique(y)) <= set(CHAR_TO_INDEX.values())

    def test_ui_fragment_deterministic_structure(self):
        ref = reference_stack()
        a = ui_fragment(11, ref)
        b = ui_fragment(11, ref)
        assert np.array_equal(a, b)
        other_stack = stack_registry()[1]
        c = ui_fragment(11, other_stack)
        assert a.shape == c.shape == (32, 32)
        assert not np.array_equal(a, c)  # stack changes pixels


class TestTrainingLoops:
    def test_matcher_training_reduces_loss(self):
        fonts = font_registry()[:1]
        obs, exp, labels = text_dataset(fonts, styles=("normal",), chars="ABCDEFXYZkqw", expansions=1, seed=7)
        model = build_text_matcher(seed=7)
        report = train_matcher(model, obs, exp, labels, epochs=6, seed=7)
        assert report.losses[-1] < report.losses[0]
        assert report.final_accuracy > 0.7

    def test_classifier_training_reduces_loss(self):
        x, y = reference_text_dataset(font_registry()[:1], chars="ABCDE", seed=8)
        from repro.nn.zoo import build_text_reference

        model = build_text_reference(seed=8)
        report = train_classifier(model, x, y, epochs=5, seed=8)
        assert report.losses[-1] < report.losses[0]

    def test_misaligned_arrays_rejected(self):
        model = build_text_matcher(seed=9)
        with pytest.raises(ValueError):
            train_matcher(model, np.zeros((2, 1, 32, 32)), np.zeros((3, 94)), np.zeros(2))


class TestSerialization:
    def test_round_trip_preserves_predictions(self, tmp_path):
        model = build_text_matcher(seed=10)
        rng = np.random.default_rng(10)
        obs = rng.uniform(0, 1, (3, 1, 32, 32)).astype(np.float32)
        exp = np.eye(94, dtype=np.float32)[:3]
        before = model.match_probability(obs, exp)
        path = os.path.join(tmp_path, "m.npz")
        save_model(model, path)
        clone = build_text_matcher(seed=999)  # different init
        load_model(clone, path)
        after = clone.match_probability(obs, exp)
        assert np.allclose(before, after)

    def test_architecture_mismatch_rejected(self, tmp_path):
        from repro.nn.zoo import build_image_matcher

        path = os.path.join(tmp_path, "m.npz")
        save_model(build_text_matcher(seed=1), path)
        with pytest.raises(ValueError):
            load_model(build_image_matcher(seed=1), path)
