"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversarial.attacks import project, quantize
from repro.core.timing import SessionTiming, request_delay
from repro.nn.data import collapse_char
from repro.nn.losses import sigmoid, softmax
from repro.raster.glyphs import CHARSET
from repro.vision.components import Rect
from repro.vision.hashing import hamming_distance, region_digest
from repro.vision.match import normalized_cross_correlation
from repro.vspec.validation import Constraint, ConstraintValidation

rects = st.builds(
    Rect,
    x=st.integers(-50, 50),
    y=st.integers(-50, 50),
    w=st.integers(1, 60),
    h=st.integers(1, 60),
)

small_images = st.integers(0, 2**32 - 1).map(
    lambda seed: np.random.default_rng(seed).uniform(0, 255, (12, 12))
)


class TestRectAlgebra:
    @given(rects, rects)
    def test_intersection_symmetric_and_contained(self, a, b):
        inter_ab = a.intersection(b)
        inter_ba = b.intersection(a)
        assert inter_ab == inter_ba
        if inter_ab is not None:
            assert a.contains(inter_ab)
            assert b.contains(inter_ab)

    @given(rects, rects)
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains(a)
        assert union.contains(b)

    @given(rects, rects)
    def test_intersects_iff_intersection_exists(self, a, b):
        assert a.intersects(b) == (a.intersection(b) is not None)

    @given(rects, st.integers(-5, 10))
    def test_translation_preserves_area(self, r, d):
        assert r.translated(d, -d).area == r.area

    @given(rects, st.integers(0, 10))
    def test_expansion_contains_original(self, r, margin):
        assert r.expanded(margin).contains(r)


class TestVisionProperties:
    @given(small_images)
    def test_ncc_self_is_one(self, img):
        assert normalized_cross_correlation(img, img) == pytest.approx(1.0)

    @given(small_images, st.floats(0.2, 3.0), st.floats(-50, 50))
    def test_ncc_affine_invariance(self, img, gain, offset):
        assert normalized_cross_correlation(img, img * gain + offset) == pytest.approx(
            1.0, abs=1e-6
        )

    @given(small_images, small_images)
    def test_ncc_bounded(self, a, b):
        score = normalized_cross_correlation(a, b)
        assert -1.0 - 1e-9 <= score <= 1.0 + 1e-9

    @given(small_images)
    def test_digest_stable_under_copy(self, img):
        assert region_digest(img) == region_digest(img.copy())

    @given(small_images, st.integers(0, 11), st.integers(0, 11))
    def test_digest_changes_with_content(self, img, y, x):
        altered = img.copy()
        altered[y, x] = (altered[y, x] + 128.0) % 256.0
        assert region_digest(altered) != region_digest(img)

    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    def test_hamming_metric_axioms(self, a, b):
        assert hamming_distance(a, a) == 0
        assert hamming_distance(a, b) == hamming_distance(b, a)


class TestNNProperties:
    @given(st.lists(st.floats(-30, 30), min_size=1, max_size=16))
    def test_sigmoid_in_unit_interval(self, values):
        out = sigmoid(np.asarray(values))
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    @given(st.lists(st.floats(-30, 30), min_size=2, max_size=8))
    def test_softmax_is_distribution(self, row):
        probs = softmax(np.asarray([row]))
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0.0)

    @given(st.sampled_from(CHARSET))
    def test_collapse_idempotent(self, char):
        assert collapse_char(collapse_char(char)) == collapse_char(char)


class TestAttackProperties:
    @settings(max_examples=30)
    @given(
        st.integers(0, 2**32 - 1),
        st.floats(0.01, 0.6),
        st.sampled_from(["linf", "l2"]),
    )
    def test_projection_is_idempotent(self, seed, epsilon, norm):
        rng = np.random.default_rng(seed)
        x0 = rng.uniform(0, 1, (2, 1, 6, 6))
        x = x0 + rng.normal(0, 1, x0.shape)
        once = project(x, x0, epsilon, norm)
        twice = project(once, x0, epsilon, norm)
        assert np.allclose(once, twice, atol=1e-9)

    @settings(max_examples=30)
    @given(st.integers(0, 2**32 - 1))
    def test_quantize_idempotent_and_bounded(self, seed):
        x = np.random.default_rng(seed).normal(0.5, 1.0, (8,))
        q = quantize(x)
        assert np.allclose(quantize(q), q)
        assert q.min() >= 0.0 and q.max() <= 1.0


class TestTimingProperties:
    @settings(max_examples=40)
    @given(
        st.lists(st.floats(0.01, 2.0), min_size=1, max_size=10),
        st.floats(0.0, 2.0),
        st.floats(0.0, 0.5),
        st.floats(0.0, 30.0),
    )
    def test_delay_at_least_floor(self, frame_times, t_init, t_request, session):
        timing = SessionTiming(t_init=t_init, frame_times=frame_times, t_request=t_request)
        delay = request_delay(timing, session)
        assert delay >= frame_times[-1] + t_request - 1e-9

    @settings(max_examples=40)
    @given(
        st.lists(st.floats(0.01, 2.0), min_size=1, max_size=10),
        st.floats(0.0, 30.0),
        st.floats(0.1, 5.0),
    )
    def test_delay_non_increasing_in_session_length(self, frame_times, session, step):
        timing = SessionTiming(t_init=0.3, frame_times=frame_times, t_request=0.05)
        assert request_delay(timing, session) >= request_delay(timing, session + step) - 1e-9


class TestValidationProperties:
    @settings(max_examples=40)
    @given(
        st.dictionaries(
            st.text(alphabet="abcdef", min_size=1, max_size=6),
            st.text(alphabet="0123456789xyz", max_size=8),
            min_size=1,
            max_size=5,
        )
    )
    def test_matches_observed_accepts_iff_equal(self, fields):
        from repro.vspec.spec import VSpec
        import numpy as np

        spec = VSpec(
            page_id="p",
            width=4,
            height=4,
            expected=np.zeros((4, 4)),
            validation=ConstraintValidation(
                constraints=tuple(Constraint(k, "matches-observed") for k in fields)
            ),
        )
        from repro.vspec.validation import ValidationError, run_validation

        assert run_validation(spec, dict(fields), dict(fields))
        if fields:
            key = sorted(fields)[0]
            tampered = dict(fields)
            tampered[key] = tampered[key] + "_"
            with pytest.raises(ValidationError):
                run_validation(spec, dict(fields), tampered)
