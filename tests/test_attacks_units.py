"""Unit tests for the attack building blocks (repro.attacks)."""

import numpy as np
import pytest

from repro.attacks.forgery import forge_request_body, tamper_request_field
from repro.attacks.replay import ReplayAttacker
from repro.attacks.tamper import (
    inject_text_into_image,
    overlay_rectangle,
    redress_ui,
    shift_viewport_content,
    swap_text_on_display,
)
from repro.attacks.toctou import DisplayFlipper
from repro.vision.image import Image
from repro.web.hypervisor import Machine


class TestTamperPrimitives:
    def _machine(self):
        machine = Machine(100, 80)
        machine.write_framebuffer(Image.blank(100, 80, 255.0))
        return machine

    def test_swap_text_changes_pixels(self):
        machine = self._machine()
        before = machine.sample_framebuffer().pixels.copy()
        swap_text_on_display(machine, 10, 10, "XX", size=14)
        after = machine.sample_framebuffer().pixels
        assert np.abs(after - before).max() > 100.0
        with pytest.raises(ValueError):
            swap_text_on_display(machine, 100, 80, "Y", size=14)

    def test_overlay_covers_region(self):
        machine = self._machine()
        overlay_rectangle(machine, 10, 10, 40, 20, color=0.0)
        frame = machine.sample_framebuffer().pixels
        assert np.all(frame[10:30, 10:50] == 0.0)
        assert frame[5, 5] == 255.0

    def test_redress_requires_matching_size(self):
        machine = self._machine()
        with pytest.raises(ValueError):
            redress_ui(machine, Image.blank(50, 50))
        decoy = Image.blank(100, 80, 33.0)
        redress_ui(machine, decoy)
        assert np.all(machine.sample_framebuffer().pixels == 33.0)

    def test_inject_text_darkens_image(self):
        machine = self._machine()
        before = machine.sample_framebuffer().pixels.sum()
        inject_text_into_image(machine, 10, 10, 60, 20, "AD")
        assert machine.sample_framebuffer().pixels.sum() < before

    def test_shift_viewport(self):
        machine = self._machine()
        overlay_rectangle(machine, 0, 0, 100, 10, color=0.0)
        shift_viewport_content(machine, 20, fill=255.0)
        frame = machine.sample_framebuffer().pixels
        assert np.all(frame[20:30, :] == 0.0)
        assert np.all(frame[:20, :] == 255.0)


class TestForgeryHelpers:
    def test_forge_overrides(self):
        body = forge_request_body({"a": "1", "b": "2"}, b="evil")
        assert body == {"a": "1", "b": "evil"}

    def test_tamper_requires_existing_field(self):
        with pytest.raises(KeyError):
            tamper_request_field({"a": "1"}, "zz", "x")
        out = tamper_request_field({"a": "1"}, "a", "9")
        assert out["a"] == "9"


class TestDisplayFlipper:
    def test_phase_schedule(self):
        machine = Machine(4, 4)
        honest = np.zeros((4, 4))
        tampered = np.ones((4, 4))
        flipper = DisplayFlipper(machine, honest, tampered, period_ms=100, tampered_fraction=0.5)
        assert flipper.content_at(10.0) is tampered
        assert flipper.content_at(60.0) is honest
        assert flipper.evasion_probability() == pytest.approx(0.5)

    def test_drive_advances_clock_and_writes(self):
        machine = Machine(4, 4)
        honest = np.zeros((4, 4))
        tampered = np.full((4, 4), 9.0)
        flipper = DisplayFlipper(machine, honest, tampered, period_ms=40, tampered_fraction=0.5)
        flipper.drive(total_ms=200.0, step_ms=10.0)
        assert machine.clock.now() == pytest.approx(200.0)

    def test_validation(self):
        machine = Machine(4, 4)
        with pytest.raises(ValueError):
            DisplayFlipper(machine, np.zeros((4, 4)), np.zeros((5, 5)))
        with pytest.raises(ValueError):
            DisplayFlipper(machine, np.zeros((4, 4)), np.zeros((4, 4)), tampered_fraction=1.0)


class TestReplayAttacker:
    def test_capture_and_replay(self):
        attacker = ReplayAttacker()
        with pytest.raises(RuntimeError):
            attacker.replay_last()
        from repro.crypto.ca import CertificateAuthority
        from repro.crypto.keys import generate_signing_key
        from repro.crypto.signing import sign_request

        ca = CertificateAuthority()
        key = generate_signing_key()
        cert = ca.issue("c", key.public_key())
        request = sign_request(key, {"x": "1"}, "d1", cert)
        attacker.capture(request)
        assert attacker.replay_last() is request
        swapped = attacker.replay_with_body_swap(x="2")
        assert swapped.body["x"] == "2"
        assert swapped.signature == request.signature  # stale signature
        rebound = attacker.replay_with_stale_vspec("old-digest")
        assert rebound.vspec_digest == "old-digest"
