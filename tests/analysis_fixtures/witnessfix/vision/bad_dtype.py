"""Fixture: the PR 4 float64-leak shapes the dtype checker must flag."""

import numpy as np


def leaky_zeros():
    return np.zeros((4, 4))


def leaky_literal():
    return np.asarray([1.0, 2.0])


def explicit_double(x):
    return x.astype(np.float64)


def keyword_double():
    return np.zeros((2, 2), dtype=float)


def string_double():
    return np.empty((2, 2), dtype="float64")


def clean_zeros():
    return np.zeros((2, 2), dtype=np.float32)


def clean_asarray(values):
    return np.asarray(values)
