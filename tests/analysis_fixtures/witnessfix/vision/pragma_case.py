"""Fixture: an ``allow`` pragma suppresses exactly one finding."""

import numpy as np

SUPPRESSED = np.zeros((2, 2))  # witness-lint: allow[dtype-missing] -- fixture: exercising suppression
REPORTED = np.zeros((2, 2))

# witness-lint: allow[dtype-missing] -- fixture: standalone pragma covers the next line
ALSO_SUPPRESSED = np.zeros((2, 2))
