"""Fixture: pooled-row confinement escapes (stash-on-self, thread handoff)."""

import threading

from witnessfix.core.planbuf import thread_pool


class Transport:
    def __init__(self):
        self._keep = None

    def stash(self):
        pool = thread_pool()
        row = pool.reserve((4, 4))
        self._keep = row

    def stash_view(self):
        pool = thread_pool()
        row = pool.reserve((4, 4))
        self._keep = row.reshape(16)

    def stash_workspace(self, ws):
        self._scratch = ws.buf("x", (8,))

    def handoff_lambda(self, executor):
        pool = thread_pool()
        row = pool.reserve((4, 4))
        executor.submit(lambda: row.sum())

    def handoff_thread(self):
        pool = thread_pool()
        row = pool.reserve((4, 4))

        def worker():
            return row.sum()

        threading.Thread(target=worker).start()

    def local_use_ok(self):
        pool = thread_pool()
        row = pool.reserve((4, 4))
        return row

    def copy_ok(self):
        pool = thread_pool()
        row = pool.reserve((4, 4))
        self._keep = row.copy()

    def own_pool_ok(self):
        self.buffers = thread_pool()
