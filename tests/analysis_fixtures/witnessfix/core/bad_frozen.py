"""Fixture: frozen-lifecycle violations (PR 4 freeze semantics)."""

import pickle

from repro.core.service import WitnessConfig
from repro.nn.infer import freeze


def persist_frozen_local(model):
    net = freeze(model)
    return pickle.dumps(net)


def persist_frozen_direct(model):
    return pickle.dumps(freeze(model))


class FrozenNetLike:
    is_frozen = True

    def dump(self):
        return pickle.dumps(self)


def tweak(config: WitnessConfig):
    config.threshold = 0.99


def sneaky(config: WitnessConfig):
    object.__setattr__(config, "threshold", 0.99)


def persist_training_model_ok(model, fh):
    pickle.dump(model, fh)
