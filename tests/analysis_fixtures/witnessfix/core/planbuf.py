"""Fixture stub: the pooled-buffer factory ``conc-escape`` taints from.

The re-rooted config maps ``repro.core.planbuf.thread_pool`` to this
module, so ``bad_escape.py`` can import a resolvable pool source.
"""


class _Pool:
    def reserve(self, shape):
        return [0.0] * 4


def thread_pool():
    return _Pool()
