"""Fixture: the PR 5 nondeterminism shapes the determinism checker must flag."""

import random
import time

import numpy as np


def wallclock_stamp():
    return time.time()


def global_draw():
    return random.random()


def legacy_draw():
    return np.random.rand(3)


def unseeded_factory():
    return np.random.default_rng()


def seeded_factory_ok(seed):
    return np.random.default_rng(seed)


class PaddedCache:
    """The PR 5 padded-expected cache bug: keyed on ``id()``."""

    def __init__(self):
        self._cache = {}

    def lookup(self, arr):
        return self._cache[id(arr)]


def ordered_escape(items):
    return list({item for item in items})


def sorted_ok(items):
    return sorted({item for item in items})
