"""Fixture: the PR 3 SessionRegistry torn-write shape."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._sessions = {}
        self._total_opened = 0

    def register(self, key, session):
        with self._lock:
            self._sessions[key] = session
        self._total_opened += 1

    def reset(self):
        self._sessions = {}

    def snapshot(self):
        with self._lock:
            return dict(self._sessions)


class Lockless:
    """No lock owned: writes are not this rule's business."""

    def __init__(self):
        self._count = 0

    def bump(self):
        self._count += 1
