"""Fixture: lock-order cycle and blocking-under-lock shapes (PR 9 era)."""

import threading
import time

_A = threading.Lock()
_B = threading.Lock()


def ab():
    with _A:
        with _B:
            pass


def ba():
    with _B:
        with _A:
            pass


def _take_b():
    with _B:
        pass


def ab_via_call():
    with _A:
        _take_b()


class Matcher:
    def __init__(self, model):
        self._lock = threading.Lock()
        self._cond = threading.Condition()
        self.model = model

    def forward_under_lock(self, x):
        with self._lock:
            return self.model.predict(x)

    def sleep_under_lock(self):
        with self._lock:
            time.sleep(0.1)

    def _drain(self):
        time.sleep(0.01)

    def flush_under_lock(self):
        with self._lock:
            self._drain()

    def wait_own_cond_ok(self):
        with self._cond:
            self._cond.wait()

    def forward_outside_lock_ok(self, x):
        with self._lock:
            payload = x
        return self.model.predict(payload)
