"""Fixture: a config-pinned hot function (no decorator needed)."""

import numpy as np


class _ConvStage:
    def run(self, x, ws):
        cols = np.empty((4, 4), dtype=np.float32)
        return cols
