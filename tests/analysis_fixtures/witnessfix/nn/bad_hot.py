"""Fixture: allocations inside a ``@hot_path`` function."""

import numpy as np

from repro.analysis import hot_path


@hot_path
def fused_forward(x):
    scratch = np.zeros(x.shape, dtype=np.float32)
    y = np.matmul(x, x)
    scratch += y
    return scratch.copy()


@hot_path
def workspace_forward(x, out):
    np.matmul(x, x, out=out)
    return out


def cold_helper(x):
    return np.stack([x, x])
