"""Tests for the glyph rasterizer, fonts, rendering stacks, text and icons."""

import numpy as np
import pytest

from repro.raster.fonts import FontFace, default_font, font_registry, sans_serif_fonts, serif_fonts
from repro.raster.glyphs import CHARSET, clear_glyph_cache, glyph_strokes, render_glyph
from repro.raster.icons import icon_names, icon_with_text, natural_patch, render_icon, rotate_icon_90
from repro.raster.stacks import make_random_stack, reference_stack, stack_by_name, stack_registry
from repro.raster.text import char_advance, layout_text, measure_text, render_char_tile, render_text_line
from repro.vision.match import normalized_cross_correlation


class TestGlyphs:
    def test_all_94_characters_have_strokes(self):
        assert len(CHARSET) == 94
        for char in CHARSET:
            assert glyph_strokes(char), f"no strokes for {char!r}"

    def test_space_has_no_strokes(self):
        assert glyph_strokes(" ") == []

    def test_render_produces_ink_for_every_character(self):
        for char in CHARSET:
            tile = render_glyph(char, 32)
            assert tile.shape == (32, 32)
            assert tile.pixels.min() < 100.0, f"{char!r} rendered blank"
            assert tile.pixels.max() > 200.0

    def test_distinct_characters_render_distinctly(self):
        # Key confusable pairs must stay separable at the pixel level.
        for a, b in [("i", "l"), ("O", "Q"), ("E", "F"), ("5", "S"), ("1", "7")]:
            ta = render_glyph(a, 32).pixels
            tb = render_glyph(b, 32).pixels
            assert np.abs(ta - tb).mean() > 2.0, f"{a!r} vs {b!r} too similar"

    def test_weight_increases_ink(self):
        light = render_glyph("H", 32, weight=0.8).pixels
        bold = render_glyph("H", 32, weight=1.6).pixels
        assert bold.sum() < light.sum()  # more ink = darker = lower sum

    def test_slant_moves_top_of_stem(self):
        upright = render_glyph("l", 32).pixels
        italic = render_glyph("l", 32, slant=0.25).pixels
        top_col_upright = np.argmin(upright[6])
        top_col_italic = np.argmin(italic[6])
        assert top_col_italic > top_col_upright

    def test_serif_adds_ink_to_stems(self):
        plain = render_glyph("l", 32, serif=False).pixels
        seriffed = render_glyph("l", 32, serif=True).pixels
        assert seriffed.sum() < plain.sum()

    def test_subpixel_shift_changes_pixels(self):
        a = render_glyph("o", 32).pixels
        b = render_glyph("o", 32, dx=0.5).pixels
        assert not np.allclose(a, b)

    def test_space_renders_blank(self):
        tile = render_glyph(" ", 16)
        assert np.all(tile.pixels == 255.0)

    def test_unknown_character_raises(self):
        with pytest.raises(KeyError):
            glyph_strokes("é")

    def test_cache_hit_on_repeat_render(self):
        clear_glyph_cache()
        render_glyph("A", 32)
        from repro.raster.glyphs import glyph_cache_info

        before = glyph_cache_info().hits
        render_glyph("A", 32)
        assert glyph_cache_info().hits == before + 1


class TestFonts:
    def test_registry_is_deterministic_and_distinct(self):
        reg1 = font_registry()
        reg2 = font_registry()
        assert len(reg1) == 231
        assert [f.name for f in reg1] == [f.name for f in reg2]
        assert len({f.name for f in reg1}) == 231

    def test_half_serif_split(self):
        registry = font_registry()
        serif_count = sum(1 for f in registry if f.serif)
        assert abs(serif_count - len(registry) / 2) <= 1

    def test_styles(self):
        face = default_font()
        bold = face.styled("bold")
        italic = face.styled("italic")
        assert bold.weight > face.weight
        assert italic.slant > face.slant
        assert face.styled("normal") is face
        with pytest.raises(ValueError):
            face.styled("condensed")

    def test_serif_sans_helpers(self):
        assert all(f.serif for f in serif_fonts(5))
        assert not any(f.serif for f in sans_serif_fonts(5))

    def test_registry_rejects_bad_count(self):
        with pytest.raises(ValueError):
            font_registry(count=0)


class TestStacks:
    def test_named_registry_lookup(self):
        for stack in stack_registry():
            assert stack_by_name(stack.name) == stack
        with pytest.raises(KeyError):
            stack_by_name("lynx-msdos")

    def test_random_stack_deterministic(self):
        assert make_random_stack(7) == make_random_stack(7)
        assert make_random_stack(7) != make_random_stack(8)

    def test_stacks_change_pixels_but_not_structure(self):
        ref = render_char_tile("R", 32, stack=reference_stack()).pixels
        for stack in stack_registry():
            tile = render_char_tile("R", 32, stack=stack).pixels
            assert np.abs(tile - ref).mean() > 0.1  # pixel-level variation...
            assert normalized_cross_correlation(tile, ref) > 0.8  # ...same structure

    def test_noise_is_deterministic(self):
        stack = stack_registry()[2]
        a = render_char_tile("x", 32, stack=stack).pixels
        b = render_char_tile("x", 32, stack=stack).pixels
        assert np.array_equal(a, b)


class TestTextLayout:
    def test_measure_matches_layout(self):
        text = "Hello world"
        w, h = measure_text(text, 16)
        cells = layout_text(text, 16)
        assert h == 16
        assert cells[-1].x + cells[-1].w == w
        assert len(cells) == len(text)

    def test_advance_positive_and_monotone(self):
        assert char_advance(13) >= 4
        assert char_advance(32) > char_advance(13)

    def test_render_text_line_geometry(self):
        line = render_text_line("AB", 16)
        assert line.height == 16
        assert line.width == 2 * char_advance(16)

    def test_empty_text_has_min_width(self):
        assert render_text_line("", 16).width >= 1

    def test_text_line_is_darker_where_glyphs_are(self):
        line = render_text_line("##", 16)
        assert line.pixels.min() < 80.0


class TestIcons:
    def test_all_icons_render(self):
        for name in icon_names():
            tile = render_icon(name, 32)
            assert tile.shape == (32, 32)
            assert tile.pixels.min() < 150.0

    def test_unknown_icon_raises(self):
        with pytest.raises(KeyError):
            render_icon("flux-capacitor")

    def test_natural_patch_deterministic_and_textured(self):
        a = natural_patch(42).pixels
        b = natural_patch(42).pixels
        assert np.array_equal(a, b)
        assert a.std() > 10.0
        assert not np.array_equal(a, natural_patch(43).pixels)

    def test_icon_with_text_darkens_icon(self):
        base = render_icon("home", 32).pixels
        tampered = icon_with_text("home", "OK", 32).pixels
        assert tampered.sum() < base.sum()
        with pytest.raises(ValueError):
            icon_with_text("home", "")

    def test_rotation_changes_layout(self):
        icon = render_icon("arrow-right", 32)
        rotated = rotate_icon_90(icon)
        assert rotated.shape == (32, 32)
        assert not np.allclose(rotated.pixels, icon.pixels)
