"""Shared fixtures: trained models (disk-cached) and a reference scenario."""

from __future__ import annotations

import pytest

from repro.crypto import CertificateAuthority
from repro.server import WebServer
from repro.web import (
    Browser,
    Button,
    Checkbox,
    HonestUser,
    Machine,
    Page,
    RadioGroup,
    ScrollableList,
    SelectBox,
    TextBlock,
    TextInput,
)
from repro.web.extension import BrowserExtension


@pytest.fixture(scope="session")
def text_model():
    from repro.nn.zoo import get_text_model

    return get_text_model("base")


@pytest.fixture(scope="session")
def image_model():
    from repro.nn.zoo import get_image_model

    return get_image_model()


def make_transfer_page() -> Page:
    """The running example: a wire-transfer form with every widget type."""
    return Page(
        title="Wire Transfer",
        width=640,
        elements=[
            TextBlock("Transfer funds to another account", 16),
            TextInput("recipient", label="Recipient account"),
            TextInput("amount", label="Amount USD", max_length=10),
            Checkbox("confirm", "I confirm this transfer"),
            RadioGroup("speed", ["Standard", "Express"]),
            SelectBox("currency", ["USD", "EUR", "CAD"]),
            Button("Transfer", action="submit"),
        ],
    )


class TransferScenario:
    """A wired-up client/server/vWitness test bench."""

    def __init__(self, text_model, image_model, display=(640, 480), **vw_kwargs):
        from repro.core.session import install_vwitness

        self.ca = CertificateAuthority()
        self.server = WebServer(self.ca)
        self.server.register_page("transfer", make_transfer_page())
        self.machine = Machine(*display)
        self.browser = Browser(self.machine, self.server.serve_page("transfer"))
        vw_kwargs.setdefault("batched", True)
        self.vwitness = install_vwitness(
            self.machine, self.ca, text_model=text_model, image_model=image_model, **vw_kwargs
        )
        self.extension = BrowserExtension(self.browser, self.server, self.vwitness)
        self.user = HonestUser(self.browser)
        self.vspec = None

    def begin(self):
        self.vspec = self.extension.acquire_vspecs("transfer")
        self.browser.paint()
        self.extension.begin_session()
        return self.vspec

    def honest_fill(self):
        self.user.fill_text_input("recipient", "ACC-998877")
        self.user.fill_text_input("amount", "250.00")
        self.user.toggle_checkbox("confirm", True)

    def submit_body(self, **overrides):
        body = dict(self.browser.page.form_values())
        body["session_id"] = self.vspec.session_id
        body.update(overrides)
        return body

    def end(self, body=None):
        return self.extension.end_session(body if body is not None else self.submit_body())


@pytest.fixture
def scenario(text_model, image_model):
    return TransferScenario(text_model, image_model)
