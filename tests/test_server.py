"""Tests for VSPEC generation, the compat script and server verification."""

import numpy as np
import pytest

from repro.crypto import CertificateAuthority
from repro.crypto.keys import generate_signing_key
from repro.crypto.signing import sign_request
from repro.server.compat import apply_compat_fixes, apply_compat_fixes_html, check_compatibility
from repro.server.generate import build_vspec
from repro.server.webserver import WebServer
from repro.vision.components import Rect
from repro.vspec.serialize import vspec_digest
from repro.web.elements import (
    Button,
    Checkbox,
    FileInput,
    IFrame,
    Page,
    RadioGroup,
    ScrollableList,
    SelectBox,
    TextBlock,
    TextInput,
    VideoElement,
)
from repro.web.html import page_to_html


def _rich_page():
    return Page(
        title="Order",
        width=640,
        elements=[
            TextBlock("Complete your order below", 14),
            TextInput("qty", label="Quantity"),
            Checkbox("gift", "Gift wrap"),
            RadioGroup("ship", ["Ground", "Air"]),
            SelectBox("size", ["S", "M", "L"]),
            ScrollableList("store", ["North", "South", "East", "West"], visible_rows=2),
            Button("Buy now"),
        ],
    )


class TestVSpecGeneration:
    def test_manifest_covers_every_element(self):
        vspec = build_vspec(_rich_page(), "order")
        kinds = [e.kind for e in vspec.entries]
        assert kinds.count("input") == 1
        assert kinds.count("checkbox") == 1
        assert kinds.count("radio") == 1
        assert kinds.count("select") == 1
        assert kinds.count("scroll-v") == 1
        assert kinds.count("button") == 1
        assert kinds.count("text") >= 5  # title, paragraph, labels, options

    def test_char_cells_sit_on_rendered_ink(self):
        vspec = build_vspec(_rich_page(), "order")
        for entry in vspec.entries:
            for cell in entry.chars:
                region = vspec.expected[cell.y : cell.y + cell.h, cell.x : cell.x + cell.w]
                assert region.min() < 200.0, f"cell {cell} has no ink"

    def test_state_appearances_complete(self):
        vspec = build_vspec(_rich_page(), "order")
        checkbox = vspec.entry_for_input("gift")
        assert set(checkbox.state_appearances) == {"on", "off"}
        radio = vspec.entry_for_input("ship")
        assert set(radio.state_appearances) == {"", "Ground", "Air"}
        select = vspec.entry_for_input("size")
        assert set(select.state_appearances) == {"S", "M", "L"}
        assert checkbox.initial_value == "off"
        assert select.initial_value == "S"

    def test_state_appearances_differ_between_states(self):
        vspec = build_vspec(_rich_page(), "order")
        checkbox = vspec.entry_for_input("gift")
        on = checkbox.state_appearances["on"]
        off = checkbox.state_appearances["off"]
        assert np.abs(on - off).max() > 50.0

    def test_nested_spec_for_scrollable(self):
        vspec = build_vspec(_rich_page(), "order")
        entry = vspec.entry_for_input("store")
        nested = vspec.nested[entry.nested_id]
        assert nested.axis == "vertical"
        assert nested.expected.shape[0] > entry.rect.h  # merged all rows
        texts = ["".join(c.char for c in sub.chars) for sub in nested.entries]
        assert texts == ["North", "South", "East", "West"]

    def test_default_validation_covers_all_inputs(self):
        vspec = build_vspec(_rich_page(), "order")
        assert set(vspec.validation.fields) == {"qty", "gift", "ship", "size", "store"}

    def test_unsupported_elements_rejected(self):
        page = Page(title="T", elements=[FileInput("doc")])
        with pytest.raises(ValueError, match="compat"):
            build_vspec(page, "bad")


class TestCompatScript:
    def test_fixes_remove_iframes_and_add_maxlength(self):
        page = Page(
            title="T",
            elements=[
                TextInput("a", label="A"),
                IFrame("https://ads.example/banner"),
                IFrame("/local/terms"),
            ],
        )
        report = apply_compat_fixes(page)
        assert report.removed_iframes == ["https://ads.example/banner"]
        assert len([e for e in page.elements if isinstance(e, IFrame)]) == 1
        assert page.elements[0].max_length is not None
        assert report.maxlength_added == ["a"]

    def test_warnings_for_unsupported(self):
        page = Page(title="T", elements=[FileInput("doc"), VideoElement()])
        report = apply_compat_fixes(page, css="input:focus { outline: none; }")
        assert not report.clean
        reasons = " ".join(report.warnings)
        assert "file input" in reasons
        assert "video" in reasons
        assert "outline" in reasons

    def test_html_level_scan(self):
        page = Page(
            title="T",
            elements=[TextInput("a", label="A"), FileInput("doc"), IFrame("https://x.test/ad")],
        )
        report, form = apply_compat_fixes_html(page_to_html(page, css=".focus { color: red }"))
        assert report.removed_iframes == ["https://x.test/ad"]
        assert "a" in report.maxlength_added
        assert any("file input" in w for w in report.warnings)
        assert any(".focus" in w for w in report.warnings)

    def test_check_compatibility_fraction(self):
        page = Page(title="T", elements=[TextInput("a"), FileInput("f")])
        census = check_compatibility(page)
        assert census == {"supported": 1, "total": 2, "fraction": 0.5}


class TestWebServer:
    def _server(self):
        ca = CertificateAuthority()
        server = WebServer(ca)
        server.register_page("order", _rich_page())
        return ca, server

    def test_vspec_issuance_fresh_sessions(self):
        _ca, server = self._server()
        a = server.vspec_for("order", 640)
        b = server.vspec_for("order", 640)
        assert a.session_id != b.session_id
        assert a.extra_fields["session_id"] == a.session_id

    def test_width_mismatch_rejected(self):
        _ca, server = self._server()
        with pytest.raises(ValueError, match="width"):
            server.vspec_for("order", 800)
        with pytest.raises(KeyError):
            server.vspec_for("nope", 640)

    def test_duplicate_registration_rejected(self):
        _ca, server = self._server()
        with pytest.raises(ValueError):
            server.register_page("order", _rich_page())

    def _certified(self, ca, server, vspec, body=None):
        key = generate_signing_key()
        cert = ca.issue("client", key.public_key())
        body = body or {"session_id": vspec.session_id}
        return sign_request(key, body, vspec_digest(vspec), cert)

    def test_verify_accepts_fresh_valid_request(self):
        ca, server = self._server()
        vspec = server.vspec_for("order", 640)
        result = server.verify(self._certified(ca, server, vspec))
        assert result.ok, result.reason

    def test_replay_rejected(self):
        ca, server = self._server()
        vspec = server.vspec_for("order", 640)
        request = self._certified(ca, server, vspec)
        assert server.verify(request).ok
        replay = server.verify(request)
        assert not replay.ok
        assert "replayed" in replay.reason

    def test_unknown_session_rejected(self):
        ca, server = self._server()
        vspec = server.vspec_for("order", 640)
        request = self._certified(ca, server, vspec, body={"session_id": "fabricated"})
        assert not server.verify(request).ok

    def test_stale_vspec_echo_rejected(self):
        ca, server = self._server()
        old = server.vspec_for("order", 640)
        fresh = server.vspec_for("order", 640)
        key = generate_signing_key()
        cert = ca.issue("client", key.public_key())
        # Sign against the OLD vspec digest but claim the fresh session.
        request = sign_request(key, {"session_id": fresh.session_id}, vspec_digest(old), cert)
        result = server.verify(request)
        assert not result.ok
        assert "VSPEC echo" in result.reason

    def test_foreign_ca_certificate_rejected(self):
        ca, server = self._server()
        vspec = server.vspec_for("order", 640)
        other_ca = CertificateAuthority("rogue")
        key = generate_signing_key()
        cert = other_ca.issue("client", key.public_key())
        request = sign_request(key, {"session_id": vspec.session_id}, vspec_digest(vspec), cert)
        result = server.verify(request)
        assert not result.ok
        assert "certificate" in result.reason

    def test_uncertified_request_rejected(self):
        _ca, server = self._server()
        assert not server.accept_uncertified({"qty": "9999"}).ok
