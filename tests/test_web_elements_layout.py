"""Tests for the element model and flow layout."""

import pytest

from repro.web import layout as lay
from repro.web.elements import (
    Button,
    Checkbox,
    FileInput,
    IFrame,
    ImageElement,
    Page,
    RadioGroup,
    ScrollableList,
    SelectBox,
    TextBlock,
    TextInput,
    VideoElement,
)


class TestElements:
    def test_text_input_fields(self):
        field = TextInput("email", label="Email", value="a@b.c")
        assert field.request_fields() == {"email": "a@b.c"}
        assert field.caret == 5
        with pytest.raises(ValueError):
            TextInput("")

    def test_checkbox_states(self):
        box = Checkbox("ok", "OK")
        assert box.request_fields() == {"ok": "off"}
        box.checked = True
        assert box.request_fields() == {"ok": "on"}

    def test_radio_group_validation(self):
        group = RadioGroup("speed", ["a", "b"], selected=1)
        assert group.request_fields() == {"speed": "b"}
        assert RadioGroup("s", ["x"]).request_fields() == {"s": ""}
        with pytest.raises(ValueError):
            RadioGroup("s", [])
        with pytest.raises(ValueError):
            RadioGroup("s", ["x"], selected=3)

    def test_select_box(self):
        select = SelectBox("c", ["x", "y"], selected=1)
        assert select.request_fields() == {"c": "y"}
        with pytest.raises(ValueError):
            SelectBox("c", [])

    def test_scrollable_list_window(self):
        lst = ScrollableList("t", ["a", "b", "c", "d", "e"], visible_rows=2)
        assert lst.max_scroll == 3
        lst.selected = 4
        assert lst.request_fields() == {"t": "e"}
        small = ScrollableList("t", ["a"], visible_rows=5)
        assert small.visible_rows == 1

    def test_iframe_externality(self):
        assert IFrame("https://ads.example/ad").external
        assert not IFrame("/local/terms").external
        assert not IFrame("https://x.test/w").supported_by_vwitness
        assert IFrame("/local").supported_by_vwitness

    def test_unsupported_flags(self):
        assert not FileInput("doc").supported_by_vwitness
        assert not VideoElement().supported_by_vwitness
        assert TextInput("a").supported_by_vwitness

    def test_unique_auto_ids(self):
        a = TextBlock("x")
        b = TextBlock("x")
        assert a.element_id != b.element_id


class TestPage:
    def _page(self):
        return Page(
            title="T",
            width=640,
            elements=[
                TextBlock("hello"),
                TextInput("name", label="Name"),
                Checkbox("ok", "OK", checked=True),
                Button("Go"),
            ],
        )

    def test_form_values_merge(self):
        page = self._page()
        assert page.form_values() == {"name": "", "ok": "on"}

    def test_find_by_id_and_name(self):
        page = self._page()
        field = page.find_input("name")
        assert isinstance(field, TextInput)
        assert page.find(field.element_id) is field
        with pytest.raises(KeyError):
            page.find_input("missing")
        with pytest.raises(KeyError):
            page.find("nope")

    def test_unsupported_census(self):
        page = Page(title="T", elements=[TextBlock("a"), FileInput("f"), VideoElement()])
        assert len(page.unsupported_elements()) == 2

    def test_narrow_page_rejected(self):
        with pytest.raises(ValueError):
            Page(title="T", width=10)


class TestLayout:
    def test_vertical_flow_no_overlap(self):
        page = Page(
            title="T",
            width=640,
            elements=[
                TextBlock("one two three"),
                TextInput("a", label="A"),
                RadioGroup("r", ["x", "y", "z"]),
                ScrollableList("l", ["1", "2", "3", "4"], visible_rows=2),
                Button("Go"),
            ],
        )
        height = lay.layout_page(page)
        rects = [e.rect for e in page.elements]
        assert all(r is not None for r in rects)
        for above, below in zip(rects, rects[1:]):
            assert above.y2 <= below.y
        assert height >= rects[-1].y2

    def test_radio_height_scales_with_options(self):
        two = RadioGroup("r", ["a", "b"])
        four = RadioGroup("r", ["a", "b", "c", "d"])
        assert lay.element_height(four, 640) == 2 * lay.element_height(two, 640)

    def test_input_box_rect_below_label(self):
        page = Page(title="T", elements=[TextInput("a", label="A")])
        lay.layout_page(page)
        field = page.elements[0]
        box = lay.input_box_rect(field)
        assert box.y == field.rect.y + lay.LABEL_SIZE + 4
        assert box.h == lay.INPUT_HEIGHT

    def test_input_box_without_label_fills_rect(self):
        page = Page(title="T", elements=[TextInput("a")])
        lay.layout_page(page)
        box = lay.input_box_rect(page.elements[0])
        assert box.y == page.elements[0].rect.y

    def test_caret_position_advances_with_text(self):
        page = Page(title="T", elements=[TextInput("a", label="A")])
        lay.layout_page(page)
        field = page.elements[0]
        field.value = "abc"
        field.caret = 0
        x0 = lay.caret_x(field)
        field.caret = 3
        assert lay.caret_x(field) == x0 + 3 * lay.char_advance(field.text_size)

    def test_char_cell_geometry(self):
        page = Page(title="T", elements=[TextInput("a", label="A")])
        lay.layout_page(page)
        field = page.elements[0]
        cell0 = lay.char_cell_in_input(field, 0)
        cell2 = lay.char_cell_in_input(field, 2)
        assert cell2.x - cell0.x == 2 * lay.char_advance(field.text_size)
        assert cell0.h == field.text_size

    def test_wrap_text_respects_width(self):
        lines = lay.wrap_text("aaa bbb ccc ddd", 16, 80)
        advance = lay.char_advance(16)
        assert all(len(line) * advance <= 80 or " " not in line for line in lines)
        assert "".join(lines).replace(" ", "") == "aaabbbcccddd"

    def test_layout_before_queries_raises(self):
        field = TextInput("a")
        with pytest.raises(ValueError):
            lay.input_box_rect(field)
