"""witness-san tests: wrapper tracking, ownership tagging, the cross-check.

Unit tests drive the sanitizer against synthetic lock/pool shapes (the
test module is added to the tracked prefixes so locks created *here*
are wrapped); the integration tests drive real runtime objects and a
small soak slice, asserting the recorded orderings stay inside the
static model and that arming changes **nothing** about verdicts
(bit-identical session fingerprints with the sanitizer on vs off).

The whole module stands down when ``REPRO_WITNESS_SAN=1`` already armed
the session globally (the CI sanitizer job): enable/disable here would
tear down the session-wide state mid-run.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.analysis import sanitizer
from repro.core import planbuf

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_WITNESS_SAN") == "1",
    reason="witness-san armed session-wide; per-test arming would disarm it",
)

#: This module's name joins the tracked prefixes so locks created by the
#: helper classes below are wrapped.
_PREFIXES = ("repro", __name__.partition(".")[0])


class _TwoLocks:
    def __init__(self):
        self.alpha_lock = threading.Lock()
        self.beta_lock = threading.Lock()


class _Reentrant:
    def __init__(self):
        self.outer_lock = threading.RLock()
        self.inner_lock = threading.Lock()


class TestLockTracking:
    def test_wrapping_and_node_id_naming(self):
        with sanitizer.sanitized(_PREFIXES):
            pair = _TwoLocks()
            with pair.alpha_lock:
                pass
            assert pair.alpha_lock.san_name() == f"{__name__}._TwoLocks.alpha_lock"
        # Disarmed: the factories are restored and fresh locks are real.
        assert not hasattr(threading.Lock(), "san_name")

    def test_ordering_pair_recorded_and_modeled_order_passes(self):
        with sanitizer.sanitized(_PREFIXES) as state:
            pair = _TwoLocks()
            with pair.alpha_lock:
                with pair.beta_lock:
                    pass
            a, b = pair.alpha_lock.san_name(), pair.beta_lock.san_name()
        assert (a, b) in state.pairs
        assert state.check(model=frozenset({(a, b)})) == []

    def test_inversion_detected(self):
        with sanitizer.sanitized(_PREFIXES) as state:
            pair = _TwoLocks()
            with pair.alpha_lock:
                with pair.beta_lock:
                    pass
            with pair.beta_lock:
                with pair.alpha_lock:
                    pass
            a, b = pair.alpha_lock.san_name(), pair.beta_lock.san_name()
        problems = state.check(model=frozenset({(a, b), (b, a)}))
        assert len(problems) == 1
        assert "inversion" in problems[0]
        assert a in problems[0] and b in problems[0]

    def test_unmodeled_edge_detected(self):
        with sanitizer.sanitized(_PREFIXES) as state:
            pair = _TwoLocks()
            with pair.alpha_lock:
                with pair.beta_lock:
                    pass
        problems = state.check(model=frozenset())
        assert len(problems) == 1
        assert "unmodeled" in problems[0]

    def test_rlock_reentry_records_no_false_pairs(self):
        with sanitizer.sanitized(_PREFIXES) as state:
            obj = _Reentrant()
            with obj.outer_lock:
                with obj.inner_lock:
                    with obj.outer_lock:  # reentry, not a new ordering
                        pass
            outer = obj.outer_lock.san_name()
            inner = obj.inner_lock.san_name()
        assert set(state.pairs) == {(outer, inner)}

    def test_condition_wait_keeps_stack(self):
        with sanitizer.sanitized(_PREFIXES) as state:

            class _Waiter:
                def __init__(self):
                    self.cond = threading.Condition()

            w = _Waiter()
            with w.cond:
                w.cond.wait(timeout=0.01)  # times out; stack must survive
                with w.cond:  # reentry (Condition wraps an RLock): no self-pair
                    pass
        assert state.pairs == {}
        assert state.check(model=frozenset()) == []


class TestPoolOwnership:
    def test_thread_pool_is_pinned_to_its_thread(self):
        with sanitizer.sanitized() as state:
            box = {}
            t = threading.Thread(
                target=lambda: box.setdefault("pool", planbuf.thread_pool())
            )
            t.start()
            t.join()
            box["pool"].reserve("k", 4, (2,))  # foreign thread: violation
        assert any("cross-thread planbuf" in v for v in state.violations)

    def test_plan_pool_migrates_at_frame_boundaries(self):
        with sanitizer.sanitized() as state:
            pool = planbuf.PlanBuffers()
            pool.reserve("k", 2, (2,))  # main thread claims the frame
            pool.release_ownership()  # frame boundary (ValidationPlan.reset)
            t = threading.Thread(target=lambda: pool.reserve("k", 2, (2,)))
            t.start()
            t.join()
        assert state.violations == []

    def test_plan_pool_mid_frame_cross_thread_flagged(self):
        with sanitizer.sanitized() as state:
            pool = planbuf.PlanBuffers()
            pool.reserve("k", 2, (2,))  # claimed, no boundary before...
            t = threading.Thread(target=lambda: pool.reserve("k", 2, (2,)))
            t.start()
            t.join()  # ...this foreign reservation
        assert any("cross-thread planbuf" in v for v in state.violations)

    def test_workspace_arena_is_pinned(self):
        from repro.nn import infer

        with sanitizer.sanitized() as state:
            arenas = infer._ArenaSet(4)
            box = {}
            t = threading.Thread(target=lambda: box.setdefault("a", arenas.arena()))
            t.start()
            t.join()
            box["a"].workspace((1, 1, 8, 8))
        assert any("workspace-arena" in v for v in state.violations)

    def test_disarmed_seams_are_none(self):
        from repro.nn import infer

        assert planbuf._SAN is None
        assert infer._SAN is None
        with sanitizer.sanitized() as state:
            assert planbuf._SAN is state
            assert infer._SAN is state
        assert planbuf._SAN is None
        assert infer._SAN is None


class TestStaticModelCrossCheck:
    def test_static_model_contains_declared_ledger(self):
        from repro.analysis.core import DECLARED_LOCK_ORDER

        model = sanitizer.static_lock_model()
        for pair in DECLARED_LOCK_ORDER:
            assert tuple(pair) in model

    def test_runtime_orderings_stay_inside_model(self):
        """Drive the real micro-batcher + metrics under the sanitizer."""
        import numpy as np

        from repro.runtime.batcher import MicroBatcher
        from repro.runtime.metrics import RuntimeMetrics

        with sanitizer.sanitized() as state:
            metrics = RuntimeMetrics()
            batcher = MicroBatcher(
                "text",
                lambda obs, exp, *a, **k: np.zeros(obs.shape[0], dtype=np.float32),
                max_batch_units=8,
                flush_deadline=0.001,
                metrics=metrics,
            )
            try:
                obs = np.zeros((3, 1, 16, 16), dtype=np.float32)
                exp = np.zeros((3, 8), dtype=np.float32)
                for _ in range(4):
                    batcher.submit(obs, exp)
            finally:
                batcher.close()
        assert state.pairs, "expected the batcher to exercise lock nesting"
        assert state.check() == []


class TestSoakParity:
    def test_soak_slice_fingerprints_identical_on_vs_off(
        self, text_model, image_model
    ):
        """The tentpole acceptance gate: arming witness-san changes no
        verdict bit.  A two-scenario slice runs on the shared executor
        with two driver threads (real flusher + admission concurrency),
        once disarmed and once armed; session fingerprints must match
        exactly and the armed run must stay violation-free."""
        fingerprints = {}
        for armed in (False, True):
            if armed:
                with sanitizer.sanitized() as state:
                    fingerprints[armed] = _drive_slice(text_model, image_model)
                problems = state.check()
                assert problems == [], problems
                assert state.summary()["acquires"] > 0
            else:
                fingerprints[armed] = _drive_slice(text_model, image_model)
        assert fingerprints[True] == fingerprints[False]


def _drive_slice(text_model, image_model) -> dict:
    """Two scenarios through a shared-executor service, two threads."""
    from concurrent.futures import ThreadPoolExecutor

    from repro.core.service import WitnessService
    from repro.crypto import CertificateAuthority
    from repro.scenarios import ScenarioSpec, baseline_combo, run_scenario

    combo = baseline_combo("shared", "frozen")
    service = WitnessService(
        CertificateAuthority(),
        combo.config(None),
        text_model=text_model,
        image_model=image_model,
    )
    specs = [
        ScenarioSpec("tall-form", script="honest"),
        ScenarioSpec("dashboard", script="honest"),
    ]
    results = {}

    def drive(spec):
        outcome = run_scenario(spec.build(), service)
        results[spec.key] = outcome.fingerprint

    with service:
        with ThreadPoolExecutor(max_workers=2) as pool:
            list(pool.map(drive, specs))
    return results
