"""Unit tests for the channel-pair graphics matcher."""

import numpy as np
import pytest

from repro.nn.losses import bce_loss_with_logits
from repro.nn.zoo import build_image_matcher


class TestChannelPairMatcher:
    def _model(self):
        return build_image_matcher(seed=3)

    def test_forward_shape(self):
        model = self._model()
        obs = np.zeros((5, 1, 32, 32), dtype=np.float32)
        exp = np.zeros((5, 1, 32, 32), dtype=np.float32)
        assert model.forward(obs, exp).shape == (5, 1)

    def test_shape_validation(self):
        model = self._model()
        with pytest.raises(ValueError):
            model.forward(np.zeros((2, 1, 32, 32)), np.zeros((2, 1, 16, 16)))
        with pytest.raises(ValueError):
            model.forward(np.zeros((2, 3, 32, 32)), np.zeros((2, 3, 32, 32)))

    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(5)
        model = self._model()
        obs = rng.uniform(0, 1, (2, 1, 32, 32)).astype(np.float64)
        exp = rng.uniform(0, 1, (2, 1, 32, 32)).astype(np.float64)
        targets = np.asarray([[1.0], [0.0]])

        logits = model.forward(obs, exp)
        _loss, grad = bce_loss_with_logits(logits, targets)
        d_obs, d_exp = model.backward(grad)
        assert d_obs.shape == obs.shape
        assert d_exp.shape == exp.shape

        def loss_at(x):
            out = model.forward(x, exp)
            return bce_loss_with_logits(out, targets)[0]

        eps = 1e-5
        for _ in range(4):
            idx = (int(rng.integers(2)), 0, int(rng.integers(32)), int(rng.integers(32)))
            up = obs.copy()
            up[idx] += eps
            down = obs.copy()
            down[idx] -= eps
            numeric = (loss_at(up) - loss_at(down)) / (2 * eps)
            assert d_obs[idx] == pytest.approx(numeric, abs=2e-4)

    def test_threshold_view(self):
        model = self._model()
        hard = model.with_threshold(0.99)
        assert hard.network is model.network
        with pytest.raises(ValueError):
            model.with_threshold(0.0)

    def test_match_probability_bounds(self):
        model = self._model()
        rng = np.random.default_rng(6)
        obs = rng.uniform(0, 1, (4, 1, 32, 32)).astype(np.float32)
        probs = model.match_probability(obs, obs)
        assert np.all(probs >= 0.0) and np.all(probs <= 1.0)

    def test_params_and_grads_align(self):
        model = self._model()
        obs = np.random.default_rng(7).uniform(0, 1, (2, 1, 32, 32)).astype(np.float32)
        logits = model.forward(obs, obs)
        _loss, grad = bce_loss_with_logits(logits, np.ones((2, 1)))
        model.backward(grad)
        params = model.params()
        grads = model.grads()
        assert set(params) == set(grads)
        for name in params:
            assert params[name].shape == grads[name].shape
