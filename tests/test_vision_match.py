"""Tests for template matching and viewport localisation."""

import numpy as np
import pytest

from repro.raster.stacks import stack_registry
from repro.raster.text import render_text_line
from repro.vision.image import Image
from repro.vision.match import (
    best_horizontal_offset,
    best_vertical_offset,
    match_template,
    normalized_cross_correlation,
)


def _page_with_sections() -> Image:
    page = Image.blank(200, 600)
    page.paste(render_text_line("SECTION A", 20), 10, 100)
    page.paste(render_text_line("SECTION B", 20), 10, 400)
    return page


class TestNCC:
    def test_identical_patches_score_one(self):
        rng = np.random.default_rng(0)
        patch = rng.uniform(0, 255, (16, 16))
        assert normalized_cross_correlation(patch, patch) == pytest.approx(1.0)

    def test_affine_intensity_invariance(self):
        rng = np.random.default_rng(1)
        patch = rng.uniform(0, 255, (16, 16))
        assert normalized_cross_correlation(patch, 0.5 * patch + 30) == pytest.approx(1.0)

    def test_inverted_patch_scores_minus_one(self):
        rng = np.random.default_rng(2)
        patch = rng.uniform(0, 255, (16, 16))
        assert normalized_cross_correlation(patch, -patch) == pytest.approx(-1.0)

    def test_constant_patches_fallback(self):
        a = np.full((8, 8), 100.0)
        assert normalized_cross_correlation(a, a + 1.0) == 1.0
        assert normalized_cross_correlation(a, a + 50.0) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            normalized_cross_correlation(np.zeros((4, 4)), np.zeros((5, 4)))


class TestViewportSearch:
    def test_exact_crop_found_at_offset(self):
        page = _page_with_sections()
        frame = page.crop(0, 380, 200, 120)
        result = best_vertical_offset(frame, page)
        assert result.offset == 380
        assert result.score == pytest.approx(1.0)

    def test_cross_stack_crop_found_nearby(self):
        page = _page_with_sections()
        stack = stack_registry()[3]
        client = Image.blank(200, 600, stack.background)
        client.paste(render_text_line("SECTION A", 20, stack=stack), 10, 100)
        client.paste(render_text_line("SECTION B", 20, stack=stack), 10, 400)
        frame = client.crop(0, 380, 200, 120)
        result = best_vertical_offset(frame, page)
        assert abs(result.offset - 380) <= 2
        assert result.score > 0.9

    def test_stride_coarse_search_still_finds_offset(self):
        page = _page_with_sections()
        # 93 is not a stride multiple and the window contains SECTION A.
        frame = page.crop(0, 93, 200, 120)
        result = best_vertical_offset(frame, page, stride=4)
        assert result.offset == 93

    def test_blank_frame_matches_some_blank_window(self):
        page = _page_with_sections()
        frame = page.crop(0, 233, 200, 120)  # all-background window
        result = best_vertical_offset(frame, page)
        matched = page.crop(0, result.offset, 200, 120)
        assert matched.equals(frame, tolerance=1.0)

    def test_full_height_frame_offset_zero(self):
        page = _page_with_sections()
        result = best_vertical_offset(page, page)
        assert result.offset == 0
        assert result.score == pytest.approx(1.0)

    def test_width_mismatch_raises(self):
        page = _page_with_sections()
        with pytest.raises(ValueError):
            best_vertical_offset(Image.blank(100, 50), page)

    def test_frame_taller_than_page_raises(self):
        page = _page_with_sections()
        with pytest.raises(ValueError):
            best_vertical_offset(Image.blank(200, 700), page)

    def test_horizontal_variant(self):
        strip = Image.blank(600, 40)
        strip.paste(render_text_line("LEFT", 16), 20, 10)
        strip.paste(render_text_line("RIGHT", 16), 480, 10)
        window = strip.crop(460, 0, 120, 40)
        result = best_horizontal_offset(window, strip)
        assert result.offset == 460


class TestTemplateMatch:
    def test_finds_all_instances_with_nms(self):
        canvas = Image.blank(64, 64)
        template = Image.blank(6, 6, 0.0)
        template.pixels[2:4, 2:4] = 255.0
        canvas.paste(template, 5, 5)
        canvas.paste(template, 40, 30)
        hits = match_template(canvas, template, threshold=0.99)
        positions = {(x, y) for x, y, _ in hits}
        assert (5, 5) in positions
        assert (40, 30) in positions
        assert len(hits) == 2

    def test_no_hits_below_threshold(self):
        canvas = Image.blank(32, 32, 255.0)
        template = Image(np.random.default_rng(5).uniform(0, 255, (8, 8)))
        assert match_template(canvas, template, threshold=0.9) == []

    def test_oversized_template_returns_empty(self):
        assert match_template(Image.blank(4, 4), Image.blank(8, 8)) == []
