"""Tests for verifiers, caches, POF extraction, sampler and timing model."""

import numpy as np
import pytest

from repro.core.caches import DifferentialDetector, DigestCache
from repro.core.pof import check_pof_consistency, extract_pofs, mask_pofs
from repro.core.sampler import ScreenshotSampler
from repro.core.timing import SessionTiming, cutoff_session_length, delay_curve, request_delay
from repro.core.verifiers import (
    ImageVerifier,
    TextVerifier,
    glyph_tile_from_frame,
    split_region_into_tiles,
    structural_match,
)
from repro.raster.stacks import stack_registry
from repro.raster.text import char_advance, render_text_line
from repro.vision.components import Rect
from repro.vision.image import Image
from repro.vspec.spec import CharCell
from repro.web import layout as lay
from repro.web.browser import Browser
from repro.web.elements import Page, TextInput
from repro.web.hypervisor import Machine
from repro.web.render import DEFAULT_POF


class TestGlyphTileExtraction:
    def test_round_trip_against_renderer(self, text_model):
        """Cells extracted from a rendered line must verify as their chars."""
        text = "Hello42"
        size = 16
        line = render_text_line(text, size)
        canvas = Image.blank(200, 40)
        canvas.paste(line, 10, 12)
        advance = char_advance(size)
        cells = [
            CharCell(10 + i * advance, 12, advance, size, ch) for i, ch in enumerate(text)
        ]
        verifier = TextVerifier(text_model, batched=True)
        verdicts = verifier.verify_cells(canvas.pixels, cells)
        assert verdicts.mean() >= 6 / 7  # at most one model miss

    def test_wrong_expected_chars_rejected(self, text_model):
        text = "AAAA"
        size = 16
        line = render_text_line(text, size)
        canvas = Image.blank(100, 30)
        canvas.paste(line, 0, 4)
        advance = char_advance(size)
        cells = [CharCell(i * advance, 4, advance, size, "Z") for i in range(4)]
        verifier = TextVerifier(text_model, batched=True)
        verdicts = verifier.verify_cells(canvas.pixels, cells)
        assert verdicts.mean() <= 0.25

    def test_offset_translation(self, text_model):
        line = render_text_line("X", 16)
        canvas = Image.blank(60, 120)
        canvas.paste(line, 20, 80)
        frame = canvas.crop(0, 60, 60, 60)  # scrolled view
        cell = CharCell(20, 80, char_advance(16), 16, "X")
        verifier = TextVerifier(text_model, batched=True)
        assert verifier.verify_cells(frame.pixels, [cell], offset_y=60)[0]

    def test_batched_and_sequential_agree(self, text_model):
        rng = np.random.default_rng(0)
        tiles = [rng.uniform(0, 255, (32, 32)) for _ in range(6)]
        chars = list("ABCdef")
        seq = TextVerifier(text_model, batched=False)
        bat = TextVerifier(text_model, batched=True)
        assert np.array_equal(seq.verify_tiles(tiles, chars), bat.verify_tiles(tiles, chars))
        assert seq.invocations == bat.invocations == 6

    def test_cache_prevents_reinvocation(self, text_model):
        from repro.raster.text import render_char_tile

        cache = DigestCache()
        verifier = TextVerifier(text_model, batched=True, cache=cache)
        tile = render_char_tile("Q", 32).pixels
        verifier.verify_tiles([tile], ["Q"])
        assert verifier.invocations == 1
        verifier.verify_tiles([tile], ["Q"])
        assert verifier.invocations == 1  # served from cache
        assert cache.hits >= 1

    def test_mismatched_args_rejected(self, text_model):
        verifier = TextVerifier(text_model)
        with pytest.raises(ValueError):
            verifier.verify_tiles([np.zeros((32, 32))], ["a", "b"])


class TestRegionTiling:
    def test_split_covers_region(self):
        region = np.zeros((70, 50))
        tiles = split_region_into_tiles(region)
        assert len(tiles) == 3 * 2  # ceil(70/32) x ceil(50/32)
        assert all(t.shape == (32, 32) for t, _pos in tiles)

    def test_small_region_single_padded_tile(self):
        tiles = split_region_into_tiles(np.zeros((10, 10)), background=9.0)
        assert len(tiles) == 1
        tile, _pos = tiles[0]
        assert tile[15, 15] == 9.0

    def test_image_verifier_identical_regions_match(self, image_model):
        from repro.raster.icons import render_icon

        icon = render_icon("gear", 32).pixels
        verifier = ImageVerifier(image_model, batched=True)
        assert verifier.verify_region(icon, icon)

    def test_image_verifier_cross_stack_matches(self, image_model):
        from repro.raster.icons import render_icon

        ref = render_icon("lock", 32).pixels
        other = render_icon("lock", 32, stack=stack_registry()[1]).pixels
        assert ImageVerifier(image_model, batched=True).verify_region(other, ref)

    def test_image_verifier_different_content_rejected(self, image_model):
        from repro.raster.icons import render_icon

        a = render_icon("lock", 32).pixels
        b = render_icon("cart", 32).pixels
        assert not ImageVerifier(image_model, batched=True).verify_region(b, a)

    def test_shape_mismatch_is_failure(self, image_model):
        verifier = ImageVerifier(image_model)
        assert not verifier.verify_region(np.zeros((32, 32)), np.zeros((16, 16)))


class TestStructuralMatch:
    def test_cross_stack_chrome_matches(self):
        a = render_text_line("Submit", 14).pixels
        b = render_text_line("Submit", 14, stack=stack_registry()[2]).pixels
        assert structural_match(a, b)

    def test_different_content_rejected(self):
        a = render_text_line("Submit", 14).pixels
        b = render_text_line("Cancel", 14).pixels[:, : a.shape[1]]
        b = b if b.shape == a.shape else a * 0
        assert not structural_match(a, b)

    def test_checkbox_states_distinguished(self):
        from repro.server.generate import build_vspec
        from repro.web.elements import Checkbox

        page = Page(title="T", elements=[Checkbox("ok", "OK")])
        vspec = build_vspec(page, "p")
        entry = vspec.entry_for_input("ok")
        on = entry.state_appearances["on"]
        off = entry.state_appearances["off"]
        assert structural_match(on, on)
        assert not structural_match(on, off)


class TestCaches:
    def test_digest_cache_hit_miss_accounting(self):
        cache = DigestCache()
        assert cache.get("k") is None
        cache.put("k", True)
        assert cache.get("k") is True
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_capacity_cap_evicts_coldest(self):
        cache = DigestCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.get("a") is None

    def test_overwrite_at_capacity_does_not_evict(self):
        # Overwriting a present key does not grow the store, so nothing
        # unrelated may be evicted.
        cache = DigestCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 3)
        assert len(cache) == 2
        assert cache.get("b") == 2
        assert cache.get("a") == 3

    def test_lru_get_refreshes_recency(self):
        cache = DigestCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # "a" becomes most recently used
        cache.put("c", 3)  # evicts "b", the coldest entry
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_none_put_rejected(self):
        # None is the public miss signal; storing it would make stats and
        # semantics disagree (a counted hit returned as a miss).
        cache = DigestCache()
        with pytest.raises(ValueError, match="None"):
            cache.put("k", None)
        assert len(cache) == 0
        assert cache.get("k") is None
        assert cache.hits == 0 and cache.misses == 1

    def test_falsy_values_are_exact_hits(self):
        cache = DigestCache()
        cache.put("k", False)
        assert cache.get("k") is False
        assert cache.hits == 1 and cache.misses == 0

    def test_differential_detector_lifecycle(self):
        detector = DifferentialDetector()
        frame = np.full((40, 40), 255.0)
        assert detector.changed(frame) is None  # first frame: validate all
        assert detector.changed(frame) == []  # identical: skip
        changed = frame.copy()
        changed[5:9, 5:9] = 0.0
        regions = detector.changed(changed)
        assert len(regions) == 1
        assert regions[0].contains(Rect(5, 5, 4, 4))


class TestPOF:
    def _focused_frame(self, value="hi", select=None):
        page = Page(title="T", width=640, elements=[TextInput("a", label="A")])
        machine = Machine(640, 200)
        browser = Browser(machine, page)
        browser.paint()
        field = page.elements[0]
        box = lay.input_box_rect(field)
        browser.click(*box.center)
        browser.type_text(value)
        if select is not None:
            browser.select_range(*select)
        return machine.sample_framebuffer().pixels, lay.input_box_rect(field)

    def test_extracts_outline_and_caret(self):
        frame, box = self._focused_frame()
        obs = extract_pofs(frame, input_rects=[box])
        assert len(obs.outlines) == 1
        assert len(obs.carets) == 1
        assert not obs.highlights
        assert obs.outlines[0].expanded(6).contains(box)

    def test_selection_replaces_caret(self):
        frame, box = self._focused_frame(value="hello", select=(0, 4))
        obs = extract_pofs(frame, input_rects=[box])
        assert len(obs.highlights) == 1
        assert not obs.carets

    def test_consistency_accepts_honest_frame(self):
        frame, box = self._focused_frame()
        obs = extract_pofs(frame, input_rects=[box])
        assert check_pof_consistency(obs, [box]) == []

    def test_two_outlines_flagged(self):
        frame, box = self._focused_frame()
        img = Image(frame.copy())
        other = Rect(400, 150, 120, 30)
        img.draw_border(other.x, other.y, other.w, other.h, DEFAULT_POF.outline_intensity, 2)
        obs = extract_pofs(img.pixels, input_rects=[box, other])
        violations = check_pof_consistency(obs, [box, other])
        assert any("focus outlines" in v for v in violations)

    def test_caret_and_highlight_coexistence_flagged(self):
        frame, box = self._focused_frame(value="hello", select=(0, 3))
        img = Image(frame.copy())
        img.draw_vline(box.x2 - 8, box.y + 5, box.h - 10, DEFAULT_POF.caret_intensity, 2)
        obs = extract_pofs(img.pixels, input_rects=[box])
        violations = check_pof_consistency(obs, [box])
        assert any("simultaneously" in v for v in violations)

    def test_pof_outside_fields_flagged(self):
        frame, box = self._focused_frame()
        img = Image(frame.copy())
        img.fill_rect(500, 20, 40, 14, DEFAULT_POF.highlight_intensity)
        far = Rect(480, 10, 80, 40)
        obs = extract_pofs(img.pixels, input_rects=[box, far])
        violations = check_pof_consistency(obs, [box])
        assert violations  # highlight (or outline set) inconsistent

    def test_mask_pofs_removes_cues(self):
        frame, box = self._focused_frame()
        obs = extract_pofs(frame, input_rects=[box])
        clean = mask_pofs(frame, obs)
        clean_obs = extract_pofs(clean, input_rects=[box])
        assert not clean_obs.carets
        assert not clean_obs.outlines

    def test_glyph_edges_not_mistaken_for_carets(self):
        # A page full of 'l' glyphs (straight vertical strokes) must not
        # produce caret detections inside the field.
        frame, box = self._focused_frame(value="lllll")
        obs = extract_pofs(frame, input_rects=[box])
        assert len(obs.carets) == 1  # only the real caret

    def test_glyph_stems_not_carets_on_any_named_stack(self):
        """Soak regression: on some stacks ('gecko-windows' et al.) an
        'l'/'1' stem's ink lands in the caret intensity band with bright
        inter-glyph flanks; only the caret height floor keeps it out."""
        from repro.raster.stacks import stack_registry as _stacks

        for stack in _stacks():
            page = Page(
                title="T",
                width=640,
                elements=[TextInput("email", label="Email", value="ana@example.com")],
            )
            machine = Machine(640, 200)
            browser = Browser(machine, page, stack=stack)
            field = page.elements[0]
            browser.focused_id = field.element_id
            field.caret = len(field.value)
            browser.paint()
            frame = machine.sample_framebuffer().pixels
            box = lay.input_box_rect(field)
            obs = extract_pofs(frame, input_rects=[box])
            # At most the real caret; never a glyph-stem misdetection.
            assert len(obs.carets) <= 1, stack.name
            for caret in obs.carets:
                assert caret.h >= DEFAULT_POF.caret_min_height, stack.name

    def test_caret_at_frame_edge_accepted(self):
        """A caret within 2px of the frame's left edge has no left flank;
        the right flank alone must carry the brightness test."""
        frame = np.full((60, 40), 252.0)
        frame[10:32, 0:2] = DEFAULT_POF.caret_intensity  # caret at x=0
        box = Rect(0, 5, 36, 40)
        obs = extract_pofs(frame, input_rects=[box])
        assert len(obs.carets) == 1
        assert obs.carets[0].x == 0

    def test_caret_at_right_frame_edge_accepted(self):
        frame = np.full((60, 40), 252.0)
        frame[10:32, 38:40] = DEFAULT_POF.caret_intensity  # caret at right edge
        box = Rect(4, 5, 36, 40)
        obs = extract_pofs(frame, input_rects=[box])
        assert len(obs.carets) == 1

    def test_edge_caret_with_inky_flank_still_rejected(self):
        """The surviving flank still discriminates: ink beside an
        edge-hugging caret keeps it rejected."""
        frame = np.full((60, 40), 252.0)
        frame[10:32, 0:2] = DEFAULT_POF.caret_intensity
        frame[8:34, 2:5] = 0.0  # dark ink immediately right of the bar
        box = Rect(0, 5, 36, 40)
        obs = extract_pofs(frame, input_rects=[box])
        assert not obs.carets


class TestSampler:
    def test_mean_delay_near_quarter_second(self):
        sampler = ScreenshotSampler(0.0, seed=1)
        delays = []
        now = sampler.next_sample_ms
        for _ in range(400):
            nxt = sampler.schedule_next(now)
            delays.append(nxt - now)
            now = nxt
        assert 220 <= np.mean(delays) <= 280
        assert max(delays) <= 500.0

    def test_periodic_mode_fixed(self):
        sampler = ScreenshotSampler(0.0, seed=1, periodic=True)
        now = sampler.next_sample_ms
        assert now == 250.0
        assert sampler.schedule_next(now) == now + 250.0

    def test_due_logic(self):
        sampler = ScreenshotSampler(0.0, seed=2)
        assert not sampler.due(sampler.next_sample_ms - 1)
        assert sampler.due(sampler.next_sample_ms)

    def test_invalid_delay_rejected(self):
        with pytest.raises(ValueError):
            ScreenshotSampler(0.0, max_delay_ms=0)


class TestTimingModel:
    def _timing(self):
        return SessionTiming(
            t_init=0.5,
            frame_times=[1.0, 0.2, 0.2, 0.2],
            frame_sample_times_ms=[100.0, 400.0, 700.0, 1000.0],
            t_request=0.05,
        )

    def test_zero_session_pays_everything(self):
        timing = self._timing()
        assert request_delay(timing, 0.0) == pytest.approx(
            timing.t_init + sum(timing.frame_times) + timing.t_request
        )

    def test_long_session_pays_only_floor(self):
        timing = self._timing()
        floor = timing.frame_times[-1] + timing.t_request
        assert request_delay(timing, 100.0) == pytest.approx(floor)

    def test_delay_monotonically_non_increasing(self):
        timing = self._timing()
        lengths = np.linspace(0.0, 20.0, 60)
        delays = [request_delay(timing, s) for s in lengths]
        assert all(a >= b - 1e-9 for a, b in zip(delays, delays[1:]))

    def test_cutoff_consistent_with_curve(self):
        timing = self._timing()
        cutoff = cutoff_session_length(timing, max_seconds=30.0, resolution=0.01)
        floor = timing.frame_times[-1] + timing.t_request
        assert request_delay(timing, cutoff) <= floor + 0.01
        if cutoff > 0.02:
            assert request_delay(timing, cutoff - 0.02) > floor + 0.005

    def test_delay_curve_pairs(self):
        timing = self._timing()
        curve = delay_curve(timing, [0.0, 5.0])
        assert curve[0][1] >= curve[1][1]

    def test_negative_session_rejected(self):
        with pytest.raises(ValueError):
            request_delay(self._timing(), -1.0)

    def test_sample_times_drive_arrivals(self):
        """The sample-instant branch: late-clustered samples raise the delay."""
        uniform = SessionTiming(frame_times=[0.2, 0.2, 0.2], t_request=0.05)
        clustered = SessionTiming(
            frame_times=[0.2, 0.2, 0.2],
            frame_sample_times_ms=[980.0, 990.0, 1000.0],
            t_request=0.05,
        )
        # All three frames arrive just before submission: their work can
        # barely overlap the session, unlike evenly spread arrivals.
        assert request_delay(clustered, 10.0) > request_delay(uniform, 10.0)

    def test_empty_sample_times_use_uniform_arrivals(self):
        """The fallback branch: no sample instants -> evenly spread arrivals."""
        timing = SessionTiming(frame_times=[0.3, 0.3], t_request=0.1)
        explicit = SessionTiming(
            frame_times=[0.3, 0.3],
            frame_sample_times_ms=[500.0, 1000.0],
            t_request=0.1,
        )
        assert request_delay(timing, 4.0) == pytest.approx(request_delay(explicit, 4.0))

    def test_sample_time_length_mismatch_is_loud(self):
        """A frame_times/frame_sample_times_ms mismatch must raise, not
        silently fall back to uniform arrivals."""
        timing = SessionTiming(
            frame_times=[0.2, 0.2, 0.2],
            frame_sample_times_ms=[100.0, 200.0],  # one entry short
            t_request=0.05,
        )
        with pytest.raises(ValueError, match="lockstep"):
            request_delay(timing, 5.0)
