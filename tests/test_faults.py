"""Deterministic fault injection, supervised recovery, fail-closed ladder.

Four layers of coverage:

* unit tests of the plan/injector machinery (validation, seeded
  determinism, call/fire accounting) and the fail-closed verdict
  sanitization;
* runtime recovery: the supervised flusher restarts after a crash
  without losing a waiting submission, flush errors surface as typed
  per-submitter :class:`RuntimeFlushError`\\ s, the admission gate raises
  typed :class:`AdmissionTimeout`, and the executor's degradation ladder
  lands every faulted submission on a correct inline forward;
* verifier hardening: NaN logits sanitize to mismatch, raising caches
  degrade to misses with identical verdicts, a raising forward is
  retried once;
* session fail-closed behavior: unrecoverable faults become violations
  and refusals, repeated ones quarantine the session, and
  ``ValidationExecutor.close`` stays deadlock-free with submissions in
  flight.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.caches import DigestCache
from repro.core.sampler import ScreenshotSampler
from repro.core.service import WitnessConfig
from repro.core.verifiers import TextVerifier
from repro.faults import (
    CacheFault,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    admission_timeout_plan,
    cache_fault_plan,
    flusher_crash_plan,
    forward_raise_plan,
    nan_logits_plan,
    shipped_plans,
)
from repro.nn.infer import fail_closed_verdicts
from repro.runtime import (
    AdmissionGate,
    AdmissionTimeout,
    HealthTracker,
    MicroBatcher,
    RuntimeFaultError,
    RuntimeFlushError,
    RuntimeMetrics,
    ValidationExecutor,
)
from repro.server.webserver import WitnessedSite
from repro.web import HonestUser

from tests.conftest import make_transfer_page


class FakeModel:
    """Row-independent deterministic stand-in for a matcher model."""

    def __init__(self, delay: float = 0.0, fail_first: int = 0):
        self.forwards = 0
        self.delay = delay
        self.fail_first = fail_first
        self._lock = threading.Lock()

    def predict(self, observed, expected, chunk_size=None):
        with self._lock:
            self.forwards += 1
            if self.forwards <= self.fail_first:
                raise ValueError("synthetic forward failure")
        if self.delay:
            time.sleep(self.delay)
        return observed.reshape(len(observed), -1).sum(axis=1) > 0


def rows(n: int, value: float = 1.0) -> np.ndarray:
    return np.full((n, 1, 2, 2), value, dtype=np.float32)


def plan_of(*specs, **kwargs) -> FaultPlan:
    kwargs.setdefault("name", "test")
    return FaultPlan(specs=tuple(specs), **kwargs)


class TestFaultPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec("sampler.explode", rate=1.0)

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("sampler.drop", rate=1.5)

    def test_spec_must_be_able_to_fire(self):
        with pytest.raises(ValueError, match="can never fire"):
            FaultSpec("sampler.drop")

    def test_at_calls_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec("sampler.drop", at_calls=(0,))

    def test_plan_needs_specs(self):
        with pytest.raises(ValueError, match="at least one"):
            FaultPlan(name="empty")

    def test_duplicate_points_rejected(self):
        spec = FaultSpec("cache.error", rate=0.5)
        with pytest.raises(ValueError, match="duplicate"):
            plan_of(spec, spec)

    def test_expectation_validated(self):
        with pytest.raises(ValueError, match="honest_expectation"):
            plan_of(FaultSpec("cache.error", rate=0.5), honest_expectation="maybe")

    def test_shipped_plans_are_valid_and_named(self):
        plans = shipped_plans()
        assert len(plans) == 8
        assert len({p.name for p in plans}) == 8
        for plan in plans:
            assert plan.honest_expectation in ("identical", "certify", "refuse")

    def test_config_validates_plan_type(self):
        with pytest.raises(ValueError, match="FaultPlan"):
            WitnessConfig(faults="frame-drop")


class TestFaultInjector:
    def test_at_calls_fire_exactly(self):
        inj = FaultInjector(plan_of(FaultSpec("infer.raise", at_calls=(2, 4))))
        assert [inj.decide("infer.raise") for _ in range(5)] == [
            False, True, False, True, False,
        ]

    def test_rate_schedule_is_seed_deterministic(self):
        mk = lambda seed: FaultInjector(
            plan_of(FaultSpec("cache.error", rate=0.3), seed=seed)
        )
        a, b, c = mk(7), mk(7), mk(8)
        seq = [a.decide("cache.error") for _ in range(200)]
        assert seq == [b.decide("cache.error") for _ in range(200)]
        assert seq != [c.decide("cache.error") for _ in range(200)]
        assert any(seq) and not all(seq)

    def test_max_fires_caps_rate(self):
        inj = FaultInjector(plan_of(FaultSpec("cache.error", rate=1.0, max_fires=3)))
        assert sum(inj.decide("cache.error") for _ in range(10)) == 3
        assert inj.total_fired == 3

    def test_unarmed_point_is_a_fast_no(self):
        inj = FaultInjector(plan_of(FaultSpec("cache.error", rate=1.0)))
        assert not inj.decide("infer.raise")
        assert inj.snapshot()["points"] == {"cache.error": {"calls": 0, "fires": 0}}

    def test_fire_raises_injected_fault(self):
        inj = FaultInjector(plan_of(FaultSpec("runtime.flusher_crash", at_calls=(1,))))
        with pytest.raises(InjectedFault):
            inj.fire("runtime.flusher_crash")
        inj.fire("runtime.flusher_crash")  # call 2: not scheduled

    def test_injected_faults_are_runtime_fault_errors(self):
        assert issubclass(InjectedFault, RuntimeFaultError)
        assert issubclass(CacheFault, InjectedFault)

    def test_corrupt_frame_copies_and_differs(self):
        inj = FaultInjector(plan_of(FaultSpec("sampler.bitflip", rate=1.0)))
        frame = np.full((120, 200), 200.0)
        out = inj.corrupt_frame(frame)
        assert out is not frame
        assert np.all(frame == 200.0)  # original untouched
        assert np.any(out != frame)

    def test_wrap_predict_passthrough_when_unarmed(self):
        inj = FaultInjector(plan_of(FaultSpec("cache.error", rate=1.0)))
        fn = lambda o, e: 42
        assert inj.wrap_predict(fn) is fn

    def test_snapshot_accounting(self):
        inj = FaultInjector(plan_of(FaultSpec("infer.raise", at_calls=(1,))))
        inj.decide("infer.raise"), inj.decide("infer.raise")
        snap = inj.snapshot()
        assert snap["plan"] == "test"
        assert snap["points"]["infer.raise"] == {"calls": 2, "fires": 1}
        assert snap["total_fired"] == 1


class TestFailClosedVerdicts:
    def test_bool_passthrough(self):
        v = np.array([True, False])
        assert fail_closed_verdicts(v) is v

    def test_nan_and_inf_are_mismatches(self):
        raw = np.array([1.0, np.nan, 0.0, np.inf, -3.0])
        # bool(nan) is True: without sanitization NaN would certify.
        assert list(fail_closed_verdicts(raw)) == [True, False, False, False, True]

    def test_int_verdicts(self):
        assert list(fail_closed_verdicts(np.array([0, 2, 1]))) == [False, True, True]


class TestSamplerDefer:
    def test_defer_pushes_never_pulls(self):
        sampler = ScreenshotSampler(0.0, seed=1)
        scheduled = sampler.next_sample_ms
        assert sampler.defer(0.0, 0.0) == scheduled  # never earlier
        assert sampler.defer(scheduled, 120.0) == scheduled + 120.0

    def test_defer_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            ScreenshotSampler(0.0).defer(0.0, -1.0)


class TestTypedRuntimeErrors:
    def test_flush_error_is_per_submitter_with_cause(self):
        batcher = MicroBatcher(
            "text", FakeModel(fail_first=10).predict, metrics=RuntimeMetrics()
        )
        try:
            errors = []
            for _ in range(2):
                with pytest.raises(RuntimeFlushError) as info:
                    batcher.submit(rows(2), rows(2))
                errors.append(info.value)
            first, second = errors
            # Typed wrapper, original failure chained, and a fresh
            # exception object per submitter — never one shared instance
            # raised across threads.
            assert isinstance(first.__cause__, ValueError)
            assert "synthetic forward failure" in str(first)
            assert first is not second
            assert not first.timeout
        finally:
            batcher.close()

    def test_flush_timeout_is_typed_and_counted(self):
        metrics = RuntimeMetrics()
        batcher = MicroBatcher(
            "text", FakeModel(delay=0.5).predict, metrics=metrics, submit_timeout=0.05
        )
        try:
            with pytest.raises(RuntimeFlushError) as info:
                batcher.submit(rows(1), rows(1))
            assert info.value.timeout
            assert metrics.counter("flush_timeouts.text").value == 1
        finally:
            batcher.close()

    def test_admission_timeout_is_typed(self):
        gate = AdmissionGate(4, policy="block", block_timeout=0.05)
        assert gate.acquire(4)
        with pytest.raises(AdmissionTimeout) as info:
            gate.acquire(2)
        assert isinstance(info.value, RuntimeFaultError)
        gate.release(4)
        assert gate.acquire(2)


class TestSupervisedFlusher:
    def test_crash_recovery_loses_no_submission(self):
        """The flusher dies twice mid-fleet; every waiting session still
        gets its verdicts, and the supervisor accounting shows it."""
        metrics = RuntimeMetrics()
        health = HealthTracker()
        faults = FaultInjector(flusher_crash_plan())
        batcher = MicroBatcher(
            "text",
            FakeModel().predict,
            metrics=metrics,
            faults=faults,
            health=health,
            flush_deadline=0.005,
        )
        try:
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [pool.submit(batcher.submit, rows(3), rows(3)) for _ in range(8)]
                results = [f.result(timeout=10) for f in futures]
            for verdicts, forwards in results:
                assert list(verdicts) == [True, True, True]
                assert forwards >= 0
        finally:
            batcher.close()
        snap = health.snapshot()
        assert snap["flusher_crashes"] == 2
        assert snap["flusher_restarts"] == 2
        assert metrics.counter("flusher_crashes.text").value == 2
        assert faults.total_fired == 2
        # Recovered: flushes succeeded after the restarts.
        assert snap["state"] in ("healthy", "degraded")

    def test_health_tracker_states(self):
        health = HealthTracker(fail_after=3)
        assert health.state == "healthy"
        health.note_degraded()
        assert health.state == "degraded"
        for _ in range(3):
            health.note_flusher_crash()
        assert health.state == "failed"
        health.note_flush_ok()  # a clean flush ends the crash streak
        assert health.state == "degraded"


class TestDegradationLadder:
    def test_injected_admission_timeout_degrades_to_inline(self):
        faults = FaultInjector(admission_timeout_plan())
        executor = ValidationExecutor(FakeModel(), FakeModel(), faults=faults)
        with executor:
            verdicts, forwards = executor.predict("text", rows(4), rows(4))
            assert list(verdicts) == [True] * 4 and forwards == 1
            stats = executor.stats()
            assert stats["counters"]["admission_timeouts.text"] == 1
            assert stats["counters"]["degraded_forwards.text"] == 1
            assert stats["health"]["state"] == "degraded"
            # The seam fired once; later submissions ride the normal path.
            verdicts, _ = executor.predict("text", rows(2), rows(2))
            assert list(verdicts) == [True, True]

    def test_flush_failure_retries_then_inlines(self):
        # Fails forwards 1 and 2: the first flush errors, the retry flush
        # errors too, and the inline fallback (forward 3) succeeds.
        executor = ValidationExecutor(FakeModel(fail_first=2), FakeModel())
        with executor:
            verdicts, _ = executor.predict("text", rows(3), rows(3))
            assert list(verdicts) == [True] * 3
            stats = executor.stats()
            assert stats["counters"]["flush_retries.text"] == 1
            assert stats["counters"]["degraded_forwards.text"] == 1
            assert stats["health"]["state"] == "degraded"

    def test_failed_runtime_skips_queue_entirely(self):
        executor = ValidationExecutor(FakeModel(), FakeModel())
        with executor:
            for _ in range(executor.health.fail_after):
                executor.health.note_flusher_crash()
            assert executor.health.state == "failed"
            verdicts, _ = executor.predict("text", rows(2), rows(2))
            assert list(verdicts) == [True, True]
            assert executor.stats()["counters"]["degraded_forwards.text"] == 1


class TestExecutorClose:
    def test_close_with_inflight_submissions_no_deadlock(self):
        executor = ValidationExecutor(
            FakeModel(delay=0.05), FakeModel(), flush_deadline_ms=1.0
        )
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(executor.predict, "text", rows(2), rows(2)) for _ in range(4)]
            time.sleep(0.01)  # let submissions reach the batcher
            executor.close(timeout=5.0)
            for f in futures:
                try:
                    verdicts, _ = f.result(timeout=10)
                    assert list(verdicts) == [True, True]
                except RuntimeError:
                    pass  # racing close is allowed to refuse, never to hang

    def test_close_is_idempotent(self):
        executor = ValidationExecutor(FakeModel(), FakeModel())
        executor.close()
        executor.close()
        assert executor.closed

    def test_late_submitter_gets_clean_error(self):
        executor = ValidationExecutor(FakeModel(), FakeModel())
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.predict("text", rows(1), rows(1))


class TestVerifierHardening:
    def test_nan_logits_never_certify(self):
        faults = FaultInjector(nan_logits_plan())
        verifier = TextVerifier(FakeModel(), batched=True, faults=faults)
        verdicts = verifier.verify_tiles(
            [np.full((32, 32), 255.0), np.full((32, 32), 255.0)], ["a", "b"]
        )
        assert list(verdicts) == [False, False]
        assert faults.total_fired >= 1

    def test_forward_raise_recovered_by_retry(self):
        faults = FaultInjector(forward_raise_plan())
        clean = TextVerifier(FakeModel(), batched=True)
        faulted = TextVerifier(FakeModel(), batched=True, faults=faults)
        tiles = [np.full((32, 32), 255.0), np.zeros((32, 32))]
        assert list(faulted.verify_tiles(tiles, ["a", "b"])) == list(
            clean.verify_tiles(tiles, ["a", "b"])
        )
        assert faulted.forward_retries == 1
        assert faults.total_fired == 1

    def test_cache_fault_degrades_to_miss_with_identical_verdicts(self):
        faults = FaultInjector(
            FaultPlan(name="always-cache", specs=(FaultSpec("cache.error", rate=1.0),))
        )
        cache = DigestCache(100)
        cache.fault_hook = faults.cache_hook
        clean = TextVerifier(FakeModel(), batched=True, cache=DigestCache(100))
        faulted = TextVerifier(FakeModel(), batched=True, cache=cache)
        tiles = [np.full((32, 32), 255.0), np.zeros((32, 32))]
        for _ in range(2):  # second round would be cache hits if healthy
            assert list(faulted.verify_tiles(tiles, ["a", "b"])) == list(
                clean.verify_tiles(tiles, ["a", "b"])
            )
        assert faulted.cache_faults > 0
        assert cache.hits == 0  # every lookup raised; all degraded to miss

    def test_cache_hook_raises_cache_fault(self):
        faults = FaultInjector(cache_fault_plan())
        cache = DigestCache(10)
        cache.fault_hook = faults.cache_hook
        outcomes = []
        for i in range(40):
            try:
                cache.get(f"k{i}")
                outcomes.append(False)
            except CacheFault:
                outcomes.append(True)
        assert any(outcomes) and not all(outcomes)
        cache.fault_hook = None
        cache.put("k", True)
        assert cache.get("k") is True


def make_site(text_model, image_model, **config_overrides) -> WitnessedSite:
    config = WitnessConfig(batched=True).replace(**config_overrides)
    site = WitnessedSite(config=config, text_model=text_model, image_model=image_model)
    site.register_page("transfer", make_transfer_page())
    return site


class TestSessionFailClosed:
    def test_unrecoverable_faults_refuse_and_quarantine(self, text_model, image_model):
        """Every forward raises (retry included): frames become fault
        violations, the session quarantines at the cap, and certification
        refuses — fail closed, not fail open."""
        plan = FaultPlan(
            name="always-raise",
            honest_expectation="refuse",
            specs=(FaultSpec("infer.raise", rate=1.0),),
        )
        site = make_site(text_model, image_model, faults=plan, max_session_faults=2)
        client = site.connect("transfer")
        HonestUser(client.browser).fill_text_input("recipient", "ACC-1")
        client.machine.clock.advance(3000)
        decision = client.submit()
        assert not decision.certified
        report = client.witness.report
        rules = {v.rule for v in report.violations}
        assert "fault" in rules and "quarantine" in rules
        health = site.service.health()
        assert health["quarantined_sessions"] == 1
        assert health["state"] in ("degraded", "failed")
        assert site.service.fault_injector.total_fired >= 2

    def test_frame_corruption_refuses(self, text_model, image_model):
        plan = FaultPlan(
            name="corrupt-all",
            honest_expectation="refuse",
            specs=(FaultSpec("sampler.bitflip", rate=1.0),),
        )
        site = make_site(text_model, image_model, faults=plan)
        client = site.connect("transfer")
        HonestUser(client.browser).fill_text_input("recipient", "ACC-1")
        client.machine.clock.advance(1200)
        decision = client.submit()
        assert not decision.certified
        assert client.witness.report.frames_corrupted > 0

    def test_disarmed_service_runs_clean(self, text_model, image_model):
        """faults=None: no injector, healthy service, honest certify."""
        site = make_site(text_model, image_model)
        assert site.service.fault_injector is None
        client = site.connect("transfer")
        user = HonestUser(client.browser)
        user.fill_text_input("recipient", "ACC-9")
        user.fill_text_input("amount", "5")
        user.toggle_checkbox("confirm", True)
        decision = client.submit()
        assert decision.certified, decision.reason
        health = site.service.health()
        assert health["state"] == "healthy"
        assert not health["faults_armed"]
        report = client.witness.report
        assert (report.frames_dropped, report.frames_delayed, report.frames_corrupted) == (0, 0, 0)

    def test_telemetry_carries_health_and_faults(self, text_model, image_model):
        plan = FaultPlan(
            name="drop-some",
            honest_expectation="certify",
            specs=(FaultSpec("sampler.drop", rate=0.2),),
        )
        site = make_site(text_model, image_model, faults=plan)
        client = site.connect("transfer")
        client.machine.clock.advance(2000)
        client.close()
        snap = site.service.telemetry()
        assert snap["health"]["faults_armed"] is True
        assert snap["faults"]["plan"] == "drop-some"
        assert "health:" in snap.describe() or "faults:" in snap.describe()
