"""End-to-end session tests: the full §III-B workflow on honest clients."""

import numpy as np
import pytest

from tests.conftest import TransferScenario


class TestHonestSessions:
    def test_full_widget_session_certifies(self, scenario):
        vspec = scenario.begin()
        scenario.honest_fill()
        scenario.user.choose_radio("speed", "Express")
        scenario.user.choose_select("currency", "EUR")
        decision = scenario.end()
        assert decision.certified, decision.reason
        assert scenario.server.verify(decision.request).ok
        report = scenario.vwitness.report
        assert report.display_ok
        assert not report.violations
        assert report.frames_sampled > 3

    def test_tracked_inputs_match_entered_values(self, scenario):
        scenario.begin()
        scenario.honest_fill()
        decision = scenario.end()
        assert decision.certified, decision.reason
        body = decision.request.body
        assert body["recipient"] == "ACC-998877"
        assert body["amount"] == "250.00"
        assert body["confirm"] == "on"

    def test_edit_and_correct_value_session(self, scenario):
        """Users may delete and retype; the final displayed value wins."""
        scenario.begin()
        scenario.user.fill_text_input("amount", "999")
        # User changes their mind: clear and re-enter.
        scenario.user.fill_text_input("amount", "42")
        scenario.user.fill_text_input("recipient", "ACC-1")
        scenario.user.toggle_checkbox("confirm", True)
        decision = scenario.end()
        assert decision.certified, decision.reason
        assert decision.request.body["amount"] == "42"

    def test_unfilled_fields_submit_empty(self, scenario):
        scenario.begin()
        scenario.user.fill_text_input("amount", "10")
        scenario.user.fill_text_input("recipient", "R")
        scenario.user.toggle_checkbox("confirm", True)
        decision = scenario.end()
        assert decision.certified, decision.reason
        assert decision.request.body["speed"] == ""

    def test_caching_reduces_subsequent_frame_cost(self, text_model, image_model):
        scenario = TransferScenario(text_model, image_model, caching=True)
        scenario.begin()
        scenario.honest_fill()
        decision = scenario.end()
        assert decision.certified, decision.reason
        times = scenario.vwitness.report.timing.frame_times
        assert len(times) > 3
        assert np.mean(times[1:]) < times[0]

    def test_disabling_cache_still_certifies(self, text_model, image_model):
        scenario = TransferScenario(text_model, image_model, caching=False)
        scenario.begin()
        scenario.user.fill_text_input("amount", "5")
        scenario.user.fill_text_input("recipient", "R")
        scenario.user.toggle_checkbox("confirm", True)
        decision = scenario.end()
        assert decision.certified, decision.reason
        assert scenario.vwitness.report.frames_skipped == 0

    def test_sequential_and_batched_agree(self, text_model, image_model):
        for batched in (False, True):
            scenario = TransferScenario(text_model, image_model, batched=batched)
            scenario.begin()
            scenario.user.fill_text_input("amount", "77")
            scenario.user.fill_text_input("recipient", "Rr")
            scenario.user.toggle_checkbox("confirm", True)
            decision = scenario.end()
            assert decision.certified, f"batched={batched}: {decision.reason}"

    def test_scrolled_session_certifies(self, text_model, image_model):
        """A session on a page taller than the viewport, requiring scrolling."""
        from repro.web.elements import Button, Page, TextBlock, TextInput
        from repro.web import Browser, HonestUser, Machine
        from repro.web.extension import BrowserExtension
        from repro.core.session import install_vwitness
        from repro.crypto import CertificateAuthority
        from repro.server import WebServer

        page = Page(
            title="Long Form",
            width=640,
            elements=[TextBlock(f"Section {i} text", 14) for i in range(8)]
            + [TextInput("late_field", label="Late field"), Button("Send")],
        )
        ca = CertificateAuthority()
        server = WebServer(ca)
        server.register_page("long", page)
        machine = Machine(640, 300)
        browser = Browser(machine, server.serve_page("long"))
        vwitness = install_vwitness(
            machine, ca, text_model=text_model, image_model=image_model, batched=True
        )
        extension = BrowserExtension(browser, server, vwitness)
        vspec = extension.acquire_vspecs("long")
        browser.paint()
        extension.begin_session()
        user = HonestUser(browser)
        user.fill_text_input("late_field", "deep")
        assert browser.scroll_y > 0  # the user really scrolled
        body = dict(browser.page.form_values())
        body["session_id"] = vspec.session_id
        decision = extension.end_session(body)
        assert decision.certified, decision.reason

    def test_session_report_invocation_accounting(self, scenario):
        scenario.begin()
        scenario.honest_fill()
        scenario.end()
        report = scenario.vwitness.report
        assert report.text_invocations > 0
        per_frame = sum(r.text_invocations for r in report.frame_results)
        # Display validation accounts for most invocations; the remainder
        # come from interaction hint verification.
        assert 0 < per_frame <= report.text_invocations

    def test_second_session_on_same_machine(self, scenario):
        scenario.begin()
        scenario.honest_fill()
        first = scenario.end()
        assert first.certified
        # A fresh VSPEC/session on the same machine and browser state: the
        # form still holds old values, so the clean-start check must fail.
        scenario.browser.page.find_input("amount").value = "250.00"
        vspec2 = scenario.extension.acquire_vspecs("transfer")
        scenario.browser.paint()
        scenario.extension.begin_session()
        decision = scenario.extension.end_session(
            dict(scenario.browser.page.form_values(), session_id=vspec2.session_id)
        )
        assert not decision.certified  # inputs were not empty at start


class TestSessionLifecycleErrors:
    def test_hint_without_session_rejected(self, scenario):
        with pytest.raises(RuntimeError):
            scenario.vwitness.receive_hint(None)

    def test_end_without_session_rejected(self, scenario):
        with pytest.raises(RuntimeError):
            scenario.vwitness.end_session({})

    def test_double_begin_rejected(self, scenario):
        scenario.begin()
        with pytest.raises(RuntimeError):
            scenario.vwitness.begin_session(scenario.vspec)
