"""Tests for the evaluation datasets and the baseline validators."""

import numpy as np
import pytest

from repro.baselines.imagehash import ImageHashValidator
from repro.baselines.pixelcmp import PixelCompareValidator
from repro.baselines.teework import (
    FIDELIUS_SUPPORTED,
    PROTECTION_SUPPORTED,
    VWITNESS_SUPPORTED,
    compatible_forms,
    system_support_table,
)
from repro.datasets.clickbench import clickbench_dataset
from repro.datasets.corpus import ELEMENT_KINDS, FormCensus, full_corpus, jotform_census
from repro.datasets.forms import (
    WPFORMS_TEMPLATE_COUNT,
    jotform_page,
    sample_user_entries,
    wpforms_template,
)
from repro.raster.stacks import stack_registry
from repro.raster.text import render_text_line
from repro.server.generate import build_vspec
from repro.web.elements import Button, TextInput


class TestFormGenerators:
    def test_jotform_pages_deterministic(self):
        a = jotform_page(5)
        b = jotform_page(5)
        assert [type(e).__name__ for e in a.elements] == [type(e).__name__ for e in b.elements]
        assert a.title == b.title

    def test_jotform_pages_vary_across_seeds(self):
        kinds = {tuple(type(e).__name__ for e in jotform_page(s).elements) for s in range(12)}
        assert len(kinds) > 6

    def test_jotform_pages_are_vspec_compatible(self):
        for seed in range(6):
            page = jotform_page(seed)
            vspec = build_vspec(page, f"jf-{seed}")  # must not raise
            assert vspec.entries

    def test_every_jotform_page_has_submit(self):
        for seed in range(10):
            page = jotform_page(seed)
            assert any(isinstance(e, Button) for e in page.elements)
            assert any(isinstance(e, TextInput) for e in page.elements)

    def test_wpforms_templates(self):
        assert WPFORMS_TEMPLATE_COUNT == 109
        page = wpforms_template(0)
        assert page.elements
        with pytest.raises(ValueError):
            wpforms_template(109)

    def test_sample_user_entries_cover_inputs(self):
        page = jotform_page(3)
        entries = sample_user_entries(page, 3)
        input_names = set(page.form_values())
        assert set(entries) == input_names
        for element in page.elements:
            if isinstance(element, TextInput) and element.max_length:
                assert len(entries[element.name]) <= element.max_length


class TestClickbench:
    @pytest.fixture(scope="class")
    def samples(self):
        return clickbench_dataset(count=8, width=360, height=420)

    def test_counts_and_flags(self, samples):
        assert len(samples) == 8
        assert sum(1 for s in samples if not s.tampered) == 1
        assert all(s.expected.shape == s.displayed.shape for s in samples)

    def test_attack_taxonomy_present(self, samples):
        kinds = {s.attack for s in samples if s.tampered}
        assert {"overlay", "text-swap", "redress", "text-in-image"} <= kinds

    def test_tampered_screens_differ_from_expected(self, samples):
        for sample in samples:
            if sample.tampered:
                delta = np.abs(sample.displayed - sample.expected)
                assert delta.max() > 50.0, sample.name

    def test_benign_pair_structurally_close(self, samples):
        benign = [s for s in samples if not s.tampered][0]
        from repro.vision.match import normalized_cross_correlation

        assert normalized_cross_correlation(benign.displayed, benign.expected) > 0.9

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            clickbench_dataset(count=1)


class TestCompatCorpus:
    def test_census_totals(self):
        corpus = full_corpus()
        assert len(corpus) == 2585
        assert all(f.total > 0 for f in corpus)

    def test_census_deterministic(self):
        a = jotform_census(count=50)
        b = jotform_census(count=50)
        assert [f.counts for f in a] == [f.counts for f in b]

    def test_supported_fraction_bounds(self):
        for form in jotform_census(count=100):
            for kinds in (FIDELIUS_SUPPORTED, PROTECTION_SUPPORTED, VWITNESS_SUPPORTED):
                assert 0.0 <= form.supported_fraction(kinds) <= 1.0

    def test_table_x_ordering_holds(self):
        corpus = full_corpus()
        table = system_support_table(corpus)
        fid, pro, vw = (table[k][1] for k in ("Fidelius", "ProtectION", "vWitness"))
        assert fid < pro < vw
        assert fid < 0.02  # Fidelius compatible with almost nothing
        assert 0.04 < pro < 0.12  # ProtectION in the single digits
        assert 0.80 < vw < 0.95  # vWitness compatible with most forms

    def test_threshold_sensitivity(self):
        corpus = jotform_census(count=300)
        strict = compatible_forms(corpus, VWITNESS_SUPPORTED, threshold=1.0)
        loose = compatible_forms(corpus, VWITNESS_SUPPORTED, threshold=0.9)
        assert strict <= loose
        with pytest.raises(ValueError):
            compatible_forms(corpus, VWITNESS_SUPPORTED, threshold=0.0)

    def test_form_census_helpers(self):
        census = FormCensus("f", tuple(1 for _ in ELEMENT_KINDS))
        assert census.total == len(ELEMENT_KINDS)
        assert census.count("video") == 1


class TestBaselineValidators:
    def test_pixel_compare_exact_identity(self):
        validator = PixelCompareValidator()
        region = render_text_line("Hello", 16).pixels
        assert validator.verify_region(region, region)

    def test_pixel_compare_false_alarms_cross_stack(self):
        validator = PixelCompareValidator()
        a = render_text_line("Hello", 16).pixels
        b = render_text_line("Hello", 16, stack=stack_registry()[4]).pixels
        assert not validator.verify_region(b, a)  # benign variation flagged

    def test_image_hash_dilemma_no_separating_threshold(self):
        """The hash baseline's core failure (paper §I/§III-C1).

        The Hamming distance of a *benign* cross-stack rendering exceeds
        that of a *malicious* one-digit swap, so any threshold loose
        enough to avoid false alarms also accepts the tampering.
        """
        from repro.vision.hashing import difference_hash, hamming_distance

        reference = render_text_line("Hello", 16).pixels
        benign = render_text_line("Hello", 16, stack=stack_registry()[2]).pixels
        benign_distance = hamming_distance(
            difference_hash(reference), difference_hash(benign)
        )
        honest = render_text_line("pay 100 dollars", 14).pixels
        tampered = render_text_line("pay 900 dollars", 14).pixels
        tamper_distance = hamming_distance(
            difference_hash(honest), difference_hash(tampered)
        )
        assert tamper_distance < benign_distance
        # At a threshold that accepts the benign render, the tamper passes.
        validator = ImageHashValidator(max_distance=benign_distance)
        assert validator.verify_region(benign, reference)
        assert validator.verify_region(tampered, honest)

    def test_shape_mismatch_rejected_by_both(self):
        assert not PixelCompareValidator().verify_region(np.zeros((4, 4)), np.zeros((5, 5)))
        assert not ImageHashValidator().verify_region(np.zeros((8, 8)), np.zeros((9, 9)))
