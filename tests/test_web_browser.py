"""Tests for the browser: painting, events, focus, POF drawing, hinting."""

import numpy as np
import pytest

from repro.web import layout as lay
from repro.web.browser import Browser
from repro.web.elements import (
    Button,
    Checkbox,
    Page,
    RadioGroup,
    ScrollableList,
    SelectBox,
    TextBlock,
    TextInput,
)
from repro.web.hypervisor import Machine
from repro.web.render import DEFAULT_POF


def _bench(elements, display=(640, 300)):
    page = Page(title="T", width=640, elements=elements)
    machine = Machine(*display)
    browser = Browser(machine, page)
    browser.paint()
    return machine, browser, page


def _click_center(browser, element, dy=0):
    cx, cy = element.rect.center
    browser.click(cx, cy - browser.scroll_y + dy)


class TestPainting:
    def test_paint_fills_framebuffer(self):
        machine, browser, _page = _bench([TextBlock("hello world")])
        frame = machine.sample_framebuffer()
        assert frame.pixels.min() < 100.0  # some ink
        assert frame.shape == (300, 640)

    def test_width_mismatch_rejected(self):
        page = Page(title="T", width=320, elements=[TextBlock("x")])
        with pytest.raises(ValueError):
            Browser(Machine(640, 300), page)

    def test_scroll_clamps(self):
        machine, browser, _ = _bench([TextBlock("x")] * 30)
        browser.scroll(10_000)
        assert browser.scroll_y == browser.max_scroll
        browser.scroll(-99_999)
        assert browser.scroll_y == 0

    def test_short_page_letterboxes_with_page_background(self):
        """A page shorter than the display letterboxes below its end with
        the page background fill (not stale framebuffer content)."""
        page = Page(
            title="Short",
            width=640,
            background=240.0,
            elements=[TextBlock("just one line")],
        )
        machine = Machine(640, 500)
        browser = Browser(machine, page)
        browser.paint()
        assert browser.page_height < machine.display_height
        frame = machine.sample_framebuffer().pixels
        letterbox = frame[browser.page_height :, :]
        assert letterbox.size > 0
        assert np.all(letterbox == 240.0)
        # The page area itself is rendered, not background fill.
        assert frame[: browser.page_height, :].min() < 100.0


class TestTyping:
    def test_click_focus_and_type(self):
        machine, browser, page = _bench([TextInput("name", label="Name")])
        field = page.elements[0]
        box = lay.input_box_rect(field)
        browser.click(*box.center)
        assert browser.focused_id == field.element_id
        browser.type_text("ab")
        assert field.value == "ab"
        assert field.caret == 2

    def test_caret_placement_by_click_position(self):
        machine, browser, page = _bench([TextInput("name", label="Name", value="hello")])
        field = page.elements[0]
        origin_x, _ = lay.text_origin_in_input(field)
        box = lay.input_box_rect(field)
        browser.click(origin_x + lay.char_advance(field.text_size) * 2, box.center[1])
        assert field.caret == 2
        browser.type_character("X")
        assert field.value == "heXllo"

    def test_backspace_and_selection_replace(self):
        machine, browser, page = _bench([TextInput("name", label="Name")])
        field = page.elements[0]
        browser.click(*lay.input_box_rect(field).center)
        browser.type_text("12345")
        browser.press_backspace()
        assert field.value == "1234"
        browser.select_range(1, 3)
        assert field.selection == (1, 3)
        browser.type_character("X")
        assert field.value == "1X4"
        assert field.selection is None

    def test_max_length_enforced(self):
        machine, browser, page = _bench([TextInput("name", label="N", max_length=3)])
        field = page.elements[0]
        browser.click(*lay.input_box_rect(field).center)
        browser.type_text("abcdef")
        assert field.value == "abc"

    def test_typing_without_focus_is_noop(self):
        machine, browser, page = _bench([TextInput("name", label="N")])
        browser.type_text("abc")
        assert page.elements[0].value == ""

    def test_selection_bounds_checked(self):
        machine, browser, page = _bench([TextInput("name", label="N", value="ab")])
        browser.click(*lay.input_box_rect(page.elements[0]).center)
        with pytest.raises(ValueError):
            browser.select_range(0, 5)


class TestWidgets:
    def test_checkbox_toggle_notifies_after_paint(self):
        machine, browser, page = _bench([Checkbox("ok", "OK")])
        seen = []

        def listener(element, old, new):
            # At notification time the framebuffer must already show the
            # new state (checkmark ink in the box region).
            frame = machine.sample_framebuffer()
            box_rect = element.rect
            region = frame.pixels[box_rect.y : box_rect.y2, box_rect.x : box_rect.x + 20]
            seen.append((old, new, float(region.min())))

        browser.add_input_listener(listener)
        _click_center(browser, page.elements[0])
        assert seen and seen[0][0] == "off" and seen[0][1] == "on"
        assert seen[0][2] < 150.0  # checkmark ink visible at notify time

    def test_radio_row_click_selects(self):
        machine, browser, page = _bench([RadioGroup("speed", ["a", "b", "c"])])
        group = page.elements[0]
        browser.click(group.rect.x + 5, group.rect.y + lay.ROW_HEIGHT * 2 + 5)
        assert group.selected == 2

    def test_select_choose_option(self):
        machine, browser, page = _bench([SelectBox("c", ["x", "y", "z"])])
        select = page.elements[0]
        _click_center(browser, select)
        browser.choose_option(select.element_id, 2)
        assert select.selected == 2
        assert not select.open
        with pytest.raises(ValueError):
            browser.choose_option(select.element_id, 9)

    def test_scrollable_list_scroll_and_pick(self):
        machine, browser, page = _bench(
            [ScrollableList("t", ["a", "b", "c", "d", "e"], visible_rows=2)]
        )
        lst = page.elements[0]
        browser.scroll_element(lst.element_id, 2)
        assert lst.scroll_offset == 2
        browser.click(lst.rect.x + 8, lst.rect.y + 2 + lay.ROW_HEIGHT // 2)
        assert lst.selected == 2  # first visible row after scrolling by 2

    def test_submit_button_fires_listeners(self):
        machine, browser, page = _bench(
            [TextInput("a", label="A", value="v"), Button("Send", action="submit")]
        )
        captured = []
        browser.add_submit_listener(captured.append)
        _click_center(browser, page.elements[1])
        assert captured == [{"a": "v"}]


class TestPOFRendering:
    def test_focus_outline_visible_on_frame(self):
        machine, browser, page = _bench([TextInput("a", label="A")])
        field = page.elements[0]
        browser.click(*lay.input_box_rect(field).center)
        frame = machine.sample_framebuffer()
        band = np.abs(frame.pixels - DEFAULT_POF.outline_intensity) <= 8
        assert band.sum() > 100  # the ring exists

    def test_caret_visible_when_focused(self):
        machine, browser, page = _bench([TextInput("a", label="A")])
        field = page.elements[0]
        browser.click(*lay.input_box_rect(field).center)
        browser.type_text("hi")
        frame = machine.sample_framebuffer()
        band = np.abs(frame.pixels - DEFAULT_POF.caret_intensity) <= 8
        assert band.sum() >= 20  # a 2px-wide, ~20px-tall bar

    def test_selection_highlight_band(self):
        machine, browser, page = _bench([TextInput("a", label="A", value="hello")])
        field = page.elements[0]
        browser.click(*lay.input_box_rect(field).center)
        browser.select_range(0, 4)
        frame = machine.sample_framebuffer()
        band = np.abs(frame.pixels - DEFAULT_POF.highlight_intensity) <= 6
        assert band.sum() > 50

    def test_no_pof_without_focus(self):
        machine, browser, page = _bench([TextInput("a", label="A")])
        frame = machine.sample_framebuffer()
        band = np.abs(frame.pixels - DEFAULT_POF.outline_intensity) <= 8
        from repro.vision.components import find_rectangles

        assert find_rectangles(band, min_width=30, min_height=16) == []
