"""Frame-level validation planner: batched/sequential parity + plan stats.

The planner's contract is that plan-level batching is a pure execution
strategy: for any frame — tampered or benign, aligned or retried — the
batched and sequential executors must produce identical verdicts and
failures, differing only in how many model forwards they spend.
"""

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.caches import DigestCache
from repro.core.display import DisplayValidator
from repro.core.verifiers import ImageVerifier, TextVerifier, ValidationPlan
from repro.datasets.forms import jotform_page
from repro.server.generate import build_vspec
from repro.raster.stacks import stack_registry
from repro.web.browser import Browser
from repro.web.hypervisor import Machine


def _render(seed: int):
    page = jotform_page(seed % 50)
    vspec = build_vspec(copy.deepcopy(page), f"pp-{seed}")
    machine = Machine(640, min(600, vspec.height))
    browser = Browser(machine, copy.deepcopy(page), stack=stack_registry()[seed % len(stack_registry())])
    browser.paint()
    return vspec, machine, browser


def _validator(vspec, text_model, image_model, batched: bool) -> DisplayValidator:
    cache = DigestCache()
    return DisplayValidator(
        vspec,
        TextVerifier(text_model, batched=batched, cache=cache.scoped("text")),
        ImageVerifier(image_model, batched=batched, cache=cache.scoped("image")),
    )


def _tampered_frame(machine, vspec, kind: str, rng) -> np.ndarray:
    frame = machine.sample_framebuffer().pixels
    if kind == "fill":
        y = int(rng.integers(0, max(frame.shape[0] - 30, 1)))
        x = int(rng.integers(0, max(frame.shape[1] - 60, 1)))
        frame = frame.copy()
        frame[y : y + 24, x : x + 48] = 120.0
    elif kind == "text":
        from repro.attacks.tamper import swap_text_on_display

        text_entries = [e for e in vspec.entries if e.kind == "text"]
        if text_entries:
            entry = text_entries[int(rng.integers(0, len(text_entries)))]
            swap_text_on_display(
                machine, entry.rect.x, entry.rect.y, "FORGED", size=14
            )
            frame = machine.sample_framebuffer().pixels
    elif kind == "shift":
        # Push every glyph one row down: the nominal crop fails and the
        # alignment-retry rings must recover (or reject) each cell — the
        # retry path runs in both modes.
        frame = np.vstack([np.full((1, frame.shape[1]), vspec.background), frame[:-1]])
    return frame


class TestPlannerParity:
    """Property: planner-batched == sequential on randomized frames."""

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        tamper=st.sampled_from(["none", "fill", "text", "shift"]),
    )
    def test_batched_and_sequential_identical(self, text_model, image_model, seed, tamper):
        vspec, machine, _browser = _render(seed)
        frame = _tampered_frame(machine, vspec, tamper, np.random.default_rng(seed))

        sequential = _validator(vspec, text_model, image_model, batched=False).validate(frame)
        batched = _validator(vspec, text_model, image_model, batched=True).validate(frame)

        assert batched.ok == sequential.ok
        assert batched.offset_y == sequential.offset_y
        assert batched.failures == sequential.failures
        assert batched.entries_checked == sequential.entries_checked
        # Same plan, same unit inputs, same cache-miss pattern...
        assert batched.plan_text_units == sequential.plan_text_units
        assert batched.plan_image_pairs == sequential.plan_image_pairs
        assert batched.text_retry_rounds == sequential.text_retry_rounds
        assert batched.text_invocations == sequential.text_invocations
        assert batched.image_invocations == sequential.image_invocations
        # ...but O(1) forwards per model kind instead of one per unit.
        if sequential.text_invocations > 1:
            assert batched.text_forwards < sequential.text_forwards


class TestRetryPath:
    def test_shifted_frame_recovered_via_batched_retry(self, text_model, image_model):
        vspec, machine, _browser = _render(3)
        frame = machine.sample_framebuffer().pixels
        shifted = np.vstack([np.full((1, frame.shape[1]), vspec.background), frame[:-1]])

        batched = _validator(vspec, text_model, image_model, batched=True)
        result = batched.validate(shifted)
        # The nominal crop misses every glyph; the (0,-1) retry ring crops
        # one row lower and recovers them — as one batched round per ring,
        # not 12 serial calls per entry.
        assert result.text_retry_rounds > 0
        assert not any(f.kind == "text" for f in result.failures), [
            f.reason for f in result.failures
        ][:3]

    def test_plan_forwards_bounded_by_retry_rounds(self, text_model, image_model):
        vspec, machine, _browser = _render(3)
        frame = machine.sample_framebuffer().pixels
        shifted = np.vstack([np.full((1, frame.shape[1]), vspec.background), frame[:-1]])
        validator = _validator(vspec, text_model, image_model, batched=True)
        result = validator.validate(shifted)
        # One nominal round + one forward per executed retry ring (chunked
        # plans may add a few more), never one forward per unit input.
        assert result.text_forwards <= 2 * (1 + result.text_retry_rounds)
        assert result.text_forwards < max(result.plan_text_units, 2)


class TestPlanUnits:
    def test_plan_collects_all_unit_inputs(self, text_model, image_model):
        vspec, machine, _browser = _render(7)
        frame = machine.sample_framebuffer().pixels
        validator = _validator(vspec, text_model, image_model, batched=True)
        result = validator.validate(frame)
        assert result.plan_text_units >= result.text_invocations
        assert result.plan_image_pairs >= result.image_invocations
        assert result.plan_text_units > 0

    def test_image_plan_groups_scatter_independently(self, image_model):
        from repro.raster.icons import render_icon

        lock = render_icon("lock", 32).pixels
        cart = render_icon("cart", 32).pixels
        plan = ValidationPlan()
        matching = plan.add_region(lock, lock)
        mismatching = plan.add_region(cart, lock)
        verifier = ImageVerifier(image_model, batched=True)
        verdicts = verifier.execute_plan(plan)
        assert verdicts[matching] is True
        assert verdicts[mismatching] is False

    def test_empty_plan_executes_to_nothing(self, text_model, image_model):
        plan = ValidationPlan()
        assert len(TextVerifier(text_model, batched=True).execute_plan(plan)) == 0
        assert ImageVerifier(image_model, batched=True).execute_plan(plan) == []

    def test_duplicate_units_cost_one_invocation_with_cache(self, text_model):
        # Repeated glyphs across a frame's plan share one cache key; the
        # round dedupes them before the forward instead of recomputing.
        from repro.raster.text import render_char_tile

        cache = DigestCache()
        verifier = TextVerifier(text_model, batched=True, cache=cache.scoped("text"))
        tile = render_char_tile("Q", 32).pixels
        verdicts = verifier.verify_tiles([tile, tile, tile], ["Q", "Q", "Q"])
        assert verifier.invocations == 1
        assert len({bool(v) for v in verdicts}) == 1

    def test_invalid_chunk_size_rejected(self, text_model):
        from repro.core.service import WitnessConfig

        with pytest.raises(ValueError, match="chunk_size"):
            TextVerifier(text_model, chunk_size=0)
        with pytest.raises(ValueError, match="predict_chunk"):
            WitnessConfig(predict_chunk=0)
        WitnessConfig(predict_chunk=None)  # unchunked is allowed

    def test_wrapper_methods_share_plan_path(self, text_model):
        # verify_cells is a thin wrapper over a single-entry plan: same
        # verdicts as planning the cells by hand.
        from repro.raster.text import char_advance, render_text_line
        from repro.vision.image import Image
        from repro.vspec.spec import CharCell

        line = render_text_line("AB", 16)
        canvas = Image.blank(80, 60, 255.0)
        canvas.paste(line, 10, 20)
        advance = char_advance(16)
        cells = [
            CharCell(10, 20, advance, 16, "A"),
            CharCell(10 + advance, 20, advance, 16, "B"),
        ]
        verifier = TextVerifier(text_model, batched=True)
        direct = verifier.verify_cells(canvas.pixels, cells)
        plan = ValidationPlan()
        cell_range = plan.add_cells(canvas.pixels, cells)
        planned = verifier.execute_plan(plan)[cell_range]
        assert np.array_equal(direct, planned)
