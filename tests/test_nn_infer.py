"""The frozen inference engine: parity, workspaces, lifecycle.

Covers the PR-4 tentpole guarantees:

* decision parity between the frozen and training forward paths, both at
  the model level (randomized honest/tampered matcher inputs through
  trained models) and at the verifier level (frame-style unit inputs
  through ``inference="frozen"`` vs ``"training"`` verifiers);
* workspace arenas: shape-keyed reuse (repeated shapes allocate
  nothing), thread confinement (one arena per thread), LRU eviction
  under a shape storm;
* compile-time constant folding of affine chains;
* serialize/zoo agreement on when freezing happens.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.nn.data import CHARSET
from repro.nn.infer import (
    INFERENCE_MODES,
    FrozenMatcher,
    FrozenNet,
    FrozenPairMatcher,
    freeze,
    frozen_twin,
    invalidate_frozen,
    predict_fn,
)
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.model import Sequential
from repro.nn.serialize import load_model, save_model
from repro.nn.zoo import build_image_matcher, build_text_matcher, build_text_reference


def _rand_text_inputs(rng, n):
    obs = rng.random((n, 1, 32, 32), dtype=np.float32)
    exp = rng.random((n, len(CHARSET))).astype(np.float32)
    return obs, exp


def _rand_image_inputs(rng, n):
    return (
        rng.random((n, 1, 32, 32), dtype=np.float32),
        rng.random((n, 1, 32, 32), dtype=np.float32),
    )


class TestForwardParity:
    """Frozen logits match training logits to float32 rounding; decisions
    on trained models are identical (margins dwarf the drift)."""

    def test_text_matcher_logits(self):
        model = build_text_matcher(seed=7)
        frozen = freeze(model)
        obs, exp = _rand_text_inputs(np.random.default_rng(0), 17)
        ref = model.forward(obs, exp)
        got = frozen.forward(obs, exp)
        assert got.dtype == np.float32
        assert np.allclose(ref, got, rtol=1e-4, atol=1e-5)

    def test_image_matcher_logits(self):
        model = build_image_matcher(seed=11)
        frozen = freeze(model)
        obs, exp = _rand_image_inputs(np.random.default_rng(1), 13)
        assert np.allclose(model.forward(obs, exp), frozen.forward(obs, exp), rtol=1e-4, atol=1e-5)

    def test_classifier_sequential(self):
        model = build_text_reference(seed=13)
        frozen = freeze(model)
        x = np.random.default_rng(2).random((9, 1, 32, 32), dtype=np.float32)
        assert np.allclose(model.forward(x), frozen.forward(x), rtol=1e-4, atol=1e-5)
        assert np.array_equal(model.predict(x), frozen.predict(x))

    def test_dense_only_path_is_bit_identical(self):
        # No conv stages -> no column reordering -> bit-for-bit equality.
        rng = np.random.default_rng(3)
        seq = Sequential(
            [Dense(20, 16, rng=rng), ReLU(), Dense(16, 3, rng=rng)]
        )
        x = np.random.default_rng(4).random((11, 20), dtype=np.float32)
        assert np.array_equal(seq.forward(x), freeze(seq).forward(x))

    def test_chunked_match_probability_consistent(self):
        model = build_text_matcher(seed=7)
        frozen = freeze(model)
        obs, exp = _rand_text_inputs(np.random.default_rng(5), 23)
        full = frozen.match_probability(obs, exp, chunk_size=None)
        chunked = frozen.match_probability(obs, exp, chunk_size=7)
        # BLAS blocking differs with the GEMM's row count, so float32
        # probabilities may differ in the last ulps across chunkings;
        # decisions do not.
        assert np.allclose(full, chunked, rtol=1e-5, atol=1e-6)
        assert np.array_equal(full >= frozen.threshold, chunked >= frozen.threshold)

    def test_empty_batch(self):
        frozen = freeze(build_text_matcher(seed=7))
        obs, exp = _rand_text_inputs(np.random.default_rng(6), 0)
        assert frozen.predict(obs, exp).shape == (0,)

    def test_threshold_views(self):
        frozen = freeze(build_text_matcher(seed=7))
        hard = frozen.with_threshold(0.99)
        assert hard.threshold == 0.99
        assert hard.observed_net is frozen.observed_net
        with pytest.raises(ValueError):
            frozen.with_threshold(1.5)

    def test_input_validation(self):
        frozen = freeze(build_image_matcher(seed=11))
        good = np.zeros((2, 1, 32, 32), np.float32)
        with pytest.raises(ValueError):
            frozen.forward(good, np.zeros((2, 1, 16, 16), np.float32))
        with pytest.raises(ValueError):
            frozen.forward(np.zeros((2, 3, 32, 32), np.float32), np.zeros((2, 3, 32, 32), np.float32))

    def test_freeze_rejects_unknown(self):
        class Weird:
            pass

        with pytest.raises(TypeError, match="cannot freeze"):
            freeze(Weird())


class TestDecisionParityProperty:
    """Randomized honest/tampered frames through both engine paths."""

    def test_verifier_verdicts_identical(self, text_model, image_model):
        """Property: for randomized honest and tampered unit inputs, the
        frozen and training verifiers return the same verdict for every
        unit, across many seeds."""
        from repro.core.verifiers import ImageVerifier, TextVerifier
        from repro.nn.data import image_dataset, text_dataset
        from repro.raster.fonts import font_registry
        from repro.raster.stacks import stack_registry

        stacks = stack_registry()[:2]
        obs, exp, _ = text_dataset(font_registry()[:2], stacks=stacks, seed=21)
        rng = np.random.default_rng(21)
        for trial in range(6):
            pick = rng.choice(obs.shape[0], size=40, replace=False)
            tiles = [np.asarray(obs[i, 0] * 255.0) for i in pick]
            # Tamper a random half of the tiles with pixel noise.
            tampered = rng.random(len(tiles)) < 0.5
            for j, is_tampered in enumerate(tampered):
                if is_tampered:
                    noise = rng.normal(0, 90, tiles[j].shape)
                    tiles[j] = np.clip(tiles[j] + noise, 0, 255)
            chars = [CHARSET[int(i) % len(CHARSET)] for i in pick]
            frozen_v = TextVerifier(text_model, batched=True, inference="frozen")
            training_v = TextVerifier(text_model, batched=True, inference="training")
            assert np.array_equal(
                frozen_v.verify_tiles(tiles, chars), training_v.verify_tiles(tiles, chars)
            ), f"text verdicts diverged on trial {trial}"

        obs_i, exp_i, _ = image_dataset(stacks=stacks, seed=22)
        for trial in range(4):
            pick = rng.choice(obs_i.shape[0], size=24, replace=False)
            pairs = [
                (np.asarray(obs_i[i, 0] * 255.0), np.asarray(exp_i[i, 0] * 255.0))
                for i in pick
            ]
            frozen_v = ImageVerifier(image_model, batched=True, inference="frozen")
            training_v = ImageVerifier(image_model, batched=True, inference="training")
            assert np.array_equal(
                frozen_v.verify_pairs(pairs), training_v.verify_pairs(pairs)
            ), f"image verdicts diverged on trial {trial}"

    def test_sequential_mode_verdicts_identical(self, text_model):
        from repro.core.verifiers import TextVerifier
        from repro.nn.data import text_dataset
        from repro.raster.fonts import font_registry

        obs, _exp, _ = text_dataset(font_registry()[:1], seed=23)
        tiles = [np.asarray(obs[i, 0] * 255.0) for i in range(12)]
        chars = [CHARSET[i % len(CHARSET)] for i in range(12)]
        frozen_v = TextVerifier(text_model, batched=False, inference="frozen")
        training_v = TextVerifier(text_model, batched=False, inference="training")
        assert np.array_equal(
            frozen_v.verify_tiles(tiles, chars), training_v.verify_tiles(tiles, chars)
        )

    def test_session_decisions_identical(self, text_model, image_model):
        """A full witnessed session certifies identically on both engines."""
        from benchmarks.harness import run_interactive_session

        for inference in INFERENCE_MODES:
            decision, report, _ = run_interactive_session(
                0, text_model, image_model, batched=True, inference=inference
            )
            assert decision.certified, f"inference={inference!r} failed to certify"


class TestWorkspaceArena:
    def test_repeated_shape_allocates_once(self):
        frozen = freeze(build_text_matcher(seed=7))
        rng = np.random.default_rng(7)
        obs, exp = _rand_text_inputs(rng, 32)
        frozen.predict(obs, exp)
        allocations = lambda: sum(  # noqa: E731
            a["allocations"] for arenas in frozen.workspace_stats().values() for a in arenas
        )
        first = allocations()
        assert first > 0
        for _ in range(4):
            obs, exp = _rand_text_inputs(rng, 32)
            frozen.predict(obs, exp)
        assert allocations() == first, "repeated-shape forwards must not allocate"
        hits = sum(a["hits"] for arenas in frozen.workspace_stats().values() for a in arenas)
        assert hits > 0

    def test_distinct_shapes_get_distinct_workspaces(self):
        frozen = freeze(build_text_matcher(seed=7))
        rng = np.random.default_rng(8)
        for n in (4, 9, 4):
            frozen.predict(*_rand_text_inputs(rng, n))
        obs_stats = frozen.workspace_stats()["observed"]
        assert sum(a["shapes"] for a in obs_stats) == 2

    def test_eviction_bounds_shape_storm(self):
        frozen = freeze(build_text_matcher(seed=7), max_shapes=2)
        rng = np.random.default_rng(9)
        for n in range(1, 9):  # eight distinct batch shapes
            frozen.predict(*_rand_text_inputs(rng, n))
        for net_stats in frozen.workspace_stats().values():
            for arena in net_stats:
                assert arena["shapes"] <= 2
                assert arena["evictions"] > 0

    def test_thread_confinement(self):
        """Concurrent forwards share no workspaces and stay correct."""
        model = build_text_matcher(seed=7)
        frozen = freeze(model)
        rng = np.random.default_rng(10)
        obs, exp = _rand_text_inputs(rng, 20)
        expected = model.predict(obs, exp, frozen=False)
        barrier = threading.Barrier(4)

        def worker(_):
            barrier.wait()
            out = []
            for _ in range(25):
                out.append(frozen.predict(obs, exp))
            return out

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(worker, range(4)))
        for per_thread in results:
            for verdicts in per_thread:
                assert np.array_equal(verdicts, expected)
        # One arena per participating thread, each thread-confined.
        obs_arenas = frozen.workspace_stats()["observed"]
        assert len(obs_arenas) >= 4
        threads = [a["thread"] for a in obs_arenas]
        assert len(threads) == len(set(threads))

    def test_runtime_flusher_threads_get_own_workspaces(self):
        """Shared-runtime flushes run on dedicated flusher threads: after
        traffic, the frozen twin's arenas are exactly the flusher's (the
        submitting thread only enqueues).  Fresh models keep the twin's
        arena registry hermetic — the zoo fixtures' twins accumulate (and
        prune) arenas from earlier suite activity."""
        from repro.runtime.executor import ValidationExecutor

        text_model = build_text_matcher(seed=7)
        image_model = build_image_matcher(seed=11)
        executor = ValidationExecutor(text_model, image_model, inference="frozen")
        rng = np.random.default_rng(11)
        obs, exp = _rand_text_inputs(rng, 8)
        obs_i, exp_i = _rand_image_inputs(rng, 6)
        with executor:
            executor.predict("text", obs, exp)
            executor.predict("image", obs_i, exp_i)
        arenas = frozen_twin(text_model).workspace_stats()["observed"]
        assert len(arenas) == 1 and "flusher" in arenas[0]["thread"]


class TestConstantFolding:
    def test_dense_chain_folds_to_one_stage(self):
        rng = np.random.default_rng(12)
        seq = Sequential(
            [Dense(12, 10, rng=rng), Dense(10, 8, rng=rng), Dense(8, 2, rng=rng)]
        )
        frozen = freeze(seq)
        assert len(frozen.stages) == 1
        x = np.random.default_rng(13).random((7, 12), dtype=np.float32)
        assert np.allclose(seq.forward(x), frozen.forward(x), rtol=1e-5, atol=1e-6)

    def test_relu_breaks_the_chain(self):
        rng = np.random.default_rng(14)
        seq = Sequential([Dense(6, 5, rng=rng), ReLU(), Dense(5, 3, rng=rng)])
        frozen = freeze(seq)
        assert len(frozen.stages) == 2  # fused Dense+ReLU, then Dense

    def test_nested_sequentials_get_unique_stage_indices(self):
        # A shared counter must thread through the recursion: duplicated
        # indices alias workspace buffers (wrong shapes or, worse,
        # silently corrupted activations).
        rng = np.random.default_rng(30)
        net = Sequential(
            [
                Sequential(
                    [Sequential([Conv2D(1, 4, rng=rng), ReLU(), MaxPool2D(2), Flatten()])]
                ),
                Dense(4 * 16 * 16, 8, rng=rng),
                ReLU(),
            ]
        )
        frozen = freeze(net)
        indices = [stage.index for stage in frozen.stages]
        assert len(indices) == len(set(indices))
        x = np.random.default_rng(31).random((3, 1, 32, 32), dtype=np.float32)
        assert np.allclose(net.forward(x), frozen.forward(x), rtol=1e-4, atol=1e-5)

    def test_conv_relu_fuses(self):
        rng = np.random.default_rng(15)
        seq = Sequential(
            [Conv2D(1, 4, rng=rng), ReLU(), MaxPool2D(2), Flatten(), Dense(4 * 16 * 16, 2, rng=rng)]
        )
        frozen = freeze(seq)
        assert len(frozen.stages) == 4  # conv+relu, pool, flatten, dense
        x = np.random.default_rng(16).random((3, 1, 32, 32), dtype=np.float32)
        assert np.allclose(seq.forward(x), frozen.forward(x), rtol=1e-4, atol=1e-5)


class TestFreezeLifecycle:
    def test_frozen_twin_is_memoized(self):
        model = build_text_matcher(seed=7)
        assert frozen_twin(model) is frozen_twin(model)
        invalidate_frozen(model)
        # a fresh twin after invalidation, still functional
        obs, exp = _rand_text_inputs(np.random.default_rng(17), 3)
        assert frozen_twin(model).predict(obs, exp).shape == (3,)

    def test_model_predict_dispatches_to_twin(self):
        model = build_text_matcher(seed=7)
        obs, exp = _rand_text_inputs(np.random.default_rng(18), 5)
        baseline = model.predict(obs, exp)  # no twin yet: training path
        frozen_twin(model)
        assert np.array_equal(model.predict(obs, exp), baseline)
        assert np.array_equal(model.predict(obs, exp, frozen=False), baseline)

    def test_with_threshold_inherits_twin(self):
        model = build_text_matcher(seed=7)
        base_twin = frozen_twin(model)
        hard = model.with_threshold(0.99)
        hard_twin = hard.__dict__.get("_frozen_twin")
        assert hard_twin is not None and hard_twin.threshold == 0.99
        # Shared compiled nets, not a recompile.
        assert hard_twin.observed_net is base_twin.observed_net
        obs, exp = _rand_text_inputs(np.random.default_rng(24), 5)
        assert np.array_equal(
            hard.predict(obs, exp), hard.predict(obs, exp, frozen=False)
        )

    def test_dead_thread_arenas_are_pruned(self):
        frozen = freeze(build_text_matcher(seed=7))
        obs, exp = _rand_text_inputs(np.random.default_rng(25), 3)
        for _ in range(3):  # each thread leaves a dead arena behind
            t = threading.Thread(target=frozen.predict, args=(obs, exp))
            t.start()
            t.join()
        frozen.predict(obs, exp)  # registration on a live thread prunes
        arenas = frozen.workspace_stats()["observed"]
        assert len(arenas) == 1  # only the calling thread's arena remains

    def test_zoo_models_carry_twins(self, text_model, image_model):
        assert "_frozen_twin" in text_model.__dict__
        assert "_frozen_twin" in image_model.__dict__
        assert isinstance(text_model.__dict__["_frozen_twin"], FrozenMatcher)
        assert isinstance(image_model.__dict__["_frozen_twin"], FrozenPairMatcher)

    def test_predict_fn_modes(self, text_model):
        with pytest.raises(ValueError, match="inference must be one of"):
            predict_fn(text_model, "bogus")
        obs, exp = _rand_text_inputs(np.random.default_rng(19), 4)
        assert np.array_equal(
            predict_fn(text_model, "frozen")(obs, exp),
            predict_fn(text_model, "training")(obs, exp),
        )

    def test_serialize_refuses_frozen_and_invalidates_on_load(self, tmp_path):
        model = build_text_matcher(seed=7)
        frozen = freeze(model)
        path = str(tmp_path / "m.npz")
        with pytest.raises(TypeError, match="frozen"):
            save_model(frozen, path)
        with pytest.raises(TypeError, match="frozen"):
            load_model(frozen, path)

        save_model(model, path)
        stale = frozen_twin(model)
        # Mutate weights in place (as an optimizer step would)...
        model.head.layers[-1].b += 5.0
        # ...then reload: the twin must be dropped and rebuilt fresh.
        load_model(model, path)
        assert "_frozen_twin" not in model.__dict__
        rebuilt = frozen_twin(model)
        assert rebuilt is not stale
        obs, exp = _rand_text_inputs(np.random.default_rng(20), 6)
        assert np.allclose(
            rebuilt.forward(obs, exp), model.forward(obs, exp), rtol=1e-4, atol=1e-5
        )

    def test_witness_config_validates_inference(self):
        from repro.core.service import WitnessConfig

        assert WitnessConfig().inference == "frozen"
        WitnessConfig(inference="training")
        with pytest.raises(ValueError, match="inference"):
            WitnessConfig(inference="compiled")
