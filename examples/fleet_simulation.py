#!/usr/bin/env python
"""Fleet simulation: a mixed crowd of guests through the shared runtime.

One :class:`WitnessService` in ``executor="shared"`` mode witnesses a
whole fleet at once: honest guests filling three different forms, one
guest whose display is tampered mid-session, and one guest that abandons
without submitting.  Every session's validation rounds coalesce in the
cross-session micro-batching runtime, so the fleet costs far fewer model
forwards than the guests would individually — and the tampered guest
still fails alone, because batching shares *execution*, never verdicts.

Run:  python examples/fleet_simulation.py
"""

from concurrent.futures import ThreadPoolExecutor

from repro.attacks.tamper import swap_text_on_display
from repro.core.service import WitnessConfig
from repro.datasets.forms import jotform_page, sample_user_entries
from repro.server.webserver import WitnessedSite
from repro.web import HonestUser
from repro.web.elements import Checkbox, RadioGroup, ScrollableList, SelectBox, TextInput

#: The fleet: GUESTS guests round-robined over the FORMS, all concurrent.
FORMS = (0, 1, 2)
GUESTS = 8


def drive_guest(index, client):
    """One guest's whole scripted life, on its own thread."""
    scenario = "honest"
    if index == 3:
        scenario = "tampered"
        # Malware overwrites an on-screen text element mid-session: the
        # witness must catch the mismatch on a later sampled frame and
        # refuse to sign.
        target = next(e for e in client.vspec.entries if e.kind == "text")
        swap_text_on_display(
            client.machine, target.rect.x, target.rect.y, "EVIL TEXT", size=14
        )
        client.machine.clock.advance(1500)
    elif index == 7:
        # This guest walks away; the context manager closes the session.
        client.close()
        return index, "abandoned", None

    user = HonestUser(client.browser, seed=index)
    entries = sample_user_entries(client.browser.page, index)
    for element in client.browser.page.elements:
        name = getattr(element, "name", None)
        if name is None or name not in entries:
            continue
        value = entries[name]
        if isinstance(element, TextInput):
            user.fill_text_input(name, value)
        elif isinstance(element, Checkbox):
            user.toggle_checkbox(name, value == "on")
        elif isinstance(element, RadioGroup):
            user.choose_radio(name, value)
        elif isinstance(element, SelectBox):
            user.choose_select(name, value)
        elif isinstance(element, ScrollableList):
            user.pick_list_item(name, value)
    decision = client.submit()
    return index, scenario, decision


def main() -> None:
    config = WitnessConfig(
        batched=True,
        executor="shared",
        runtime_max_batch_units=256,
        runtime_flush_deadline_ms=2.0,
        runtime_max_inflight_units=8192,
        runtime_admission="block",
    )
    site = WitnessedSite(config=config)
    for seed in FORMS:
        site.register_page(f"form-{seed}", jotform_page(seed))

    with site.service as service:
        clients = [
            site.connect(f"form-{FORMS[i % len(FORMS)]}", display=(640, 600))
            for i in range(GUESTS)
        ]
        print(f"fleet: {service.active_sessions} concurrent sessions open\n")
        with ThreadPoolExecutor(max_workers=GUESTS) as pool:
            outcomes = list(
                pool.map(lambda pair: drive_guest(*pair), enumerate(clients))
            )

        for index, scenario, decision in outcomes:
            verdict = "—" if decision is None else (
                "CERTIFIED" if decision.certified else f"REFUSED ({decision.reason})"
            )
            print(f"  guest {index:>2} [{scenario:<9}] {verdict}")

        stats = service.runtime_stats()
        runtime = stats["runtime"]
        counters = runtime["counters"]
        occupancy = runtime["histograms"]["batch_occupancy.text"]
        print(f"\nsessions         : {stats['sessions']}")
        print(f"cache hit rate   : {stats['cache_hit_rate']:.1%}")
        print(
            f"runtime          : {counters.get('submissions_total.text', 0)} text rounds "
            f"coalesced into {counters.get('flushes_total.text', 0)} flushes "
            f"(mean occupancy {occupancy['mean']:.1f} units)"
        )
        print(
            f"forwards         : {runtime['forwards_total']} executed, "
            f"{runtime['forwards_saved_total']} saved by cross-session batching"
        )

    certified = sum(
        1 for _, _, decision in outcomes if decision is not None and decision.certified
    )
    refused = sum(
        1 for _, _, decision in outcomes if decision is not None and not decision.certified
    )
    assert refused == 1, "exactly the tampered guest must be refused"
    assert certified == GUESTS - 2, "every honest, submitting guest certifies"
    print(f"\n{certified} honest guests certified, {refused} tampered guest refused.")


if __name__ == "__main__":
    main()
