#!/usr/bin/env python
"""Banking scenario: request tampering and UI tampering, both defeated.

Reproduces the paper's motivating attacks (Table I) on a wire-transfer
form:

1. **Request tampering** — the user sends $250 to their landlord; malware
   rewrites the recipient and amount at submission (the VipersoftX-style
   cryptocurrency redirection).  vWitness's validation function sees the
   mismatch with the inputs it observed and refuses to certify.
2. **UI tampering** — malware rewrites the *displayed* beneficiary so the
   user confirms a transfer they never intended (Fig. 2's attack).  The
   display validator flags the unexpected pixels.
3. **Background forgery** — malware submits without any user at all; with
   no hardware I/O and no displayed values, nothing can be certified.

The bank is one ``WitnessedSite`` deployment — web server plus a single
``WitnessService`` provisioned once — and every scenario below is just
another guest connection against it.

Run:  python examples/banking_attack.py
"""

from repro.attacks.forgery import forge_request_body, tamper_request_field
from repro.attacks.tamper import swap_text_on_display
from repro.core.service import WitnessConfig
from repro.server import WitnessedSite
from repro.web import (
    Button,
    Checkbox,
    HonestUser,
    Page,
    TextBlock,
    TextInput,
)


def make_bank() -> WitnessedSite:
    site = WitnessedSite(config=WitnessConfig(batched=True))
    site.register_page(
        "transfer",
        Page(
            title="Wire Transfer",
            width=640,
            elements=[
                TextBlock("Send money to another account.", 14),
                TextInput("beneficiary", label="Beneficiary account", max_length=24),
                TextInput("amount", label="Amount (USD)", max_length=12),
                Checkbox("confirm", "I authorize this transfer"),
                Button("Send transfer", action="submit"),
            ],
        ),
    )
    return site


def honest_fill(browser):
    user = HonestUser(browser)
    user.fill_text_input("beneficiary", "LANDLORD-4411")
    user.fill_text_input("amount", "250.00")
    user.toggle_checkbox("confirm", True)


def main() -> None:
    site = make_bank()

    print("=== 1. request tampering at submission ===")
    client = site.connect("transfer")
    honest_fill(client.browser)
    evil_body = tamper_request_field(client.submit_body(), "beneficiary", "MULE-ACCT-666")
    evil_body = tamper_request_field(evil_body, "amount", "9500.00")
    decision = client.submit(evil_body)
    print(f"  vWitness: certified={decision.certified} — {decision.reason}")
    assert not decision.certified

    print("=== 2. UI tampering (displayed beneficiary rewritten) ===")
    client = site.connect("transfer")
    user = HonestUser(client.browser)
    user.fill_text_input("amount", "250.00")
    # Malware repaints the heading so the user believes a different story.
    swap_text_on_display(client.machine, 24, 44, "Refund from your bank", size=14)
    client.machine.clock.advance(1500)  # sampling observes the tampering
    decision = client.submit()
    print(f"  vWitness: certified={decision.certified} — {decision.reason}")
    assert not decision.certified

    print("=== 3. background forgery (no user present) ===")
    client = site.connect("transfer")
    forged = forge_request_body(
        client.browser.page.form_values(),
        beneficiary="MULE-ACCT-666",
        amount="9500.00",
        confirm="on",
        session_id=client.vspec.session_id,
    )
    decision = client.submit(forged)
    print(f"  vWitness: certified={decision.certified} — {decision.reason}")
    assert not decision.certified
    print(f"  server on bare request: {site.server.accept_uncertified(forged).reason}")

    print("=== honest control run ===")
    client = site.connect("transfer")
    honest_fill(client.browser)
    decision = client.submit()
    verdict = site.verify(decision)
    print(f"  vWitness: certified={decision.certified}; server: {verdict.reason}")
    assert decision.certified and verdict.ok
    print(
        f"  one witness service covered {site.service.registry.total_opened} guest sessions"
    )


if __name__ == "__main__":
    main()
