#!/usr/bin/env python
"""Banking scenario: request tampering and UI tampering, both defeated.

Reproduces the paper's motivating attacks (Table I) on a wire-transfer
form:

1. **Request tampering** — the user sends $250 to their landlord; malware
   rewrites the recipient and amount at submission (the VipersoftX-style
   cryptocurrency redirection).  vWitness's validation function sees the
   mismatch with the inputs it observed and refuses to certify.
2. **UI tampering** — malware rewrites the *displayed* beneficiary so the
   user confirms a transfer they never intended (Fig. 2's attack).  The
   display validator flags the unexpected pixels.
3. **Background forgery** — malware submits without any user at all; with
   no hardware I/O and no displayed values, nothing can be certified.

Run:  python examples/banking_attack.py
"""

from repro.attacks.forgery import forge_request_body, tamper_request_field
from repro.attacks.tamper import swap_text_on_display
from repro.core.session import install_vwitness
from repro.crypto import CertificateAuthority
from repro.server import WebServer
from repro.web import (
    Browser,
    Button,
    Checkbox,
    HonestUser,
    Machine,
    Page,
    TextBlock,
    TextInput,
)
from repro.web.extension import BrowserExtension


def make_bank() -> WebServer:
    ca = CertificateAuthority()
    server = WebServer(ca)
    server.register_page(
        "transfer",
        Page(
            title="Wire Transfer",
            width=640,
            elements=[
                TextBlock("Send money to another account.", 14),
                TextInput("beneficiary", label="Beneficiary account", max_length=24),
                TextInput("amount", label="Amount (USD)", max_length=12),
                Checkbox("confirm", "I authorize this transfer"),
                Button("Send transfer", action="submit"),
            ],
        ),
    )
    return server


def new_session(server):
    machine = Machine(640, 480)
    browser = Browser(machine, server.serve_page("transfer"))
    vwitness = install_vwitness(machine, server.ca, batched=True)
    extension = BrowserExtension(browser, server, vwitness)
    vspec = extension.acquire_vspecs("transfer")
    browser.paint()
    extension.begin_session()
    return machine, browser, extension, vspec


def honest_fill(browser):
    user = HonestUser(browser)
    user.fill_text_input("beneficiary", "LANDLORD-4411")
    user.fill_text_input("amount", "250.00")
    user.toggle_checkbox("confirm", True)


def main() -> None:
    server = make_bank()

    print("=== 1. request tampering at submission ===")
    machine, browser, extension, vspec = new_session(server)
    honest_fill(browser)
    body = dict(browser.page.form_values(), session_id=vspec.session_id)
    evil_body = tamper_request_field(body, "beneficiary", "MULE-ACCT-666")
    evil_body = tamper_request_field(evil_body, "amount", "9500.00")
    decision = extension.end_session(evil_body)
    print(f"  vWitness: certified={decision.certified} — {decision.reason}")
    assert not decision.certified

    print("=== 2. UI tampering (displayed beneficiary rewritten) ===")
    machine, browser, extension, vspec = new_session(server)
    user = HonestUser(browser)
    user.fill_text_input("amount", "250.00")
    # Malware repaints the heading so the user believes a different story.
    swap_text_on_display(machine, 24, 44, "Refund from your bank", size=14)
    machine.clock.advance(1500)  # sampling observes the tampering
    body = dict(browser.page.form_values(), session_id=vspec.session_id)
    decision = extension.end_session(body)
    print(f"  vWitness: certified={decision.certified} — {decision.reason}")
    assert not decision.certified

    print("=== 3. background forgery (no user present) ===")
    machine, browser, extension, vspec = new_session(server)
    forged = forge_request_body(
        browser.page.form_values(),
        beneficiary="MULE-ACCT-666",
        amount="9500.00",
        confirm="on",
        session_id=vspec.session_id,
    )
    decision = extension.end_session(forged)
    print(f"  vWitness: certified={decision.certified} — {decision.reason}")
    assert not decision.certified
    print(f"  server on bare request: {server.accept_uncertified(forged).reason}")

    print("=== honest control run ===")
    machine, browser, extension, vspec = new_session(server)
    honest_fill(browser)
    body = dict(browser.page.form_values(), session_id=vspec.session_id)
    decision = extension.end_session(body)
    verdict = server.verify(decision.request)
    print(f"  vWitness: certified={decision.certified}; server: {verdict.reason}")
    assert decision.certified and verdict.ok


if __name__ == "__main__":
    main()
