#!/usr/bin/env python
"""Voting scenario: the paper's Fig. 2 clickjacking attacks.

A "Strike Mandate Vote" page with Yes/No radio options and a confirm
button.  The attacker swaps only the displayed option labels so the voter
selects the opposite of their intent (the paper's Attack 1), or overlays
the confirmation area (Attack 2).  Both are caught by display validation;
the honest vote certifies.

Run:  python examples/voting_clickjacking.py
"""

from repro.attacks.tamper import overlay_rectangle, swap_text_on_display
from repro.core.session import install_vwitness
from repro.crypto import CertificateAuthority
from repro.server import WebServer
from repro.web import (
    Browser,
    Button,
    HonestUser,
    Machine,
    Page,
    RadioGroup,
    TextBlock,
)
from repro.web.extension import BrowserExtension
from repro.web import layout as lay


def make_ballot() -> WebServer:
    ca = CertificateAuthority()
    server = WebServer(ca)
    server.register_page(
        "ballot",
        Page(
            title="Strike Mandate Vote",
            width=640,
            elements=[
                TextBlock("Do you support the proposed strike mandate?", 14),
                RadioGroup("vote", ["Yes", "No"]),
                Button("Confirm vote", action="submit"),
            ],
        ),
    )
    return server


def new_session(server):
    machine = Machine(640, 400)
    browser = Browser(machine, server.serve_page("ballot"))
    vwitness = install_vwitness(machine, server.ca, batched=True)
    extension = BrowserExtension(browser, server, vwitness)
    vspec = extension.acquire_vspecs("ballot")
    browser.paint()
    extension.begin_session()
    return machine, browser, extension, vspec


def main() -> None:
    server = make_ballot()

    print("=== Attack 1: option labels swapped on the display ===")
    machine, browser, extension, vspec = new_session(server)
    group = browser.page.find_input("vote")
    # Malware swaps the rendered labels: the row that submits "Yes" now
    # *displays* "No" and vice versa (only displayed text is altered).
    label_x = group.rect.x + lay.RADIO_SIZE + 8
    swap_text_on_display(machine, label_x, group.rect.y + 3, "No ", size=13)
    swap_text_on_display(machine, label_x, group.rect.y + lay.ROW_HEIGHT + 3, "Yes", size=13)
    user = HonestUser(browser)
    # The voter wants "No", reads the (tampered) labels, clicks row 0.
    machine.clock.advance(800)
    user.choose_radio("vote", "Yes")  # what the click actually selects
    body = dict(browser.page.form_values(), session_id=vspec.session_id)
    decision = extension.end_session(body)
    print(f"  submitted vote would be: {body['vote']!r} (voter intended 'No')")
    print(f"  vWitness: certified={decision.certified} — {decision.reason}")
    assert not decision.certified

    print("=== Attack 2: confirmation area overlaid ===")
    machine, browser, extension, vspec = new_session(server)
    button = next(e for e in browser.page.elements if getattr(e, "label", "") == "Confirm vote")
    overlay_rectangle(
        machine, button.rect.x, button.rect.y, button.rect.w + 60, button.rect.h,
        color=248.0, text="Close window",
    )
    machine.clock.advance(1200)
    body = dict(browser.page.form_values(), session_id=vspec.session_id)
    decision = extension.end_session(body)
    print(f"  vWitness: certified={decision.certified} — {decision.reason}")
    assert not decision.certified

    print("=== honest vote ===")
    machine, browser, extension, vspec = new_session(server)
    user = HonestUser(browser)
    user.choose_radio("vote", "No")
    body = dict(browser.page.form_values(), session_id=vspec.session_id)
    decision = extension.end_session(body)
    verdict = server.verify(decision.request)
    print(f"  vote={body['vote']!r}; vWitness certified={decision.certified}; "
          f"server: {verdict.reason}")
    assert decision.certified and verdict.ok


if __name__ == "__main__":
    main()
