#!/usr/bin/env python
"""Voting scenario: the paper's Fig. 2 clickjacking attacks.

A "Strike Mandate Vote" page with Yes/No radio options and a confirm
button.  The attacker swaps only the displayed option labels so the voter
selects the opposite of their intent (the paper's Attack 1), or overlays
the confirmation area (Attack 2).  Both are caught by display validation;
the honest vote certifies.

The polling place is one ``WitnessedSite``: a single witness service
covers every voter's session, and the ``on_violation`` hook gives the
election observers a live audit feed.

Run:  python examples/voting_clickjacking.py
"""

from repro.attacks.tamper import overlay_rectangle, swap_text_on_display
from repro.core.service import WitnessConfig
from repro.server import WitnessedSite
from repro.web import (
    Button,
    HonestUser,
    Page,
    RadioGroup,
    TextBlock,
)
from repro.web import layout as lay


def make_ballot() -> WitnessedSite:
    site = WitnessedSite(config=WitnessConfig(batched=True))
    site.register_page(
        "ballot",
        Page(
            title="Strike Mandate Vote",
            width=640,
            elements=[
                TextBlock("Do you support the proposed strike mandate?", 14),
                RadioGroup("vote", ["Yes", "No"]),
                Button("Confirm vote", action="submit"),
            ],
        ),
    )
    flagged = set()

    @site.service.on_frame
    def _audit(session, outcome):
        # Election observers see the first bad frame of any voter session.
        if not outcome.ok and session.id not in flagged:
            flagged.add(session.id)
            first = outcome.failures[0] if outcome.failures else None
            detail = f"{first.kind}: {first.reason}" if first else "frame failed validation"
            print(f"  [audit] session {session.id} frame {outcome.index}: {detail}")

    site.service.on_violation(
        lambda session, violation: print(
            f"  [audit] session {session.id}: {violation.rule} — {violation.detail}"
        )
    )
    return site


def main() -> None:
    site = make_ballot()

    print("=== Attack 1: option labels swapped on the display ===")
    client = site.connect("ballot", display=(640, 400))
    group = client.browser.page.find_input("vote")
    # Malware swaps the rendered labels: the row that submits "Yes" now
    # *displays* "No" and vice versa (only displayed text is altered).
    label_x = group.rect.x + lay.RADIO_SIZE + 8
    swap_text_on_display(client.machine, label_x, group.rect.y + 3, "No ", size=13)
    swap_text_on_display(
        client.machine, label_x, group.rect.y + lay.ROW_HEIGHT + 3, "Yes", size=13
    )
    user = HonestUser(client.browser)
    # The voter wants "No", reads the (tampered) labels, clicks row 0.
    client.machine.clock.advance(800)
    user.choose_radio("vote", "Yes")  # what the click actually selects
    body = client.submit_body()
    decision = client.submit(body)
    print(f"  submitted vote would be: {body['vote']!r} (voter intended 'No')")
    print(f"  vWitness: certified={decision.certified} — {decision.reason}")
    assert not decision.certified

    print("=== Attack 2: confirmation area overlaid ===")
    client = site.connect("ballot", display=(640, 400))
    button = next(
        e for e in client.browser.page.elements if getattr(e, "label", "") == "Confirm vote"
    )
    overlay_rectangle(
        client.machine, button.rect.x, button.rect.y, button.rect.w + 60, button.rect.h,
        color=248.0, text="Close window",
    )
    client.machine.clock.advance(1200)
    decision = client.submit()
    print(f"  vWitness: certified={decision.certified} — {decision.reason}")
    assert not decision.certified

    print("=== honest vote ===")
    client = site.connect("ballot", display=(640, 400))
    user = HonestUser(client.browser)
    user.choose_radio("vote", "No")
    body = client.submit_body()
    decision = client.submit(body)
    verdict = site.verify(decision)
    print(f"  vote={body['vote']!r}; vWitness certified={decision.certified}; "
          f"server: {verdict.reason}")
    assert decision.certified and verdict.ok


if __name__ == "__main__":
    main()
