#!/usr/bin/env python
"""Adversarial robustness tour: attack the verifiers directly (paper §V-B).

Shows the four vWitness-specific defenses in action:

* the binary VSPEC-anchored matcher resists white-box attacks far better
  than a conventional multi-class classifier,
* single-font specialization tightens the input manifold,
* a 0.99 detection threshold forces high-confidence forgeries,
* page-level attacks compound: flipping a whole word means flipping every
  character tile independently.

Run:  python examples/adversarial_robustness.py
"""

import numpy as np

from repro.adversarial.attacks import AttackConfig
from repro.adversarial.defenses import hardened, multi_unit_attack_success, single_font_model
from repro.adversarial.evaluate import (
    attacked_accuracy_classifier,
    attacked_accuracy_matcher,
)
from repro.nn.data import reference_text_dataset, text_dataset
from repro.nn.zoo import get_text_model, get_text_reference, model_registry_stats
from repro.raster.fonts import font_registry


def main() -> None:
    config = AttackConfig(steps=15)
    epsilon, norm = 0.2509, "linf"
    n = 40

    print("Loading/training models (memoized process-wide; disk-cached across runs)...")
    base = get_text_model("base")
    reference = get_text_reference()
    specialized = single_font_model(0)
    fortress = hardened(get_text_model("sans"), threshold=0.99)
    stats = model_registry_stats()
    print(
        f"model registry   : {stats['entries']} models resident "
        f"({stats['trains']} trained, {stats['loads']} loaded, {stats['hits']} reused)"
    )

    obs_all, exp_all, labels = text_dataset(
        font_registry()[:2], styles=("normal",), expansions=0, seed=321
    )
    tampered = labels < 0.5
    obs, exp = obs_all[tampered][:n], exp_all[tampered][:n]
    s_obs_all, s_exp_all, s_labels = text_dataset(
        [font_registry()[0]], styles=("normal",), expansions=0, seed=322
    )
    s_obs = s_obs_all[s_labels < 0.5][:n]
    s_exp = s_exp_all[s_labels < 0.5][:n]
    x_ref, y_ref = reference_text_dataset(font_registry()[:2], seed=323)

    print(f"\nAccuracy under BIM (Linf, eps={epsilon}):")
    ref_acc = attacked_accuracy_classifier(
        reference, x_ref[:n], y_ref[:n], "BIM", epsilon, norm, config
    )
    print(f"  multi-class reference classifier : {ref_acc * 100:6.1f}%")
    base_acc = attacked_accuracy_matcher(base, obs, exp, "BIM", epsilon, norm, config)
    print(f"  base VSPEC-anchored matcher      : {base_acc * 100:6.1f}%")
    spec_acc = attacked_accuracy_matcher(specialized, s_obs, s_exp, "BIM", epsilon, norm, config)
    print(f"  single-font specialized matcher  : {spec_acc * 100:6.1f}%")
    hard_acc = attacked_accuracy_matcher(fortress, s_obs, s_exp, "BIM", epsilon, norm, config)
    print(f"  0.99-threshold hardened matcher  : {hard_acc * 100:6.1f}%")

    print("\nMulti-character amplification (paper: attacks on real pages must")
    print("flip several unit inputs at once):")
    unit_success = 1.0 - base_acc
    for word_length in (1, 3, 5, 8):
        page_success = multi_unit_attack_success(unit_success, word_length)
        print(
            f"  flip a {word_length}-char word: attacker success "
            f"{page_success * 100:8.4f}%"
        )

    print("\nShape check (paper §V-B): reference << base < specialized <= hardened.")


if __name__ == "__main__":
    main()
