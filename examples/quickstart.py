#!/usr/bin/env python
"""Quickstart: certify one honest web interaction end to end.

Builds a protected page, provisions a long-lived ``WitnessService``,
opens a per-guest ``WitnessSession`` on a simulated client machine, lets
an honest user fill the form, and shows the server accepting the
certified request — the complete workflow of the paper's Fig. 4, on the
service-oriented API (one service can witness any number of guests).

Run:  python examples/quickstart.py
"""

from repro.core.service import WitnessConfig, WitnessService
from repro.crypto import CertificateAuthority
from repro.server import WebServer
from repro.web import (
    Browser,
    Button,
    Checkbox,
    HonestUser,
    Machine,
    Page,
    TextBlock,
    TextInput,
)
from repro.web.extension import BrowserExtension


def main() -> None:
    # --- server setup (one-time, paper §III-A) --------------------------
    ca = CertificateAuthority()
    server = WebServer(ca)
    server.register_page(
        "signup",
        Page(
            title="Create Account",
            width=640,
            elements=[
                TextBlock("Sign up for the service below.", 14),
                TextInput("username", label="Username", max_length=20),
                TextInput("email", label="Email address", max_length=30),
                Checkbox("terms", "I agree to the terms of service"),
                Button("Create account", action="submit"),
            ],
        ),
    )

    # --- witness service: provisioned once, serves every guest ----------
    service = WitnessService(ca, WitnessConfig(batched=True))
    service.on_decision(
        lambda session, decision: print(
            f"  [hook] session {session.id} decision: certified={decision.certified}"
        )
    )

    # --- one guest: machine, browser, session handle, extension ---------
    machine = Machine(640, 480)
    browser = Browser(machine, server.serve_page("signup"))
    with service.open_session(machine) as witness:
        extension = BrowserExtension(browser, server, witness)

        # --- the session (paper §III-B steps 1-5) ------------------------
        vspec = extension.acquire_vspecs("signup")  # step 1: VSPEC delivery
        browser.paint()
        extension.begin_session()  # step 2: witnessing starts

        user = HonestUser(browser)  # steps 2a/3/3a happen per sampled frame
        user.fill_text_input("username", "alice")
        user.fill_text_input("email", "alice@example.org")
        user.toggle_checkbox("terms", True)

        body = dict(browser.page.form_values())
        body["session_id"] = vspec.session_id
        decision = extension.end_session(body)  # step 4: submission validation
        report = witness.report

    print(f"vWitness verdict : {decision.reason}")
    assert decision.certified

    verdict = server.verify(decision.request)  # step 5a: server-side checks
    print(f"server verdict   : {verdict.reason}")
    assert verdict.ok

    print(
        f"session stats    : {report.frames_sampled} frames sampled, "
        f"{report.frames_skipped} skipped unchanged, "
        f"{report.text_invocations} text / {report.image_invocations} graphics "
        "model invocations"
    )
    print(
        f"service stats    : {service.registry.total_opened} session(s) served, "
        f"{service.active_sessions} still active"
    )
    print(f"request body     : {decision.request.body}")


if __name__ == "__main__":
    main()
