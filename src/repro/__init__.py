"""vWitness reproduction: certifying web page interactions with computer vision.

A from-scratch Python implementation of the system described in
*vWitness: Certifying Web Page Interactions with Computer Vision*
(He Shuang, Lianying Zhao, David Lie — DSN 2023), including every
substrate the paper's prototype depends on: classical vision
(:mod:`repro.vision`), a CNN library with input-gradient backprop
(:mod:`repro.nn`), a text/icon rasterizer with rendering-stack variation
(:mod:`repro.raster`), an untrusted web client (:mod:`repro.web`), the
VSPEC specification model (:mod:`repro.vspec`), server-side scripts
(:mod:`repro.server`), sealing/certificates/signatures
(:mod:`repro.crypto`), and the trusted witness itself
(:mod:`repro.core`).  Adversarial attacks (:mod:`repro.adversarial`),
threat-model attack implementations (:mod:`repro.attacks`), evaluation
datasets (:mod:`repro.datasets`) and baselines (:mod:`repro.baselines`)
reproduce the paper's §V-§VI evaluation.  The scenario-diversity soak
harness (:mod:`repro.scenarios`) generates witnessed sessions across
page archetypes and user scripts and proves every engine combination
computes bit-identical verdicts.

Entry points:

>>> from repro.core.service import WitnessConfig, WitnessService
>>> from repro.server import WebServer, WitnessedSite
>>> from repro.web import Browser, Machine, Page
>>> from repro.core.session import VWitness, install_vwitness  # compat shim

See README.md for a quickstart, DESIGN.md for the architecture and
substitution rationale, and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

#: The paper this package reproduces.
PAPER = (
    "He Shuang, Lianying Zhao, David Lie. "
    "vWitness: Certifying Web Page Interactions with Computer Vision. "
    "DSN 2023 (arXiv:2007.15805)."
)
