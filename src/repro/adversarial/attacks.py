"""White-box adversarial attacks (FGM, BIM, MOM, CW2, APGD, FAB).

Attacks operate on a *margin objective*: a callable mapping a batch of
inputs to ``(margin, grad)`` where ``margin[i] <= 0`` means the attack has
succeeded on sample ``i`` (the model emits the attacker's target verdict)
and ``grad`` is the derivative of the summed margin w.r.t. the inputs.
All attacks therefore *minimize* the margin.

Unifying on margins has one property worth calling out: the objective can
incorporate the verifier's *detection threshold*, so the high-threshold
defense of Table III row t6 is evaluated against attacks that know about
the threshold — the strongest (white-box) assumption.

FGM/BIM/MOM follow Goodfellow et al. / Kurakin et al. / Dong et al.; CW2
follows Carlini & Wagner's L2 attack with a fixed trade-off constant;
APGD is a faithful simplification of Croce & Hein's budget-aware step
halving; FAB approximates their boundary projection with a linearized
closest-boundary step.  Exact reproductions of the reference libraries'
schedules are out of scope — what matters for Table III is that each
attack family exercises its characteristic search strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.losses import margin_loss, binary_margin_loss
from repro.nn.model import MatcherModel, Sequential

#: Attack names in Table III column order.
ATTACK_NAMES = ("FGM", "BIM", "MOM", "FAB", "APGD", "CW2")


@dataclass(frozen=True)
class AttackConfig:
    """Iteration budgets and schedule constants shared by the attacks."""

    steps: int = 20
    momentum_decay: float = 0.9
    cw_constant: float = 5.0
    cw_lr: float = 0.05
    kappa: float = 0.0
    fab_overshoot: float = 1.1
    seed: int = 0


# ---------------------------------------------------------------------------
# Margin objectives
# ---------------------------------------------------------------------------


def matcher_objective(model: MatcherModel, expected: np.ndarray, target_match: bool = True):
    """Margin objective for fooling a two-input matcher.

    The vWitness-relevant attack flips a *false* pair into a match verdict
    (``target_match=True``): the attacker tampers the display but needs the
    verifier to accept it.  The margin accounts for the model's detection
    threshold, so hardened thresholds genuinely raise the bar.
    """
    z_threshold = float(np.log(model.threshold / (1.0 - model.threshold)))

    def objective(x: np.ndarray) -> tuple:
        logits = model.forward(x, expected)
        z = logits.reshape(-1)
        if target_match:
            margin = z_threshold - z
            dmargin_dz = -np.ones_like(z)
        else:
            margin = z - z_threshold
            dmargin_dz = np.ones_like(z)
        d_obs, _ = model.backward(dmargin_dz.reshape(logits.shape))
        return margin, d_obs

    return objective


def classifier_objective(model: Sequential, target_class: np.ndarray):
    """Margin objective for a targeted attack on a softmax classifier."""
    targets = np.asarray(target_class, dtype=int)

    def objective(x: np.ndarray) -> tuple:
        logits = model.forward(x)
        margin, dlogits = margin_loss(logits, targets, kappa=0.0)
        dx = model.backward(dlogits)
        return margin, dx

    return objective


def classifier_untargeted_objective(model: Sequential, true_labels: np.ndarray):
    """Margin objective for an *untargeted* attack on a classifier.

    Success is any misclassification: the margin is
    ``z_true - max_other`` and goes non-positive once the model prefers
    any wrong class.  This is the attacker's easiest goal against a
    multi-class model — and exactly the freedom the VSPEC ground truth
    removes from attacks on vWitness's matchers (paper §V-B: "only one
    targeted attack is applicable").
    """
    labels = np.asarray(true_labels, dtype=int)

    def objective(x: np.ndarray) -> tuple:
        logits = model.forward(x)
        # margin_loss with target=true computes max_other - z_true; the
        # untargeted margin is its negation, so flip margins and gradients.
        # kappa=inf keeps the gradient active while the sample is still
        # correctly classified (margin_loss's gate is targeted-attack
        # semantics: it deactivates once the *target* is reached).
        margin, dlogits = margin_loss(logits, labels, kappa=np.inf)
        dx = model.backward(-dlogits)
        return -margin, dx

    return objective


# ---------------------------------------------------------------------------
# Norm helpers
# ---------------------------------------------------------------------------


def _check_norm(norm: str) -> None:
    if norm not in ("linf", "l2"):
        raise ValueError(f"norm must be 'linf' or 'l2', got {norm!r}")


def _flat_l2(delta: np.ndarray) -> np.ndarray:
    return np.sqrt(np.sum(delta.reshape(delta.shape[0], -1) ** 2, axis=1))


def project(x: np.ndarray, x0: np.ndarray, epsilon: float, norm: str) -> np.ndarray:
    """Project ``x`` into the epsilon-ball around ``x0`` and into [0, 1]."""
    _check_norm(norm)
    delta = x - x0
    if norm == "linf":
        delta = np.clip(delta, -epsilon, epsilon)
    else:
        norms = _flat_l2(delta)
        scale = np.minimum(1.0, epsilon / np.maximum(norms, 1e-12))
        delta = delta * scale.reshape(-1, *([1] * (delta.ndim - 1)))
    return np.clip(x0 + delta, 0.0, 1.0)


def _normalized_step(grad: np.ndarray, norm: str) -> np.ndarray:
    """Unit-size descent direction under the given norm."""
    if norm == "linf":
        return np.sign(grad)
    norms = _flat_l2(grad)
    return grad / np.maximum(norms.reshape(-1, *([1] * (grad.ndim - 1))), 1e-12)


def quantize(x: np.ndarray) -> np.ndarray:
    """Round to the 256-level pixel grid (the paper's validity rounding)."""
    return np.clip(np.rint(x * 255.0) / 255.0, 0.0, 1.0)


# ---------------------------------------------------------------------------
# Attacks
# ---------------------------------------------------------------------------


def fgm(objective, x0: np.ndarray, epsilon: float, norm: str, config: AttackConfig | None = None) -> np.ndarray:
    """Fast gradient method: one full-budget step along the gradient sign."""
    _check_norm(norm)
    _margin, grad = objective(x0)
    x = x0 - epsilon * _normalized_step(grad, norm)
    return quantize(project(x, x0, epsilon, norm))


def bim(objective, x0: np.ndarray, epsilon: float, norm: str, config: AttackConfig | None = None) -> np.ndarray:
    """Basic iterative method: repeated small FGM steps with projection."""
    config = config or AttackConfig()
    _check_norm(norm)
    alpha = 2.5 * epsilon / config.steps
    x = x0.copy()
    for _ in range(config.steps):
        _margin, grad = objective(x)
        x = project(x - alpha * _normalized_step(grad, norm), x0, epsilon, norm)
    return quantize(x)


def mom(objective, x0: np.ndarray, epsilon: float, norm: str, config: AttackConfig | None = None) -> np.ndarray:
    """Momentum iterative method (MI-FGSM): L1-normalized gradient momentum."""
    config = config or AttackConfig()
    _check_norm(norm)
    alpha = 2.5 * epsilon / config.steps
    x = x0.copy()
    velocity = np.zeros_like(x0)
    for _ in range(config.steps):
        _margin, grad = objective(x)
        l1 = np.sum(np.abs(grad).reshape(grad.shape[0], -1), axis=1)
        grad = grad / np.maximum(l1.reshape(-1, *([1] * (grad.ndim - 1))), 1e-12)
        velocity = config.momentum_decay * velocity + grad
        x = project(x - alpha * _normalized_step(velocity, norm), x0, epsilon, norm)
    return quantize(x)


def apgd(objective, x0: np.ndarray, epsilon: float, norm: str, config: AttackConfig | None = None) -> np.ndarray:
    """Auto-PGD: momentum PGD with step-size halving at checkpoints.

    Tracks the best-margin iterate per sample and restarts from it whenever
    a checkpoint shows no improvement, following Croce & Hein's schedule in
    spirit (fixed checkpoint fractions, halved steps).
    """
    config = config or AttackConfig()
    _check_norm(norm)
    steps = max(4, config.steps)
    checkpoints = {int(steps * f) for f in (0.22, 0.42, 0.62, 0.82)}
    alpha = np.full(x0.shape[0], 2.0 * epsilon)
    x = x0.copy()
    margin, grad = objective(x)
    best_margin = margin.copy()
    best_x = x.copy()
    improved = np.zeros(x0.shape[0], dtype=bool)
    prev = x.copy()
    for step in range(1, steps + 1):
        direction = _normalized_step(grad, norm)
        a = alpha.reshape(-1, *([1] * (x.ndim - 1)))
        z = project(x - a * direction, x0, epsilon, norm)
        # Momentum blend between the new iterate and the previous move.
        x_new = project(z + 0.75 * (z - x) + 0.0 * (x - prev), x0, epsilon, norm)
        prev = x
        x = x_new
        margin, grad = objective(x)
        gained = margin < best_margin
        improved |= gained
        best_x[gained] = x[gained]
        best_margin[gained] = margin[gained]
        if step in checkpoints:
            stalled = ~improved
            alpha[stalled] *= 0.5
            x[stalled] = best_x[stalled]
            improved[:] = False
    return quantize(best_x)


def cw_l2(objective, x0: np.ndarray, epsilon: float | None = None, norm: str = "l2", config: AttackConfig | None = None) -> np.ndarray:
    """Carlini-Wagner L2: tanh-space optimization of distance + c*margin.

    Distance-minimizing rather than budget-constrained — ``epsilon`` is
    accepted for interface uniformity but (as in the paper's Table III,
    where CW2 is a single column) not used as a hard bound.
    """
    config = config or AttackConfig()
    eps_edge = 1e-6
    w = np.arctanh(np.clip(x0, eps_edge, 1.0 - eps_edge) * 2.0 - 1.0)
    best_x = x0.copy()
    best_score = np.full(x0.shape[0], np.inf)
    m_adam = np.zeros_like(w)
    v_adam = np.zeros_like(w)
    for t in range(1, 4 * config.steps + 1):
        x = 0.5 * (np.tanh(w) + 1.0)
        margin, grad_margin = objective(x)
        dist = _flat_l2(x - x0)
        # Total objective: ||x-x0||^2 + c * max(margin, -kappa).
        active = (margin > -config.kappa).reshape(-1, *([1] * (x.ndim - 1)))
        grad_x = 2.0 * (x - x0) + config.cw_constant * grad_margin * active
        grad_w = grad_x * (1.0 - np.tanh(w) ** 2) * 0.5
        m_adam = 0.9 * m_adam + 0.1 * grad_w
        v_adam = 0.999 * v_adam + 0.001 * grad_w**2
        m_hat = m_adam / (1.0 - 0.9**t)
        v_hat = v_adam / (1.0 - 0.999**t)
        w = w - config.cw_lr * m_hat / (np.sqrt(v_hat) + 1e-8)
        # Track the closest successful adversarial example per sample.
        succeeded = margin <= 0
        score = np.where(succeeded, dist, np.inf)
        better = score < best_score
        best_score[better] = score[better]
        best_x[better] = x[better]
    return quantize(best_x)


def fab(objective, x0: np.ndarray, epsilon: float, norm: str, config: AttackConfig | None = None) -> np.ndarray:
    """Fast adaptive boundary (approximate): linearized boundary projection.

    Each step projects the iterate onto the locally linearized decision
    boundary (a Newton step on the margin), overshoots slightly to cross
    it, and biases back toward the original point to keep the perturbation
    minimal — the defining structure of FAB.
    """
    config = config or AttackConfig()
    _check_norm(norm)
    x = x0.copy()
    best_x = x0.copy()
    found = np.zeros(x0.shape[0], dtype=bool)
    for _ in range(config.steps):
        margin, grad = objective(x)
        newly = (margin <= 0) & ~found
        best_x[newly] = x[newly]
        found |= newly
        g2 = np.sum(grad.reshape(grad.shape[0], -1) ** 2, axis=1)
        step_len = margin / np.maximum(g2, 1e-12)
        step = config.fab_overshoot * step_len.reshape(-1, *([1] * (x.ndim - 1))) * grad
        x = x - step
        # Bias toward the original point (FAB's minimal-perturbation pull).
        x = x0 + 0.9 * (x - x0)
        x = project(x, x0, epsilon, norm)
    margin, _ = objective(x)
    newly = (margin <= 0) & ~found
    best_x[newly] = x[newly]
    return quantize(best_x)


_ATTACK_FUNCS = {
    "FGM": fgm,
    "BIM": bim,
    "MOM": mom,
    "APGD": apgd,
    "CW2": cw_l2,
    "FAB": fab,
}


def run_attack(
    name: str,
    objective,
    x0: np.ndarray,
    epsilon: float,
    norm: str,
    config: AttackConfig | None = None,
) -> np.ndarray:
    """Dispatch an attack by Table III name."""
    if name not in _ATTACK_FUNCS:
        raise ValueError(f"unknown attack {name!r}; expected one of {sorted(_ATTACK_FUNCS)}")
    return _ATTACK_FUNCS[name](objective, x0, epsilon, norm, config)
