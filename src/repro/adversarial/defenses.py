"""vWitness-specific adversarial defenses (paper §V-B).

The paper proposes four defenses that exploit vWitness's structure rather
than generic adversarial training:

1. **Binary matching against VSPEC ground truth** — built into
   :class:`~repro.nn.model.MatcherModel`: only the false->true direction is
   useful to an attacker, halving the attack surface.
2. **Single-font specialization** — train one verifier per server-chosen
   font (:func:`single_font_model`), shrinking the benign input manifold.
3. **Font-characteristic specialization** — serif/sans-serif specific
   models (:func:`font_type_model`).
4. **High detection threshold** — :func:`hardened` wraps any matcher with
   a 0.99 threshold, forcing attacks to manufacture high-confidence
   matches.

This module also provides the *multi-character amplification* estimate the
paper argues in §V-B: a page-level attack must flip several unit inputs at
once, so unit-level robustness compounds exponentially.
"""

from __future__ import annotations

import numpy as np

from repro.nn.model import MatcherModel
from repro.nn.zoo import get_text_model


def single_font_model(font_index: int) -> MatcherModel:
    """A text verifier specialized to one registry font (Table III t3)."""
    return get_text_model(f"font-{font_index}")


def font_type_model(font_type: str) -> MatcherModel:
    """A serif- or sans-serif-specialized text verifier (rows t4/t5)."""
    if font_type not in ("serif", "sans"):
        raise ValueError(f"font_type must be 'serif' or 'sans', got {font_type!r}")
    return get_text_model(font_type)


def hardened(model: MatcherModel, threshold: float = 0.99) -> MatcherModel:
    """High-detection-threshold wrapper (Table III t6, same weights)."""
    return model.with_threshold(threshold)


def multi_unit_attack_success(unit_success_rate: float, units: int) -> float:
    """Probability that an attack flips ``units`` independent unit inputs.

    The paper notes a real tampering "will likely need to alter more than
    one unit input, which exponentially reduces the probability of a
    successful attack"; this computes that compound probability.
    """
    if not 0.0 <= unit_success_rate <= 1.0:
        raise ValueError(f"success rate must be in [0,1], got {unit_success_rate}")
    if units <= 0:
        raise ValueError(f"units must be positive, got {units}")
    return float(unit_success_rate**units)


def perturbation_visibility(x0: np.ndarray, x_adv: np.ndarray) -> dict:
    """Perceptibility statistics of an adversarial perturbation.

    The paper argues perturbations on typeset text are user-noticeable;
    this quantifies them (max |delta|, L2, fraction of pixels touched) for
    the Table IV qualitative exhibit.
    """
    delta = np.abs(np.asarray(x_adv, dtype=float) - np.asarray(x0, dtype=float))
    return {
        "max": float(delta.max(initial=0.0)),
        "l2": float(np.sqrt(np.sum(delta**2))),
        "changed_fraction": float(np.mean(delta > 1.0 / 255.0)),
    }
