"""Robustness evaluation harness (reproduces the Table III grid).

Accuracy under attack is measured on *unit inputs* exactly as the paper
frames it: single character tiles for text models, single 32x32 regions
for image models.  For the matchers, the evaluation set consists of
tampered (false) pairs — the attacker's only useful goal is to make a
tampered display pass — and accuracy is the fraction of pairs the model
still rejects after the white-box attack.  For the reference classifiers,
accuracy is standard post-attack top-1 accuracy under targeted attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adversarial.attacks import (
    ATTACK_NAMES,
    AttackConfig,
    classifier_objective,
    classifier_untargeted_objective,
    matcher_objective,
    run_attack,
)
from repro.nn.model import MatcherModel, Sequential
from repro.nn.train import classifier_accuracy, matcher_accuracy

#: Table III epsilon grids: Linf in raw pixel fractions (32/255, 64/255,
#: 128/255) and L2 over the unit-cube 32x32 input.
EPSILONS_LINF = (0.1254, 0.2509, 0.5019)
EPSILONS_L2 = (1.0, 2.0, 3.0)


@dataclass
class RobustnessReport:
    """Accuracy grid for one model: attack -> norm -> epsilon -> accuracy."""

    model_name: str
    clean_accuracy: float
    grid: dict = field(default_factory=dict)

    def record(self, attack: str, norm: str, epsilon: float, accuracy: float) -> None:
        self.grid.setdefault(attack, {}).setdefault(norm, {})[epsilon] = accuracy

    def accuracy(self, attack: str, norm: str, epsilon: float) -> float:
        return self.grid[attack][norm][epsilon]

    @property
    def average_attacked_accuracy(self) -> float:
        """Mean accuracy across every (attack, norm, epsilon) cell."""
        cells = [
            acc
            for by_norm in self.grid.values()
            for by_eps in by_norm.values()
            for acc in by_eps.values()
        ]
        if not cells:
            raise ValueError("no attack cells recorded")
        return float(np.mean(cells))

    def robustness_factor(self, reference: "RobustnessReport") -> float:
        """How many times more robust than a reference model (paper's Nx)."""
        ref = reference.average_attacked_accuracy
        return self.average_attacked_accuracy / max(ref, 1e-9)


def attacked_accuracy_matcher(
    model: MatcherModel,
    observed: np.ndarray,
    expected: np.ndarray,
    attack: str,
    epsilon: float,
    norm: str,
    config: AttackConfig | None = None,
) -> float:
    """Post-attack accuracy of a matcher on tampered (false) pairs.

    ``observed``/``expected`` must all be *non-matching* pairs.  The attack
    perturbs ``observed`` trying to flip the verdict to "match"; accuracy
    is the rejection rate that survives, measured over the pairs the model
    rejects *before* the attack (clean errors are reported separately in
    the clean-accuracy column, as in CleverHans-style evaluation).
    """
    # Attacks craft against the training-path forward (gradients exist
    # only there), so verdicts are judged on the same engine: adversarial
    # inputs sit at the decision boundary by construction, exactly where
    # the frozen engine's float32 reassociation (~1e-6) could otherwise
    # flip a borderline verdict and smear the robustness numbers.
    initially_rejected = ~model.predict(observed, expected, frozen=False)
    if not initially_rejected.any():
        return 0.0
    obs = observed[initially_rejected]
    exp = expected[initially_rejected]
    objective = matcher_objective(model, exp, target_match=True)
    x_adv = run_attack(attack, objective, obs, epsilon, norm, config)
    still_rejected = ~model.predict(x_adv, exp, frozen=False)
    return float(np.mean(still_rejected))


def attacked_accuracy_classifier(
    model: Sequential,
    x: np.ndarray,
    labels: np.ndarray,
    attack: str,
    epsilon: float,
    norm: str,
    config: AttackConfig | None = None,
    seed: int = 0,
    targeted: bool = False,
) -> float:
    """Post-attack top-1 accuracy of a classifier.

    Untargeted by default — any misclassification counts, the standard
    robustness measure for multi-class models and the attacker's easiest
    goal.  (Against vWitness's matchers that freedom does not exist: the
    VSPEC pins the expected content, leaving one targeted direction.)
    Accuracy is measured over initially correctly-classified samples.
    """
    y = np.asarray(labels, dtype=int)
    initially_correct = model.predict(x) == y
    if not initially_correct.any():
        return 0.0
    x0 = x[initially_correct]
    y0 = y[initially_correct]
    if targeted:
        rng = np.random.default_rng(seed)
        num_classes = model.forward(x0[:1]).shape[1]
        targets = (y0 + rng.integers(1, num_classes, size=y0.shape)) % num_classes
        objective = classifier_objective(model, targets)
    else:
        objective = classifier_untargeted_objective(model, y0)
    x_adv = run_attack(attack, objective, x0, epsilon, norm, config)
    return float(np.mean(model.predict(x_adv) == y0))


def _norm_epsilons(norm: str) -> tuple:
    return EPSILONS_LINF if norm == "linf" else EPSILONS_L2


def robustness_grid(
    kind: str,
    model,
    eval_inputs: np.ndarray,
    eval_refs: np.ndarray,
    model_name: str,
    attacks: tuple = ATTACK_NAMES,
    norms: tuple = ("linf", "l2"),
    config: AttackConfig | None = None,
    clean_inputs=None,
    clean_refs=None,
    clean_labels=None,
) -> RobustnessReport:
    """Run the full attack grid for one model.

    Args:
        kind: ``"matcher"`` or ``"classifier"``.
        eval_inputs / eval_refs: for matchers, tampered observations and
            their expected inputs (all false pairs); for classifiers, the
            inputs and their integer labels.
        clean_*: optional balanced set for the clean-accuracy column.

    CW2 runs once per norm-agnostic row in the paper; here it is attached
    to the L2 norm at every epsilon for grid uniformity (its result does
    not depend on epsilon).
    """
    if kind not in ("matcher", "classifier"):
        raise ValueError(f"kind must be 'matcher' or 'classifier', got {kind!r}")
    if kind == "matcher":
        clean = (
            matcher_accuracy(model, clean_inputs, clean_refs, clean_labels)
            if clean_inputs is not None
            else float(np.mean(~model.predict(eval_inputs, eval_refs, frozen=False)))
        )
    else:
        clean = (
            classifier_accuracy(model, clean_inputs, clean_labels)
            if clean_inputs is not None
            else classifier_accuracy(model, eval_inputs, eval_refs)
        )
    report = RobustnessReport(model_name=model_name, clean_accuracy=clean)
    for attack in attacks:
        for norm in norms:
            if attack == "CW2" and norm == "linf":
                continue  # CW2 is inherently an L2 attack (single column).
            for epsilon in _norm_epsilons(norm):
                if kind == "matcher":
                    acc = attacked_accuracy_matcher(
                        model, eval_inputs, eval_refs, attack, epsilon, norm, config
                    )
                else:
                    acc = attacked_accuracy_classifier(
                        model, eval_inputs, eval_refs, attack, epsilon, norm, config
                    )
                report.record(attack, norm, epsilon, acc)
                if attack == "CW2":
                    break  # epsilon-independent; one run is the row.
    # Fill CW2's remaining epsilon cells with its single measurement.
    if "CW2" in report.grid:
        by_eps = report.grid["CW2"]["l2"]
        value = next(iter(by_eps.values()))
        for epsilon in _norm_epsilons("l2"):
            by_eps[epsilon] = value
    return report


def format_table3_row(report: RobustnessReport, reference: RobustnessReport | None = None) -> str:
    """Human-readable summary line mirroring a Table III row group."""
    parts = [f"{report.model_name:<18} clean={report.clean_accuracy * 100:6.2f}%"]
    parts.append(f"avg-attacked={report.average_attacked_accuracy * 100:6.2f}%")
    if reference is not None:
        parts.append(f"factor={report.robustness_factor(reference):5.2f}x")
    return "  ".join(parts)
