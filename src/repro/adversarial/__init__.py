"""Adversarial example attacks and robustness evaluation (paper §V-B).

Implements the six attacks of Table III — FGM, BIM, MOM (momentum
iterative), CW2, APGD and FAB — in both L-infinity and L2 flavours, as
white-box attacks against either a multi-class :class:`Sequential`
classifier (the reference models) or a two-input binary
:class:`MatcherModel` (the vWitness verifiers).

All attacks are *targeted* the way the paper describes: against vWitness
the only useful direction is flipping a non-matching (tampered) input into
a "match" verdict, so attacks maximize the match probability of a
false pair.  Generated examples are rounded to the nearest of 256 pixel
levels ("to make them valid images").
"""

from repro.adversarial.attacks import (
    ATTACK_NAMES,
    AttackConfig,
    apgd,
    bim,
    cw_l2,
    fab,
    fgm,
    mom,
    run_attack,
)
from repro.adversarial.evaluate import (
    EPSILONS_L2,
    EPSILONS_LINF,
    RobustnessReport,
    attacked_accuracy_classifier,
    attacked_accuracy_matcher,
    robustness_grid,
)

__all__ = [
    "ATTACK_NAMES",
    "AttackConfig",
    "fgm",
    "bim",
    "mom",
    "cw_l2",
    "apgd",
    "fab",
    "run_attack",
    "EPSILONS_LINF",
    "EPSILONS_L2",
    "RobustnessReport",
    "attacked_accuracy_matcher",
    "attacked_accuracy_classifier",
    "robustness_grid",
]
