"""Signing keys sealed to a measured software state.

The client setup (paper §III-A) seals vWitness's private key ``K_pri`` to
the correct execution state: "Successful unsealing of this key thereafter
indicates that the correct vWitness software stack is running, and
prevents the exposure of K_pri to any principal other than vWitness."
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from cryptography.hazmat.primitives.asymmetric.ed25519 import (
    Ed25519PrivateKey,
    Ed25519PublicKey,
)
from cryptography.hazmat.primitives.serialization import (
    Encoding,
    NoEncryption,
    PrivateFormat,
    PublicFormat,
)


class SealError(RuntimeError):
    """Unsealing was attempted from a software state the key is not sealed to."""


@dataclass(frozen=True)
class MeasuredState:
    """A measurement of the trusted software stack.

    ``components`` maps component names (e.g. ``"hypervisor"``,
    ``"vwitness-core"``, ``"text-model"``) to their content bytes; the
    state digest chains the component digests in name order, mirroring a
    TPM PCR extend sequence.
    """

    components: tuple  # tuple of (name, bytes) pairs, canonical order

    @classmethod
    def measure(cls, components: dict) -> "MeasuredState":
        ordered = tuple(sorted((str(k), bytes(v)) for k, v in components.items()))
        return cls(components=ordered)

    def digest(self) -> bytes:
        acc = b"\x00" * 32
        for name, blob in self.components:
            h = hashlib.sha256()
            h.update(acc)
            h.update(name.encode("utf-8"))
            h.update(hashlib.sha256(blob).digest())
            acc = h.digest()
        return acc

    def with_tampered(self, name: str, new_blob: bytes) -> "MeasuredState":
        """A state where one component was modified (for attack tests)."""
        components = dict(self.components)
        if name not in components:
            raise KeyError(f"no component {name!r} in measured state")
        components[name] = new_blob
        return MeasuredState.measure(components)


def generate_signing_key() -> Ed25519PrivateKey:
    """A fresh Ed25519 client signing key (``K_pri``)."""
    return Ed25519PrivateKey.generate()


def public_bytes(key: Ed25519PublicKey) -> bytes:
    return key.public_bytes(Encoding.Raw, PublicFormat.Raw)


class SealedSigningKey:
    """``K_pri`` sealed to a measured state.

    The simulation stores the key bytes XOR-wrapped with a KDF of the
    sealing state digest — enough to guarantee the *behavioural* property
    the protocol needs: unsealing under any other state yields garbage
    that fails key reconstruction, and the object never exposes the raw
    key without a matching state.
    """

    def __init__(self, private_key: Ed25519PrivateKey, state: MeasuredState) -> None:
        raw = private_key.private_bytes(Encoding.Raw, PrivateFormat.Raw, NoEncryption())
        pad = self._kdf(state.digest(), len(raw))
        self._wrapped = bytes(a ^ b for a, b in zip(raw, pad))
        self._check = hashlib.sha256(b"seal-check" + raw).digest()
        self.public_key = private_key.public_key()

    @staticmethod
    def _kdf(seed: bytes, length: int) -> bytes:
        out = b""
        counter = 0
        while len(out) < length:
            out += hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
            counter += 1
        return out[:length]

    def unseal(self, state: MeasuredState) -> Ed25519PrivateKey:
        """Recover ``K_pri`` — only under the sealed-to software state."""
        pad = self._kdf(state.digest(), len(self._wrapped))
        candidate = bytes(a ^ b for a, b in zip(self._wrapped, pad))
        if hashlib.sha256(b"seal-check" + candidate).digest() != self._check:
            raise SealError(
                "measured software state does not match the sealing state; "
                "refusing to release the signing key"
            )
        return Ed25519PrivateKey.from_private_bytes(candidate)
