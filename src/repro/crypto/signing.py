"""Certified-request signatures (paper §III-B steps 4-5).

A certified request binds together (1) the request body, (2) the VSPEC
digest used for validation — which includes the session ID nonce — under
the client's sealed signing key.  The server verifies the certificate
chain, the signature and the VSPEC echo (§III-B server-side steps 1-3).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from cryptography.exceptions import InvalidSignature
from cryptography.hazmat.primitives.asymmetric.ed25519 import Ed25519PrivateKey

from repro.crypto.ca import Certificate, CertificateAuthority


class SignatureError(RuntimeError):
    """A certified request failed signature verification."""


def canonical_body(body: dict) -> bytes:
    """Deterministic request-body encoding (sorted-key JSON)."""
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _signed_payload(body: dict, vspec_digest: str) -> bytes:
    return b"|".join([b"vwitness-request-v1", canonical_body(body), vspec_digest.encode("ascii")])


@dataclass(frozen=True)
class CertifiedRequest:
    """What the extension forwards to the server (step 5).

    The body is sent unchanged; only the signature, the VSPEC digest and
    the client certificate are added — preserving the paper's privacy
    property (nothing about the rest of the screen leaks).
    """

    body: dict
    vspec_digest: str
    signature: bytes
    certificate: Certificate


def sign_request(
    private_key: Ed25519PrivateKey,
    body: dict,
    vspec_digest: str,
    certificate: Certificate,
) -> CertifiedRequest:
    """Produce a certified request under the unsealed client key."""
    signature = private_key.sign(_signed_payload(body, vspec_digest))
    return CertifiedRequest(
        body=dict(body), vspec_digest=vspec_digest, signature=signature, certificate=certificate
    )


def verify_request(request: CertifiedRequest, ca: CertificateAuthority) -> None:
    """Server-side steps 1-2: certificate chain, then request signature.

    Raises :class:`~repro.crypto.ca.CertificateError` or
    :class:`SignatureError`; VSPEC-echo and freshness checks are the web
    server's job (it knows what it issued).
    """
    ca.verify(request.certificate)
    try:
        request.certificate.public_key().verify(
            request.signature, _signed_payload(request.body, request.vspec_digest)
        )
    except InvalidSignature as exc:
        raise SignatureError("request signature does not verify") from exc
