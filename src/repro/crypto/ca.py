"""A minimal certificate authority for client certificates (``C_pub``)."""

from __future__ import annotations

from dataclasses import dataclass

from cryptography.exceptions import InvalidSignature
from cryptography.hazmat.primitives.asymmetric.ed25519 import (
    Ed25519PrivateKey,
    Ed25519PublicKey,
)

from repro.crypto.keys import public_bytes


class CertificateError(RuntimeError):
    """A certificate failed verification."""


@dataclass(frozen=True)
class Certificate:
    """A CA-signed binding of a subject to a public key."""

    subject: str
    subject_public: bytes  # raw Ed25519 public key bytes
    issuer: str
    signature: bytes

    def tbs_bytes(self) -> bytes:
        """The to-be-signed encoding."""
        return b"|".join(
            [b"cert-v1", self.subject.encode("utf-8"), self.subject_public, self.issuer.encode("utf-8")]
        )

    def public_key(self) -> Ed25519PublicKey:
        return Ed25519PublicKey.from_public_bytes(self.subject_public)


class CertificateAuthority:
    """A well-known CA that certifies client vWitness keys (setup step 2)."""

    def __init__(self, name: str = "vwitness-root-ca") -> None:
        self.name = name
        self._key = Ed25519PrivateKey.generate()
        self.public_key = self._key.public_key()

    def issue(self, subject: str, subject_public_key: Ed25519PublicKey) -> Certificate:
        raw = public_bytes(subject_public_key)
        unsigned = Certificate(subject=subject, subject_public=raw, issuer=self.name, signature=b"")
        signature = self._key.sign(unsigned.tbs_bytes())
        return Certificate(subject=subject, subject_public=raw, issuer=self.name, signature=signature)

    def verify(self, certificate: Certificate) -> None:
        """Check issuer identity and CA signature; raises on failure."""
        if certificate.issuer != self.name:
            raise CertificateError(
                f"certificate issued by {certificate.issuer!r}, expected {self.name!r}"
            )
        try:
            self.public_key.verify(certificate.signature, certificate.tbs_bytes())
        except InvalidSignature as exc:
            raise CertificateError("certificate signature does not verify") from exc
