"""Keys, sealing, certificates and request signatures (paper §III-A/§V-A).

Built on Ed25519 from the ``cryptography`` package (the prototype's
WolfCrypt substitute).  The sealing model follows the paper's measured-boot
assumption: the client's signing key unseals only when the measured
software state (vWitness code + hypervisor) matches the state it was
sealed to, so malware that modifies the trusted stack cannot obtain it.
"""

from repro.crypto.keys import MeasuredState, SealedSigningKey, SealError, generate_signing_key
from repro.crypto.ca import Certificate, CertificateAuthority, CertificateError
from repro.crypto.signing import (
    CertifiedRequest,
    SignatureError,
    canonical_body,
    sign_request,
    verify_request,
)

__all__ = [
    "MeasuredState",
    "SealedSigningKey",
    "SealError",
    "generate_signing_key",
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "CertifiedRequest",
    "canonical_body",
    "sign_request",
    "verify_request",
    "SignatureError",
]
