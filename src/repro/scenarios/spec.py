"""Declarative scenario specifications.

A :class:`ScenarioSpec` names *what* to simulate — a page archetype, a
user script, and a seed — without constructing anything.  ``build()``
instantiates it into a :class:`Scenario`: concrete pristine pages, the
user's intended entries, the rendering stack, the guest display size and
the pinned witness sampling seed.  Everything downstream (the soak
driver, property tests, benchmarks) consumes scenarios, so one spec
replays bit-identically under every engine combination.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.datasets.forms import sample_user_entries
from repro.raster.stacks import RenderStack, stack_by_name
from repro.scenarios.pages import ARCHETYPES, DISPLAYS, archetype_stack, build_archetype_pages

#: User behaviour scripts (see :mod:`repro.scenarios.scripts`).
SCRIPTS = ("honest", "slow-typist", "tampered", "abandoning")

#: Typing cadence per script (ms between keystrokes, before jitter).
_TYPING_DELAY = {
    "honest": 80.0,
    "tampered": 80.0,
    "abandoning": 80.0,
    "slow-typist": 350.0,
}

#: Stride separating the derived sampler seeds of a scenario's steps.
_STEP_SEED_STRIDE = 101


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario: archetype x user script x seed.

    ``display``, ``stack_name``, ``sampler_seed`` and
    ``typing_delay_ms`` override the archetype/script defaults when set;
    leaving them ``None`` derives them deterministically from the seed so
    a spec is fully reproducible from its three core fields.
    """

    archetype: str
    script: str = "honest"
    seed: int = 0
    display: tuple | None = None
    stack_name: str | None = None
    sampler_seed: int | None = None
    typing_delay_ms: float | None = None

    def __post_init__(self) -> None:
        if self.archetype not in ARCHETYPES:
            raise ValueError(
                f"unknown archetype {self.archetype!r}; expected one of {ARCHETYPES}"
            )
        if self.script not in SCRIPTS:
            raise ValueError(f"unknown script {self.script!r}; expected one of {SCRIPTS}")

    @property
    def key(self) -> str:
        """Stable identity used to pair runs across engine combinations."""
        return f"{self.archetype}/{self.script}#{self.seed}"

    def with_seed(self, seed: int) -> "ScenarioSpec":
        return replace(self, seed=seed)

    def build(self) -> "Scenario":
        """Instantiate the concrete, deterministic scenario."""
        pages = build_archetype_pages(self.archetype, self.seed)
        entries = [
            sample_user_entries(page, self.seed * 13 + step)
            for step, page in enumerate(pages)
        ]
        stack = (
            stack_by_name(self.stack_name)
            if self.stack_name is not None
            else archetype_stack(self.archetype, self.seed)
        )
        display = self.display or DISPLAYS[self.archetype]
        sampler_seed = (
            self.sampler_seed
            if self.sampler_seed is not None
            else 100_000 + self.seed * 977 + ARCHETYPES.index(self.archetype)
        )
        delay = (
            self.typing_delay_ms
            if self.typing_delay_ms is not None
            else _TYPING_DELAY[self.script]
        )
        return Scenario(
            spec=self,
            pages=[(f"{self.archetype}-{self.seed}-s{i}", p) for i, p in enumerate(pages)],
            entries=entries,
            stack=stack,
            display=tuple(display),
            sampler_seed=sampler_seed,
            typing_delay_ms=delay,
        )


@dataclass
class Scenario:
    """A fully instantiated scenario, ready to be driven.

    ``pages`` holds *pristine* server-side pages — drivers must serve
    deep copies to clients (the :class:`~repro.server.WebServer` does
    this) so one combo's session cannot leak state into the next.
    """

    spec: ScenarioSpec
    pages: list  # [(page_id, Page), ...] in step order
    entries: list  # per-step name -> intended value
    stack: RenderStack
    display: tuple
    sampler_seed: int
    typing_delay_ms: float

    @property
    def steps(self) -> int:
        return len(self.pages)

    def step_sampler_seed(self, step: int) -> int:
        """The pinned witness sampling seed for one wizard step."""
        return self.sampler_seed + step * _STEP_SEED_STRIDE
