"""Page archetype generators for the scenario-diversity soak.

Each archetype captures one display condition a real guest can produce —
the conditions the ROADMAP's "as many scenarios as you can imagine"
north-star calls out and the static short-form tests under-exercise:

* ``tall-form`` — a form much taller than the viewport: the user scrolls
  while filling, so validation sees every viewport offset.
* ``wizard`` — a multi-step flow across several registered pages, one
  witnessed session per step.
* ``dashboard`` — a dense page mixing many text blocks, icons, logos and
  natural-image patches around a small form.
* ``nested-scroll`` — a :class:`~repro.web.elements.ScrollableList`
  placed below the fold, so the independently scrollable element is
  itself validated inside a scrolled viewport (nested VSPEC inside a
  shifted outer viewport).
* ``letterbox`` — a page *shorter* than the display: the browser
  letterboxes with the page background and the viewport matcher must
  pad the expected appearance.
* ``mixed-stack`` — a Jotform-style page rendered on a randomized
  rendering stack (driver/config variation beyond the six named stacks).

All builders are deterministic in ``seed``: the same spec always yields
the same page, so soak fingerprints are comparable across engines.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.forms import jotform_page
from repro.raster.stacks import RenderStack, make_random_stack, stack_registry
from repro.web.elements import (
    Button,
    Checkbox,
    ImageElement,
    Page,
    RadioGroup,
    ScrollableList,
    SelectBox,
    TextBlock,
    TextInput,
)

#: The scenario archetypes the generator covers.
ARCHETYPES = (
    "tall-form",
    "wizard",
    "dashboard",
    "nested-scroll",
    "letterbox",
    "mixed-stack",
)

#: Guest display (width, height) per archetype.  Heights are chosen so
#: tall pages genuinely scroll and the letterbox page genuinely pads.
DISPLAYS = {
    "tall-form": (640, 360),
    "wizard": (640, 480),
    "dashboard": (640, 440),
    "nested-scroll": (640, 400),
    "letterbox": (640, 600),
    "mixed-stack": (640, 480),
}

_FIELDS = [
    ("first_name", "First name"),
    ("last_name", "Last name"),
    ("email", "Email address"),
    ("phone", "Phone number"),
    ("address", "Street address"),
    ("city", "City"),
    ("zip", "Postal code"),
    ("company", "Company"),
    ("amount", "Amount"),
    ("account", "Account number"),
    ("order_ref", "Order reference"),
    ("date", "Preferred date"),
]

_SELECTS = [
    ("country", ["Canada", "USA", "UK", "Germany", "Japan"]),
    ("department", ["Sales", "Support", "Billing"]),
    ("plan", ["Basic", "Plus", "Premium"]),
]

_RADIOS = [
    ("contact_method", ["Email", "Phone"]),
    ("urgency", ["Low", "Normal", "High"]),
    ("shipping", ["Standard", "Express"]),
]

_CHECKBOXES = [
    ("subscribe", "Subscribe to the newsletter"),
    ("terms", "I agree to the terms"),
    ("privacy", "I accept the privacy policy"),
]

_LISTS = [
    ("topic", ["Billing", "Technical", "Account", "Sales", "Feedback", "Other"]),
    ("timezone", ["UTC-8", "UTC-5", "UTC", "UTC+1", "UTC+8", "UTC+9"]),
]

_ICONS = ["lock", "envelope", "person", "star"]


def _pick(rng: np.random.Generator, bank: list):
    return bank[int(rng.integers(len(bank)))]


def tall_form_page(seed: int, width: int = 640) -> Page:
    """A long single-column form: 6-8 text fields plus choice widgets."""
    rng = np.random.default_rng(11_000 + seed)
    elements: list = [TextBlock("Please complete every section below.", 14)]
    count = 6 + int(rng.integers(0, 3))
    picked = rng.choice(len(_FIELDS), size=count, replace=False)
    for j, idx in enumerate(picked):
        name, label = _FIELDS[int(idx)]
        elements.append(TextInput(name, label=label, max_length=24))
        if j % 3 == 2:
            elements.append(TextBlock(f"Section {j // 3 + 2}", 16))
    name, options = _pick(rng, _RADIOS)
    elements.append(RadioGroup(name, options))
    name, label = _pick(rng, _CHECKBOXES)
    elements.append(Checkbox(name, label))
    elements.append(Button("Submit", action="submit"))
    return Page(title=f"Tall form #{seed}", elements=elements, width=width)


def wizard_pages(seed: int, width: int = 640) -> list:
    """A three-step flow: contact -> choices -> confirmation."""
    rng = np.random.default_rng(23_000 + seed)
    contact = [TextBlock("Step 1 of 3: contact details", 16)]
    picked = rng.choice(4, size=2, replace=False)  # first 4 banks are contact-ish
    for idx in picked:
        name, label = _FIELDS[int(idx)]
        contact.append(TextInput(name, label=label, max_length=24))
    contact.append(Button("Next", action="submit"))

    choices = [TextBlock("Step 2 of 3: preferences", 16)]
    name, options = _pick(rng, _SELECTS)
    choices.append(SelectBox(name, options))
    name, options = _pick(rng, _RADIOS)
    choices.append(RadioGroup(name, options))
    choices.append(Button("Next", action="submit"))

    confirm = [TextBlock("Step 3 of 3: confirm your order", 16)]
    name, label = _FIELDS[10]  # order_ref
    confirm.append(TextInput(name, label=label, max_length=24))
    name, label = _pick(rng, _CHECKBOXES)
    confirm.append(Checkbox(name, label))
    confirm.append(Button("Finish", action="submit"))

    return [
        Page(title=f"Wizard step 1 #{seed}", elements=contact, width=width),
        Page(title=f"Wizard step 2 #{seed}", elements=choices, width=width),
        Page(title=f"Wizard step 3 #{seed}", elements=confirm, width=width),
    ]


def dashboard_page(seed: int, width: int = 640) -> Page:
    """A dense page: imagery and metric text around a small form."""
    rng = np.random.default_rng(31_000 + seed)
    elements: list = [
        ImageElement("logo", int(rng.integers(1, 1000)), width=140, height=36),
        TextBlock("Account overview", 18),
    ]
    for i in range(3):
        elements.append(ImageElement("icon", _ICONS[int(rng.integers(len(_ICONS)))], width=32, height=32))
        elements.append(TextBlock(f"Metric {i + 1}: {int(rng.integers(10, 99))} units", 14))
    elements.append(ImageElement("patch", int(rng.integers(1, 1000)), width=96, height=48))
    elements.append(TextBlock("Update your details", 16))
    for idx in rng.choice(len(_FIELDS), size=2, replace=False):
        name, label = _FIELDS[int(idx)]
        elements.append(TextInput(name, label=label, max_length=24))
    name, options = _pick(rng, _SELECTS)
    elements.append(SelectBox(name, options))
    elements.append(Button("Submit", action="submit"))
    return Page(title=f"Dashboard #{seed}", elements=elements, width=width)


def nested_scroll_page(seed: int, width: int = 640) -> Page:
    """A ScrollableList pushed below the fold of a scrolling page."""
    rng = np.random.default_rng(47_000 + seed)
    elements: list = [TextBlock("Scroll down to pick a topic.", 14)]
    for i in range(5):
        elements.append(TextBlock(f"Notice {i + 1}: read before continuing.", 14))
    for idx in rng.choice(len(_FIELDS), size=2, replace=False):
        name, label = _FIELDS[int(idx)]
        elements.append(TextInput(name, label=label, max_length=24))
    name, items = _pick(rng, _LISTS)
    elements.append(ScrollableList(name, items, visible_rows=3))
    name, label = _pick(rng, _CHECKBOXES)
    elements.append(Checkbox(name, label))
    elements.append(Button("Submit", action="submit"))
    return Page(title=f"Nested scroll #{seed}", elements=elements, width=width)


def letterbox_page(seed: int, width: int = 640) -> Page:
    """A page shorter than the display: the browser letterboxes below it."""
    rng = np.random.default_rng(59_000 + seed)
    name, label = _FIELDS[int(rng.integers(len(_FIELDS)))]
    elements: list = [
        TextBlock("Quick update", 16),
        TextInput(name, label=label, max_length=24),
        Checkbox(*_pick(rng, _CHECKBOXES)),
        Button("Submit", action="submit"),
    ]
    return Page(title=f"Letterbox #{seed}", elements=elements, width=width)


def build_archetype_pages(archetype: str, seed: int, width: int = 640) -> list:
    """The page sequence of one archetype instance (most have one page)."""
    if archetype == "tall-form":
        return [tall_form_page(seed, width)]
    if archetype == "wizard":
        return wizard_pages(seed, width)
    if archetype == "dashboard":
        return [dashboard_page(seed, width)]
    if archetype == "nested-scroll":
        return [nested_scroll_page(seed, width)]
    if archetype == "letterbox":
        return [letterbox_page(seed, width)]
    if archetype == "mixed-stack":
        return [jotform_page(7_000 + seed, width)]
    raise ValueError(f"unknown archetype {archetype!r}; expected one of {ARCHETYPES}")


def archetype_stack(archetype: str, seed: int) -> RenderStack:
    """The client rendering stack for one archetype instance.

    Every archetype rotates through the named engine x platform grid;
    ``mixed-stack`` instead draws a randomized stack, widening coverage
    to driver/config variation.
    """
    if archetype == "mixed-stack":
        return make_random_stack(1_000 + seed)
    registry = stack_registry()
    return registry[seed % len(registry)]
