"""Scenario-diversity soak harness.

Declarative scenario generation (:class:`ScenarioSpec` -> page
archetypes x user scripts) plus the deterministic soak driver
(:func:`run_soak`) that proves every engine combination — batched x
sequential planning, shared x inline execution, frozen x training
inference — computes bit-identical decisions, violations and certified
requests across every display condition a guest can produce.
"""

from repro.scenarios.pages import ARCHETYPES, DISPLAYS, archetype_stack, build_archetype_pages
from repro.scenarios.scripts import fill_elements, run_script
from repro.scenarios.soak import (
    ENGINE_COMBOS,
    Crash,
    Divergence,
    EngineCombo,
    ScenarioOutcome,
    SoakResult,
    baseline_combo,
    combo_by_name,
    default_soak_specs,
    run_scenario,
    run_soak,
    session_fingerprint,
)
from repro.scenarios.spec import SCRIPTS, Scenario, ScenarioSpec

__all__ = [
    "ARCHETYPES",
    "DISPLAYS",
    "SCRIPTS",
    "ENGINE_COMBOS",
    "Crash",
    "Divergence",
    "EngineCombo",
    "Scenario",
    "ScenarioOutcome",
    "ScenarioSpec",
    "SoakResult",
    "archetype_stack",
    "baseline_combo",
    "build_archetype_pages",
    "combo_by_name",
    "default_soak_specs",
    "fill_elements",
    "run_scenario",
    "run_script",
    "run_soak",
    "session_fingerprint",
]
