"""User scripts: how a guest behaves during one witnessed session step.

Four behaviours, all driven through the hardware-event
:class:`~repro.web.user.HonestUser` model (so interrupts, POFs and
reflective validation happen exactly as in the paper's user model):

* ``honest`` — fill every field, revisit the first text field if the
  page scrolls (mid-session scroll-then-refocus), submit.
* ``slow-typist`` — honest, but with a ~350ms keystroke cadence, so many
  random samples land *between* keystrokes.
* ``tampered`` — fill honestly, then malware rewrites a field value
  directly in the page (no hardware I/O, no hint) and repaints; the
  session then submits the tampered body.  Must never certify.
* ``abandoning`` — fill roughly half the fields and walk away; the
  session is closed without a submission.

Scripts return the request body to submit, or ``None`` to abandon.
"""

from __future__ import annotations

from repro.web.elements import (
    Checkbox,
    Page,
    RadioGroup,
    ScrollableList,
    SelectBox,
    TextInput,
)
from repro.web.user import HonestUser


def fill_elements(user: HonestUser, page: Page, entries: dict, names=None) -> None:
    """Drive the user through ``page``'s fields in flow order.

    ``entries`` maps field name -> intended value; ``names`` (if given)
    restricts the pass to a subset, preserving flow order.
    """
    for element in page.elements:
        name = getattr(element, "name", None)
        if name is None or name not in entries:
            continue
        if names is not None and name not in names:
            continue
        value = entries[name]
        if isinstance(element, TextInput):
            user.fill_text_input(name, value)
        elif isinstance(element, Checkbox):
            user.toggle_checkbox(name, value == "on")
        elif isinstance(element, RadioGroup):
            user.choose_radio(name, value)
        elif isinstance(element, SelectBox):
            user.choose_select(name, value)
        elif isinstance(element, ScrollableList):
            user.pick_list_item(name, value)


def _settle(machine, total_ms: float = 240.0, step_ms: float = 120.0) -> None:
    """Let the virtual clock run so pending random samples fire."""
    elapsed = 0.0
    while elapsed < total_ms:
        machine.clock.advance(step_ms)
        elapsed += step_ms


def _first_text_input(page: Page, entries: dict) -> TextInput | None:
    for element in page.elements:
        if isinstance(element, TextInput) and element.name in entries:
            return element
    return None


def _tamper_first_field(browser, entries: dict) -> None:
    """Malware's move: rewrite a filled field's value behind the user.

    Writes the page model directly (bypassing input events, so there is
    no hardware I/O and no hint) and repaints — the display now shows a
    value vWitness never saw the user enter.
    """
    target = _first_text_input(browser.page, entries)
    if target is None:  # no text field: flip a checkbox instead
        for element in browser.page.elements:
            if isinstance(element, Checkbox):
                element.checked = not element.checked
                break
    else:
        value = str(entries[target.name])
        forged = value[:-1] + ("X" if not value.endswith("X") else "Y") if value else "X"
        target.value = forged
        target.caret = len(forged)
    browser.paint()


def run_script(scenario, step: int, browser, vspec) -> dict | None:
    """Run the scenario's user script on one wired-up session step.

    Returns the request body to submit through the extension, or
    ``None`` when the user abandons the session.
    """
    script = scenario.spec.script
    entries = scenario.entries[step]
    user = HonestUser(
        browser,
        typing_delay_ms=scenario.typing_delay_ms,
        seed=scenario.spec.seed * 211 + step,
    )
    page = browser.page

    if script == "abandoning":
        names = list(entries)[: max(1, len(entries) // 2)]
        fill_elements(user, page, entries, names=names)
        _settle(browser.machine, total_ms=360.0)
        return None

    fill_elements(user, page, entries)

    if script == "tampered":
        _tamper_first_field(browser, entries)
        _settle(browser.machine, total_ms=720.0)
    elif browser.max_scroll > 0:
        # Mid-session scroll-then-refocus: scroll back to the top and
        # re-enter the first field, then let the sampler settle.  This is
        # the interleaved scroll/focus/type sequence the soak exists to
        # exercise at every viewport offset.
        first = _first_text_input(page, entries)
        if first is not None:
            browser.scroll(-browser.page_height)
            user.fill_text_input(first.name, str(entries[first.name]))
        _settle(browser.machine)
    else:
        _settle(browser.machine)

    body = dict(browser.page.form_values())
    body["session_id"] = vspec.session_id
    return body
