"""The deterministic scenario-diversity soak driver.

Three PRs of fast paths gave the witness several ways to compute every
verdict: plan-level batching vs sequential units, the shared
cross-session executor vs inline execution, and frozen vs training
inference.  Correctness claims only hold if they all *agree* — on every
display condition a guest can produce.  ``run_soak`` is the machinery
that proves it:

* each :class:`~repro.scenarios.spec.ScenarioSpec` is instantiated
  deterministically and driven through **every engine combination** in
  :data:`ENGINE_COMBOS`;
* each run is reduced to a :func:`session_fingerprint` — the decision,
  the server-side verification verdict, the submitted body, and every
  frame's (ok, offset, failures, violations) — scrubbed of
  engine-dependent observability counters (plan sizes, forward counts,
  wall-clock timings) and per-run nonces (session ids);
* any fingerprint mismatch or crash is reported as a divergence.

Fingerprints are bit-comparable because the whole simulation is virtual-
clock deterministic: pinned sampler seeds, seeded user jitter, seeded
page generation.  Wall time never enters a fingerprint.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field

from repro.core.service import WitnessConfig, WitnessService
from repro.obs.spans import span_snapshots
from repro.crypto.ca import CertificateAuthority
from repro.scenarios.pages import ARCHETYPES
from repro.scenarios.scripts import run_script
from repro.scenarios.spec import Scenario, ScenarioSpec
from repro.server.webserver import WebServer, connect_guest


@dataclass(frozen=True)
class EngineCombo:
    """One way the witness can compute verdicts."""

    name: str
    batched: bool
    executor: str
    inference: str

    def config(self, base: WitnessConfig | None = None) -> WitnessConfig:
        base = base or WitnessConfig()
        return base.replace(
            batched=self.batched, executor=self.executor, inference=self.inference
        )


#: Every valid engine combination (``executor="shared"`` requires
#: ``batched=True``, so the matrix has six cells, not eight).
ENGINE_COMBOS = (
    EngineCombo("batched-inline-frozen", batched=True, executor="inline", inference="frozen"),
    EngineCombo("batched-inline-training", batched=True, executor="inline", inference="training"),
    EngineCombo("sequential-inline-frozen", batched=False, executor="inline", inference="frozen"),
    EngineCombo("sequential-inline-training", batched=False, executor="inline", inference="training"),
    EngineCombo("batched-shared-frozen", batched=True, executor="shared", inference="frozen"),
    EngineCombo("batched-shared-training", batched=True, executor="shared", inference="training"),
)


def combo_by_name(name: str) -> EngineCombo:
    for combo in ENGINE_COMBOS:
        if combo.name == name:
            return combo
    raise KeyError(f"unknown engine combo {name!r}")


def baseline_combo(executor: str = "inline", inference: str = "frozen") -> EngineCombo:
    """The combo matching the benchmark suite's ``--executor``/``--inference``
    knobs (always a batched cell; shared execution presupposes batching)."""
    return combo_by_name(f"batched-{executor}-{inference}")


# -- fingerprints ----------------------------------------------------------


def _frame_fingerprint(outcome) -> tuple:
    return (
        outcome.index,
        round(outcome.sampled_at_ms, 6),
        outcome.ok,
        outcome.offset_y,
        outcome.skipped_unchanged,
        tuple((f.kind, tuple(f.rect), f.reason) for f in outcome.failures),
        tuple((v.rule, v.detail) for v in outcome.new_violations),
    )


def session_fingerprint(decision, report, body: dict | None, server_verified) -> tuple:
    """The engine-independent identity of one witnessed session.

    Everything here must be bit-identical across engine combinations;
    plan sizes, forward counts and wall-clock timings are deliberately
    excluded (they are *supposed* to differ between engines), as is the
    per-run ``session_id`` nonce.
    """
    return (
        None if decision is None else (decision.certified, decision.reason),
        server_verified,
        None
        if body is None
        else tuple(sorted((k, str(v)) for k, v in body.items() if k != "session_id")),
        report.display_ok,
        tuple(_frame_fingerprint(o) for o in report.outcomes),
    )


@dataclass
class ScenarioOutcome:
    """One scenario instance driven under one engine combination."""

    spec: ScenarioSpec
    combo: str
    fingerprint: tuple
    sessions: int
    frames: int
    certified: int
    #: Model forwards the scenario's sessions were charged (engine-
    #: dependent by design — excluded from the fingerprint).
    forwards: int = 0
    expectation_failures: list = field(default_factory=list)
    #: Witness session ids this scenario consumed (per-run nonces — never
    #: fingerprinted).  Lets the soak driver pull exactly this scenario's
    #: frames back out of the service's flight recorder on divergence.
    session_ids: list = field(default_factory=list)


def _expectation_failures(spec: ScenarioSpec, fingerprints: tuple) -> list:
    """Check the script's contract: honest users certify (and the server
    accepts the request), tampered sessions never certify, abandoned
    sessions never reach a decision."""
    failures = []
    for i, (decision, verified, _body, _display_ok, _frames) in enumerate(fingerprints):
        if spec.script in ("honest", "slow-typist"):
            if decision is None or not decision[0]:
                failures.append(f"session {i}: honest session did not certify ({decision})")
            elif verified is not True:
                failures.append(f"session {i}: certified request failed server verification")
        elif spec.script == "tampered":
            if decision is not None and decision[0]:
                failures.append(f"session {i}: tampered session was certified")
        elif spec.script == "abandoning":
            if decision is not None:
                failures.append(f"session {i}: abandoned session produced a decision")
    return failures


def _fault_expectation_failures(plan, spec: ScenarioSpec, base_fingerprint, fingerprint) -> list:
    """The fail-closed contract of one scenario under one fault plan.

    Tampered sessions must never certify — a fault that lets one through
    is fail-open, the breach the whole ladder exists to prevent.
    Abandoning sessions still reach no decision.  Honest (and
    slow-typist) sessions follow the plan's ``honest_expectation``:
    ``identical`` (recoverable — the whole scenario fingerprint must be
    bit-equal to the fault-free run), ``certify`` (evidence collection
    perturbed, so fingerprints may differ, but the session certifies and
    the server verifies), or ``refuse`` (a clean refuse-to-certify
    decision, never a wedge or an unearned certification).
    """
    failures = []
    for i, (decision, verified, _body, _display_ok, _frames) in enumerate(fingerprint):
        if spec.script == "tampered":
            if decision is not None and decision[0]:
                failures.append(
                    f"session {i}: FAIL-OPEN: tampered session certified under faults"
                )
        elif spec.script == "abandoning":
            if decision is not None:
                failures.append(f"session {i}: abandoned session produced a decision")
        elif spec.script in ("honest", "slow-typist"):
            if plan.honest_expectation == "certify":
                if decision is None or not decision[0]:
                    failures.append(
                        f"session {i}: honest session did not certify ({decision})"
                    )
                elif verified is not True:
                    failures.append(
                        f"session {i}: certified request failed server verification"
                    )
            elif plan.honest_expectation == "refuse":
                if decision is None:
                    failures.append(f"session {i}: honest session reached no decision")
                elif decision[0]:
                    failures.append(
                        f"session {i}: honest session certified despite an "
                        "unrecoverable fault plan"
                    )
    if plan.honest_expectation == "identical":
        # Recoverable faults must be invisible in the evidence: the whole
        # scenario — tampered and abandoning sessions included — replays
        # bit-identically against the fault-free baseline.
        if base_fingerprint is None:
            failures.append("no fault-free baseline fingerprint to compare against")
        elif fingerprint != base_fingerprint:
            failures.append(
                "fingerprint diverged from fault-free run: "
                + _describe_divergence(base_fingerprint, fingerprint)
            )
    return failures


@dataclass(frozen=True)
class Divergence:
    """Two engine combinations disagreed on one scenario."""

    scenario: str
    baseline: str
    combo: str
    detail: str


@dataclass(frozen=True)
class Crash:
    """One scenario run died instead of producing a fingerprint."""

    scenario: str
    combo: str
    error: str


@dataclass
class SoakResult:
    """Everything one soak produced."""

    combos: tuple
    baseline: str
    scenarios: int
    archetypes: tuple
    sessions_total: int
    frames_total: int
    certified_total: int
    sessions_per_combo: dict
    #: Total model forwards per engine combination.  Decisions are
    #: bit-identical across combos; this is where the combos are
    #: *supposed* to differ (shared combos coalesce, batched combos
    #: chunk) — surfaced so the soak also documents the cost spread.
    forwards_per_combo: dict = field(default_factory=dict)
    divergences: list = field(default_factory=list)
    crashes: list = field(default_factory=list)
    #: ``(scenario, combo, detail)`` script-contract breaches — an honest
    #: session that did not certify, a tampered one that did, etc.
    expectation_failures: list = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Per-stage latency percentiles from the *baseline* combo's traced
    #: run: ``{stage: {count, mean, p50, p95, p99}}``.  Empty unless the
    #: soak ran with ``tracing=True``.
    span_percentiles: dict = field(default_factory=dict)
    #: Paths of divergence flight-recorder artifacts written this soak
    #: (``tracing=True`` plus ``flight_dir`` and at least one divergence).
    flight_artifacts: list = field(default_factory=list)
    #: Names of the fault plans driven (``run_soak(faults=...)``).
    fault_plans: tuple = ()
    #: ``(plan, scenario, detail)`` fail-closed contract breaches under a
    #: fault plan: a tampered session that certified (fail-open — the
    #: critical one), an honest session that diverged from its plan's
    #: expectation, or a crash during a faulted pass.
    fault_failures: list = field(default_factory=list)
    #: Per-plan accounting: injector fires per point, runtime health
    #: counters, sessions/certified/refused, wall seconds.
    fault_stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            not self.divergences
            and not self.crashes
            and not self.expectation_failures
            and not self.fault_failures
        )

    @property
    def sessions_per_second(self) -> float:
        return self.sessions_total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def summary(self) -> str:
        lines = [
            f"soak: {self.scenarios} scenarios x {len(self.combos)} engine combos "
            f"({', '.join(self.combos)})",
            f"archetypes: {', '.join(self.archetypes)}",
            f"sessions: {self.sessions_total} total ({self.certified_total} certified), "
            f"{self.frames_total} frames, {self.wall_seconds:.1f}s wall "
            f"({self.sessions_per_second:.2f} sessions/s)",
            "forwards: "
            + ", ".join(f"{name}={n}" for name, n in self.forwards_per_combo.items()),
            f"divergences: {len(self.divergences)}  crashes: {len(self.crashes)}  "
            f"expectation failures: {len(self.expectation_failures)}",
        ]
        if self.fault_plans:
            fired = sum(s.get("faults_injected", 0) for s in self.fault_stats.values())
            lines.append(
                f"fault plans: {', '.join(self.fault_plans)} "
                f"({fired} faults injected, {len(self.fault_failures)} failures)"
            )
        frame = self.span_percentiles.get("frame")
        if frame:
            lines.append(
                f"frame latency (baseline, traced): p50={frame['p50']:.2f}ms "
                f"p95={frame['p95']:.2f}ms p99={frame['p99']:.2f}ms "
                f"over {frame['count']} frames"
            )
        for d in self.divergences:
            lines.append(f"  DIVERGED {d.scenario}: {d.combo} vs {d.baseline}: {d.detail}")
        for c in self.crashes:
            lines.append(f"  CRASHED {c.scenario} under {c.combo}: {c.error}")
        for scenario, combo, detail in self.expectation_failures:
            lines.append(f"  UNEXPECTED {scenario} under {combo}: {detail}")
        for plan, scenario, detail in self.fault_failures:
            lines.append(f"  FAULT-FAILURE {scenario} under plan {plan}: {detail}")
        for path in self.flight_artifacts:
            lines.append(f"  flight artifact: {path}")
        return "\n".join(lines)


# -- driving ---------------------------------------------------------------


def run_scenario(scenario: Scenario, service: WitnessService, server: WebServer | None = None) -> ScenarioOutcome:
    """Drive one scenario instance against ``service``; returns its outcome.

    Builds a fresh guest (machine, browser, extension, session handle)
    per wizard step, pins the witness sampling seed from the scenario so
    the schedule replays identically under every engine, and reduces the
    whole flow to a fingerprint.
    """
    if server is None:
        server = WebServer(service.ca) if service.ca is not None else None
        if server is None:
            raise ValueError("run_scenario needs a server or a service with a CA")
    for page_id, page in scenario.pages:
        server.register_page(page_id, page)

    fingerprints = []
    session_ids = []
    sessions = frames = certified = forwards = 0
    for step, (page_id, _page) in enumerate(scenario.pages):
        client = connect_guest(
            server,
            service,
            page_id,
            display=scenario.display,
            stack=scenario.stack,
            sampler_seed=scenario.step_sampler_seed(step),
        )
        try:
            session_ids.append(client.witness.id)
            body = run_script(scenario, step, client.browser, client.vspec)
            if body is None:
                report = client.witness.report
                fingerprints.append(session_fingerprint(None, report, None, None))
            else:
                decision = client.extension.end_session(body)
                report = client.witness.report
                verified = (
                    bool(server.verify(decision.request)) if decision.request else None
                )
                fingerprints.append(session_fingerprint(decision, report, body, verified))
                certified += int(decision.certified)
            sessions += 1
            frames += report.frames_sampled
            forwards += report.text_forwards + report.image_forwards
        finally:
            client.close()
    return ScenarioOutcome(
        spec=scenario.spec,
        combo="",
        fingerprint=tuple(fingerprints),
        sessions=sessions,
        frames=frames,
        certified=certified,
        forwards=forwards,
        expectation_failures=_expectation_failures(scenario.spec, tuple(fingerprints)),
        session_ids=session_ids,
    )


def _expand_specs(specs, seeds) -> list:
    grid = []
    for spec in specs:
        if isinstance(spec, str):
            spec = ScenarioSpec(archetype=spec)
        if seeds is None:
            grid.append(spec)
        else:
            grid.extend(spec.with_seed(spec.seed + s) for s in seeds)
    return grid


def _describe_divergence(base: tuple, other: tuple) -> str:
    """The first structural difference between two scenario fingerprints."""
    if len(base) != len(other):
        return f"session count {len(other)} != {len(base)}"
    names = ("decision", "server-verified", "body", "display_ok", "frames")
    for s, (bs, os_) in enumerate(zip(base, other)):
        for part, bp, op in zip(names, bs, os_):
            if bp == op:
                continue
            if part == "frames":
                if len(bp) != len(op):
                    return f"session {s}: frame count {len(op)} != {len(bp)}"
                fields = (
                    "index", "sampled_at_ms", "ok", "offset_y",
                    "skipped_unchanged", "failures", "violations",
                )
                for i, (bf, of_) in enumerate(zip(bp, op)):
                    for fname, bv, ov in zip(fields, bf, of_):
                        if bv != ov:
                            return (
                                f"session {s} frame {i}: {fname} differs: "
                                f"{ov!r} != {bv!r}"[:400]
                            )
            return f"session {s}: {part} differs: {op!r} != {bp!r}"[:400]
    return "fingerprints differ (structure)"


def _slug(text: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_.-]+", "-", text).strip("-")


def _scenario_frames(ring: list, outcome) -> list:
    """The frame traces of one scenario, out of a combo's flight ring.

    The ring is bounded: frames of an early scenario may have been
    evicted by later ones — the artifact then carries whatever evidence
    survived (possibly none), never another scenario's frames.
    """
    if outcome is None:
        return []
    wanted = set(outcome.session_ids)
    return [f for f in ring if f.get("session_id") in wanted]


def run_soak(
    specs,
    *,
    seeds=None,
    combos=ENGINE_COMBOS,
    baseline: EngineCombo | str | None = None,
    text_model=None,
    image_model=None,
    config: WitnessConfig | None = None,
    threads: int = 1,
    tracing: bool = False,
    flight_dir: str | None = None,
    faults=None,
) -> SoakResult:
    """Drive every scenario through every engine combination and compare.

    Args:
        specs: :class:`ScenarioSpec` instances (or archetype names, which
            become honest-script specs at seed 0).
        seeds: optional seed offsets; each spec expands to one instance
            per seed (``None`` keeps the specs as given).
        combos: the engine combinations to cross-check.
        baseline: the reference combo (name or instance); defaults to the
            first of ``combos``.  Every other combo is compared to it.
        config: base :class:`WitnessConfig` for runtime knobs; each
            combo's batched/executor/inference fields are overlaid on it.
        threads: drive this many scenario fleets concurrently within each
            combo (>=2 exercises genuine cross-session coalescing on the
            shared executor; fingerprints must *still* match, because
            per-session verdicts do not depend on batch composition).
        tracing: run every combo with span tracing on.  Fingerprints are
            compared exactly as without — tracing changing any of them IS
            a divergence.  The baseline combo's per-stage percentiles land
            in ``SoakResult.span_percentiles``.
        flight_dir: with ``tracing``, write a JSON flight-recorder
            artifact here per divergence, carrying the diverging
            scenario's last-N frame traces from both sides.
        faults: a :class:`repro.faults.FaultPlan` (or an iterable of
            them).  After the fault-free pass, the whole grid replays
            under the *baseline* combo once per plan with the injector
            armed, checking the fail-closed contract
            (:func:`_fault_expectation_failures`): tampered sessions
            never certify, honest sessions follow the plan's
            ``honest_expectation`` — ``identical`` plans must reproduce
            the fault-free fingerprints bit-for-bit.  Runtime seams
            (flusher crash/stall, admission timeout) only exercise under
            a shared-executor baseline.  Faulted passes compare only
            within their own combo — cross-combo fingerprints are not
            meaningful under faults.

    Returns a :class:`SoakResult`; ``result.ok`` is the soak's verdict.
    """
    if text_model is None or image_model is None:
        from repro.nn.zoo import get_image_model, get_text_model

        text_model = text_model or get_text_model("base")
        image_model = image_model or get_image_model()

    grid = _expand_specs(specs, seeds)
    if isinstance(baseline, str):
        baseline = combo_by_name(baseline)
    combos = tuple(combos)
    if baseline is None:
        baseline = combos[0]
    elif baseline not in combos:
        combos = (baseline,) + tuple(c for c in combos if c != baseline)
    ordered = (baseline,) + tuple(c for c in combos if c != baseline)

    outcomes: dict = {}  # combo name -> {spec.key -> ScenarioOutcome}
    forwards_per_combo: dict = {}
    flight_rings: dict = {}  # combo name -> [FrameTrace dicts], oldest first
    span_percentiles: dict = {}
    crashes: list = []
    t0 = time.perf_counter()
    for combo in ordered:
        ca = CertificateAuthority()
        cfg = combo.config(config)
        if tracing:
            # A larger ring than the service default: a soak drives dozens
            # of sessions per combo and the diverging scenario may not be
            # the last one driven.  Violation auto-dumps stay off
            # (flight_dir is service-level); the soak writes its own
            # divergence artifacts below.
            cfg = cfg.replace(tracing=True, flight_frames=max(cfg.flight_frames, 512))
        service = WitnessService(
            ca, cfg, text_model=text_model, image_model=image_model
        )
        per_combo: dict = {}

        def drive(spec: ScenarioSpec):
            try:
                outcome = run_scenario(spec.build(), service)
                outcome.combo = combo.name
                per_combo[spec.key] = outcome
            except Exception as exc:  # noqa: BLE001 - a crash IS a finding
                crashes.append(Crash(spec.key, combo.name, f"{type(exc).__name__}: {exc}"))

        with service:
            if threads > 1:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(max_workers=threads) as pool:
                    list(pool.map(drive, grid))
            else:
                for spec in grid:
                    drive(spec)
        outcomes[combo.name] = per_combo
        if tracing:
            recorder = service.flight_recorder
            flight_rings[combo.name] = (
                recorder.snapshot() if recorder is not None else []
            )
            if combo == baseline:
                span_percentiles = {
                    stage: {
                        "count": snap["count"],
                        "mean": snap["mean"],
                        "p50": snap["p50"],
                        "p95": snap["p95"],
                        "p99": snap["p99"],
                    }
                    for stage, snap in span_snapshots(service.span_metrics).items()
                }
        # Shared combos' flushes are co-owned by many sessions: the
        # runtime's global counter is authoritative there; inline combos
        # sum exactly per session.
        runtime = service.runtime_stats().get("runtime")
        forwards_per_combo[combo.name] = (
            runtime["forwards_total"]
            if runtime is not None
            else sum(o.forwards for o in per_combo.values())
        )
    divergences: list = []
    base_outcomes = outcomes[baseline.name]
    for combo in ordered[1:]:
        for key, outcome in outcomes[combo.name].items():
            base = base_outcomes.get(key)
            if base is None:
                continue  # baseline crashed; already reported
            if outcome.fingerprint != base.fingerprint:
                divergences.append(
                    Divergence(
                        scenario=key,
                        baseline=baseline.name,
                        combo=combo.name,
                        detail=_describe_divergence(base.fingerprint, outcome.fingerprint),
                    )
                )

    flight_artifacts: list = []
    if tracing and flight_dir and divergences:
        os.makedirs(flight_dir, exist_ok=True)
        for d in divergences:
            payload = {
                "reason": f"fingerprint-divergence: {d.detail}",
                "scenario": d.scenario,
                "baseline": {
                    "combo": d.baseline,
                    "frames": _scenario_frames(
                        flight_rings.get(d.baseline, []), base_outcomes.get(d.scenario)
                    ),
                },
                "diverged": {
                    "combo": d.combo,
                    "frames": _scenario_frames(
                        flight_rings.get(d.combo, []),
                        outcomes[d.combo].get(d.scenario),
                    ),
                },
            }
            path = os.path.join(
                flight_dir, f"divergence-{_slug(d.scenario)}-{_slug(d.combo)}.json"
            )
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True, default=str)
            flight_artifacts.append(path)

    # -- faulted passes: replay the grid under each plan, fail-closed ------
    fault_plans: tuple = ()
    fault_failures: list = []
    fault_stats: dict = {}
    if faults is not None:
        from repro.faults import FaultPlan

        plans = (faults,) if isinstance(faults, FaultPlan) else tuple(faults)
        fault_plans = tuple(p.name for p in plans)
        for plan in plans:
            pt0 = time.perf_counter()
            fcfg = baseline.config(config).replace(
                faults=plan, **dict(plan.config_overrides)
            )
            service = WitnessService(
                CertificateAuthority(), fcfg,
                text_model=text_model, image_model=image_model,
            )
            per_plan: dict = {}
            with service:
                for spec in grid:
                    try:
                        outcome = run_scenario(spec.build(), service)
                        outcome.combo = f"faults:{plan.name}"
                        per_plan[spec.key] = outcome
                    except Exception as exc:  # noqa: BLE001 - a crash IS a finding
                        fault_failures.append(
                            (plan.name, spec.key, f"CRASH {type(exc).__name__}: {exc}")
                        )
                injector_snapshot = service.fault_injector.snapshot()
                health = service.health()
            refused = certified_n = 0
            for key, outcome in per_plan.items():
                base = base_outcomes.get(key)
                fault_failures.extend(
                    (plan.name, key, detail)
                    for detail in _fault_expectation_failures(
                        plan,
                        outcome.spec,
                        None if base is None else base.fingerprint,
                        outcome.fingerprint,
                    )
                )
                certified_n += outcome.certified
                refused += sum(
                    1
                    for decision, _v, _b, _d, _f in outcome.fingerprint
                    if decision is not None and not decision[0]
                )
            fault_stats[plan.name] = {
                "expectation": plan.honest_expectation,
                "faults_injected": injector_snapshot["total_fired"],
                "points": injector_snapshot["points"],
                "health": health,
                "sessions": sum(o.sessions for o in per_plan.values()),
                "frames": sum(o.frames for o in per_plan.values()),
                "certified": certified_n,
                "refused": refused,
                "wall_seconds": time.perf_counter() - pt0,
            }
    wall = time.perf_counter() - t0

    all_outcomes = [o for per in outcomes.values() for o in per.values()]
    expectation_failures = [
        (o.spec.key, o.combo, detail)
        for o in all_outcomes
        for detail in o.expectation_failures
    ]
    return SoakResult(
        combos=tuple(c.name for c in ordered),
        baseline=baseline.name,
        scenarios=len(grid),
        archetypes=tuple(dict.fromkeys(s.archetype for s in grid)),
        sessions_total=sum(o.sessions for o in all_outcomes),
        frames_total=sum(o.frames for o in all_outcomes),
        certified_total=sum(o.certified for o in all_outcomes),
        sessions_per_combo={
            name: sum(o.sessions for o in per.values()) for name, per in outcomes.items()
        },
        forwards_per_combo=forwards_per_combo,
        divergences=divergences,
        crashes=crashes,
        expectation_failures=expectation_failures,
        wall_seconds=wall,
        span_percentiles=span_percentiles,
        flight_artifacts=flight_artifacts,
        fault_plans=fault_plans,
        fault_failures=fault_failures,
        fault_stats=fault_stats,
    )


def default_soak_specs() -> list:
    """The standard soak matrix: every archetype, every user script.

    Ten scenario instances — twelve witnessed sessions per engine combo
    (the wizard contributes three) — covering all six archetypes and all
    four behaviour scripts.
    """
    return [
        ScenarioSpec("tall-form", script="honest"),
        ScenarioSpec("tall-form", script="tampered"),
        ScenarioSpec("wizard", script="honest"),
        ScenarioSpec("dashboard", script="honest"),
        ScenarioSpec("dashboard", script="abandoning"),
        ScenarioSpec("nested-scroll", script="honest"),
        ScenarioSpec("nested-scroll", script="tampered"),
        ScenarioSpec("letterbox", script="honest"),
        ScenarioSpec("letterbox", script="slow-typist"),
        ScenarioSpec("mixed-stack", script="honest"),
    ]
