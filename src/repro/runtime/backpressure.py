"""Admission control for the validation runtime.

The micro-batching executor must not let an unbounded number of unit
inputs pile up between submission and flush: every queued tile pins
float32 pixels, and a burst of guests would otherwise trade latency for
memory without limit.  :class:`AdmissionGate` bounds the *in-flight*
units — admitted but not yet verdict-scattered — and applies one of two
overload policies:

* ``"block"`` — the submitting session thread waits for room.  Natural
  backpressure: guests queue at the door instead of inside the runtime.
* ``"shed"`` — the submission is refused (``acquire`` returns ``False``)
  and the caller falls back to executing its own forward inline, losing
  coalescing but never correctness.

A submission larger than the whole bound is admitted once the runtime is
otherwise empty (it must run *somewhere*, and alone-in-the-runtime is the
bounded-memory way to run it), so no plan size can deadlock the gate.
While such a submission waits under the ``block`` policy the gate drains:
new admissions pause until the oversized one is in, so a stream of small
rounds can never starve a large plan.
"""

from __future__ import annotations

import threading

from repro.runtime.errors import AdmissionTimeout

POLICIES = ("block", "shed")


class AdmissionGate:
    """Bounds in-flight validation units across every submitting session."""

    def __init__(
        self,
        max_inflight_units: int | None,
        policy: str = "block",
        block_timeout: float = 30.0,
        faults=None,
    ) -> None:
        if max_inflight_units is not None and max_inflight_units < 1:
            raise ValueError(
                f"max_inflight_units must be None (unbounded) or >= 1, got {max_inflight_units}"
            )
        if policy not in POLICIES:
            raise ValueError(f"admission policy must be one of {POLICIES}, got {policy!r}")
        self.max_inflight_units = max_inflight_units
        self.policy = policy
        self.block_timeout = block_timeout
        #: Optional :class:`repro.faults.FaultInjector`; ``None`` keeps the
        #: ``runtime.admission_timeout`` seam a zero-cost no-op.
        self._faults = faults
        self._cond = threading.Condition()
        self._inflight = 0
        # Oversized submissions currently waiting for the runtime to
        # empty; while any exist, normal admissions pause (anti-starvation
        # drain) — small rounds must not be able to keep inflight > 0
        # forever while a big plan waits.
        self._drain_waiters = 0
        #: Times a submitter had to wait (block policy) or was refused
        #: (shed policy); the executor mirrors these into RuntimeMetrics.
        self.blocked = 0
        self.shed = 0

    @property
    def inflight_units(self) -> int:
        with self._cond:
            return self._inflight

    def _oversized(self, units: int) -> bool:
        return self.max_inflight_units is not None and units > self.max_inflight_units

    def _has_room(self, units: int) -> bool:
        if self.max_inflight_units is None:
            return True
        if self._inflight == 0:
            # Oversized submissions run alone rather than never; an
            # ordinary round may take the empty runtime only when no
            # oversized plan is waiting for exactly this moment.
            return not self._drain_waiters or self._oversized(units)
        if self._oversized(units):
            return False
        if self._drain_waiters:
            return False  # draining for an oversized waiter: hold the door
        return self._inflight + units <= self.max_inflight_units

    def acquire(self, units: int) -> bool:
        """Admit ``units``; ``False`` means shed (policy ``"shed"`` only)."""
        if units < 0:
            raise ValueError(f"cannot admit a negative unit count: {units}")
        if self._faults is not None and self._faults.decide("runtime.admission_timeout"):
            raise AdmissionTimeout(
                f"admission gate blocked for over {self.block_timeout}s (injected); "
                "the runtime is stalled"
            )
        with self._cond:
            if not self._has_room(units):
                if self.policy == "shed":
                    self.shed += 1
                    return False
                self.blocked += 1
                draining = self._oversized(units)
                if draining:
                    self._drain_waiters += 1
                try:
                    granted = self._cond.wait_for(
                        lambda: self._has_room(units), timeout=self.block_timeout
                    )
                finally:
                    if draining:
                        self._drain_waiters -= 1
                if not granted:
                    raise AdmissionTimeout(
                        f"admission gate blocked for over {self.block_timeout}s "
                        f"({self._inflight} units in flight, limit "
                        f"{self.max_inflight_units}); the runtime is stalled"
                    )
            self._inflight += units
            return True

    def release(self, units: int) -> None:
        with self._cond:
            self._inflight -= units
            if self._inflight < 0:  # pragma: no cover - guards a caller bug
                raise RuntimeError("admission gate released more units than admitted")
            self._cond.notify_all()
