"""Cross-session validation runtime (micro-batching, backpressure, metrics).

The layer between :mod:`repro.core.service` and the CNN verifiers:

* :mod:`repro.runtime.executor` — :class:`ValidationExecutor`, the shared
  micro-batching executor sessions submit their validation rounds to;
* :mod:`repro.runtime.batcher` — per-model-kind deadline/occupancy
  coalescing of concurrent sessions' forwards;
* :mod:`repro.runtime.backpressure` — bounded in-flight admission with
  block/shed overload policies;
* :mod:`repro.runtime.metrics` — the counters/gauges/histograms surfaced
  by ``WitnessService.runtime_stats()``.

Select it per service with ``WitnessConfig(executor="shared")``; the
default ``"inline"`` keeps the original in-thread execution path.
"""

from repro.runtime.backpressure import AdmissionGate
from repro.runtime.batcher import MicroBatcher, chunks_touched, forwards_for
from repro.runtime.errors import AdmissionTimeout, RuntimeFaultError, RuntimeFlushError
from repro.runtime.executor import EXECUTOR_MODES, ValidationExecutor
from repro.runtime.health import HEALTH_STATES, HealthTracker
from repro.runtime.metrics import Counter, Gauge, Histogram, RuntimeMetrics

__all__ = [
    "AdmissionGate",
    "AdmissionTimeout",
    "Counter",
    "EXECUTOR_MODES",
    "Gauge",
    "HEALTH_STATES",
    "HealthTracker",
    "Histogram",
    "MicroBatcher",
    "RuntimeFaultError",
    "RuntimeFlushError",
    "RuntimeMetrics",
    "ValidationExecutor",
    "chunks_touched",
    "forwards_for",
]
