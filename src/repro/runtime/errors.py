"""Typed failure vocabulary of the validation runtime.

Before this module, the runtime spoke in bare ``RuntimeError``\\ s: a
flush that died re-raised the *same* exception object on every waiting
submitter thread (mangling tracebacks — each re-raise rewrites the
shared object's ``__traceback__``), and an admission-gate stall was
indistinguishable from any other runtime failure.  The degradation
ladder (:meth:`repro.runtime.executor.ValidationExecutor.predict`) and
the session quarantine (:class:`repro.core.service.WitnessSession`)
need to *dispatch* on failure class, so each failure mode gets a type:

* :class:`RuntimeFaultError` — base class of every fault the runtime
  can surface to a session.  Subclasses ``RuntimeError`` so existing
  ``except RuntimeError`` call sites keep working.
* :class:`RuntimeFlushError` — one submitter's view of a failed (or
  timed-out) micro-batch flush.  Raised per-submitter with the original
  flush exception as ``__cause__``, so every thread gets its own
  exception object and an honest traceback chain.
* :class:`AdmissionTimeout` — the admission gate's block policy gave up
  waiting for in-flight units to drain.

Injected faults (:class:`repro.faults.InjectedFault`) subclass
:class:`RuntimeFaultError` too, so one ``except RuntimeFaultError``
covers both organic and injected failures — which is the point: the
recovery code cannot tell them apart, so exercising it with injection
proves the organic paths.
"""

from __future__ import annotations


class RuntimeFaultError(RuntimeError):
    """Base class of recoverable-or-quarantinable runtime faults."""


class RuntimeFlushError(RuntimeFaultError):
    """A micro-batch flush failed (or timed out) for one submitter.

    ``timeout`` distinguishes a flush that *died* (worth one resubmit —
    the flusher supervisor may already have restarted) from one that
    *stalled past the submit deadline* (resubmitting would just wait
    again; the caller should degrade to an inline forward instead).
    """

    def __init__(self, message: str, *, timeout: bool = False) -> None:
        super().__init__(message)
        self.timeout = timeout


class AdmissionTimeout(RuntimeFaultError):
    """The admission gate's block policy timed out waiting for room."""
