"""Runtime observability: counters, gauges and histograms.

A :class:`RuntimeMetrics` registry is the single observability surface of
the validation runtime (:mod:`repro.runtime.executor`).  It is deliberately
Prometheus-shaped — monotonic counters, point-in-time gauges, bucketed
histograms — so a deployment can lift :meth:`RuntimeMetrics.snapshot`
straight into its metrics endpoint, but it has no external dependencies:
instruments are plain objects sharing one lock.

Instrument names are dotted paths (``flushes_total.text``,
``batch_occupancy.image``); the per-kind suffix keeps the two model kinds
separately observable without a label system.
"""

from __future__ import annotations

import threading

#: Default histogram bucket upper bounds.  Chosen to cover both unit
#: counts (batch occupancy: 1..thousands) and millisecond latencies
#: (flush waits: sub-ms..seconds) without per-instrument tuning.
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value that can move both ways."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A bucketed distribution with count/sum/min/max.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in the implicit overflow bucket (reported as ``inf``).
    """

    def __init__(self, lock: threading.Lock, buckets=DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram buckets must be sorted and non-empty: {buckets!r}")
        self._lock = lock
        self.bounds = tuple(buckets)
        self._bucket_counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    return
            self._bucket_counts[-1] += 1

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``0 <= q <= 100``).

        Linear interpolation within the containing bucket, with the
        observed ``min``/``max`` tightening the outermost bucket edges —
        so the estimate is *exact-bound*: it never leaves the containing
        bucket and never exceeds the observed value range.  With no
        observations the estimate is 0.
        """
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        q = min(max(q, 0.0), 100.0)
        target = q / 100.0 * self._count
        cum = 0
        prev_bound: float | None = None  # effectively -inf before bucket 0
        for i, count in enumerate(self._bucket_counts):
            bound = self.bounds[i] if i < len(self.bounds) else None  # None = overflow
            if count:
                lo = self._min if prev_bound is None else max(prev_bound, self._min)
                hi = self._max if bound is None else min(bound, self._max)
                hi = max(hi, lo)
                if cum + count >= target:
                    frac = (target - cum) / count
                    return lo + frac * (hi - lo)
                cum += count
            if bound is not None:
                prev_bound = bound
        return self._max  # pragma: no cover - float-rounding fallback

    def snapshot(self) -> dict:
        """Stable export: ``buckets`` keys cover every configured bound
        (zero counts included) in bound order, plus the numeric ``bounds``
        list and interpolated p50/p95/p99 — two snapshots of the same
        histogram always carry the same keys in the same order."""
        with self._lock:
            buckets = {}
            for bound, count in zip(self.bounds, self._bucket_counts):
                buckets[f"le_{bound:g}"] = count
            buckets["le_inf"] = self._bucket_counts[-1]
            return {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count if self._count else 0.0,
                "min": self._min,
                "max": self._max,
                "bounds": list(self.bounds),
                "buckets": buckets,
                "p50": self._percentile_locked(50.0),
                "p95": self._percentile_locked(95.0),
                "p99": self._percentile_locked(99.0),
            }


class RuntimeMetrics:
    """Create-or-get registry of named instruments with one atomic snapshot.

    One registry belongs to one :class:`~repro.runtime.executor.\
ValidationExecutor`; :meth:`repro.core.service.WitnessService.runtime_stats`
    surfaces its :meth:`snapshot`.
    """

    def __init__(self) -> None:
        # One lock for registration, a second shared by every instrument:
        # snapshot() then sees each instrument atomically without holding
        # up registration, and instruments stay cheap to create.
        self._registry_lock = threading.Lock()
        self._data_lock = threading.Lock()
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}

    def counter(self, name: str) -> Counter:
        with self._registry_lock:
            if name not in self._counters:
                self._counters[name] = Counter(self._data_lock)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._registry_lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(self._data_lock)
            return self._gauges[name]

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> Histogram:
        with self._registry_lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(self._data_lock, buckets)
            return self._histograms[name]

    def snapshot(self) -> dict:
        """All instruments as plain nested dicts (JSON-serializable)."""
        with self._registry_lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {name: h.snapshot() for name, h in sorted(histograms.items())},
        }
