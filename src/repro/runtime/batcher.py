"""Cross-session micro-batching of model forwards.

One :class:`MicroBatcher` serves one model kind (text or image).  Any
number of session threads call :meth:`submit` with the unit-input rows of
their current validation round; the batcher coalesces the pending rows of
*all* sessions and a dedicated flusher thread runs them as one chunked
model forward when either

* the pending units reach ``max_batch_units`` (occupancy flush), or
* the oldest pending submission has waited ``flush_deadline`` seconds
  (latency flush — an idle fleet never stalls a lone guest for long).

Verdicts scatter back to each submission's slice of the batch and the
submitting threads wake with exactly the rows they asked about.  Because
the underlying CNN forward is row-independent (convolutions and dense
layers treat batch rows separately), coalescing is a pure execution
strategy: each row's verdict is bit-identical to running it alone.

The flusher thread executes its own flushes: flushes never borrow the
submitters' threads nor any shared pool, so a full pool can delay
coalescing but can never deadlock it.

Supervision
-----------

The flusher loop is supervised: a crash that escapes a flush (injected
via the ``runtime.flusher_crash`` fault point, or any organic bug in the
take/gather path) re-queues the in-hand batch at the *front* of the
pending queue — no waiting submitter is ever lost — backs off with a
capped exponential delay, and restarts the loop.  Submitters observe
nothing but added latency.  Per-submitter flush failures surface as
:class:`~repro.runtime.errors.RuntimeFlushError`, each submitter getting
its own exception object with the original flush exception chained as
``__cause__`` (re-raising one shared object across threads rewrites its
traceback concurrently).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.nn.infer import fail_closed_verdicts
from repro.obs.spans import maybe_span
from repro.runtime.errors import RuntimeFlushError
from repro.runtime.metrics import RuntimeMetrics

#: Bucket bounds for millisecond-scale latency histograms.
LATENCY_BUCKETS_MS = (0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000)


def forwards_for(units: int, chunk_size: int | None) -> int:
    """Model forward passes a batch of ``units`` rows costs when chunked."""
    if units <= 0:
        return 0
    if chunk_size is None:
        return 1
    return -(-units // chunk_size)  # ceil division


def chunks_touched(start: int, stop: int, chunk_size: int | None) -> int:
    """How many of a flush's chunk-forwards rows ``[start, stop)`` land in.

    This is the fair per-submission share of a coalesced flush: a
    submission is charged only for the forwards its own rows rode in,
    which several submissions may share.
    """
    if stop <= start:
        return 0
    if chunk_size is None:
        return 1
    return (stop - 1) // chunk_size - start // chunk_size + 1


class _Submission:
    """One session's pending rows and its rendezvous with the flusher."""

    __slots__ = ("observed", "expected", "units", "enqueued_at", "done", "verdicts", "forwards", "error")

    def __init__(self, observed: np.ndarray, expected: np.ndarray) -> None:
        self.observed = observed
        self.expected = expected
        self.units = observed.shape[0]
        self.enqueued_at = time.monotonic()
        self.done = threading.Event()
        self.verdicts: np.ndarray | None = None
        self.forwards = 0
        self.error: BaseException | None = None


class MicroBatcher:
    """Deadline/occupancy-flushed coalescer for one model kind."""

    def __init__(
        self,
        kind: str,
        predict_fn,
        *,
        chunk_size: int | None = 512,
        max_batch_units: int = 256,
        flush_deadline: float = 0.002,
        metrics: RuntimeMetrics | None = None,
        submit_timeout: float = 60.0,
        faults=None,
        health=None,
        restart_backoff: float = 0.001,
        max_restart_backoff: float = 0.05,
    ) -> None:
        if max_batch_units < 1:
            raise ValueError(f"max_batch_units must be >= 1, got {max_batch_units}")
        if flush_deadline < 0:
            raise ValueError(f"flush_deadline must be >= 0, got {flush_deadline}")
        if restart_backoff <= 0 or max_restart_backoff < restart_backoff:
            raise ValueError(
                "restart backoff must satisfy 0 < restart_backoff <= max_restart_backoff, "
                f"got {restart_backoff}/{max_restart_backoff}"
            )
        self.kind = kind
        self.predict_fn = predict_fn
        self.chunk_size = chunk_size
        self.max_batch_units = max_batch_units
        self.flush_deadline = flush_deadline
        self.submit_timeout = submit_timeout
        self.restart_backoff = restart_backoff
        self.max_restart_backoff = max_restart_backoff
        #: Optional :class:`repro.faults.FaultInjector` (None = disarmed)
        #: and :class:`repro.runtime.health.HealthTracker` event sink.
        self._faults = faults
        self._health = health
        self.metrics = metrics or RuntimeMetrics()
        self._cond = threading.Condition()
        self._pending: list = []
        self._pending_units = 0
        self._closed = False
        # Deferred import: repro.core imports this module at package init.
        from repro.core.planbuf import thread_pool

        self._thread_pool = thread_pool
        self._flusher = threading.Thread(
            target=self._flush_loop, name=f"repro-runtime-{kind}-flusher", daemon=True
        )
        self._flusher.start()

    # -- submission (session threads) --------------------------------------

    def submit(self, observed: np.ndarray, expected: np.ndarray, tracer=None):
        """Coalesced verdicts for these rows: ``(verdicts, forwards_share)``.

        Blocks until the rows have ridden a flush; ``forwards_share`` is
        the number of chunk-forwards of that flush the rows touched (the
        submission's amortized cost, for per-session accounting).
        ``tracer`` times the rendezvous wait as a ``flush.wait.<kind>``
        span on the submitting thread.
        """
        if observed.shape[0] != expected.shape[0]:
            raise ValueError(
                f"observed/expected row mismatch: {observed.shape[0]} vs {expected.shape[0]}"
            )
        if observed.shape[0] == 0:
            return np.zeros(0, dtype=bool), 0
        sub = _Submission(observed, expected)
        with self._cond:
            if self._closed:
                raise RuntimeError(f"{self.kind} micro-batcher is closed")
            self._pending.append(sub)
            self._pending_units += sub.units
            self.metrics.gauge(f"queue_depth.{self.kind}").set(self._pending_units)
            self._cond.notify_all()
        with maybe_span(tracer, f"flush.wait.{self.kind}"):
            flushed = sub.done.wait(self.submit_timeout)
        if not flushed:
            self.metrics.counter(f"flush_timeouts.{self.kind}").inc()
            raise RuntimeFlushError(
                f"{self.kind} micro-batch flush did not complete within "
                f"{self.submit_timeout}s ({sub.units} units pending)",
                timeout=True,
            )
        if sub.error is not None:
            # Per-submitter wrapper: every waiting thread raises its OWN
            # exception object, chaining the one flush exception as the
            # cause instead of re-raising the shared object N times.
            raise RuntimeFlushError(
                f"{self.kind} micro-batch flush failed: "
                f"{type(sub.error).__name__}: {sub.error}"
            ) from sub.error
        return sub.verdicts, sub.forwards

    # -- flushing (dedicated thread) ----------------------------------------

    def _take_batch(self) -> list:
        """Block until a flush is due, then atomically take the batch.

        Returns an empty list only at shutdown with nothing pending.
        """
        with self._cond:
            while True:
                if self._pending:
                    if self._closed or self._pending_units >= self.max_batch_units:
                        break
                    age = time.monotonic() - self._pending[0].enqueued_at
                    if age >= self.flush_deadline:
                        break
                    self._cond.wait(self.flush_deadline - age)
                elif self._closed:
                    return []
                else:
                    self._cond.wait()
            batch = self._pending
            self._pending = []
            self._pending_units = 0
            self.metrics.gauge(f"queue_depth.{self.kind}").set(0)
            return batch

    def _flush_loop(self) -> None:
        """The supervised flusher: take -> (fault seams) -> execute, forever.

        Any exception escaping an iteration (predict errors are contained
        inside :meth:`_execute`; what escapes is an injected crash or an
        organic take/gather bug) is supervision's job: the in-hand batch
        is re-queued at the front of the pending queue so its submitters
        ride the next flush, the crash is counted, and the loop restarts
        after a capped exponential backoff.  Only a clean shutdown (closed
        with nothing pending) exits the thread.
        """
        backoff = self.restart_backoff
        batch: list = []
        while True:
            try:
                while True:
                    batch = self._take_batch()
                    if not batch:
                        return
                    if self._faults is not None:
                        self._faults.fire("runtime.flusher_crash")
                        stall = self._faults.stall_seconds("runtime.flush_stall")
                        if stall > 0.0:
                            time.sleep(stall)
                    self._execute(batch)
                    batch = []
                    backoff = self.restart_backoff
                    if self._health is not None:
                        self._health.note_flush_ok()
            except BaseException:
                self.metrics.counter(f"flusher_crashes.{self.kind}").inc()
                if self._health is not None:
                    self._health.note_flusher_crash()
                if batch:
                    # Re-drain: the crashed iteration's submitters go back
                    # to the FRONT of the queue (their deadline has aged,
                    # so the restarted flusher takes them immediately).
                    with self._cond:
                        self._pending = batch + self._pending
                        self._pending_units += sum(sub.units for sub in batch)
                        self.metrics.gauge(f"queue_depth.{self.kind}").set(
                            self._pending_units
                        )
                        self._cond.notify_all()
                    batch = []
                time.sleep(backoff)
                backoff = min(backoff * 2.0, self.max_restart_backoff)
                self.metrics.counter(f"flusher_restarts.{self.kind}").inc()
                if self._health is not None:
                    self._health.note_flusher_restart()

    def _execute(self, batch: list) -> None:
        kind = self.kind
        units = sum(sub.units for sub in batch)
        wait_ms = (time.monotonic() - min(sub.enqueued_at for sub in batch)) * 1000.0
        try:
            observed, expected = self._gather(batch, units)
            verdicts = fail_closed_verdicts(
                self.predict_fn(observed, expected, self.chunk_size)
            )
            start = 0
            for sub in batch:
                stop = start + sub.units
                sub.verdicts = verdicts[start:stop]
                sub.forwards = chunks_touched(start, stop, self.chunk_size)
                start = stop
        except BaseException as exc:  # propagate to every waiting submitter
            for sub in batch:
                sub.error = exc
            self.metrics.counter(f"flush_errors.{kind}").inc()
        else:
            actual = forwards_for(units, self.chunk_size)
            solo = sum(forwards_for(sub.units, self.chunk_size) for sub in batch)
            self.metrics.counter(f"flushes_total.{kind}").inc()
            self.metrics.counter(f"units_total.{kind}").inc(units)
            self.metrics.counter(f"forwards_total.{kind}").inc(actual)
            self.metrics.counter(f"forwards_saved_total.{kind}").inc(solo - actual)
            self.metrics.histogram(f"batch_occupancy.{kind}").observe(units)
            self.metrics.histogram(f"submissions_per_flush.{kind}").observe(len(batch))
            self.metrics.histogram(
                f"flush_wait_ms.{kind}", buckets=LATENCY_BUCKETS_MS
            ).observe(wait_ms)
        finally:
            for sub in batch:
                sub.done.set()

    def _gather(self, batch: list, units: int) -> tuple:
        """Scatter submissions' rows into the flusher's pooled flush buffers.

        Replaces the old per-flush ``np.concatenate``: the flusher thread
        owns a :func:`repro.core.planbuf.thread_pool` pool whose flush
        buffers are reserved once and reused every flush, so steady-state
        coalescing copies rows but allocates nothing.  A single-submission
        batch is forwarded as-is (its rows are already one contiguous
        block).  Submitters are blocked in ``submit`` until their verdicts
        scatter back, so reading their rows here never races; a submitter
        that timed out only ever corrupts its own abandoned rows' verdicts.
        """
        if len(batch) == 1:
            return batch[0].observed, batch[0].expected
        first = batch[0]
        pool = self._thread_pool()
        obs_backing = pool.reserve(
            ("flush-obs",), units, first.observed.shape[1:], dtype=first.observed.dtype
        )
        exp_backing = pool.reserve(
            ("flush-exp",), units, first.expected.shape[1:], dtype=first.expected.dtype
        )
        observed = obs_backing[:units]
        expected = exp_backing[:units]
        start = 0
        for sub in batch:
            stop = start + sub.units
            observed[start:stop] = sub.observed
            expected[start:stop] = sub.expected
            start = stop
        return observed, expected

    # -- lifecycle ----------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Flush whatever is pending and stop the flusher.  Idempotent."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._flusher.join(timeout)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed
