"""Service health: one word summarizing the runtime's degradation state.

The degradation ladder has three rungs, surfaced as ``HealthState`` in
``WitnessService.health()`` and the telemetry hub:

* ``healthy`` — every forward rode the shared runtime as submitted.
* ``degraded`` — at least one submission fell back to an inline forward
  (flush error/timeout, admission timeout) or a flusher crashed and was
  restarted.  Verdicts are still bit-identical — inline fallback is a
  pure execution-strategy change — but coalescing was lost for those
  rounds, so an operator should look.
* ``failed`` — the flusher crashed ``fail_after`` times in a row without
  one successful flush in between: supervision is looping, not
  recovering.  The executor stops queueing behind it and routes every
  submission straight to the inline fallback (the session-facing
  behavior is *still* correct verdicts, just without coalescing).

:class:`HealthTracker` is the concurrency-safe event log behind that
word.  The batcher's flusher supervisor and the executor's degradation
ladder feed it; ``snapshot()`` is what telemetry exports.
"""

from __future__ import annotations

import threading

#: The degradation ladder, in order.
HEALTH_STATES = ("healthy", "degraded", "failed")


class HealthTracker:
    """Counts degradation events and reduces them to a ``HEALTH_STATES`` word."""

    def __init__(self, fail_after: int = 5) -> None:
        if fail_after < 1:
            raise ValueError(f"fail_after must be >= 1, got {fail_after}")
        self.fail_after = fail_after
        self._lock = threading.Lock()
        self._flusher_crashes = 0
        self._flusher_restarts = 0
        self._consecutive_crashes = 0
        self._degraded_forwards = 0
        self._flush_timeouts = 0
        self._admission_timeouts = 0

    # -- event feeds (batcher supervisor / executor ladder) -----------------

    def note_flusher_crash(self) -> None:
        with self._lock:
            self._flusher_crashes += 1
            self._consecutive_crashes += 1

    def note_flusher_restart(self) -> None:
        with self._lock:
            self._flusher_restarts += 1

    def note_flush_ok(self) -> None:
        """A flush completed: the crash streak (if any) is broken."""
        with self._lock:
            self._consecutive_crashes = 0

    def note_degraded(self, timeout: bool = False) -> None:
        with self._lock:
            self._degraded_forwards += 1
            if timeout:
                self._flush_timeouts += 1

    def note_admission_timeout(self) -> None:
        with self._lock:
            self._admission_timeouts += 1

    # -- the one word -------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._consecutive_crashes >= self.fail_after:
            return "failed"
        if (
            self._degraded_forwards
            or self._flusher_crashes
            or self._admission_timeouts
        ):
            return "degraded"
        return "healthy"

    def snapshot(self) -> dict:
        """One consistent accounting snapshot (state + every counter)."""
        with self._lock:
            return {
                "state": self._state_locked(),
                "flusher_crashes": self._flusher_crashes,
                "flusher_restarts": self._flusher_restarts,
                "consecutive_crashes": self._consecutive_crashes,
                "degraded_forwards": self._degraded_forwards,
                "flush_timeouts": self._flush_timeouts,
                "admission_timeouts": self._admission_timeouts,
            }
