"""The shared validation executor: one runtime, many witness sessions.

:class:`ValidationExecutor` is the layer between
:class:`~repro.core.service.WitnessService` and the CNN verifiers.  In
``executor="inline"`` mode (the default) each session executes its own
:class:`~repro.core.verifiers.ValidationPlan` on the calling thread —
the paper's prototype shape.  In ``executor="shared"`` mode every
session routes its model forwards here instead:

* :meth:`predict` coalesces the rows of concurrent sessions' validation
  rounds into global micro-batches per model kind (one
  :class:`~repro.runtime.batcher.MicroBatcher` each), flushed on a
  max-units threshold or a deadline, whichever comes first;
* an :class:`~repro.runtime.backpressure.AdmissionGate` bounds in-flight
  units — submitters block at the door or shed to an inline forward;
* :meth:`execute_plan` overlaps a frame's text plan (with its
  alignment-retry rounds) and image plan on a small worker pool, so the
  two model kinds batch and execute concurrently;
* a :class:`~repro.runtime.metrics.RuntimeMetrics` registry records
  queue depths, batch occupancy, flush latency and forwards saved,
  surfaced through ``WitnessService.runtime_stats()``.

Because the verifiers keep all caching/dedup/retry logic and only the
forward itself is rerouted, shared-executor verdicts are bit-identical
to inline execution (property-tested in ``tests/test_runtime.py``, and
cross-checked against every other engine combination on generated
dynamic sessions by the scenario soak, ``repro.scenarios``).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.nn.infer import INFERENCE_MODES, fail_closed_verdicts, predict_fn
from repro.obs.spans import maybe_span
from repro.runtime.backpressure import POLICIES, AdmissionGate
from repro.runtime.batcher import MicroBatcher, forwards_for
from repro.runtime.errors import AdmissionTimeout, RuntimeFlushError
from repro.runtime.health import HealthTracker
from repro.runtime.metrics import RuntimeMetrics

#: Valid ``WitnessConfig.executor`` modes.
EXECUTOR_MODES = ("inline", "shared")

KINDS = ("text", "image")


class ValidationExecutor:
    """Micro-batching, admission-controlled executor shared by sessions."""

    def __init__(
        self,
        text_model,
        image_model,
        *,
        max_batch_units: int = 256,
        flush_deadline_ms: float = 2.0,
        chunk_size: int | None = 512,
        max_inflight_units: int | None = 8192,
        admission: str = "block",
        workers: int = 8,
        submit_timeout: float = 60.0,
        inference: str = "frozen",
        faults=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if admission not in POLICIES:
            raise ValueError(f"admission must be one of {POLICIES}, got {admission!r}")
        if inference not in INFERENCE_MODES:
            raise ValueError(
                f"inference must be one of {INFERENCE_MODES}, got {inference!r}"
            )
        self.metrics = RuntimeMetrics()
        #: Degradation-ladder state (``healthy``/``degraded``/``failed``),
        #: fed by the flusher supervisors and the fallback paths below.
        self.health = HealthTracker()
        self.gate = AdmissionGate(max_inflight_units, policy=admission, faults=faults)
        self._models = {"text": text_model, "image": image_model}
        self.inference = inference
        # The forward each kind's flushes (and shed fallbacks) execute.
        # Frozen twins are thread-confined by construction, so each
        # flusher thread ends up with its own workspace arena replaying
        # the same micro-batch shapes — the engine's best case.
        self._predicts = {
            kind: predict_fn(self._models[kind], inference) for kind in KINDS
        }
        if faults is not None:
            self._predicts = {
                kind: faults.wrap_predict(fn) for kind, fn in self._predicts.items()
            }
        self._batchers = {
            kind: MicroBatcher(
                kind,
                self._predicts[kind],
                chunk_size=chunk_size,
                max_batch_units=max_batch_units,
                flush_deadline=flush_deadline_ms / 1000.0,
                metrics=self.metrics,
                submit_timeout=submit_timeout,
                faults=faults,
                health=self.health,
            )
            for kind in KINDS
        }
        self.chunk_size = chunk_size
        # Overlap pool: only ever runs verifier-side plan execution (which
        # blocks waiting on flushes); flushes themselves run on the
        # batchers' own flusher threads, so pool exhaustion cannot
        # deadlock — it only serializes the overlap.
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-runtime-plan"
        )
        self._closed = False
        self._close_lock = threading.Lock()

    # -- the verifier-facing forward ----------------------------------------

    def predict(self, kind: str, observed: np.ndarray, expected: np.ndarray, tracer=None):
        """Coalesced match verdicts: ``(bool ndarray, forwards_share)``.

        Rows must be model-ready (normalized float32, expected already
        one-hot/stacked) — exactly what the verifiers hand their models.
        Under ``shed`` admission an over-capacity submission runs its own
        inline forward instead of queueing; verdicts are identical either
        way.  ``tracer`` (the submitting session's span tracer) times the
        flush rendezvous — or the inline shed forward — without touching
        what executes.

        Degradation ladder: a flush that fails gets one resubmission (the
        flusher supervisor may have restarted already); a second failure,
        a flush timeout, or an admission timeout all fall back to an
        inline forward on the calling thread — identical verdicts without
        coalescing — and mark the runtime ``degraded``.  A runtime whose
        flusher is crash-looping (health ``failed``) skips the queue
        entirely and every submission runs inline until it recovers.
        """
        if kind not in KINDS:
            raise ValueError(f"unknown model kind {kind!r}")
        units = int(observed.shape[0])
        if units == 0:
            return np.zeros(0, dtype=bool), 0
        if self._closed:
            raise RuntimeError(
                f"validation executor is closed; {kind} submission refused"
            )
        self.metrics.counter(f"submissions_total.{kind}").inc()
        if self.health.state == "failed":
            # Supervision is looping, not recovering: don't queue behind a
            # wedged runtime — degrade straight to the inline forward.
            self.metrics.counter(f"degraded_forwards.{kind}").inc()
            return self._inline_forward(kind, observed, expected, tracer)
        try:
            admitted = self.gate.acquire(units)
        except AdmissionTimeout:
            self.metrics.counter(f"admission_timeouts.{kind}").inc()
            self.health.note_admission_timeout()
            self.metrics.counter(f"degraded_forwards.{kind}").inc()
            return self._inline_forward(kind, observed, expected, tracer)
        if not admitted:
            # Shed: bounded memory wins over coalescing for this round.
            self.metrics.counter("sheds_total").inc()
            self.metrics.counter(f"shed_fallbacks.{kind}").inc()
            return self._inline_forward(kind, observed, expected, tracer)
        try:
            return self._submit_with_recovery(kind, observed, expected, tracer)
        finally:
            self.gate.release(units)

    def _submit_with_recovery(self, kind, observed, expected, tracer):
        """One coalesced submission, riding the degradation ladder down."""
        batcher = self._batchers[kind]
        try:
            return batcher.submit(observed, expected, tracer=tracer)
        except RuntimeFlushError as exc:
            self.health.note_degraded(timeout=exc.timeout)
            if not exc.timeout and not batcher.closed:
                # The flush died (not stalled): the supervisor has re-queued
                # its batch and restarted — one more ride is worth it.
                self.metrics.counter(f"flush_retries.{kind}").inc()
                try:
                    return batcher.submit(observed, expected, tracer=tracer)
                except RuntimeFlushError:
                    pass
            self.metrics.counter(f"degraded_forwards.{kind}").inc()
            return self._inline_forward(kind, observed, expected, tracer)

    def _inline_forward(self, kind, observed, expected, tracer):
        """The ladder's bottom rung: this round forwards on this thread."""
        forwards = forwards_for(int(observed.shape[0]), self.chunk_size)
        self.metrics.counter(f"forwards_total.{kind}").inc(forwards)
        with maybe_span(tracer, f"forward.{kind}"):
            verdicts = fail_closed_verdicts(
                self._predicts[kind](observed, expected, self.chunk_size)
            )
        return verdicts, forwards

    # -- the display-facing plan execution -----------------------------------

    def execute_plan(self, plan, text_verifier, image_verifier):
        """``(text_verdicts, image_verdicts)`` for one frame's plan.

        The image side runs on the overlap pool while the text side (and
        its alignment-retry rounds) runs on the calling session thread;
        both sides' forwards coalesce with every other session's rounds.
        """
        image_future = None
        if plan.image_pair_count:
            image_future = self._pool.submit(image_verifier.execute_plan, plan)
        text_verdicts = text_verifier.execute_plan(plan)
        if image_future is None:
            image_verdicts = image_verifier.execute_plan(plan)  # empty: trivial
        else:
            image_verdicts = image_future.result()
        return text_verdicts, image_verdicts

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """One JSON-serializable snapshot of the runtime's state."""
        self.metrics.gauge("inflight_units").set(self.gate.inflight_units)
        self.metrics.gauge("admission_blocked_total").set(self.gate.blocked)
        self.metrics.gauge("admission_shed_total").set(self.gate.shed)
        snapshot = self.metrics.snapshot()
        counters = snapshot["counters"]
        snapshot["forwards_total"] = sum(
            value for name, value in counters.items() if name.startswith("forwards_total.")
        )
        snapshot["forwards_saved_total"] = sum(
            value
            for name, value in counters.items()
            if name.startswith("forwards_saved_total.")
        )
        snapshot["health"] = self.health.snapshot()
        return snapshot

    # -- lifecycle -----------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Flush pending batches and stop the runtime.  Idempotent."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for batcher in self._batchers.values():
            batcher.close(timeout)
        self._pool.shutdown(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ValidationExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
