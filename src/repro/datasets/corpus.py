"""The compatibility corpus (paper §VI-C, Table X).

The paper crawled all 2476 Jotform forms plus 109 WPForms templates
(2585 total) and measured, per system, the share of forms with at least
90% of their elements supported.  We synthesize a corpus with the same
*element-type statistics*: each form is a census of element kinds drawn
from a realistic mix, including the elements that defeat each system —
mouse-driven widgets for Fidelius, rich widgets for ProtectION, and
ads-iframes/file-inputs/videos for vWitness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Element kind vocabulary for the census.
ELEMENT_KINDS = (
    "text",          # static text: headings, labels, paragraphs
    "image",         # logos, icons, decorative imagery
    "text-input",    # single-line/textarea inputs
    "checkbox",
    "radio",
    "select",
    "button",
    "scrollable",
    "file-input",
    "video",
    "external-iframe",  # ads/analytics embeds
    "canvas-widget",    # date pickers, signature pads, star ratings
)


@dataclass(frozen=True)
class FormCensus:
    """Element-kind counts for one crawled form."""

    form_id: str
    counts: tuple  # aligned with ELEMENT_KINDS

    @property
    def total(self) -> int:
        return int(sum(self.counts))

    def count(self, kind: str) -> int:
        return self.counts[ELEMENT_KINDS.index(kind)]

    def supported_fraction(self, supported_kinds: set) -> float:
        if self.total == 0:
            return 1.0
        supported = sum(
            c for kind, c in zip(ELEMENT_KINDS, self.counts) if kind in supported_kinds
        )
        return supported / self.total


def _draw_census(rng: np.random.Generator, form_id: str) -> FormCensus:
    """One form's element mix.

    Calibrated to real form composition: text labels dominate (every
    field has one, plus headings/fine print), a handful of inputs, one or
    two buttons, and a tail of rich/unsupported elements.
    """
    n_inputs = int(rng.integers(2, 9))
    counts = dict.fromkeys(ELEMENT_KINDS, 0)
    counts["text-input"] = n_inputs
    counts["text"] = n_inputs + int(rng.integers(3, 8))  # labels + headings
    counts["button"] = 1 + int(rng.uniform() < 0.25)
    counts["image"] = int(rng.uniform() < 0.95) + int(rng.uniform() < 0.3)
    counts["checkbox"] = int(rng.integers(0, 3))
    counts["radio"] = int(rng.uniform() < 0.45)
    counts["select"] = int(rng.uniform() < 0.85) + int(rng.uniform() < 0.25)
    counts["scrollable"] = int(rng.uniform() < 0.1)
    counts["file-input"] = int(rng.uniform() < 0.30) + int(rng.uniform() < 0.08)
    counts["video"] = int(rng.uniform() < 0.05)
    counts["external-iframe"] = int(rng.uniform() < 0.13) + int(rng.uniform() < 0.05)
    counts["canvas-widget"] = int(rng.uniform() < 0.34) + int(rng.uniform() < 0.08)
    return FormCensus(form_id=form_id, counts=tuple(counts[k] for k in ELEMENT_KINDS))


def jotform_census(count: int = 2476, seed: int = 424242) -> list:
    """Censuses for the Jotform crawl (2476 forms)."""
    rng = np.random.default_rng(seed)
    return [_draw_census(rng, f"jotform-{i:04d}") for i in range(count)]


def wpforms_census(count: int = 109, seed: int = 515151) -> list:
    """Censuses for the WPForms templates (109 forms)."""
    rng = np.random.default_rng(seed)
    return [_draw_census(rng, f"wpforms-{i:03d}") for i in range(count)]


def full_corpus() -> list:
    """The full 2585-form compatibility corpus ("we did not remove any
    page from the dataset")."""
    return jotform_census() + wpforms_census()
