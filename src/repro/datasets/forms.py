"""Form generators: Jotform-style pages and WPForms-style templates.

The paper's accuracy and performance evaluations use 100 forms sampled
from Jotform ("representative samples of many common forms, used on over
10 million websites"), rendered across different stacks.  This generator
produces forms with the same ingredient mix: contact fields, payment
fields, choices, consents and submit buttons — everything in vWitness's
supported element set so that VSPECs can be built for them.
"""

from __future__ import annotations

import numpy as np

from repro.web.elements import (
    Button,
    Checkbox,
    ImageElement,
    Page,
    RadioGroup,
    ScrollableList,
    SelectBox,
    TextBlock,
    TextInput,
)

#: Realistic field ingredients: (field name, label).
_TEXT_FIELDS = [
    ("first_name", "First name"),
    ("last_name", "Last name"),
    ("email", "Email address"),
    ("phone", "Phone number"),
    ("address", "Street address"),
    ("city", "City"),
    ("zip", "Postal code"),
    ("company", "Company"),
    ("amount", "Amount"),
    ("account", "Account number"),
    ("order_ref", "Order reference"),
    ("date", "Preferred date"),
]

_SELECTS = [
    ("country", ["Canada", "USA", "UK", "Germany", "Japan"]),
    ("department", ["Sales", "Support", "Billing"]),
    ("quantity", ["1", "2", "3", "4", "5"]),
    ("plan", ["Basic", "Plus", "Premium"]),
]

_RADIOS = [
    ("contact_method", ["Email", "Phone"]),
    ("urgency", ["Low", "Normal", "High"]),
    ("satisfaction", ["Poor", "Fair", "Good"]),
    ("shipping", ["Standard", "Express"]),
]

_CHECKBOXES = [
    ("subscribe", "Subscribe to the newsletter"),
    ("terms", "I agree to the terms"),
    ("privacy", "I accept the privacy policy"),
    ("copy_me", "Send me a copy"),
]

_LISTS = [
    ("topic", ["Billing", "Technical", "Account", "Sales", "Feedback", "Other"]),
    ("timezone", ["UTC-8", "UTC-5", "UTC", "UTC+1", "UTC+8", "UTC+9"]),
]

_TITLES = [
    "Contact Us", "Payment Details", "Event Registration", "Service Request",
    "Feedback Survey", "Appointment Booking", "Account Update", "Order Form",
    "Support Ticket", "Donation Form", "Volunteer Signup", "Quote Request",
]

_INTROS = [
    "Please fill in the fields below.",
    "We will respond within two business days.",
    "All fields are required unless noted.",
    "Your information is kept confidential.",
]


def jotform_page(seed: int, width: int = 640) -> Page:
    """A deterministic Jotform-style page for ``seed``."""
    rng = np.random.default_rng(seed)
    elements: list = []

    if rng.uniform() < 0.5:
        elements.append(ImageElement("logo", int(rng.integers(1, 1000)), width=140, height=36))
    elements.append(TextBlock(_INTROS[int(rng.integers(len(_INTROS)))], 14))

    text_count = int(rng.integers(2, 6))
    picked = rng.choice(len(_TEXT_FIELDS), size=text_count, replace=False)
    for idx in picked:
        name, label = _TEXT_FIELDS[int(idx)]
        elements.append(TextInput(name, label=label, max_length=24))

    if rng.uniform() < 0.55:
        name, options = _SELECTS[int(rng.integers(len(_SELECTS)))]
        elements.append(SelectBox(name, options))
    if rng.uniform() < 0.45:
        name, options = _RADIOS[int(rng.integers(len(_RADIOS)))]
        elements.append(RadioGroup(name, options))
    if rng.uniform() < 0.6:
        name, label = _CHECKBOXES[int(rng.integers(len(_CHECKBOXES)))]
        elements.append(Checkbox(name, label))
    if rng.uniform() < 0.15:
        name, items = _LISTS[int(rng.integers(len(_LISTS)))]
        elements.append(ScrollableList(name, items, visible_rows=3))
    if rng.uniform() < 0.3:
        icon_pool = ["lock", "envelope", "person", "star"]
        elements.append(
            ImageElement("icon", icon_pool[int(rng.integers(len(icon_pool)))], width=32, height=32)
        )

    elements.append(Button("Submit", action="submit"))
    title = _TITLES[int(rng.integers(len(_TITLES)))]
    return Page(title=f"{title} #{seed}", elements=elements, width=width)


#: Number of WPForms templates the paper crawled.
WPFORMS_TEMPLATE_COUNT = 109

_WP_KINDS = ["contact", "survey", "registration", "order", "booking", "newsletter"]


def wpforms_template(index: int, width: int = 640) -> Page:
    """One of the 109 WPForms-style templates (deterministic by index)."""
    if not 0 <= index < WPFORMS_TEMPLATE_COUNT:
        raise ValueError(f"template index {index} out of range")
    kind = _WP_KINDS[index % len(_WP_KINDS)]
    rng = np.random.default_rng(90_000 + index)
    elements: list = [TextBlock(f"Template: {kind} form", 14)]
    base_fields = {
        "contact": ["first_name", "email", "phone"],
        "survey": ["first_name", "email"],
        "registration": ["first_name", "last_name", "email", "company"],
        "order": ["first_name", "email", "address", "amount"],
        "booking": ["first_name", "phone", "date"],
        "newsletter": ["email"],
    }[kind]
    labels = dict(_TEXT_FIELDS)
    for name in base_fields:
        elements.append(TextInput(name, label=labels.get(name, name.title()), max_length=24))
    if kind in ("survey",):
        name, options = _RADIOS[int(rng.integers(len(_RADIOS)))]
        elements.append(RadioGroup(name, options))
    if kind in ("order", "booking", "registration"):
        name, options = _SELECTS[int(rng.integers(len(_SELECTS)))]
        elements.append(SelectBox(name, options))
    if kind in ("newsletter", "contact", "registration"):
        name, label = _CHECKBOXES[int(rng.integers(len(_CHECKBOXES)))]
        elements.append(Checkbox(name, label))
    elements.append(Button("Submit", action="submit"))
    return Page(title=f"WPForms {kind} #{index}", elements=elements, width=width)


def sample_user_entries(page: Page, seed: int) -> dict:
    """Plausible values an honest user would enter into ``page``.

    Keys are field names; values match the element type (strings for text
    inputs, option labels for choices, 'on' for checkboxes).
    """
    rng = np.random.default_rng(seed + 5_000_000)
    values: dict = {}
    pools = {
        "first_name": ["Ana", "Bob", "Chen", "Dee"],
        "last_name": ["Smith", "Lopez", "Kim"],
        "email": ["ana@example.com", "bob@mail.org"],
        "phone": ["555-0100", "555-0199"],
        "address": ["12 Oak St", "99 Pine Ave"],
        "city": ["Toronto", "Ottawa"],
        "zip": ["M5S 1A1", "10001"],
        "company": ["Acme Inc", "Initech"],
        "amount": ["125.00", "80"],
        "account": ["AC-221144", "AC-787878"],
        "order_ref": ["ORD-5521", "ORD-0042"],
        "date": ["2026-07-01", "2026-08-15"],
    }
    for element in page.elements:
        if isinstance(element, TextInput):
            pool = pools.get(element.name, ["value"])
            values[element.name] = pool[int(rng.integers(len(pool)))]
        elif isinstance(element, SelectBox):
            values[element.name] = element.options[int(rng.integers(len(element.options)))]
        elif isinstance(element, RadioGroup):
            values[element.name] = element.options[int(rng.integers(len(element.options)))]
        elif isinstance(element, Checkbox):
            values[element.name] = "on"
        elif isinstance(element, ScrollableList):
            values[element.name] = element.items[int(rng.integers(len(element.items)))]
    return values
