"""Synthetic Clickbench: UI-tampering screenshot pairs (paper §VI-A).

Clickbench [24] is a corpus of simulated clickjacking screenshots; the
paper evaluates vWitness on 40 usable pairs with a *pseudo-VSPEC* that
"classif[ies] the whole screenshot as a single image invoking vWitness's
image model only".  We synthesize pairs with the same attack taxonomy:

* ``overlay``   — an opaque decoy covers a sensitive element,
* ``text-swap`` — displayed text is replaced (Fig. 2's attacks),
* ``redress``   — a benign-looking decoy screen hides the page,
* ``text-in-image`` — text injected *inside* an image region (the
  paper's single false negative, caught only by the text model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.tamper import inject_text_into_image, overlay_rectangle, swap_text_on_display
from repro.raster.stacks import stack_registry
from repro.vision.image import Image
from repro.web.browser import Browser
from repro.web.elements import Button, ImageElement, Page, TextBlock
from repro.web.hypervisor import Machine

#: The paper's usable sample count (40 pairs, 39 distinct attack pairs).
DEFAULT_SAMPLES = 40

_ATTACKS = ("overlay", "text-swap", "redress", "text-in-image")


@dataclass
class ClickbenchSample:
    """One benchmark pair: expected appearance vs (tampered) display."""

    name: str
    attack: str  # one of _ATTACKS, or "benign"
    expected: np.ndarray  # reference full-screen appearance
    displayed: np.ndarray  # what the (possibly tampered) client shows
    tampered: bool


def _app_page(seed: int, width: int) -> Page:
    """An app-like screen: text, imagery and action buttons."""
    rng = np.random.default_rng(seed)
    headlines = [
        "Subscribe to channel", "Confirm payment", "Install plugin",
        "Allow notifications", "Share your location", "Grant permission",
    ]
    bodies = [
        "Tap confirm to proceed with the action shown below.",
        "Review the details carefully before continuing.",
        "This action can not be undone once submitted.",
    ]
    elements = [
        ImageElement("logo", int(rng.integers(1, 500)), width=160, height=40),
        TextBlock(headlines[int(rng.integers(len(headlines)))], 18),
        TextBlock(bodies[int(rng.integers(len(bodies)))], 14),
        ImageElement("patch", int(rng.integers(1, 10_000)), width=96, height=96),
        Button("Confirm", action="none"),
        Button("Cancel", action="none"),
    ]
    return Page(title=f"App screen {seed}", elements=elements, width=width)


def _render_to_machine(page: Page, stack, width: int, height: int) -> Machine:
    machine = Machine(width, height)
    browser = Browser(machine, page, stack=stack)
    browser.paint()
    return machine


def clickbench_dataset(
    count: int = DEFAULT_SAMPLES,
    width: int = 480,
    height: int = 600,
    seed: int = 2023,
) -> list:
    """Generate the synthetic Clickbench pair set.

    ``count - 1`` tampered pairs cycling through the attack taxonomy plus
    one benign pair (rendered on a different stack — the TN probe).
    """
    if count < 2:
        raise ValueError(f"need at least 2 samples, got {count}")
    rng = np.random.default_rng(seed)
    stacks = stack_registry()
    samples = []
    for i in range(count):
        page = _app_page(seed + i, width)
        reference = _render_to_machine(page, None, width, height)
        expected = reference.sample_framebuffer().pixels

        client_stack = stacks[int(rng.integers(len(stacks)))]
        client_page = _app_page(seed + i, width)  # fresh element state
        machine = _render_to_machine(client_page, client_stack, width, height)

        if i == count - 1:
            samples.append(
                ClickbenchSample(
                    name=f"cb-{i:02d}", attack="benign", expected=expected,
                    displayed=machine.sample_framebuffer().pixels, tampered=False,
                )
            )
            continue

        attack = _ATTACKS[i % len(_ATTACKS)]
        confirm = next(e for e in client_page.elements if getattr(e, "label", "") == "Confirm")
        image = next(e for e in client_page.elements if isinstance(e, ImageElement) and e.kind == "patch")
        if attack == "overlay":
            overlay_rectangle(
                machine, confirm.rect.x, confirm.rect.y, confirm.rect.w + 40, confirm.rect.h,
                color=248.0, text="Play video",
            )
        elif attack == "text-swap":
            swap_text_on_display(
                machine, confirm.rect.x + 12, confirm.rect.y + (confirm.rect.h - 14) // 2,
                "Cancel!", size=14, stack=client_stack, background=225.0,
            )
        elif attack == "redress":
            decoy = Image.blank(width, height, 252.0)
            inner = _app_page(seed + 7000 + i, width)
            decoy_machine = _render_to_machine(inner, client_stack, width, height)
            decoy.pixels[...] = decoy_machine.sample_framebuffer().pixels
            machine.framebuffer_handle().pixels[...] = decoy.pixels
        elif attack == "text-in-image":
            inject_text_into_image(
                machine, image.rect.x + 4, image.rect.y + 30, image.rect.w - 8, 30, "FREE $$",
            )
        samples.append(
            ClickbenchSample(
                name=f"cb-{i:02d}", attack=attack, expected=expected,
                displayed=machine.sample_framebuffer().pixels, tampered=True,
            )
        )
    return samples


def validate_sample(sample: ClickbenchSample, image_verifier, text_verifier=None) -> bool:
    """Whole-screen pseudo-VSPEC validation: True = accepted as benign.

    Mirrors the paper's setup: the screenshot is one image element.  When
    ``text_verifier`` is given, it is *not* used — the paper invokes the
    text model only in the follow-up analysis of the false negative.
    """
    return image_verifier.verify_region(sample.displayed, sample.expected, background=255.0)
