"""Evaluation datasets (paper §VI).

* :mod:`repro.datasets.forms` — Jotform-style form generator (the paper's
  100-form accuracy set) and WPForms-style templates.
* :mod:`repro.datasets.clickbench` — synthetic Clickbench: screenshot
  pairs of UI-tampering attacks validated with whole-screen pseudo-VSPECs.
* :mod:`repro.datasets.corpus` — the 2585-form compatibility corpus with
  realistic element-type mixes (Table X).
"""

from repro.datasets.forms import jotform_page, wpforms_template, WPFORMS_TEMPLATE_COUNT
from repro.datasets.clickbench import ClickbenchSample, clickbench_dataset
from repro.datasets.corpus import FormCensus, full_corpus, jotform_census, wpforms_census

__all__ = [
    "jotform_page",
    "wpforms_template",
    "WPFORMS_TEMPLATE_COUNT",
    "ClickbenchSample",
    "clickbench_dataset",
    "FormCensus",
    "full_corpus",
    "jotform_census",
    "wpforms_census",
]
