"""VSPEC: the server-supplied page interaction specification (paper §III).

A VSPEC describes, for one protected page at one client width:

* the **expected appearance** — the "long" reference rendering of the
  page at the client width and full height (Fig. 3a);
* the **elements manifest** — every UI element's type, bounding rectangle
  and ground truth (per-character cells for text, reference regions for
  images, state appearances for visual inputs) (Fig. 3b);
* **nested VSPECs** for independently scrollable elements;
* the **validation function** — a data-driven description of how the
  outgoing request must relate to the observed user inputs;
* a **session ID** nonce for freshness, added by the server per request.
"""

from repro.vspec.spec import (
    CharCell,
    ManifestEntry,
    NestedSpec,
    VSpec,
)
from repro.vspec.validation import (
    ConstraintValidation,
    JsonMatchValidation,
    ValidationError,
    run_validation,
)
from repro.vspec.serialize import vspec_digest, vspec_from_payload, vspec_to_payload

__all__ = [
    "VSpec",
    "ManifestEntry",
    "CharCell",
    "NestedSpec",
    "JsonMatchValidation",
    "ConstraintValidation",
    "ValidationError",
    "run_validation",
    "vspec_digest",
    "vspec_to_payload",
    "vspec_from_payload",
]
