"""Data-driven validation functions (paper §III-C3).

The paper ships the validation function *in* the VSPEC as server-supplied
code.  Executing arbitrary server code inside the trusted component is a
design decision we make safer in the reproduction: validation functions
are **data**, interpreted by vWitness, covering the cases the paper
describes — assembling observed inputs into a JSON object and comparing
against the page-constructed request, plus arbitrary field constraints and
opaque server values (session IDs, nonces) passed through ``extra_fields``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ValidationError(ValueError):
    """A request failed its VSPEC validation function."""


@dataclass(frozen=True)
class JsonMatchValidation:
    """The paper's simplest case: request body == observed inputs.

    Every name in ``fields`` must appear in the request body with exactly
    the observed (vWitness-tracked) value; ``allow_extra`` tolerates
    additional request keys (e.g. CSRF tokens) as long as they are either
    listed in the VSPEC's ``extra_fields`` or explicitly allowed.
    """

    fields: tuple
    allow_extra: bool = False


@dataclass(frozen=True)
class Constraint:
    """One declarative check on a request value."""

    fieldname: str
    op: str  # "eq" | "in" | "matches-observed" | "numeric-max" | "nonempty"
    value: object = None

    _OPS = ("eq", "in", "matches-observed", "numeric-max", "nonempty")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown constraint op {self.op!r}")


@dataclass(frozen=True)
class ConstraintValidation:
    """Arbitrary validation logic expressed as a constraint list."""

    constraints: tuple = field(default_factory=tuple)


def _check_constraint(constraint: Constraint, observed: dict, body: dict) -> None:
    name = constraint.fieldname
    if name not in body:
        raise ValidationError(f"request missing field {name!r}")
    value = body[name]
    if constraint.op == "eq":
        if value != constraint.value:
            raise ValidationError(f"{name}={value!r} != required {constraint.value!r}")
    elif constraint.op == "in":
        if value not in constraint.value:
            raise ValidationError(f"{name}={value!r} not in {constraint.value!r}")
    elif constraint.op == "matches-observed":
        if name not in observed:
            raise ValidationError(f"no observed input for {name!r}")
        if str(value) != str(observed[name]):
            raise ValidationError(
                f"{name}: request value {value!r} != observed input {observed[name]!r}"
            )
    elif constraint.op == "numeric-max":
        try:
            numeric = float(value)
        except (TypeError, ValueError):
            raise ValidationError(f"{name}={value!r} is not numeric") from None
        if numeric > float(constraint.value):
            raise ValidationError(f"{name}={numeric} exceeds maximum {constraint.value}")
    elif constraint.op == "nonempty":
        if not str(value):
            raise ValidationError(f"{name} must not be empty")


def run_validation(vspec, observed_inputs: dict, request_body: dict) -> bool:
    """Execute a VSPEC's validation function.

    Returns True on success; raises :class:`ValidationError` with the
    failing condition otherwise (the caller converts this into a refusal
    to certify).
    """
    spec = vspec.validation
    if spec is None:
        raise ValidationError(f"VSPEC for {vspec.page_id!r} carries no validation function")

    # Server-injected opaque values (session IDs, nonces) must round-trip.
    for name, value in vspec.extra_fields.items():
        if request_body.get(name) != value:
            raise ValidationError(
                f"server field {name!r}: request has {request_body.get(name)!r}, "
                f"VSPEC requires {value!r}"
            )

    if isinstance(spec, JsonMatchValidation):
        for name in spec.fields:
            if name not in request_body:
                raise ValidationError(f"request missing field {name!r}")
            observed = observed_inputs.get(name, "")
            if str(request_body[name]) != str(observed):
                raise ValidationError(
                    f"{name}: request value {request_body[name]!r} != observed {observed!r}"
                )
        if not spec.allow_extra:
            allowed = set(spec.fields) | set(vspec.extra_fields)
            extra = set(request_body) - allowed
            if extra:
                raise ValidationError(f"unexpected request fields: {sorted(extra)}")
        return True

    if isinstance(spec, ConstraintValidation):
        for constraint in spec.constraints:
            _check_constraint(constraint, observed_inputs, request_body)
        return True

    raise ValidationError(f"unsupported validation function type {type(spec).__name__}")
