"""VSPEC data model."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.vision.components import Rect

#: Manifest entry kinds.  ``scroll-v``/``scroll-h`` are the paper's two
#: scrollable types; ``input`` covers free-text fields whose content is
#: user-supplied; the stateful visual inputs carry per-state appearances.
ENTRY_KINDS = (
    "text",
    "image",
    "input",
    "checkbox",
    "radio",
    "select",
    "button",
    "scroll-v",
    "scroll-h",
)


@dataclass(frozen=True)
class CharCell:
    """One expected character: its cell rectangle and the character.

    This is the ``(x, y, w, h, 'H')`` tuple of the paper's Fig. 3b.
    """

    x: int
    y: int
    w: int
    h: int
    char: str

    @property
    def rect(self) -> Rect:
        return Rect(self.x, self.y, self.w, self.h)


@dataclass
class ManifestEntry:
    """One UI element in the elements manifest.

    Attributes:
        kind: one of :data:`ENTRY_KINDS`.
        rect: bounding rectangle in page coordinates.
        chars: per-character ground truth (text entries, input labels,
            and the *rendered value text* inside stateful inputs).
        input_name: form field name (inputs/checkbox/radio/select/scroll).
        text_size: rendered character size inside an input field.
        state_appearances: value -> expected raster for visual inputs
            whose state maps to a well-defined appearance (paper §III-C2);
            keyed by the form value each state submits.
        nested_id: key into the VSPEC's nested specs (scrollables).
    """

    kind: str
    rect: Rect
    chars: list = field(default_factory=list)
    input_name: str | None = None
    text_size: int = 14
    state_appearances: dict = field(default_factory=dict)
    nested_id: str | None = None
    #: The field's value as rendered in the expected appearance (empty for
    #: free-text inputs; the pre-selected option for selects, etc.).
    initial_value: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ENTRY_KINDS:
            raise ValueError(f"unknown manifest entry kind {self.kind!r}")

    @property
    def is_user_input(self) -> bool:
        return self.input_name is not None


@dataclass
class NestedSpec:
    """Nested VSPEC for an independently scrollable element (§III-C1).

    ``expected`` merges *all* possible appearances of the scrollable —
    for a vertical list, every row stacked at full height.  ``entries``
    are manifest entries in the nested coordinate space.
    """

    axis: str  # "vertical" | "horizontal"
    expected: np.ndarray
    entries: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.axis not in ("vertical", "horizontal"):
            raise ValueError(f"axis must be vertical|horizontal, got {self.axis!r}")


@dataclass
class VSpec:
    """A complete page interaction specification."""

    page_id: str
    width: int
    height: int
    expected: np.ndarray
    entries: list = field(default_factory=list)
    background: float = 255.0
    validation: object | None = None
    session_id: str = ""
    extra_fields: dict = field(default_factory=dict)
    nested: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        exp = np.asarray(self.expected)
        if exp.shape != (self.height, self.width):
            raise ValueError(
                f"expected appearance shape {exp.shape} != ({self.height}, {self.width})"
            )

    def visible_entries(self, viewport: Rect) -> list:
        """Entries whose bounding rectangle overlaps the viewport."""
        return [e for e in self.entries if e.rect.intersects(viewport)]

    def input_entries(self) -> list:
        return [e for e in self.entries if e.is_user_input]

    def entry_for_input(self, name: str) -> ManifestEntry:
        for entry in self.entries:
            if entry.input_name == name:
                return entry
        raise KeyError(f"no manifest entry for input {name!r}")

    def expected_region(self, rect: Rect) -> np.ndarray:
        """Crop the expected appearance at a manifest rectangle."""
        if rect.x < 0 or rect.y < 0 or rect.x2 > self.width or rect.y2 > self.height:
            raise ValueError(f"rect {rect} escapes the expected appearance")
        return self.expected[rect.y : rect.y2, rect.x : rect.x2]

    def with_session(self, session_id: str, extra_fields: dict | None = None) -> "VSpec":
        """Per-request copy carrying a fresh session nonce (server-side)."""
        return VSpec(
            page_id=self.page_id,
            width=self.width,
            height=self.height,
            expected=self.expected,
            entries=self.entries,
            background=self.background,
            validation=self.validation,
            session_id=session_id,
            extra_fields=dict(extra_fields or self.extra_fields),
            nested=self.nested,
        )
