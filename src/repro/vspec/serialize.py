"""VSPEC serialization and digests.

The signed request embeds the VSPEC (paper §III-C3), which in practice
means embedding a canonical digest the server can compare against what it
issued.  Serialization is deterministic: the same VSPEC always produces
the same payload bytes and digest.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.vision.components import Rect
from repro.vspec.spec import CharCell, ManifestEntry, NestedSpec, VSpec
from repro.vspec.validation import Constraint, ConstraintValidation, JsonMatchValidation


def _validation_to_dict(validation) -> dict | None:
    if validation is None:
        return None
    if isinstance(validation, JsonMatchValidation):
        return {
            "type": "json-match",
            "fields": list(validation.fields),
            "allow_extra": validation.allow_extra,
        }
    if isinstance(validation, ConstraintValidation):
        return {
            "type": "constraints",
            "constraints": [
                {"field": c.fieldname, "op": c.op, "value": c.value}
                for c in validation.constraints
            ],
        }
    raise TypeError(f"cannot serialize validation {type(validation).__name__}")


def _validation_from_dict(data: dict | None):
    if data is None:
        return None
    if data["type"] == "json-match":
        return JsonMatchValidation(fields=tuple(data["fields"]), allow_extra=data["allow_extra"])
    if data["type"] == "constraints":
        return ConstraintValidation(
            constraints=tuple(
                Constraint(
                    fieldname=c["field"],
                    op=c["op"],
                    value=tuple(c["value"]) if isinstance(c["value"], list) else c["value"],
                )
                for c in data["constraints"]
            )
        )
    raise ValueError(f"unknown validation type {data['type']!r}")


def _entry_to_dict(entry: ManifestEntry) -> dict:
    return {
        "kind": entry.kind,
        "rect": entry.rect.as_tuple(),
        "chars": [(c.x, c.y, c.w, c.h, c.char) for c in entry.chars],
        "input_name": entry.input_name,
        "text_size": entry.text_size,
        "states": sorted(entry.state_appearances),
        "nested_id": entry.nested_id,
        "initial_value": entry.initial_value,
    }


def _array_digest(arr: np.ndarray) -> str:
    quantized = np.clip(np.rint(np.asarray(arr)), 0, 255).astype(np.uint8)
    h = hashlib.sha256()
    h.update(str(quantized.shape).encode("ascii"))
    h.update(quantized.tobytes())
    return h.hexdigest()


def vspec_to_payload(vspec: VSpec) -> dict:
    """Canonical JSON-able description of a VSPEC (images as digests)."""
    return {
        "page_id": vspec.page_id,
        "width": vspec.width,
        "height": vspec.height,
        "background": vspec.background,
        "session_id": vspec.session_id,
        "extra_fields": dict(sorted(vspec.extra_fields.items())),
        "expected_digest": _array_digest(vspec.expected),
        "entries": [_entry_to_dict(e) for e in vspec.entries],
        "state_digests": {
            f"{i}:{value}": _array_digest(appearance)
            for i, entry in enumerate(vspec.entries)
            for value, appearance in sorted(entry.state_appearances.items())
        },
        "nested": {
            key: {"axis": n.axis, "expected_digest": _array_digest(n.expected)}
            for key, n in sorted(vspec.nested.items())
        },
        "validation": _validation_to_dict(vspec.validation),
    }


def vspec_digest(vspec: VSpec) -> str:
    """SHA-256 over the canonical payload — what gets signed and echoed."""
    payload = json.dumps(vspec_to_payload(vspec), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def vspec_from_payload(payload: dict, expected: np.ndarray, nested_expected: dict | None = None) -> VSpec:
    """Rebuild a VSpec from a payload plus the raster(s) it references.

    Rasters travel out-of-band (they are large); the payload pins them by
    digest, and this constructor re-verifies the binding.
    """
    if _array_digest(expected) != payload["expected_digest"]:
        raise ValueError("expected appearance does not match payload digest")
    entries = []
    for data in payload["entries"]:
        entries.append(
            ManifestEntry(
                kind=data["kind"],
                rect=Rect(*data["rect"]),
                chars=[CharCell(x, y, w, h, ch) for x, y, w, h, ch in data["chars"]],
                input_name=data["input_name"],
                text_size=data["text_size"],
                nested_id=data["nested_id"],
                initial_value=data.get("initial_value", ""),
            )
        )
    nested = {}
    for key, meta in payload.get("nested", {}).items():
        if nested_expected is None or key not in nested_expected:
            raise ValueError(f"missing nested expected appearance for {key!r}")
        arr = nested_expected[key]
        if _array_digest(arr) != meta["expected_digest"]:
            raise ValueError(f"nested appearance {key!r} does not match payload digest")
        nested[key] = NestedSpec(axis=meta["axis"], expected=arr)
    return VSpec(
        page_id=payload["page_id"],
        width=payload["width"],
        height=payload["height"],
        expected=expected,
        entries=entries,
        background=payload["background"],
        validation=_validation_from_dict(payload["validation"]),
        session_id=payload["session_id"],
        extra_fields=dict(payload["extra_fields"]),
        nested=nested,
    )
