"""The honest-user model (paper §II Assumptions / §III-C2).

The user:

* generates *hardware* I/O — every keystroke and click is recorded in the
  hypervisor's interrupt ledger with realistic timing;
* performs **reflective validation**: after entering a value she reads the
  field back from the display and corrects it until the display shows what
  she intends ("if the user sees it on the display, it is the correct
  value");
* interacts conventionally: clicks a field to focus it (creating a POF),
  types, moves on.

Reading the display means literally reading pixels back out of the
framebuffer — the user sees what the machine shows, not what the page's
data structures claim, which is exactly the gap UI-tampering attacks
exploit and reflective validation closes.
"""

from __future__ import annotations

import numpy as np

from repro.raster.text import char_advance
from repro.web import layout as lay
from repro.web.browser import Browser
from repro.web.elements import Checkbox, RadioGroup, ScrollableList, SelectBox, TextInput


class ReflectiveValidationError(RuntimeError):
    """The display refuses to show what the user is typing.

    An honest user gives up (and e.g. phones the bank) rather than
    submitting a form that displays the wrong value.
    """


class HonestUser:
    """Scripted honest user driving a browser through hardware events."""

    def __init__(self, browser: Browser, typing_delay_ms: float = 80.0, seed: int = 0) -> None:
        self.browser = browser
        self.machine = browser.machine
        self.typing_delay_ms = typing_delay_ms
        self._rng = np.random.default_rng(seed)

    # -- low-level hardware actions -----------------------------------------

    def _delay(self, scale: float = 1.0) -> None:
        jitter = float(self._rng.uniform(0.6, 1.5))
        self.machine.clock.advance(self.typing_delay_ms * scale * jitter)

    def press_key(self, char: str) -> None:
        self._delay()
        self.machine.record_hardware_io("key")
        self.browser.type_character(char)

    def press_backspace(self) -> None:
        self._delay()
        self.machine.record_hardware_io("key")
        self.browser.press_backspace()

    def click_viewport(self, x: int, y: int) -> None:
        self._delay(2.0)
        self.machine.record_hardware_io("mouse")
        self.browser.click(x, y)

    # -- element-level actions -----------------------------------------------

    def _scroll_into_view(self, element) -> None:
        rect = element.rect
        if rect is None:
            raise ValueError("page must be laid out before interaction")
        view_h = self.browser.viewport_height
        if rect.y < self.browser.scroll_y or rect.y2 > self.browser.scroll_y + view_h:
            self._delay()
            self.machine.record_hardware_io("mouse")
            self.browser.scroll_y = max(0, min(rect.y - view_h // 3, self.browser.max_scroll))
            self.browser.paint()

    def focus_element(self, element) -> None:
        self._scroll_into_view(element)
        cx, cy = element.rect.center
        if isinstance(element, TextInput):
            box = lay.input_box_rect(element)
            cx, cy = box.center
        self.click_viewport(cx, cy - self.browser.scroll_y)

    def fill_text_input(self, name: str, intended: str, max_retries: int = 2) -> None:
        """Type a value, then reflectively validate it against the display."""
        element = self.browser.page.find_input(name)
        if not isinstance(element, TextInput):
            raise TypeError(f"{name} is not a text input")
        self.focus_element(element)
        for _attempt in range(max_retries + 1):
            # Clear whatever is currently in the field.
            while element.value:
                self.press_backspace()
            for char in intended:
                self.press_key(char)
            if self._displayed_value_matches(element, intended):
                return
        raise ReflectiveValidationError(
            f"field {name!r} keeps displaying something other than {intended!r}"
        )

    def toggle_checkbox(self, name: str, desired: bool) -> None:
        element = self.browser.page.find_input(name)
        if not isinstance(element, Checkbox):
            raise TypeError(f"{name} is not a checkbox")
        if element.checked != desired:
            self.focus_element(element)

    def choose_radio(self, name: str, option: str) -> None:
        element = self.browser.page.find_input(name)
        if not isinstance(element, RadioGroup):
            raise TypeError(f"{name} is not a radio group")
        index = element.options.index(option)
        self._scroll_into_view(element)
        rect = element.rect
        y = rect.y + index * lay.ROW_HEIGHT + lay.ROW_HEIGHT // 2
        self.click_viewport(rect.x + lay.RADIO_SIZE // 2, y - self.browser.scroll_y)

    def choose_select(self, name: str, option: str) -> None:
        element = self.browser.page.find_input(name)
        if not isinstance(element, SelectBox):
            raise TypeError(f"{name} is not a select box")
        self.focus_element(element)  # opens the dropdown
        self._delay()
        self.machine.record_hardware_io("mouse")
        self.browser.choose_option(element.element_id, element.options.index(option))

    def pick_list_item(self, name: str, item: str) -> None:
        element = self.browser.page.find_input(name)
        if not isinstance(element, ScrollableList):
            raise TypeError(f"{name} is not a scrollable list")
        self._scroll_into_view(element)
        index = element.items.index(item)
        while index < element.scroll_offset:
            self._delay()
            self.machine.record_hardware_io("mouse")
            self.browser.scroll_element(element.element_id, -1)
        while index >= element.scroll_offset + element.visible_rows:
            self._delay()
            self.machine.record_hardware_io("mouse")
            self.browser.scroll_element(element.element_id, 1)
        row = index - element.scroll_offset
        y = element.rect.y + 2 + row * lay.ROW_HEIGHT + lay.ROW_HEIGHT // 2
        self.click_viewport(element.rect.x + 10, y - self.browser.scroll_y)

    def click_button(self, label: str) -> None:
        for element in self.browser.page.elements:
            if getattr(element, "label", None) == label and hasattr(element, "action"):
                self._scroll_into_view(element)
                cx, cy = element.rect.center
                self.click_viewport(cx, cy - self.browser.scroll_y)
                return
        raise KeyError(f"no button labelled {label!r}")

    # -- reflective validation ----------------------------------------------------

    def _displayed_value_matches(self, element: TextInput, intended: str) -> bool:
        """Read the field back from the *framebuffer* and compare.

        The user's ground truth is the display.  We compare the field's
        rendered pixels against a rendering of the intended value — a
        human does this by reading; the simulation does it by comparing
        the on-screen raster with what the intended text should look like
        in the browser's own rendering stack.
        """
        from repro.vision.image import Image
        from repro.web.render import FocusState, _draw_input_box  # avoid cycle

        frame = self.machine.sample_framebuffer()
        box = lay.input_box_rect(element)
        vy = box.y - self.browser.scroll_y
        if vy < 0 or vy + box.h > frame.height:
            return False  # can't read an off-screen field
        shown = frame.crop(box.x, vy, box.w, box.h)
        expected_el = TextInput(
            name=element.name,
            label=element.label,
            value=intended,
            text_size=element.text_size,
            element_id=element.element_id,
        )
        expected_el.rect = element.rect
        expected_el.caret = len(intended)
        canvas = Image.blank(self.browser.page.width, element.rect.y2 + 40, 255.0)
        _draw_input_box(
            canvas,
            expected_el,
            self.browser.stack,
            self.browser.pof,
            FocusState(element.element_id),
        )
        expected = canvas.crop(box.x, box.y, box.w, box.h)
        diff = np.abs(shown.pixels - expected.pixels)
        mismatch = float(np.mean(diff > 60.0))
        return mismatch < 0.01
