"""A small HTML bridge: Page <-> HTML, plus form parsing for server scripts.

The paper's server-side scripts operate on page source: removing external
iframes, adding ``maxlength`` to text inputs, scanning CSS for POF
overrides and warning about unsupported elements (§IV-B).  This module
serializes our :class:`~repro.web.elements.Page` model to an HTML subset
and parses that subset back, so the scripts can work on markup the way the
paper describes.
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass, field
from html.parser import HTMLParser

from repro.web import elements as el

#: The paper's "pre-defined HTML tag-to-validation type mapping" used by
#: the VSPEC generation script (§IV-B).
TAG_TO_VALIDATION_TYPE = {
    "h1": "text",
    "p": "text",
    "label": "text",
    "img": "image",
    "input": "input",
    "textarea": "input",
    "select": "input",
    "button": "input",
    "iframe": "iframe",
    "video": "video",
}


def page_to_html(page: el.Page, css: str = "") -> str:
    """Serialize a page to the HTML subset the server scripts understand."""
    parts = ["<html><head>"]
    if css:
        parts.append(f"<style>{css}</style>")
    parts.append(f"<title>{_html.escape(page.title)}</title></head><body>")
    parts.append(f'<form action="{_html.escape(page.action)}" data-width="{page.width}">')
    parts.append(f"<h1>{_html.escape(page.title)}</h1>")
    for element in page.elements:
        parts.append(_element_to_html(element))
    parts.append("</form></body></html>")
    return "\n".join(parts)


def _element_to_html(element: el.Element) -> str:
    if isinstance(element, el.TextBlock):
        return f'<p data-size="{element.size}">{_html.escape(element.text)}</p>'
    if isinstance(element, el.ImageElement):
        return (
            f'<img src="{element.kind}:{element.ref}" width="{element.width}" '
            f'height="{element.height}">'
        )
    if isinstance(element, el.TextInput):
        maxlength = f' maxlength="{element.max_length}"' if element.max_length else ""
        label = f"<label>{_html.escape(element.label)}</label>" if element.label else ""
        return (
            f'{label}<input type="text" name="{_html.escape(element.name)}" '
            f'value="{_html.escape(element.value)}"{maxlength}>'
        )
    if isinstance(element, el.Checkbox):
        checked = " checked" if element.checked else ""
        return (
            f'<input type="checkbox" name="{_html.escape(element.name)}"{checked}>'
            f"<label>{_html.escape(element.label)}</label>"
        )
    if isinstance(element, el.RadioGroup):
        rows = []
        for i, option in enumerate(element.options):
            checked = " checked" if element.selected == i else ""
            rows.append(
                f'<input type="radio" name="{_html.escape(element.name)}" '
                f'value="{_html.escape(option)}"{checked}>'
                f"<label>{_html.escape(option)}</label>"
            )
        return "\n".join(rows)
    if isinstance(element, el.SelectBox):
        opts = []
        for i, option in enumerate(element.options):
            sel = " selected" if element.selected == i else ""
            opts.append(f"<option{sel}>{_html.escape(option)}</option>")
        return f'<select name="{_html.escape(element.name)}">{"".join(opts)}</select>'
    if isinstance(element, el.Button):
        return f'<button type="{element.action}">{_html.escape(element.label)}</button>'
    if isinstance(element, el.ScrollableList):
        opts = "".join(f"<option>{_html.escape(i)}</option>" for i in element.items)
        return (
            f'<select name="{_html.escape(element.name)}" size="{element.visible_rows}" '
            f'data-scrollable="1">{opts}</select>'
        )
    if isinstance(element, el.IFrame):
        return f'<iframe src="{_html.escape(element.src)}" height="{element.height}"></iframe>'
    if isinstance(element, el.FileInput):
        return f'<input type="file" name="{_html.escape(element.name)}">'
    if isinstance(element, el.VideoElement):
        return f'<video width="{element.width}" height="{element.height}"></video>'
    raise TypeError(f"no HTML serialization for {type(element).__name__}")


@dataclass
class ParsedTag:
    """One tag occurrence with its attributes."""

    tag: str
    attrs: dict
    text: str = ""


@dataclass
class ParsedForm:
    """The pieces of a page the server scripts care about."""

    title: str = ""
    width: int = 640
    tags: list = field(default_factory=list)
    css: str = ""

    def find_all(self, tag: str) -> list:
        return [t for t in self.tags if t.tag == tag]

    def inputs(self) -> list:
        return [t for t in self.tags if t.tag in ("input", "textarea", "select")]

    def external_iframes(self) -> list:
        return [
            t
            for t in self.find_all("iframe")
            if str(t.attrs.get("src", "")).startswith(("http://", "https://"))
        ]


class _FormParser(HTMLParser):
    def __init__(self) -> None:
        super().__init__()
        self.form = ParsedForm()
        self._stack: list = []
        self._in_style = False

    def handle_starttag(self, tag, attrs):
        if tag == "style":
            self._in_style = True
            return
        parsed = ParsedTag(tag=tag, attrs=dict(attrs))
        if tag == "form":
            self.form.width = int(parsed.attrs.get("data-width", self.form.width))
        self.form.tags.append(parsed)
        self._stack.append(parsed)

    def handle_startendtag(self, tag, attrs):
        self.form.tags.append(ParsedTag(tag=tag, attrs=dict(attrs)))

    def handle_endtag(self, tag):
        if tag == "style":
            self._in_style = False
        while self._stack:
            top = self._stack.pop()
            if top.tag == tag:
                break

    def handle_data(self, data):
        text = data.strip()
        if not text:
            return
        if self._in_style:
            self.form.css += data
            return
        if self._stack:
            self._stack[-1].text += text
            if self._stack[-1].tag == "title":
                self.form.title = self._stack[-1].text


def parse_form(html_source: str) -> ParsedForm:
    """Parse the HTML subset back into script-inspectable structure."""
    parser = _FormParser()
    parser.feed(html_source)
    return parser.form
