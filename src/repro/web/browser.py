"""The untrusted browser: page state, event handling, painting.

Drives a :class:`~repro.web.elements.Page` in response to user events,
maintains focus/caret/selection state (drawing the POF cues), and paints
the visible viewport into the machine framebuffer.  Nothing here is
trusted: malware can call any of these methods, and can also bypass the
browser entirely and write the framebuffer directly.
"""

from __future__ import annotations

from repro.raster.stacks import RenderStack, reference_stack
from repro.raster.text import char_advance
from repro.vision.image import Image
from repro.web import elements as el
from repro.web import layout as lay
from repro.web.hypervisor import Machine
from repro.web.render import DEFAULT_POF, FocusState, POFStyle, render_page


class Browser:
    """A single-page browser bound to a machine's display."""

    def __init__(
        self,
        machine: Machine,
        page: el.Page,
        stack: RenderStack | None = None,
        pof: POFStyle = DEFAULT_POF,
    ) -> None:
        if page.width != machine.display_width:
            raise ValueError(
                f"page width {page.width} must match display width {machine.display_width}"
            )
        self.machine = machine
        self.page = page
        self.stack = stack or reference_stack()
        self.pof = pof
        self.scroll_y = 0
        self.focused_id: str | None = None
        self.fullscreen = False
        self.page_height = lay.layout_page(page)
        self._input_listeners: list = []
        self._submit_listeners: list = []

    # -- extension integration ------------------------------------------------

    def add_input_listener(self, callback) -> None:
        """Register a callback(element, old_value, new_value) for edits."""
        self._input_listeners.append(callback)

    def add_submit_listener(self, callback) -> None:
        """Register a callback(request_body) fired on form submission."""
        self._submit_listeners.append(callback)

    def _notify_input(self, element: el.Element, old, new) -> None:
        for callback in self._input_listeners:
            callback(element, old, new)

    # -- painting -----------------------------------------------------------

    @property
    def viewport_height(self) -> int:
        return self.machine.display_height

    @property
    def max_scroll(self) -> int:
        return max(0, self.page_height - self.viewport_height)

    def focus_state(self) -> FocusState | None:
        if self.focused_id is None:
            return None
        return FocusState(element_id=self.focused_id, caret_visible=True)

    def render_full_page(self) -> Image:
        """The complete page raster at its full height (no scrolling)."""
        return render_page(self.page, self.stack, self.focus_state(), self.pof)

    def paint(self) -> None:
        """Render the current viewport into the machine framebuffer."""
        full = self.render_full_page()
        self.page_height = full.height
        self.scroll_y = max(0, min(self.scroll_y, self.max_scroll))
        frame = full.crop_clipped(0, self.scroll_y, self.page.width, self.viewport_height,
                                  fill=self.page.background)
        self.machine.write_framebuffer(frame, 0, 0)

    # -- geometry helpers ----------------------------------------------------

    def page_point(self, view_x: int, view_y: int) -> tuple:
        """Map viewport coordinates to page coordinates."""
        return (view_x, view_y + self.scroll_y)

    def element_at(self, page_x: int, page_y: int) -> el.Element | None:
        for element in self.page.elements:
            if element.rect is not None and element.rect.contains_point(page_x, page_y):
                return element
        return None

    # -- events ----------------------------------------------------------------

    def click(self, view_x: int, view_y: int) -> None:
        """A mouse click at viewport coordinates.

        Input notifications fire *after* the repaint so listeners (the
        extension, hence vWitness) observe a display that already shows
        the new state.
        """
        deferred_notify = None
        px, py = self.page_point(view_x, view_y)
        target = self.element_at(px, py)
        if target is None or not target.focusable:
            self.focused_id = None
            self.paint()
            return
        self.focused_id = target.element_id
        if isinstance(target, el.TextInput):
            origin_x, _ = lay.text_origin_in_input(target)
            advance = char_advance(target.text_size)
            index = max(0, min(len(target.value), round((px - origin_x) / advance)))
            target.caret = index
            target.selection = None
        elif isinstance(target, el.Checkbox):
            old = target.request_fields()[target.name]
            target.checked = not target.checked
            deferred_notify = (target, old)
        elif isinstance(target, el.RadioGroup):
            row = (py - target.rect.y) // lay.ROW_HEIGHT
            if 0 <= row < len(target.options):
                old = target.request_fields()[target.name]
                target.selected = int(row)
                deferred_notify = (target, old)
        elif isinstance(target, el.SelectBox):
            if target.open:
                target.open = False
            else:
                target.open = True
        elif isinstance(target, el.ScrollableList):
            row = (py - target.rect.y - 2) // lay.ROW_HEIGHT
            absolute = target.scroll_offset + int(row)
            if 0 <= row < target.visible_rows and absolute < len(target.items):
                old = target.request_fields()[target.name]
                target.selected = absolute
                deferred_notify = (target, old)
        elif isinstance(target, el.Button):
            if target.action == "submit":
                self.submit()
                return
        self.paint()
        if deferred_notify is not None:
            element, old = deferred_notify
            self._notify_input(element, old, element.request_fields()[element.name])

    def choose_option(self, select_id: str, option_index: int) -> None:
        """Pick an option from an (open) select dropdown."""
        target = self.page.find(select_id)
        if not isinstance(target, el.SelectBox):
            raise TypeError(f"{select_id} is not a SelectBox")
        if not 0 <= option_index < len(target.options):
            raise ValueError(f"option index {option_index} out of range")
        old = target.request_fields()[target.name]
        target.selected = option_index
        target.open = False
        self.paint()
        self._notify_input(target, old, target.request_fields()[target.name])

    def type_character(self, char: str) -> None:
        """Insert one character at the focused input's caret."""
        target = self._focused_text_input()
        if target is None:
            return
        if target.max_length is not None and len(target.value) >= target.max_length:
            return
        old = target.value
        if target.selection:
            self._delete_selection(target)
        target.value = target.value[: target.caret] + char + target.value[target.caret :]
        target.caret += 1
        self.paint()
        self._notify_input(target, old, target.value)

    def type_text(self, text: str) -> None:
        """Insert a string one character at a time (one paint per key)."""
        for char in text:
            self.type_character(char)

    def press_backspace(self) -> None:
        target = self._focused_text_input()
        if target is None:
            return
        old = target.value
        if target.selection:
            self._delete_selection(target)
        elif target.caret > 0:
            target.value = target.value[: target.caret - 1] + target.value[target.caret :]
            target.caret -= 1
        self.paint()
        if target.value != old:
            self._notify_input(target, old, target.value)

    def select_range(self, start: int, end: int) -> None:
        """Highlight [start, end) in the focused text input."""
        target = self._focused_text_input()
        if target is None:
            return
        if not (0 <= start <= end <= len(target.value)):
            raise ValueError(f"selection [{start},{end}) out of range")
        target.selection = (start, end) if end > start else None
        self.paint()

    def scroll(self, delta_y: int) -> None:
        self.scroll_y = max(0, min(self.scroll_y + delta_y, self.max_scroll))
        self.paint()

    def scroll_element(self, element_id: str, delta_rows: int) -> None:
        """Scroll an independently scrollable list."""
        target = self.page.find(element_id)
        if not isinstance(target, el.ScrollableList):
            raise TypeError(f"{element_id} is not scrollable")
        target.scroll_offset = max(0, min(target.scroll_offset + delta_rows, target.max_scroll))
        self.paint()

    # -- fullscreen & submission ----------------------------------------------

    def request_fullscreen(self) -> None:
        self.fullscreen = True

    def exit_fullscreen(self) -> None:
        self.fullscreen = False

    def submit(self) -> dict:
        """Run the page's request-construction logic and notify listeners."""
        body = self.page.form_values()
        for callback in self._submit_listeners:
            callback(body)
        return body

    def show_submitted_banner(self) -> None:
        """The mandatory post-submission UI change (paper §V-A Submission)."""
        banner = Image.blank(self.page.width, 40, 210.0)
        self.machine.write_framebuffer(banner, 0, 0)

    # -- internals ---------------------------------------------------------------

    def _focused_text_input(self) -> el.TextInput | None:
        if self.focused_id is None:
            return None
        element = self.page.find(self.focused_id)
        return element if isinstance(element, el.TextInput) else None

    def _delete_selection(self, target: el.TextInput) -> None:
        start, end = sorted(target.selection)
        target.value = target.value[:start] + target.value[end:]
        target.caret = start
        target.selection = None
