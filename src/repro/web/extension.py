"""The untrusted browser extension (paper §III-B / §IV-A).

The extension bridges the browser and vWitness's trusted component.  It
(1) fetches VSPECs from the server at the client's window width,
(2) begins/ends vWitness sessions (fullscreening the page), and
(3) *hints* input positions and values as the user edits fields.

vWitness trusts none of this: hints are verified against pixels, the VSPEC
is echoed inside the signed request for the server to check, and a wrong
width simply fails viewport detection (§V-A "Dishonest Browser
Extension").  Attack code subverts the extension by subclassing it or by
feeding it forged events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.web.browser import Browser


@dataclass(frozen=True)
class InputHint:
    """One hinted input update: which field, where, and the new value."""

    timestamp: float
    input_name: str
    rect: tuple  # (x, y, w, h) in page coordinates
    value: str


class BrowserExtension:
    """Honest extension implementation.

    The three JavaScript APIs of §IV-A map to :meth:`acquire_vspecs`,
    :meth:`begin_session` and :meth:`end_session`.
    """

    def __init__(self, browser: Browser, server, vwitness) -> None:
        self.browser = browser
        self.server = server
        self.vwitness = vwitness
        self.vspec = None
        self._session_active = False
        browser.add_input_listener(self._on_input_changed)

    # -- the three extension APIs -------------------------------------------

    def acquire_vspecs(self, page_id: str):
        """Fetch the VSPEC tailored to the client window width."""
        width = self.reported_width()
        self.vspec = self.server.vspec_for(page_id, width)
        return self.vspec

    def begin_session(self) -> None:
        """Fullscreen the page and hand the VSPEC to vWitness."""
        if self.vspec is None:
            raise RuntimeError("acquire_vspecs must run before begin_session")
        self.browser.request_fullscreen()
        self.browser.paint()
        self.vwitness.begin_session(self.vspec)
        self._session_active = True

    def end_session(self, request_body: dict):
        """Exit fullscreen and submit the page-built request for validation."""
        if not self._session_active:
            raise RuntimeError("end_session without an active session")
        self.browser.exit_fullscreen()
        self._session_active = False
        certified = self.vwitness.end_session(request_body)
        self.browser.show_submitted_banner()
        return certified

    # -- hinting ---------------------------------------------------------------

    def reported_width(self) -> int:
        """The window width reported to the server (virtual pixels)."""
        return self.browser.page.width

    def _on_input_changed(self, element, old_value, new_value) -> None:
        if not self._session_active or self.vspec is None:
            return
        rect = element.rect.as_tuple() if element.rect is not None else (0, 0, 1, 1)
        hint = InputHint(
            timestamp=self.browser.machine.clock.now(),
            input_name=element.name,
            rect=rect,
            value=str(new_value),
        )
        self.vwitness.receive_hint(hint)
