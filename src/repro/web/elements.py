"""The page element model (a deliberately small DOM).

Covers the HTML element families the paper's evaluation touches: static
text and images, textual inputs, checkboxes, radio groups, dropdown
selects, submit buttons, independently scrollable lists (the paper's
"scrollable" dynamic elements), and the *unsupported* elements the
compatibility scripts must detect — external iframes, file inputs and
videos.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.vision.components import Rect

_ids = itertools.count(1)


def _fresh_id(prefix: str) -> str:
    return f"{prefix}-{next(_ids)}"


class Element:
    """Base class for page elements.

    ``rect`` is assigned by the layout engine (page coordinates, i.e.
    relative to the top of the full, unscrolled page).
    """

    focusable = False
    supported_by_vwitness = True

    def __init__(self, element_id: str | None = None) -> None:
        self.element_id = element_id or _fresh_id(type(self).__name__.lower())
        self.rect: Rect | None = None

    def request_fields(self) -> dict:
        """name -> value contribution of this element to a form request."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.element_id}, rect={self.rect})"


class TextBlock(Element):
    """Static text (headings, labels, paragraphs, terms)."""

    def __init__(self, text: str, size: int = 16, element_id: str | None = None) -> None:
        super().__init__(element_id)
        if not text:
            raise ValueError("TextBlock requires non-empty text")
        self.text = text
        self.size = size


class ImageElement(Element):
    """A static image: a named icon, a natural patch, or a logo.

    ``kind`` is one of ``"icon"`` (``ref`` is an icon name), ``"patch"``
    (``ref`` is an integer seed) or ``"logo"`` (``ref`` is a seed).
    """

    KINDS = ("icon", "patch", "logo")

    def __init__(self, kind: str, ref, width: int = 32, height: int = 32, element_id: str | None = None) -> None:
        super().__init__(element_id)
        if kind not in self.KINDS:
            raise ValueError(f"image kind must be one of {self.KINDS}, got {kind!r}")
        self.kind = kind
        self.ref = ref
        self.width = width
        self.height = height


class TextInput(Element):
    """A single-line text input with label, value and caret position."""

    focusable = True

    def __init__(
        self,
        name: str,
        label: str = "",
        value: str = "",
        max_length: int | None = None,
        text_size: int = 14,
        element_id: str | None = None,
    ) -> None:
        super().__init__(element_id)
        if not name:
            raise ValueError("TextInput requires a field name")
        self.name = name
        self.label = label
        self.value = value
        self.max_length = max_length
        self.text_size = text_size
        self.caret = len(value)  # caret index within the value
        self.selection: tuple | None = None  # (start, end) char indices

    def request_fields(self) -> dict:
        return {self.name: self.value}


class Checkbox(Element):
    """A labelled checkbox; its state maps to a well-defined appearance."""

    focusable = True

    def __init__(self, name: str, label: str, checked: bool = False, element_id: str | None = None) -> None:
        super().__init__(element_id)
        self.name = name
        self.label = label
        self.checked = checked

    def request_fields(self) -> dict:
        return {self.name: "on" if self.checked else "off"}


class RadioGroup(Element):
    """A vertical group of radio options (one row per option)."""

    focusable = True

    def __init__(self, name: str, options: list, selected: int | None = None, element_id: str | None = None) -> None:
        super().__init__(element_id)
        if not options:
            raise ValueError("RadioGroup requires at least one option")
        self.name = name
        self.options = list(options)
        if selected is not None and not 0 <= selected < len(options):
            raise ValueError(f"selected index {selected} out of range")
        self.selected = selected

    def request_fields(self) -> dict:
        value = self.options[self.selected] if self.selected is not None else ""
        return {self.name: value}


class SelectBox(Element):
    """A dropdown select; the open dropdown is a dynamically-appearing
    element validated through a nested VSPEC."""

    focusable = True

    def __init__(self, name: str, options: list, selected: int = 0, element_id: str | None = None) -> None:
        super().__init__(element_id)
        if not options:
            raise ValueError("SelectBox requires at least one option")
        if not 0 <= selected < len(options):
            raise ValueError(f"selected index {selected} out of range")
        self.name = name
        self.options = list(options)
        self.selected = selected
        self.open = False

    def request_fields(self) -> dict:
        return {self.name: self.options[self.selected]}


class Button(Element):
    """A push button; ``action='submit'`` submits the page's form."""

    focusable = True

    def __init__(self, label: str, action: str = "submit", element_id: str | None = None) -> None:
        super().__init__(element_id)
        if not label:
            raise ValueError("Button requires a label")
        self.label = label
        self.action = action


class ScrollableList(Element):
    """A list that scrolls independently of the page (paper §III-C1).

    Only ``visible_rows`` rows are shown; ``scroll_offset`` selects the
    window.  Its VSPEC nests a merged expected appearance of *all* rows.
    """

    focusable = True

    def __init__(
        self,
        name: str,
        items: list,
        visible_rows: int = 3,
        element_id: str | None = None,
    ) -> None:
        super().__init__(element_id)
        if not items:
            raise ValueError("ScrollableList requires at least one item")
        if visible_rows <= 0:
            raise ValueError(f"visible_rows must be positive, got {visible_rows}")
        self.name = name
        self.items = list(items)
        self.visible_rows = min(visible_rows, len(items))
        self.scroll_offset = 0
        self.selected: int | None = None

    @property
    def max_scroll(self) -> int:
        return max(0, len(self.items) - self.visible_rows)

    def request_fields(self) -> dict:
        value = self.items[self.selected] if self.selected is not None else ""
        return {self.name: value}


class IFrame(Element):
    """An inline frame.  External-origin iframes are unsupported (ads)."""

    def __init__(self, src: str, height: int = 80, element_id: str | None = None) -> None:
        super().__init__(element_id)
        if not src:
            raise ValueError("IFrame requires a src")
        self.src = src
        self.height = height

    @property
    def external(self) -> bool:
        return self.src.startswith("http://") or self.src.startswith("https://")

    @property
    def supported_by_vwitness(self) -> bool:  # type: ignore[override]
        return not self.external


class FileInput(Element):
    """A file-upload input — invisible interaction, unsupported (§III-D)."""

    focusable = True
    supported_by_vwitness = False

    def __init__(self, name: str, label: str = "Upload", element_id: str | None = None) -> None:
        super().__init__(element_id)
        self.name = name
        self.label = label

    def request_fields(self) -> dict:
        return {self.name: ""}


class VideoElement(Element):
    """A video region — excessively dynamic, unsupported (§III-D)."""

    supported_by_vwitness = False

    def __init__(self, width: int = 320, height: int = 180, element_id: str | None = None) -> None:
        super().__init__(element_id)
        self.width = width
        self.height = height


@dataclass
class Page:
    """A web page: a vertical flow of elements plus form metadata."""

    title: str
    elements: list = field(default_factory=list)
    width: int = 640
    background: float = 255.0
    action: str = "/submit"

    def __post_init__(self) -> None:
        if self.width < 64:
            raise ValueError(f"page width too small: {self.width}")

    def inputs(self) -> list:
        """All elements that contribute fields to the form request."""
        return [e for e in self.elements if e.request_fields()]

    def find(self, element_id: str) -> Element:
        for element in self.elements:
            if element.element_id == element_id:
                return element
        raise KeyError(f"no element with id {element_id!r}")

    def find_input(self, name: str) -> Element:
        for element in self.elements:
            if getattr(element, "name", None) == name:
                return element
        raise KeyError(f"no input named {name!r}")

    def form_values(self) -> dict:
        """The name->value mapping the page's own logic would submit."""
        values: dict = {}
        for element in self.elements:
            values.update(element.request_fields())
        return values

    def unsupported_elements(self) -> list:
        """Elements vWitness cannot validate (for the compat script)."""
        return [e for e in self.elements if not e.supported_by_vwitness]
