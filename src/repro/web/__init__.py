"""Untrusted web client substrate (browser/OS/extension substitute).

Everything in this package sits on the *untrusted* side of vWitness's
trust boundary: the page model, layout engine, renderer, browser, the
guest OS framebuffer, and the hinting browser extension.  Attack code
(:mod:`repro.attacks`) subverts these components; the trusted side
(:mod:`repro.core`) only ever observes them through
:class:`~repro.web.hypervisor.Machine`'s sampling interface.
"""

from repro.web.elements import (
    Button,
    Checkbox,
    Element,
    FileInput,
    IFrame,
    ImageElement,
    Page,
    RadioGroup,
    ScrollableList,
    SelectBox,
    TextBlock,
    TextInput,
    VideoElement,
)
from repro.web.layout import layout_page
from repro.web.render import POFStyle, render_page
from repro.web.browser import Browser
from repro.web.hypervisor import Machine, SimulatedClock
from repro.web.extension import BrowserExtension, InputHint
from repro.web.user import HonestUser

__all__ = [
    "Element",
    "TextBlock",
    "ImageElement",
    "TextInput",
    "Checkbox",
    "RadioGroup",
    "SelectBox",
    "Button",
    "ScrollableList",
    "IFrame",
    "FileInput",
    "VideoElement",
    "Page",
    "layout_page",
    "render_page",
    "POFStyle",
    "Browser",
    "Machine",
    "SimulatedClock",
    "BrowserExtension",
    "InputHint",
    "HonestUser",
]
