"""Page renderer: element tree -> framebuffer pixels, including POF cues.

This is the untrusted client renderer.  It draws the point-of-focus cues
(focus outline, caret, selection highlight) that vWitness later *extracts
back out of the pixels* — the core of the paper's interaction validation.
The POF intensities live in :class:`POFStyle` so the trusted extractor and
this untrusted renderer agree on the convention, just as real browsers and
vWitness agree on standard focus-ring styling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.raster.icons import natural_patch, render_icon, synthetic_logo
from repro.raster.stacks import RenderStack, reference_stack
from repro.raster.text import render_text_line
from repro.vision.image import Image
from repro.vision.ops import resize_bilinear
from repro.web import elements as el
from repro.web import layout as lay


@dataclass(frozen=True)
class POFStyle:
    """Pixel conventions for point-of-focus cues.

    Intensities are chosen to be visually distinct bands: ink is ~0,
    borders ~90, background ~255.  The highlight is a light band behind
    text; the caret a dark 2px vertical bar; the focus outline a mid-gray
    2px ring offset 2px outside the field border.
    """

    outline_intensity: float = 120.0
    outline_thickness: int = 2
    outline_margin: int = 2
    caret_intensity: float = 30.0
    caret_width: int = 2
    #: Minimum height for a caret *detection*.  The rendered caret spans
    #: the input box interior (22px for the standard 30px box), while
    #: glyph strokes never exceed the text size (<=14px even with AA) —
    #: so 16 separates a real caret from an 'l'/'1'/'|' stem whose ink
    #: drifts into the caret intensity band on some rendering stacks.
    caret_min_height: int = 16
    highlight_intensity: float = 205.0
    border_intensity: float = 90.0
    #: Scrollable-list selected-row fill.  Deliberately outside the POF
    #: highlight band so a persisting list selection is element *state*,
    #: not a point-of-focus cue.
    list_selection_intensity: float = 235.0


DEFAULT_POF = POFStyle()

#: Input-field interior fill — the renderer's field background.  The
#: display validator composes tracked values against this same constant.
FIELD_BACKGROUND = 252.0


def draw_input_value(canvas: Image, box, value: str, text_size: int, stack: RenderStack, clear_interior: bool = False) -> None:
    """Draw an input's value text into its box rect.

    The single source of truth for field-value geometry (origin,
    truncation, background): :func:`_draw_input_box` renders with it and
    the display validator composes tracked state into expected
    appearances with it — keeping the two in lockstep is what makes
    stateful viewport matching faithful.  ``clear_interior`` wipes the
    inside of the box (preserving its border) first, for composing over
    a raster that may carry a previously drawn value.
    """
    if clear_interior:
        canvas.fill_rect(box.x + 1, box.y + 1, box.w - 2, box.h - 2, FIELD_BACKGROUND)
    if not value:
        return
    advance = lay.char_advance(text_size)
    max_chars = (box.w - 2 * lay.INPUT_PAD_X) // max(1, advance)
    origin_y = box.y + (box.h - text_size) // 2
    _draw_text(canvas, value[:max_chars], box.x + lay.INPUT_PAD_X, origin_y, text_size, stack)


@dataclass(frozen=True)
class FocusState:
    """Browser-side focus: which element has the POF and how it looks."""

    element_id: str
    caret_visible: bool = True


def _draw_text(canvas: Image, text: str, x: int, y: int, size: int, stack: RenderStack) -> None:
    line = render_text_line(text, size=size, stack=stack, background=255.0)
    w = min(line.width, canvas.width - x)
    h = min(line.height, canvas.height - y)
    if w <= 0 or h <= 0:
        return
    # Multiply-blend so text composes over non-white backgrounds.
    region = canvas.pixels[y : y + h, x : x + w]
    canvas.pixels[y : y + h, x : x + w] = region * (line.pixels[:h, :w] / 255.0)


def _draw_wrapped_text(canvas: Image, element: el.TextBlock, stack: RenderStack) -> None:
    rect = element.rect
    lines = lay.wrap_text(element.text, element.size, rect.w)
    for i, line in enumerate(lines):
        _draw_text(canvas, line, rect.x, rect.y + i * (element.size + 4), element.size, stack)


def _render_image_content(element: el.ImageElement, stack: RenderStack) -> Image:
    if element.kind == "icon":
        tile = render_icon(element.ref, size=max(element.width, element.height), stack=stack)
    elif element.kind == "patch":
        tile = natural_patch(int(element.ref), size=max(element.width, element.height), stack=stack)
    else:
        return synthetic_logo(int(element.ref), element.width, element.height)
    if tile.shape != (element.height, element.width):
        return Image(resize_bilinear(tile.pixels, element.height, element.width))
    return tile


def _draw_input_box(
    canvas: Image,
    element: el.TextInput,
    stack: RenderStack,
    pof: POFStyle,
    focus: FocusState | None,
) -> None:
    box = lay.input_box_rect(element)
    canvas.fill_rect(box.x, box.y, box.w, box.h, FIELD_BACKGROUND)
    canvas.draw_border(box.x, box.y, box.w, box.h, pof.border_intensity, 1)
    if element.label:
        _draw_text(canvas, element.label, element.rect.x, element.rect.y, lay.LABEL_SIZE, stack)
    focused = focus is not None and focus.element_id == element.element_id
    # Selection highlight behind the selected characters.
    if focused and element.selection:
        start, end = sorted(element.selection)
        start = max(0, start)
        end = min(len(element.value), end)
        if end > start:
            first = lay.char_cell_in_input(element, start)
            last = lay.char_cell_in_input(element, end - 1)
            canvas.fill_rect(
                first.x, first.y, last.x2 - first.x, first.h, pof.highlight_intensity
            )
    draw_input_value(canvas, box, element.value, element.text_size, stack)
    if focused:
        # Focus outline: a ring around the input box.
        ring = box.expanded(pof.outline_margin)
        if ring.x >= 0 and ring.y >= 0 and ring.x2 <= canvas.width and ring.y2 <= canvas.height:
            canvas.draw_border(ring.x, ring.y, ring.w, ring.h, pof.outline_intensity, pof.outline_thickness)
        # Caret (suppressed while a selection highlight is showing).
        if focus.caret_visible and not element.selection:
            cx = lay.caret_x(element)
            cy = box.y + 4
            if cx + pof.caret_width <= box.x2 - 1:
                canvas.draw_vline(cx, cy, box.h - 8, pof.caret_intensity, pof.caret_width)


def _draw_checkbox(canvas: Image, element: el.Checkbox, stack: RenderStack, pof: POFStyle, focus) -> None:
    rect = element.rect
    size = lay.CHECKBOX_SIZE
    cy = rect.y + (rect.h - size) // 2
    canvas.draw_border(rect.x, cy, size, size, pof.border_intensity, 1)
    if element.checked:
        mark = render_icon("checkmark", size=size - 4, stack=stack)
        canvas.blend(mark, rect.x + 2, cy + 2, alpha=0.9)
    _draw_text(canvas, element.label, rect.x + size + 8, rect.y + (rect.h - lay.LABEL_SIZE) // 2, lay.LABEL_SIZE, stack)
    if focus is not None and focus.element_id == element.element_id:
        outline = Rect_expand_safe(element.rect, pof.outline_margin, canvas)
        if outline is not None:
            canvas.draw_border(outline.x, outline.y, outline.w, outline.h, pof.outline_intensity, pof.outline_thickness)


def _draw_radio_group(canvas: Image, element: el.RadioGroup, stack: RenderStack, pof: POFStyle, focus) -> None:
    rect = element.rect
    size = lay.RADIO_SIZE
    for i, option in enumerate(element.options):
        ry = rect.y + i * lay.ROW_HEIGHT + (lay.ROW_HEIGHT - size) // 2
        canvas.draw_border(rect.x, ry, size, size, pof.border_intensity, 1)
        canvas.draw_border(rect.x + 1, ry + 1, size - 2, size - 2, 252.0, 1)
        if element.selected == i:
            canvas.fill_rect(rect.x + 4, ry + 4, size - 8, size - 8, 40.0)
        _draw_text(canvas, option, rect.x + size + 8, rect.y + i * lay.ROW_HEIGHT + 3, lay.LABEL_SIZE, stack)
    if focus is not None and focus.element_id == element.element_id:
        outline = rect.expanded(pof.outline_margin)
        if outline.x >= 0 and outline.y >= 0 and outline.x2 <= canvas.width and outline.y2 <= canvas.height:
            canvas.draw_border(outline.x, outline.y, outline.w, outline.h, pof.outline_intensity, pof.outline_thickness)


def _draw_select(canvas: Image, element: el.SelectBox, stack: RenderStack, pof: POFStyle, focus) -> None:
    rect = element.rect
    canvas.fill_rect(rect.x, rect.y, rect.w, lay.INPUT_HEIGHT, 252.0)
    canvas.draw_border(rect.x, rect.y, rect.w, lay.INPUT_HEIGHT, pof.border_intensity, 1)
    _draw_text(canvas, element.options[element.selected], rect.x + 6, rect.y + 8, 14, stack)
    # Dropdown arrow: a small v glyph at the right edge.
    _draw_text(canvas, "v", rect.x + rect.w - 20, rect.y + 8, 12, stack)
    if focus is not None and focus.element_id == element.element_id:
        outline = Rect_expand_safe(rect, pof.outline_margin, canvas)
        if outline is not None:
            canvas.draw_border(outline.x, outline.y, outline.w, outline.h, pof.outline_intensity, pof.outline_thickness)


def _draw_button(canvas: Image, element: el.Button, stack: RenderStack, pof: POFStyle, focus) -> None:
    rect = element.rect
    canvas.fill_rect(rect.x, rect.y, rect.w, rect.h, 225.0)
    canvas.draw_border(rect.x, rect.y, rect.w, rect.h, pof.border_intensity, 1)
    _draw_text(canvas, element.label, rect.x + 12, rect.y + (rect.h - 14) // 2, 14, stack)
    if focus is not None and focus.element_id == element.element_id:
        outline = Rect_expand_safe(rect, pof.outline_margin, canvas)
        if outline is not None:
            canvas.draw_border(outline.x, outline.y, outline.w, outline.h, pof.outline_intensity, pof.outline_thickness)


def _draw_scrollable(canvas: Image, element: el.ScrollableList, stack: RenderStack, pof: POFStyle, focus) -> None:
    rect = element.rect
    canvas.draw_border(rect.x, rect.y, rect.w, rect.h, pof.border_intensity, 1)
    visible = element.items[element.scroll_offset : element.scroll_offset + element.visible_rows]
    for i, item in enumerate(visible):
        absolute = element.scroll_offset + i
        ry = rect.y + 2 + i * lay.ROW_HEIGHT
        if element.selected == absolute:
            canvas.fill_rect(rect.x + 1, ry, rect.w - 2, lay.ROW_HEIGHT, pof.list_selection_intensity)
        _draw_text(canvas, item, rect.x + 8, ry + 4, lay.LABEL_SIZE, stack)
    if focus is not None and focus.element_id == element.element_id:
        outline = Rect_expand_safe(rect, pof.outline_margin, canvas)
        if outline is not None:
            canvas.draw_border(outline.x, outline.y, outline.w, outline.h, pof.outline_intensity, pof.outline_thickness)


def _draw_placeholder(canvas: Image, element: el.Element, text: str, stack: RenderStack, pof: POFStyle) -> None:
    rect = element.rect
    canvas.fill_rect(rect.x, rect.y, rect.w, rect.h, 238.0)
    canvas.draw_border(rect.x, rect.y, rect.w, rect.h, pof.border_intensity, 1)
    _draw_text(canvas, text, rect.x + 8, rect.y + min(8, max(0, rect.h - 14)), 12, stack)


def Rect_expand_safe(rect, margin: int, canvas: Image):
    """Expand a rect, returning None if it would escape the canvas."""
    out = rect.expanded(margin)
    if out.x < 0 or out.y < 0 or out.x2 > canvas.width or out.y2 > canvas.height:
        return None
    return out


def render_page(
    page: el.Page,
    stack: RenderStack | None = None,
    focus: FocusState | None = None,
    pof: POFStyle = DEFAULT_POF,
    include_title: bool = True,
) -> Image:
    """Render the full page (unscrolled, full height) to an image.

    The result is the client-side equivalent of the VSPEC's "long"
    expected appearance when rendered with the reference stack and no
    focus state.
    """
    stack = stack or reference_stack()
    height = lay.layout_page(page)
    canvas = Image.blank(page.width, height, page.background)
    if include_title:
        _draw_text(canvas, page.title, lay.MARGIN_X, 10, 18, stack)
    for element in page.elements:
        if isinstance(element, el.TextBlock):
            _draw_wrapped_text(canvas, element, stack)
        elif isinstance(element, el.ImageElement):
            tile = _render_image_content(element, stack)
            canvas.paste(tile, element.rect.x, element.rect.y)
        elif isinstance(element, el.TextInput):
            _draw_input_box(canvas, element, stack, pof, focus)
        elif isinstance(element, el.Checkbox):
            _draw_checkbox(canvas, element, stack, pof, focus)
        elif isinstance(element, el.RadioGroup):
            _draw_radio_group(canvas, element, stack, pof, focus)
        elif isinstance(element, el.SelectBox):
            _draw_select(canvas, element, stack, pof, focus)
        elif isinstance(element, el.Button):
            _draw_button(canvas, element, stack, pof, focus)
        elif isinstance(element, el.ScrollableList):
            _draw_scrollable(canvas, element, stack, pof, focus)
        elif isinstance(element, el.IFrame):
            _draw_placeholder(canvas, element, f"iframe: {element.src}", stack, pof)
        elif isinstance(element, el.FileInput):
            _draw_placeholder(canvas, element, f"{element.label} (choose file)", stack, pof)
        elif isinstance(element, el.VideoElement):
            _draw_placeholder(canvas, element, "video", stack, pof)
        else:  # pragma: no cover - exhaustive today
            raise TypeError(f"no renderer for {type(element).__name__}")
    canvas.pixels = stack.apply_noise(canvas.pixels, salt=hash(page.title) % 9973)
    return canvas.clip()
