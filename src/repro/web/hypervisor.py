"""Simulated machine: clock, guest framebuffer, hardware I/O ledger.

This is the Xen substitute.  The trust property it models (paper §II/§V):

* Guest software (browser, OS, malware) can freely *write* the framebuffer
  — including writes that bypass the browser, as privileged rootkits like
  Scranos do.
* Guest software cannot observe *when* dom0 samples the framebuffer, and
  cannot intercept or alter samples — ``sample_framebuffer`` returns a
  private copy.
* Hardware I/O events (key presses, mouse clicks) enter the ledger only
  through :meth:`record_hardware_io`, which attack code must not call —
  malware can inject events into the *guest's* input queue but cannot
  fabricate interrupts observed by the hypervisor.  Tests enforce this
  boundary by construction: attacks drive the browser directly instead of
  the user model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vision.image import Image


class SimulatedClock:
    """Millisecond virtual clock advanced explicitly by the harness.

    Observers (vWitness's screenshot sampler) register callbacks that fire
    after every advance — the simulation's stand-in for dom0 waking up on
    its own timer, independent of guest activity.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now = float(start_ms)
        self._observers: list = []

    def now(self) -> float:
        return self._now

    def add_observer(self, callback) -> None:
        """Register callback(now_ms) invoked after each advance."""
        self._observers.append(callback)

    def remove_observer(self, callback) -> None:
        self._observers.remove(callback)

    def advance(self, delta_ms: float) -> float:
        if delta_ms < 0:
            raise ValueError(f"cannot rewind the clock by {delta_ms}ms")
        self._now += delta_ms
        for callback in list(self._observers):
            callback(self._now)
        return self._now


@dataclass(frozen=True)
class IOEvent:
    """One hardware input interrupt observed by the hypervisor."""

    timestamp: float
    kind: str  # "key" | "mouse"


class Machine:
    """A client machine: one guest framebuffer plus the trusted interfaces."""

    def __init__(self, width: int, height: int, clock: SimulatedClock | None = None) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"display must have positive size, got {width}x{height}")
        self.clock = clock or SimulatedClock()
        self._framebuffer = Image.blank(width, height, 0.0)
        self._io_ledger: list = []

    # -- guest-side (untrusted) -------------------------------------------

    @property
    def display_width(self) -> int:
        return self._framebuffer.width

    @property
    def display_height(self) -> int:
        return self._framebuffer.height

    def write_framebuffer(self, image, x: int = 0, y: int = 0) -> None:
        """Guest write into the display (browser paint or malware blit)."""
        self._framebuffer.paste(image, x, y)

    def framebuffer_handle(self) -> Image:
        """Direct mutable access for privileged guest code (rootkit writes)."""
        return self._framebuffer

    # -- hardware-side ----------------------------------------------------------

    def record_hardware_io(self, kind: str) -> None:
        """A physical input interrupt (keyboard/mouse).

        Only the user model calls this; the hypervisor observes interrupt
        timing but never interprets the events (paper §III-C2 "vWitness
        does not interpret the I/O events but only checks their
        occurrence").
        """
        if kind not in ("key", "mouse"):
            raise ValueError(f"unknown I/O kind {kind!r}")
        self._io_ledger.append(IOEvent(self.clock.now(), kind))

    # -- dom0-side (trusted) -------------------------------------------------

    def sample_framebuffer(self) -> Image:
        """A trusted snapshot of the display, invisible to the guest."""
        return self._framebuffer.copy()

    def io_events_between(self, start_ms: float, end_ms: float) -> list:
        """Hardware events in a ``[start, end]`` window."""
        return [e for e in self._io_ledger if start_ms <= e.timestamp <= end_ms]

    def last_io_before(self, timestamp: float) -> IOEvent | None:
        """Most recent hardware event at or before ``timestamp``."""
        best = None
        for event in self._io_ledger:
            if event.timestamp <= timestamp and (best is None or event.timestamp > best.timestamp):
                best = event
        return best
