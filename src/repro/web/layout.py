"""Flow layout: assigns each element its page-coordinate rectangle.

A single-column flow with fixed margins — web-accurate enough that VSPEC
manifests, browser rendering and user clicks all agree on geometry, which
is the property the validation pipeline actually depends on.
"""

from __future__ import annotations

from repro.raster.text import char_advance, measure_text
from repro.vision.components import Rect
from repro.web import elements as el

#: Layout constants (pixels).
MARGIN_X = 24
SPACING_Y = 14
INPUT_HEIGHT = 30
INPUT_PAD_X = 6
CHECKBOX_SIZE = 16
RADIO_SIZE = 14
ROW_HEIGHT = 24
BUTTON_HEIGHT = 32
LABEL_SIZE = 13


def element_height(element: el.Element, page_width: int) -> int:
    """Height this element occupies in the flow (including its label)."""
    if isinstance(element, el.TextBlock):
        return _wrapped_text_height(element, page_width)
    if isinstance(element, el.ImageElement):
        return element.height
    if isinstance(element, el.TextInput):
        label_h = LABEL_SIZE + 4 if element.label else 0
        return label_h + INPUT_HEIGHT
    if isinstance(element, el.Checkbox):
        return max(CHECKBOX_SIZE, ROW_HEIGHT)
    if isinstance(element, el.RadioGroup):
        return ROW_HEIGHT * len(element.options)
    if isinstance(element, el.SelectBox):
        return INPUT_HEIGHT
    if isinstance(element, el.Button):
        return BUTTON_HEIGHT
    if isinstance(element, el.ScrollableList):
        return ROW_HEIGHT * element.visible_rows + 4
    if isinstance(element, el.IFrame):
        return element.height
    if isinstance(element, el.FileInput):
        return INPUT_HEIGHT
    if isinstance(element, el.VideoElement):
        return element.height
    raise TypeError(f"no layout rule for {type(element).__name__}")


def element_width(element: el.Element, page_width: int) -> int:
    """Width this element occupies (flow column minus margins by default)."""
    column = page_width - 2 * MARGIN_X
    if isinstance(element, el.TextBlock):
        w, _h = measure_text(element.text, element.size)
        return min(w, column)
    if isinstance(element, el.ImageElement):
        return min(element.width, column)
    if isinstance(element, el.Button):
        w, _h = measure_text(element.label, 14)
        return min(w + 24, column)
    if isinstance(element, el.Checkbox):
        w, _h = measure_text(element.label, LABEL_SIZE)
        return min(CHECKBOX_SIZE + 8 + w, column)
    if isinstance(element, el.RadioGroup):
        widest = max(measure_text(opt, LABEL_SIZE)[0] for opt in element.options)
        return min(RADIO_SIZE + 8 + widest, column)
    return column


def _wrapped_text_height(element: el.TextBlock, page_width: int) -> int:
    lines = wrap_text(element.text, element.size, page_width - 2 * MARGIN_X)
    return len(lines) * (element.size + 4)


def wrap_text(text: str, size: int, max_width: int) -> list:
    """Greedy word wrap using the monospaced advance."""
    advance = char_advance(size)
    per_line = max(1, max_width // advance)
    words = text.split(" ")
    lines: list = []
    current = ""
    for word in words:
        candidate = f"{current} {word}".strip()
        if len(candidate) <= per_line or not current:
            current = candidate
        else:
            lines.append(current)
            current = word
    if current:
        lines.append(current)
    return lines


def layout_page(page: el.Page) -> int:
    """Assign ``rect`` to every element; returns the full page height.

    The flow starts below a title band and stacks elements vertically with
    ``SPACING_Y`` gaps.
    """
    y = SPACING_Y + 30  # title band
    for element in page.elements:
        h = element_height(element, page.width)
        w = element_width(element, page.width)
        element.rect = Rect(MARGIN_X, y, max(w, 1), max(h, 1))
        y += h + SPACING_Y
    return y + SPACING_Y


def input_box_rect(element: el.TextInput) -> Rect:
    """The input box portion of a TextInput's rect (below its label)."""
    if element.rect is None:
        raise ValueError("layout_page must run before input_box_rect")
    label_h = LABEL_SIZE + 4 if element.label else 0
    return Rect(element.rect.x, element.rect.y + label_h, element.rect.w, INPUT_HEIGHT)


def text_origin_in_input(element: el.TextInput) -> tuple:
    """Where the value text starts inside the input box."""
    box = input_box_rect(element)
    ty = box.y + (INPUT_HEIGHT - element.text_size) // 2
    return (box.x + INPUT_PAD_X, ty)


def caret_x(element: el.TextInput) -> int:
    """Pixel x of the caret for the element's current caret index."""
    origin_x, _ = text_origin_in_input(element)
    return origin_x + element.caret * char_advance(element.text_size)


def char_cell_in_input(element: el.TextInput, index: int) -> Rect:
    """The cell rectangle of the ``index``-th value character."""
    origin_x, origin_y = text_origin_in_input(element)
    advance = char_advance(element.text_size)
    return Rect(origin_x + index * advance, origin_y, advance, element.text_size)
