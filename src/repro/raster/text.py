"""Text line layout on top of the glyph rasterizer.

Produces the per-character geometry that VSPEC element manifests record
(``(x, y, w, h, char)`` tuples, Fig. 3 of the paper) as well as rendered
line images for page composition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.raster.fonts import FontFace, default_font
from repro.raster.glyphs import render_glyph
from repro.raster.stacks import RenderStack, reference_stack
from repro.vision.image import Image


@dataclass(frozen=True)
class PlacedChar:
    """One laid-out character: its cell rectangle within the line image."""

    char: str
    x: int
    y: int
    w: int
    h: int


def char_advance(size: int, width: float = 1.0) -> int:
    """Horizontal advance per character cell, in pixels.

    We use a monospaced advance (0.62 em), which keeps VSPEC manifests and
    client renders aligned without implementing full shaping; proportional
    spacing is a rendering-stack nicety that does not change any of the
    validation logic.
    """
    return max(4, int(round(size * 0.62 * width)))


def measure_text(text: str, size: int, font: FontFace | None = None) -> tuple:
    """(width, height) in pixels of a laid-out line."""
    font = font or default_font()
    advance = char_advance(size, font.width)
    return (max(1, advance * len(text)), size)


def layout_text(text: str, size: int, font: FontFace | None = None) -> list:
    """Per-character cells for ``text`` at origin (0, 0)."""
    font = font or default_font()
    advance = char_advance(size, font.width)
    return [
        PlacedChar(char=ch, x=i * advance, y=0, w=advance, h=size)
        for i, ch in enumerate(text)
    ]


def render_text_line(
    text: str,
    size: int = 16,
    font: FontFace | None = None,
    stack: RenderStack | None = None,
    foreground: float = 0.0,
    background: float | None = None,
) -> Image:
    """Render one line of text into an image.

    Each character is rasterized into its advance-wide cell.  Glyph tiles
    are square (``size`` x ``size``) and centred in the cell; the cell
    geometry matches :func:`layout_text` exactly, which is what lets the
    VSPEC generator record per-character ground truth rectangles.
    """
    font = font or default_font()
    stack = stack or reference_stack()
    bg = stack.background if background is None else background
    width, height = measure_text(text, size, font)
    canvas = Image.blank(width, height, bg)
    advance = char_advance(size, font.width)
    params = dict(font.render_params())
    params.update(stack.glyph_params())
    params["background"] = bg
    params["foreground"] = foreground
    for placed in layout_text(text, size, font):
        if placed.char == " ":
            continue
        tile = render_glyph(placed.char, size=size, **params)
        # Centre the square tile in the (possibly narrower) advance cell.
        if advance >= size:
            canvas.paste(tile, placed.x + (advance - size) // 2, placed.y)
        else:
            margin = (size - advance) // 2
            canvas.paste(
                tile.crop(margin, 0, advance, size), placed.x, placed.y
            )
    canvas.pixels = stack.apply_noise(canvas.pixels, salt=len(text))
    return canvas


def render_char_tile(
    char: str,
    size: int = 32,
    font: FontFace | None = None,
    stack: RenderStack | None = None,
    foreground: float = 0.0,
) -> Image:
    """A single-character tile as consumed by the text verifier (32x32)."""
    font = font or default_font()
    stack = stack or reference_stack()
    params = dict(font.render_params())
    params.update(stack.glyph_params())
    params["foreground"] = foreground
    tile = render_glyph(char, size=size, **params)
    tile.pixels = stack.apply_noise(tile.pixels, salt=ord(char))
    return tile
