"""Vector glyph definitions and the anti-aliased stroke rasterizer.

Every one of the 94 printable ASCII characters (the paper's 10 digits, 52
letters and 32 symbols) is described as a set of strokes — polylines in a
unit em-square with ``x`` rightwards and ``y`` downwards.  Rasterization
computes an exact distance field to the stroke skeleton, so the same glyph
can be rendered at any size, weight (stroke width), slant and anti-aliasing
level.  That parameter space is what produces *benign rendering variation*:
the same character drawn by two "rendering stacks" differs at the pixel
level but keeps its stroke topology, exactly the property the CNN verifier
must learn to accept while rejecting different characters or overlays.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.vision.image import DTYPE, Image

#: All characters with glyphs: printable ASCII 33..126 (94 characters).
CHARSET = "".join(chr(c) for c in range(33, 127))

# Vertical metrics in em units (y grows downward).
TOP = 0.12  # cap height
XH = 0.42  # x-height (top of lowercase)
BASE = 0.85  # baseline
DESC = 1.02  # descender depth
MID = (TOP + BASE) / 2.0  # optical middle of capitals
LMID = (XH + BASE) / 2.0  # optical middle of lowercase


def _arc(cx, cy, rx, ry, deg0, deg1, n=14):
    """Polyline approximation of an elliptical arc.

    Angles are degrees with 0=right, 90=down, 180=left, 270=up (screen
    coordinates).  ``deg1`` may exceed 360 or be below ``deg0``; the sweep
    simply follows the sign.
    """
    ts = np.linspace(math.radians(deg0), math.radians(deg1), n)
    return [(cx + rx * math.cos(t), cy + ry * math.sin(t)) for t in ts]


def _dot(x, y):
    """A stroke so short it rasterizes as a round dot."""
    return [(x, y - 0.015), (x, y + 0.015)]


_S_CAP = [
    (0.76, 0.24), (0.62, 0.14), (0.38, 0.14), (0.24, 0.26), (0.30, 0.40),
    (0.50, 0.47), (0.70, 0.55), (0.77, 0.67), (0.66, 0.82), (0.40, 0.84),
    (0.24, 0.74),
]

_S_LOW = [
    (0.71, 0.48), (0.56, 0.41), (0.36, 0.42), (0.27, 0.51), (0.36, 0.60),
    (0.55, 0.64), (0.69, 0.70), (0.71, 0.78), (0.56, 0.85), (0.36, 0.84),
    (0.25, 0.77),
]


def _build_glyph_table() -> dict:
    """Stroke table for all 94 characters.  Each value is a list of strokes;
    each stroke a list of (x, y) points in the unit em-square."""
    g: dict = {}

    # ---- digits ---------------------------------------------------------
    g["0"] = [_arc(0.5, MID, 0.30, 0.37, 0, 360, 20)]
    g["1"] = [[(0.32, 0.30), (0.52, TOP), (0.52, BASE)], [(0.32, BASE), (0.72, BASE)]]
    g["2"] = [_arc(0.5, 0.32, 0.28, 0.20, 185, 355, 10) + [(0.73, 0.45), (0.22, BASE), (0.80, BASE)]]
    g["3"] = [
        _arc(0.46, 0.305, 0.27, 0.185, 215, 440, 12),
        _arc(0.46, 0.665, 0.29, 0.195, 280, 505, 12),
    ]
    g["4"] = [[(0.68, BASE), (0.68, TOP), (0.22, 0.62), (0.85, 0.62)]]
    g["5"] = [
        [(0.76, TOP), (0.28, TOP), (0.25, 0.46), (0.48, 0.42)]
        + _arc(0.48, 0.63, 0.30, 0.21, 270, 490, 12)
    ]
    g["6"] = [
        _arc(0.52, 0.64, 0.28, 0.21, 0, 360, 16),
        [(0.70, 0.16), (0.40, 0.38), (0.27, 0.60)],
    ]
    g["7"] = [[(0.2, TOP), (0.8, TOP), (0.42, BASE)]]
    g["8"] = [
        _arc(0.5, 0.305, 0.245, 0.185, 0, 360, 16),
        _arc(0.5, 0.665, 0.285, 0.195, 0, 360, 16),
    ]
    g["9"] = [
        _arc(0.48, 0.33, 0.28, 0.21, 0, 360, 16),
        [(0.73, 0.37), (0.60, 0.6), (0.30, 0.82)],
    ]

    # ---- uppercase ------------------------------------------------------
    g["A"] = [[(0.12, BASE), (0.5, TOP), (0.88, BASE)], [(0.28, 0.58), (0.72, 0.58)]]
    g["B"] = [
        [(0.18, TOP), (0.18, BASE)],
        [(0.18, TOP), (0.54, TOP)] + _arc(0.54, (TOP + MID) / 2, 0.24, (MID - TOP) / 2, 270, 450, 10) + [(0.18, MID)],
        [(0.18, MID), (0.57, MID)] + _arc(0.57, (MID + BASE) / 2, 0.26, (BASE - MID) / 2, 270, 450, 10) + [(0.18, BASE)],
    ]
    g["C"] = [_arc(0.56, MID, 0.36, 0.37, 55, 305, 16)]
    g["D"] = [
        [(0.18, TOP), (0.18, BASE)],
        [(0.18, TOP), (0.48, TOP)] + _arc(0.48, MID, 0.34, 0.365, 270, 450, 14) + [(0.18, BASE)],
    ]
    g["E"] = [[(0.80, TOP), (0.18, TOP), (0.18, BASE), (0.80, BASE)], [(0.18, MID), (0.68, MID)]]
    g["F"] = [[(0.80, TOP), (0.18, TOP), (0.18, BASE)], [(0.18, MID), (0.65, MID)]]
    g["G"] = [_arc(0.54, MID, 0.35, 0.37, 50, 310, 16), [(0.58, 0.55), (0.89, 0.55), (0.89, 0.76)]]
    g["H"] = [[(0.15, TOP), (0.15, BASE)], [(0.85, TOP), (0.85, BASE)], [(0.15, MID), (0.85, MID)]]
    g["I"] = [[(0.5, TOP), (0.5, BASE)], [(0.3, TOP), (0.7, TOP)], [(0.3, BASE), (0.7, BASE)]]
    g["J"] = [[(0.74, TOP), (0.74, 0.68)] + _arc(0.51, 0.68, 0.23, 0.17, 0, 140, 8), [(0.52, TOP), (0.95, TOP)]]
    g["K"] = [[(0.18, TOP), (0.18, BASE)], [(0.80, TOP), (0.18, 0.55)], [(0.40, 0.42), (0.85, BASE)]]
    g["L"] = [[(0.20, TOP), (0.20, BASE), (0.80, BASE)]]
    g["M"] = [[(0.12, BASE), (0.12, TOP), (0.5, 0.60), (0.88, TOP), (0.88, BASE)]]
    g["N"] = [[(0.15, BASE), (0.15, TOP), (0.85, BASE), (0.85, TOP)]]
    g["O"] = [_arc(0.5, MID, 0.35, 0.37, 0, 360, 20)]
    g["P"] = [
        [(0.18, TOP), (0.18, BASE)],
        [(0.18, TOP), (0.54, TOP)] + _arc(0.54, 0.30, 0.26, 0.18, 270, 450, 10) + [(0.18, 0.48)],
    ]
    g["Q"] = [_arc(0.5, MID, 0.35, 0.37, 0, 360, 20), [(0.58, 0.63), (0.88, 0.95)]]
    g["R"] = [
        [(0.18, TOP), (0.18, BASE)],
        [(0.18, TOP), (0.54, TOP)] + _arc(0.54, 0.30, 0.26, 0.18, 270, 450, 10) + [(0.18, 0.48)],
        [(0.46, 0.48), (0.85, BASE)],
    ]
    g["S"] = [list(_S_CAP)]
    g["T"] = [[(0.10, TOP), (0.90, TOP)], [(0.5, TOP), (0.5, BASE)]]
    g["U"] = [[(0.15, TOP), (0.15, 0.62)] + _arc(0.5, 0.62, 0.35, 0.225, 180, 0, 12) + [(0.85, TOP)]]
    g["V"] = [[(0.12, TOP), (0.5, BASE), (0.88, TOP)]]
    g["W"] = [[(0.08, TOP), (0.30, BASE), (0.50, 0.35), (0.70, BASE), (0.92, TOP)]]
    g["X"] = [[(0.15, TOP), (0.85, BASE)], [(0.85, TOP), (0.15, BASE)]]
    g["Y"] = [[(0.12, TOP), (0.5, 0.50)], [(0.88, TOP), (0.5, 0.50)], [(0.5, 0.50), (0.5, BASE)]]
    g["Z"] = [[(0.15, TOP), (0.85, TOP), (0.15, BASE), (0.85, BASE)]]

    # ---- lowercase ------------------------------------------------------
    g["a"] = [_arc(0.47, LMID, 0.27, 0.215, 0, 360, 16), [(0.74, XH), (0.74, BASE)]]
    g["b"] = [[(0.20, TOP), (0.20, BASE)], _arc(0.51, LMID, 0.29, 0.215, 0, 360, 16)]
    g["c"] = [_arc(0.54, LMID, 0.30, 0.215, 60, 300, 12)]
    g["d"] = [[(0.80, TOP), (0.80, BASE)], _arc(0.49, LMID, 0.29, 0.215, 0, 360, 16)]
    g["e"] = [_arc(0.5, LMID, 0.29, 0.215, 35, 360, 16), [(0.22, 0.60), (0.78, 0.60)]]
    g["f"] = [[(0.72, 0.17), (0.56, 0.12), (0.46, 0.22), (0.46, BASE)], [(0.26, XH), (0.68, XH)]]
    g["g"] = [
        _arc(0.48, 0.615, 0.27, 0.195, 0, 360, 16),
        [(0.75, XH), (0.75, 0.92)] + _arc(0.50, 0.92, 0.25, 0.14, 0, 140, 8),
    ]
    g["h"] = [
        [(0.20, TOP), (0.20, BASE)],
        [(0.20, 0.60)] + _arc(0.49, 0.60, 0.29, 0.17, 180, 360, 10) + [(0.78, BASE)],
    ]
    g["i"] = [[(0.5, XH), (0.5, BASE)], _dot(0.5, 0.28)]
    g["j"] = [[(0.56, XH), (0.56, 0.92)] + _arc(0.36, 0.92, 0.20, 0.13, 0, 130, 8), _dot(0.56, 0.28)]
    g["k"] = [[(0.20, TOP), (0.20, BASE)], [(0.72, XH), (0.20, 0.62)], [(0.40, 0.55), (0.76, BASE)]]
    g["l"] = [[(0.5, TOP), (0.5, BASE)]]
    g["m"] = [
        [(0.14, BASE), (0.14, XH)],
        [(0.14, 0.56)] + _arc(0.32, 0.56, 0.18, 0.13, 180, 360, 8) + [(0.50, BASE)],
        [(0.50, 0.56)] + _arc(0.68, 0.56, 0.18, 0.13, 180, 360, 8) + [(0.86, BASE)],
    ]
    g["n"] = [
        [(0.20, BASE), (0.20, XH)],
        [(0.20, 0.60)] + _arc(0.49, 0.60, 0.29, 0.17, 180, 360, 10) + [(0.78, BASE)],
    ]
    g["o"] = [_arc(0.5, LMID, 0.29, 0.215, 0, 360, 18)]
    g["p"] = [[(0.20, XH), (0.20, DESC)], _arc(0.52, LMID, 0.29, 0.215, 0, 360, 16)]
    g["q"] = [[(0.80, XH), (0.80, DESC)], _arc(0.48, LMID, 0.29, 0.215, 0, 360, 16)]
    g["r"] = [[(0.24, XH), (0.24, BASE)], [(0.24, 0.58)] + _arc(0.50, 0.58, 0.26, 0.16, 180, 320, 8)]
    g["s"] = [list(_S_LOW)]
    g["t"] = [[(0.48, 0.20), (0.48, 0.76), (0.58, 0.85), (0.74, 0.82)], [(0.26, XH), (0.72, XH)]]
    g["u"] = [[(0.20, XH), (0.20, 0.69)] + _arc(0.5, 0.69, 0.30, 0.16, 180, 0, 10), [(0.80, XH), (0.80, BASE)]]
    g["v"] = [[(0.20, XH), (0.5, BASE), (0.80, XH)]]
    g["w"] = [[(0.13, XH), (0.32, BASE), (0.50, 0.55), (0.68, BASE), (0.87, XH)]]
    g["x"] = [[(0.22, XH), (0.78, BASE)], [(0.78, XH), (0.22, BASE)]]
    g["y"] = [[(0.20, XH), (0.50, BASE)], [(0.80, XH), (0.38, DESC)]]
    g["z"] = [[(0.22, XH), (0.78, XH), (0.22, BASE), (0.78, BASE)]]

    # ---- symbols --------------------------------------------------------
    g["!"] = [[(0.5, TOP), (0.5, 0.62)], _dot(0.5, 0.82)]
    g['"'] = [[(0.40, TOP), (0.40, 0.28)], [(0.60, TOP), (0.60, 0.28)]]
    g["#"] = [
        [(0.40, 0.20), (0.32, 0.80)],
        [(0.66, 0.20), (0.58, 0.80)],
        [(0.20, 0.42), (0.82, 0.42)],
        [(0.18, 0.62), (0.80, 0.62)],
    ]
    g["$"] = [list(_S_CAP), [(0.50, 0.06), (0.50, 0.93)]]
    g["%"] = [
        _arc(0.28, 0.28, 0.14, 0.13, 0, 360, 10),
        _arc(0.72, 0.70, 0.14, 0.13, 0, 360, 10),
        [(0.80, 0.14), (0.20, 0.86)],
    ]
    g["&"] = [
        [(0.78, 0.82), (0.32, 0.36), (0.32, 0.22), (0.45, 0.13), (0.58, 0.22), (0.57, 0.34),
         (0.24, 0.56), (0.21, 0.70), (0.33, 0.84), (0.55, 0.82), (0.70, 0.62)],
        [(0.62, 0.62), (0.85, 0.84)],
    ]
    g["'"] = [[(0.5, TOP), (0.5, 0.28)]]
    g["("] = [_arc(0.78, 0.50, 0.34, 0.44, 115, 245, 10)]
    g[")"] = [_arc(0.22, 0.50, 0.34, 0.44, 295, 425, 10)]
    g["*"] = [
        [(0.5, 0.14), (0.5, 0.56)],
        [(0.31, 0.22), (0.69, 0.48)],
        [(0.69, 0.22), (0.31, 0.48)],
    ]
    g["+"] = [[(0.5, 0.30), (0.5, 0.70)], [(0.30, 0.50), (0.70, 0.50)]]
    g[","] = [[(0.53, 0.78), (0.51, 0.86), (0.42, 0.96)]]
    g["-"] = [[(0.30, 0.52), (0.70, 0.52)]]
    g["."] = [_dot(0.5, 0.82)]
    g["/"] = [[(0.70, 0.12), (0.30, 0.90)]]
    g[":"] = [_dot(0.5, 0.44), _dot(0.5, 0.78)]
    g[";"] = [_dot(0.5, 0.44), [(0.53, 0.72), (0.51, 0.80), (0.42, 0.92)]]
    g["<"] = [[(0.75, 0.25), (0.25, 0.50), (0.75, 0.75)]]
    g["="] = [[(0.28, 0.42), (0.72, 0.42)], [(0.28, 0.60), (0.72, 0.60)]]
    g[">"] = [[(0.25, 0.25), (0.75, 0.50), (0.25, 0.75)]]
    g["?"] = [_arc(0.5, 0.30, 0.25, 0.18, 180, 450, 10) + [(0.5, 0.62)], _dot(0.5, 0.82)]
    g["@"] = [
        _arc(0.5, 0.52, 0.38, 0.38, 25, 335, 16),
        _arc(0.52, 0.50, 0.15, 0.15, 0, 360, 10),
        [(0.67, 0.50), (0.67, 0.64)],
    ]
    g["["] = [[(0.62, 0.10), (0.40, 0.10), (0.40, 0.92), (0.62, 0.92)]]
    g["\\"] = [[(0.30, 0.12), (0.70, 0.90)]]
    g["]"] = [[(0.38, 0.10), (0.60, 0.10), (0.60, 0.92), (0.38, 0.92)]]
    g["^"] = [[(0.30, 0.36), (0.50, 0.14), (0.70, 0.36)]]
    g["_"] = [[(0.15, 0.96), (0.85, 0.96)]]
    g["`"] = [[(0.42, 0.12), (0.58, 0.26)]]
    g["{"] = [
        [(0.66, 0.10), (0.53, 0.14), (0.49, 0.25), (0.49, 0.42), (0.38, 0.50),
         (0.49, 0.58), (0.49, 0.78), (0.53, 0.88), (0.66, 0.92)]
    ]
    g["|"] = [[(0.5, 0.08), (0.5, 0.95)]]
    g["}"] = [
        [(0.34, 0.10), (0.47, 0.14), (0.51, 0.25), (0.51, 0.42), (0.62, 0.50),
         (0.51, 0.58), (0.51, 0.78), (0.47, 0.88), (0.34, 0.92)]
    ]
    g["~"] = [[(0.22, 0.53), (0.34, 0.44), (0.50, 0.50), (0.66, 0.56), (0.78, 0.47)]]

    missing = [c for c in CHARSET if c not in g]
    if missing:  # pragma: no cover - table completeness guard
        raise AssertionError(f"glyph table missing characters: {missing!r}")
    return g


_GLYPHS = _build_glyph_table()


def glyph_strokes(char: str) -> list:
    """The stroke list for ``char`` (raises ``KeyError`` for non-printables)."""
    if char == " ":
        return []
    return _GLYPHS[char]


def _near_vertical(p, q, tol: float = 0.45) -> bool:
    dx = abs(q[0] - p[0])
    dy = abs(q[1] - p[1])
    return dy > 1e-6 and dx <= tol * dy


def _serif_strokes(strokes: list, length: float) -> list:
    """Serif decorations: small horizontal bars at near-vertical stroke ends."""
    serifs = []
    for stroke in strokes:
        if len(stroke) < 2:
            continue
        for end, other in ((stroke[0], stroke[1]), (stroke[-1], stroke[-2])):
            if _near_vertical(other, end):
                x, y = end
                serifs.append([(x - length, y), (x + length, y)])
    return serifs


def _segment_coverage(xs, ys, p, q, half_width, aa):
    """Per-pixel ink coverage contributed by segment p->q (vectorized)."""
    px, py = p
    qx, qy = q
    vx, vy = qx - px, qy - py
    seg_len2 = vx * vx + vy * vy
    if seg_len2 < 1e-12:
        dist = np.hypot(xs - px, ys - py)
    else:
        t = ((xs - px) * vx + (ys - py) * vy) / seg_len2
        t = np.clip(t, 0.0, 1.0)
        dist = np.hypot(xs - (px + t * vx), ys - (py + t * vy))
    return np.clip(0.5 + (half_width - dist) / (2.0 * aa), 0.0, 1.0)


def rasterize_strokes(
    strokes: list,
    size: int,
    half_width: float,
    aa: float = 0.6,
    dx: float = 0.0,
    dy: float = 0.0,
) -> np.ndarray:
    """Rasterize em-square strokes into a ``size`` x ``size`` coverage map.

    ``half_width`` and ``aa`` (anti-alias transition width) are in pixels;
    ``dx``/``dy`` apply a subpixel phase shift.  Returns ink coverage in
    [0, 1] (1 = full ink).
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    coords = np.arange(size, dtype=DTYPE) + 0.5
    ys, xs = np.meshgrid(coords, coords, indexing="ij")
    cov = np.zeros((size, size), dtype=DTYPE)
    scale = float(size)
    for stroke in strokes:
        pts = [((x * scale) + dx, (y * scale) + dy) for x, y in stroke]
        for p, q in zip(pts[:-1], pts[1:]):
            cov = np.maximum(cov, _segment_coverage(xs, ys, p, q, half_width, aa))
    return cov


@lru_cache(maxsize=16384)
def _glyph_coverage_cached(char, size, weight_key, slant_key, width_key, serif, dx_key, dy_key, aa_key):
    """Cached coverage rendering (keys are quantized floats for hashability)."""
    weight = weight_key / 1000.0
    slant = slant_key / 1000.0
    width = width_key / 1000.0
    dx = dx_key / 1000.0
    dy = dy_key / 1000.0
    aa = aa_key / 1000.0
    strokes = [list(s) for s in glyph_strokes(char)]
    if serif:
        strokes.extend(_serif_strokes(strokes, length=0.07 * width))
    transformed = []
    for stroke in strokes:
        transformed.append(
            [((x - 0.5) * width + 0.5 + slant * (0.5 - y), y) for x, y in stroke]
        )
    half_width = max(0.35, weight * size / 16.0)
    return rasterize_strokes(transformed, size, half_width, aa=aa, dx=dx, dy=dy)


def render_glyph(
    char: str,
    size: int = 32,
    weight: float = 1.0,
    slant: float = 0.0,
    width: float = 1.0,
    serif: bool = False,
    dx: float = 0.0,
    dy: float = 0.0,
    aa: float = 0.6,
    foreground: float = 0.0,
    background: float = 255.0,
    gamma: float = 1.0,
    intensity: float = 1.0,
) -> Image:
    """Render one character into a ``size`` x ``size`` grayscale tile.

    The first block of parameters comes from the font face (weight, slant,
    width, serif), the second from the rendering stack (subpixel ``dx/dy``,
    anti-aliasing ``aa``, ``gamma``, ink ``intensity``).
    """
    if char == " ":
        return Image.blank(size, size, background)
    cov = _glyph_coverage_cached(
        char,
        int(size),
        int(round(weight * 1000)),
        int(round(slant * 1000)),
        int(round(width * 1000)),
        bool(serif),
        int(round(dx * 1000)),
        int(round(dy * 1000)),
        int(round(aa * 1000)),
    )
    if gamma != 1.0:
        cov = np.power(cov, gamma)
    cov = np.clip(cov * intensity, 0.0, 1.0)
    pixels = background + (foreground - background) * cov
    return Image(pixels)


def glyph_cache_info():
    """Expose the internal render cache statistics (used by perf tests)."""
    return _glyph_coverage_cached.cache_info()


def clear_glyph_cache() -> None:
    """Drop all cached glyph coverages (used between benchmark runs)."""
    _glyph_coverage_cached.cache_clear()
