"""Rendering-stack variation model.

A *rendering stack* is the client-side combination of browser engine, OS,
device driver and configuration that the paper identifies as the source of
benign pixel-level variation (§III-C1: "browsers, OSes, device drivers,
GPUs, and configuration settings").  We model a stack as a small set of
raster parameters — anti-aliasing width, gamma, subpixel phase, hinting,
ink intensity and background level — and provide named stacks emulating
the paper's Gecko/Blink/WebKit x Windows/macOS grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RenderStack:
    """Raster parameters for one client rendering environment.

    Attributes:
        name: e.g. ``"blink-windows"``.
        aa: anti-alias transition width in pixels (ClearType-ish smoothing).
        gamma: gamma applied to glyph coverage (font smoothing curves).
        subpixel_x / subpixel_y: phase offset in [0, 1) pixels; models
            fractional glyph positioning differences between engines.
        intensity: ink intensity multiplier (font-weight rendering bias).
        background: canvas white level (display calibration).
        hinting: whether glyph origins snap to integer pixels.
        noise: amplitude of deterministic per-pixel dither (driver noise).
    """

    name: str
    aa: float = 0.6
    gamma: float = 1.0
    subpixel_x: float = 0.0
    subpixel_y: float = 0.0
    intensity: float = 1.0
    background: float = 255.0
    hinting: bool = True
    noise: float = 0.0

    def glyph_params(self) -> dict:
        """Keyword arguments for :func:`repro.raster.glyphs.render_glyph`."""
        return {
            "dx": 0.0 if self.hinting else self.subpixel_x,
            "dy": 0.0 if self.hinting else self.subpixel_y,
            "aa": self.aa,
            "gamma": self.gamma,
            "intensity": self.intensity,
            "background": self.background,
        }

    def apply_noise(self, pixels: np.ndarray, salt: int = 0) -> np.ndarray:
        """Add the stack's deterministic dither to a rendered raster."""
        if self.noise <= 0:
            return pixels
        rng = np.random.default_rng(abs(hash((self.name, salt))) % (2**32))
        return np.clip(pixels + rng.normal(0.0, self.noise, pixels.shape), 0.0, 255.0)


def reference_stack() -> RenderStack:
    """The server-side stack used to render VSPEC expected appearances."""
    return RenderStack(name="server-reference")


_NAMED_STACKS = [
    # Engine x platform grid, loosely modelled on ClearType vs CoreText
    # behaviour: Windows stacks hint aggressively with higher contrast,
    # macOS stacks use heavier AA without hinting.
    RenderStack("gecko-windows", aa=0.55, gamma=0.92, intensity=1.04, hinting=True, noise=0.8),
    RenderStack("gecko-macos", aa=0.85, gamma=1.10, subpixel_x=0.33, subpixel_y=0.12, hinting=False, noise=0.6),
    RenderStack("blink-windows", aa=0.50, gamma=0.90, intensity=1.06, hinting=True, noise=1.0),
    RenderStack("blink-macos", aa=0.80, gamma=1.08, subpixel_x=0.47, subpixel_y=0.21, hinting=False, noise=0.7),
    RenderStack("webkit-macos", aa=0.95, gamma=1.15, subpixel_x=0.25, subpixel_y=0.30, intensity=0.97, hinting=False, noise=0.5),
    RenderStack("webkit-windows", aa=0.60, gamma=0.95, intensity=1.02, hinting=True, noise=0.9),
]


def stack_registry() -> list:
    """The named rendering stacks (engine x platform combinations)."""
    return list(_NAMED_STACKS)


def stack_by_name(name: str) -> RenderStack:
    """Look up a named stack; raises ``KeyError`` for unknown names."""
    for stack in _NAMED_STACKS:
        if stack.name == name:
            return stack
    if name == "server-reference":
        return reference_stack()
    raise KeyError(f"unknown rendering stack {name!r}")


def make_random_stack(seed: int) -> RenderStack:
    """A randomized-but-deterministic stack (driver/config variation).

    Used to expand the training distribution beyond the six named stacks,
    mirroring the paper's data augmentation (enlarge/shift, intensity
    change, random bit flips).
    """
    rng = np.random.default_rng(seed)
    return RenderStack(
        name=f"random-{seed}",
        aa=float(rng.uniform(0.45, 1.05)),
        gamma=float(rng.uniform(0.85, 1.2)),
        subpixel_x=float(rng.uniform(0.0, 0.9)),
        subpixel_y=float(rng.uniform(0.0, 0.4)),
        intensity=float(rng.uniform(0.92, 1.1)),
        background=float(rng.uniform(248.0, 255.0)),
        hinting=bool(rng.integers(0, 2)),
        noise=float(rng.uniform(0.0, 1.5)),
    )
