"""Procedural icons and natural-texture patches.

Stand-ins for the two image corpora the paper trains its graphics verifier
on: Google's Material icon set and a subset of CIFAR-10.  Icons are drawn
from vector strokes (so they inherit the same benign rendering variation as
text); natural patches are band-limited random fields, which share CIFAR's
key property for this task — smooth, texture-like content with no glyph
structure, so injected text is a detectable anomaly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.raster.glyphs import rasterize_strokes, _arc
from repro.raster.stacks import RenderStack, reference_stack
from repro.raster.text import render_text_line
from repro.vision.image import DTYPE, Image
from repro.vision.ops import gaussian_blur

_ICON_STROKES = {
    "home": [
        [(0.1, 0.5), (0.5, 0.12), (0.9, 0.5)],
        [(0.22, 0.45), (0.22, 0.9), (0.78, 0.9), (0.78, 0.45)],
        [(0.42, 0.9), (0.42, 0.62), (0.58, 0.62), (0.58, 0.9)],
    ],
    "search": [
        _arc(0.42, 0.42, 0.26, 0.26, 0, 360, 14),
        [(0.62, 0.62), (0.88, 0.88)],
    ],
    "gear": [
        _arc(0.5, 0.5, 0.24, 0.24, 0, 360, 14),
        _arc(0.5, 0.5, 0.1, 0.1, 0, 360, 10),
        [(0.5, 0.14), (0.5, 0.26)],
        [(0.5, 0.74), (0.5, 0.86)],
        [(0.14, 0.5), (0.26, 0.5)],
        [(0.74, 0.5), (0.86, 0.5)],
        [(0.25, 0.25), (0.33, 0.33)],
        [(0.75, 0.25), (0.67, 0.33)],
        [(0.25, 0.75), (0.33, 0.67)],
        [(0.75, 0.75), (0.67, 0.67)],
    ],
    "envelope": [
        [(0.1, 0.22), (0.9, 0.22), (0.9, 0.78), (0.1, 0.78), (0.1, 0.22)],
        [(0.1, 0.25), (0.5, 0.55), (0.9, 0.25)],
    ],
    "arrow-right": [
        [(0.12, 0.5), (0.85, 0.5)],
        [(0.6, 0.28), (0.88, 0.5), (0.6, 0.72)],
    ],
    "star": [
        [(0.5, 0.1), (0.62, 0.4), (0.92, 0.4), (0.68, 0.6), (0.78, 0.9),
         (0.5, 0.72), (0.22, 0.9), (0.32, 0.6), (0.08, 0.4), (0.38, 0.4), (0.5, 0.1)],
    ],
    "person": [
        _arc(0.5, 0.3, 0.16, 0.16, 0, 360, 12),
        _arc(0.5, 0.95, 0.32, 0.42, 180, 360, 10),
    ],
    "cart": [
        [(0.08, 0.15), (0.22, 0.15), (0.35, 0.62), (0.8, 0.62), (0.9, 0.28), (0.3, 0.28)],
        _arc(0.42, 0.8, 0.07, 0.07, 0, 360, 8),
        _arc(0.74, 0.8, 0.07, 0.07, 0, 360, 8),
    ],
    "lock": [
        [(0.25, 0.45), (0.75, 0.45), (0.75, 0.9), (0.25, 0.9), (0.25, 0.45)],
        _arc(0.5, 0.45, 0.17, 0.25, 180, 360, 10),
        [(0.5, 0.6), (0.5, 0.75)],
    ],
    "bell": [
        _arc(0.5, 0.45, 0.24, 0.3, 180, 360, 10),
        [(0.26, 0.45), (0.26, 0.68), (0.16, 0.78), (0.84, 0.78), (0.74, 0.68), (0.74, 0.45)],
        _arc(0.5, 0.84, 0.07, 0.06, 0, 180, 6),
    ],
    "checkmark": [
        [(0.2, 0.55), (0.42, 0.78), (0.82, 0.25)],
    ],
    "cross": [
        [(0.25, 0.25), (0.75, 0.75)],
        [(0.75, 0.25), (0.25, 0.75)],
    ],
}


def icon_names() -> list:
    """The names of all available procedural icons."""
    return sorted(_ICON_STROKES)


def render_icon(
    name: str,
    size: int = 32,
    stack: RenderStack | None = None,
    foreground: float = 40.0,
    background: float | None = None,
) -> Image:
    """Render a named icon into a square tile under a rendering stack."""
    if name not in _ICON_STROKES:
        raise KeyError(f"unknown icon {name!r}; available: {icon_names()}")
    stack = stack or reference_stack()
    bg = stack.background if background is None else background
    dx = 0.0 if stack.hinting else stack.subpixel_x
    dy = 0.0 if stack.hinting else stack.subpixel_y
    cov = rasterize_strokes(
        _ICON_STROKES[name],
        size,
        half_width=max(0.6, size / 18.0),
        aa=stack.aa,
        dx=dx,
        dy=dy,
    )
    cov = np.clip(np.power(cov, stack.gamma) * stack.intensity, 0.0, 1.0)
    pixels = bg + (foreground - bg) * cov
    return Image(stack.apply_noise(pixels, salt=abs(hash(name)) % 997))


def natural_patch(seed: int, size: int = 32, stack: RenderStack | None = None) -> Image:
    """A band-limited random texture patch (CIFAR-10 stand-in).

    Built from three octaves of blurred noise plus a smooth gradient, which
    yields patches with coherent large-scale structure (like photographs)
    rather than white noise.
    """
    stack = stack or reference_stack()
    rng = np.random.default_rng(seed)
    field = np.zeros((size, size), dtype=DTYPE)
    for octave, sigma in ((0, 6.0), (1, 3.0), (2, 1.2)):
        noise = rng.normal(0.0, 1.0, (size, size))
        field += gaussian_blur(noise, sigma) * (2.0 ** -octave)
    gx, gy = rng.uniform(-1.0, 1.0, 2)
    ys, xs = np.meshgrid(np.linspace(-1, 1, size), np.linspace(-1, 1, size), indexing="ij")
    field += 0.4 * (gx * xs + gy * ys)
    field = (field - field.min()) / max(field.max() - field.min(), 1e-9)
    pixels = 30.0 + field * 200.0
    # Rendering-stack effects: gamma on normalized intensity plus dither.
    pixels = 255.0 * np.power(pixels / 255.0, stack.gamma)
    return Image(stack.apply_noise(pixels, salt=seed))


def icon_with_text(
    name_or_seed,
    text: str,
    size: int = 32,
    stack: RenderStack | None = None,
) -> Image:
    """An icon or natural patch with text injected into it.

    The paper trains the graphics model with "false data points with text
    in the images to ensure that unexpected text in the images will be
    detected" (§IV-A).  This helper builds exactly those negatives.
    """
    stack = stack or reference_stack()
    if isinstance(name_or_seed, str):
        base = render_icon(name_or_seed, size=size, stack=stack)
    else:
        base = natural_patch(int(name_or_seed), size=size, stack=stack)
    if not text:
        raise ValueError("icon_with_text requires non-empty text")
    char_size = max(8, size // max(len(text), 2))
    line = render_text_line(text, size=char_size, stack=stack, background=255.0)
    w = min(line.width, size - 2)
    h = min(line.height, size - 2)
    patch = line.crop(0, 0, w, h)
    x = (size - w) // 2
    y = (size - h) // 2
    # Multiply-blend so the text darkens whatever is underneath.
    region = base.pixels[y : y + h, x : x + w]
    base.pixels[y : y + h, x : x + w] = region * (patch.pixels / 255.0)
    return base


def icon_sheet(seed: int, count: int, size: int = 32) -> list:
    """A deterministic mixed list of icons and natural patches."""
    rng = np.random.default_rng(seed)
    names = icon_names()
    sheet = []
    for i in range(count):
        if rng.uniform() < 0.5:
            sheet.append(render_icon(names[int(rng.integers(len(names)))], size=size))
        else:
            sheet.append(natural_patch(int(rng.integers(1, 10_000_000)), size=size))
    return sheet


def rotate_icon_90(image: Image) -> Image:
    """Rotate an icon tile by 90 degrees (tamper-negative construction)."""
    return Image(np.rot90(image.pixels).copy())


def synthetic_logo(seed: int, width: int, height: int) -> Image:
    """A simple site "logo": colored bands plus an icon, for page headers."""
    rng = np.random.default_rng(seed)
    canvas = Image.blank(width, height, 255.0)
    band_h = max(2, height // 4)
    for i in range(3):
        shade = float(rng.uniform(60, 200))
        y = min(i * band_h, height - band_h)
        canvas.fill_rect(0, y, width, band_h, shade)
    icon = render_icon(icon_names()[seed % len(icon_names())], size=min(height, width))
    canvas.blend(icon, 0, 0, alpha=0.6)
    return canvas
