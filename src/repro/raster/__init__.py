"""Text/icon rasterization substrate (browser rendering-stack substitute).

The paper trains its verifiers on characters rendered by real browser
engines (Gecko/Blink/WebKit) across OSes and 231 fonts.  Offline, we
substitute a from-scratch rasterizer with the same *variation structure*:

* :mod:`repro.raster.glyphs` — vector stroke definitions for the 94
  printable ASCII characters and an anti-aliased stroke rasterizer.
* :mod:`repro.raster.fonts` — a parametric font model (serif/sans, weight,
  width, slant) and a deterministic registry of 231 synthetic fonts.
* :mod:`repro.raster.stacks` — rendering-stack variation (anti-aliasing,
  gamma, subpixel phase, hinting, intensity), with named stacks emulating
  browser/OS combinations.
* :mod:`repro.raster.text` — line/paragraph layout on top of glyph tiles.
* :mod:`repro.raster.icons` — procedural icons and natural-texture patches
  standing in for the Material-icon and CIFAR-10 image corpora.
"""

from repro.raster.glyphs import CHARSET, glyph_strokes, render_glyph
from repro.raster.fonts import FontFace, FontStyle, default_font, font_registry
from repro.raster.stacks import RenderStack, reference_stack, stack_registry, make_random_stack
from repro.raster.text import measure_text, render_text_line, char_advance
from repro.raster.icons import icon_names, natural_patch, render_icon, icon_with_text

__all__ = [
    "CHARSET",
    "glyph_strokes",
    "render_glyph",
    "FontFace",
    "FontStyle",
    "default_font",
    "font_registry",
    "RenderStack",
    "reference_stack",
    "stack_registry",
    "make_random_stack",
    "render_text_line",
    "measure_text",
    "char_advance",
    "icon_names",
    "render_icon",
    "natural_patch",
    "icon_with_text",
]
