"""Parametric font model and the 231-font registry.

The paper's text-verifier training set uses 231 unique fonts in three
styles (normal, bold, italic).  We synthesize a deterministic registry of
231 :class:`FontFace` objects spanning serif/sans-serif families with
varying weight, width and slant — the same axes real font catalogues vary
along (font characteristics per the paper's §V-B references).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

#: The three styles the paper trains with.
STYLES = ("normal", "bold", "italic")


@dataclass(frozen=True)
class FontFace:
    """A synthetic font: a point in (serif, weight, width, slant) space.

    Attributes:
        name: registry name, e.g. ``"sans-041"``.
        serif: whether strokes get serif terminals.
        weight: stroke-width multiplier (1.0 = regular, ~1.5 = bold).
        width: horizontal scale of glyphs (condensed < 1.0 < extended).
        slant: horizontal shear (positive leans right, italics ~0.18).
    """

    name: str
    serif: bool
    weight: float
    width: float
    slant: float

    def styled(self, style: str) -> "FontFace":
        """Apply one of the paper's three styles to this face."""
        if style == "normal":
            return self
        if style == "bold":
            return replace(self, name=f"{self.name}-bold", weight=self.weight * 1.45)
        if style == "italic":
            return replace(self, name=f"{self.name}-italic", slant=self.slant + 0.18)
        raise ValueError(f"unknown style {style!r}; expected one of {STYLES}")

    def render_params(self) -> dict:
        """Keyword arguments for :func:`repro.raster.glyphs.render_glyph`."""
        return {
            "weight": self.weight,
            "slant": self.slant,
            "width": self.width,
            "serif": self.serif,
        }


#: Alias used in type hints/docs — a (face, style) pair.
FontStyle = tuple


def default_font() -> FontFace:
    """The face used when a page does not specify one (a plain sans)."""
    return FontFace(name="sans-default", serif=False, weight=1.0, width=1.0, slant=0.0)


def _make_face(index: int, serif: bool, rng: np.random.Generator) -> FontFace:
    family = "serif" if serif else "sans"
    return FontFace(
        name=f"{family}-{index:03d}",
        serif=serif,
        weight=float(rng.uniform(0.8, 1.25)),
        width=float(rng.uniform(0.85, 1.15)),
        slant=float(rng.uniform(-0.03, 0.03)),
    )


def font_registry(count: int = 231, seed: int = 1987) -> list:
    """A deterministic list of ``count`` distinct synthetic font faces.

    Roughly half the registry is serif — enough of both types to train the
    per-type specialized models of Table III rows t4/t5.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    rng = np.random.default_rng(seed)
    faces = []
    for i in range(count):
        faces.append(_make_face(i, serif=(i % 2 == 1), rng=rng))
    return faces


def serif_fonts(count: int = 10, seed: int = 1987) -> list:
    """The first ``count`` serif faces from the registry (Table III t5)."""
    return [f for f in font_registry(seed=seed) if f.serif][:count]


def sans_serif_fonts(count: int = 10, seed: int = 1987) -> list:
    """The first ``count`` sans-serif faces from the registry (Table III t4)."""
    return [f for f in font_registry(seed=seed) if not f.serif][:count]
