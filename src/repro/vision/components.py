"""Connected components and rectangle geometry.

POF extraction (focus outlines, selection highlights) and differential
detection both reduce to "find the connected blobs in this boolean mask
and describe them as rectangles".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle in web coordinates ``(x, y, w, h)``."""

    x: int
    y: int
    w: int
    h: int

    def __post_init__(self) -> None:
        if self.w <= 0 or self.h <= 0:
            raise ValueError(f"Rect must have positive size, got {self.w}x{self.h}")

    @property
    def x2(self) -> int:
        return self.x + self.w

    @property
    def y2(self) -> int:
        return self.y + self.h

    @property
    def area(self) -> int:
        return self.w * self.h

    @property
    def center(self) -> tuple:
        return (self.x + self.w // 2, self.y + self.h // 2)

    def contains_point(self, px: int, py: int) -> bool:
        return self.x <= px < self.x2 and self.y <= py < self.y2

    def contains(self, other: "Rect") -> bool:
        return (
            self.x <= other.x
            and self.y <= other.y
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.x >= self.x2 or other.x2 <= self.x or other.y >= self.y2 or other.y2 <= self.y
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        x = max(self.x, other.x)
        y = max(self.y, other.y)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 <= x or y2 <= y:
            return None
        return Rect(x, y, x2 - x, y2 - y)

    def union(self, other: "Rect") -> "Rect":
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        x2 = max(self.x2, other.x2)
        y2 = max(self.y2, other.y2)
        return Rect(x, y, x2 - x, y2 - y)

    def translated(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.w, self.h)

    def expanded(self, margin: int) -> "Rect":
        """Grow on all sides by ``margin`` (clamped to stay positive-size)."""
        return Rect(self.x - margin, self.y - margin, self.w + 2 * margin, self.h + 2 * margin)

    def as_tuple(self) -> tuple:
        return (self.x, self.y, self.w, self.h)


def bounding_rect(mask) -> Rect | None:
    """Tight bounding rectangle of the True pixels in a boolean mask."""
    arr = np.asarray(mask, dtype=bool)
    ys, xs = np.nonzero(arr)
    if ys.size == 0:
        return None
    return Rect(int(xs.min()), int(ys.min()), int(xs.max() - xs.min() + 1), int(ys.max() - ys.min() + 1))


def connected_components(mask, connectivity: int = 8) -> list[Rect]:
    """Bounding rectangles of the connected True-blobs in ``mask``.

    Labelled with ``scipy.ndimage`` (the hot path of differential
    detection and POF extraction); rectangles come back sorted by reading
    order (top-to-bottom, then left-to-right).
    """
    from scipy import ndimage

    arr = np.asarray(mask, dtype=bool)
    if connectivity not in (4, 8):
        raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")
    structure = np.ones((3, 3), dtype=bool) if connectivity == 8 else None
    labels, count = ndimage.label(arr, structure=structure)
    rects: list[Rect] = []
    for sl in ndimage.find_objects(labels, max_label=count):
        if sl is None:
            continue
        ys, xs = sl
        rects.append(Rect(int(xs.start), int(ys.start), int(xs.stop - xs.start), int(ys.stop - ys.start)))
    rects.sort(key=lambda r: (r.y, r.x))
    return rects


def find_rectangles(
    mask,
    min_width: int = 4,
    min_height: int = 4,
    max_fill: float = 0.6,
    min_border_cover: float = 0.75,
) -> list[Rect]:
    """Find hollow rectangular outlines in a boolean mask.

    A focus outline is a thin rectangle of accent-colored pixels around a
    field.  A component qualifies when its bounding box is mostly *empty*
    inside (``max_fill``) while its border rows/columns are mostly covered
    (``min_border_cover``).
    """
    arr = np.asarray(mask, dtype=bool)
    outlines = []
    for rect in connected_components(arr):
        if rect.w < min_width or rect.h < min_height:
            continue
        sub = arr[rect.y : rect.y + rect.h, rect.x : rect.x + rect.w]
        fill = sub.mean()
        if fill > max_fill:
            continue
        border = np.concatenate([sub[0, :], sub[-1, :], sub[:, 0], sub[:, -1]])
        if border.mean() >= min_border_cover:
            outlines.append(rect)
    return outlines
