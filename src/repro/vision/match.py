"""Template matching and viewport localisation.

vWitness determines the browser's current view port by sliding the sampled
frame over the VSPEC's "long" expected appearance and picking the vertical
offset with the best match (paper §III-C1).  Scrollable elements reuse the
same machinery with a horizontal or vertical axis (nested VSPECs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vision.image import as_array


@dataclass(frozen=True)
class MatchResult:
    """Outcome of a template search.

    Attributes:
        offset: best offset along the searched axis (pixels).
        score: normalized correlation score in [-1, 1]; 1.0 is a perfect
            match up to affine intensity changes.
    """

    offset: int
    score: float


def normalized_cross_correlation(patch_a, patch_b) -> float:
    """Zero-normalized cross-correlation of two same-shape patches.

    Returns 1.0 for patches that are identical up to brightness/contrast,
    and values near 0 for unrelated content.  Two constant patches compare
    by their mean intensity instead (NCC is undefined at zero variance).
    """
    a = as_array(patch_a).ravel()
    b = as_array(patch_b).ravel()
    if a.shape != b.shape:
        raise ValueError(f"NCC requires equal shapes, got {a.shape} vs {b.shape}")
    a = a - a.mean()
    b = b - b.mean()
    denom = np.sqrt((a @ a) * (b @ b))
    if denom < 1e-12:
        # Both (or one) patches are constant: fall back to intensity match.
        return 1.0 if np.allclose(patch_a, patch_b, atol=2.0) else 0.0
    return float((a @ b) / denom)


def best_vertical_offset(frame, long_image, stride: int = 1) -> MatchResult:
    """Locate ``frame`` inside ``long_image`` by vertical offset.

    ``long_image`` must have the same width as ``frame`` and at least its
    height (the VSPEC expected appearance is rendered at the client width,
    at the page's full height).  Returns the offset of the best NCC match.

    A coarse pass on ``stride``-fold downsampled pixels (2-D, so
    horizontal structure still discriminates on vertically periodic
    layouts) narrows the candidate offsets, then full-resolution NCC
    ranks the survivors — the same coarse-to-fine strategy OpenCV users
    reach for with ``matchTemplate`` on large pages.
    """
    f = as_array(frame)
    long_arr = as_array(long_image)
    if f.shape[1] != long_arr.shape[1]:
        raise ValueError(
            f"frame width {f.shape[1]} != expected appearance width {long_arr.shape[1]}"
        )
    if f.shape[0] > long_arr.shape[0]:
        raise ValueError(
            f"frame height {f.shape[0]} exceeds expected appearance height {long_arr.shape[0]}"
        )
    max_off = long_arr.shape[0] - f.shape[0]
    if max_off == 0:
        return MatchResult(0, normalized_cross_correlation(f, long_arr))

    # Coarse pass: NCC on pixels downsampled ``stride``-fold in *both*
    # axes.  Row-mean profiles are not enough here: they are blind to
    # horizontal structure, and on pages with near-periodic vertical
    # layout (tall forms: label + box + spacing repeats every ~60px)
    # profile aliasing can rank the true offset below a dozen impostors,
    # sending the fine pass to the wrong neighbourhood entirely.  The
    # final offset (the page bottom) is always included — it is the one
    # position striding can otherwise skip.
    n = f.shape[0]
    f_ds = f[::stride, ::stride]
    fd = f_ds - f_ds.mean()
    fvar = float((fd * fd).sum())
    candidates = []
    offsets = list(range(0, max_off + 1, stride))
    if offsets[-1] != max_off:
        offsets.append(max_off)
    for off in offsets:
        seg = long_arr[off : off + n : stride, ::stride]
        sd = seg - seg.mean()
        svar = float((sd * sd).sum())
        if fvar < 1e-12 and svar < 1e-12:
            # Two blank strips: match them by mean intensity instead.
            score = 1.0 if abs(float(f_ds.mean()) - float(seg.mean())) < 2.0 else 0.0
        elif fvar < 1e-12 or svar < 1e-12:
            score = 0.0
        else:
            score = float((fd * sd).sum() / np.sqrt(fvar * svar))
        candidates.append((score, off))
    candidates.sort(reverse=True)

    # Fine pass: full NCC on the top coarse candidates (and stride neighbours).
    seen: set[int] = set()
    best = MatchResult(0, -2.0)
    for _score, off in candidates[:12]:
        for fine in range(max(0, off - stride), min(max_off, off + stride) + 1):
            if fine in seen:
                continue
            seen.add(fine)
            score = normalized_cross_correlation(f, long_arr[fine : fine + n])
            if score > best.score:
                best = MatchResult(fine, score)
    return best


def best_horizontal_offset(frame, wide_image, stride: int = 1) -> MatchResult:
    """Horizontal analogue of :func:`best_vertical_offset` (scrollable rows)."""
    f = as_array(frame)
    wide = as_array(wide_image)
    result = best_vertical_offset(f.T, wide.T, stride=stride)
    return MatchResult(result.offset, result.score)


def match_template(image, template, threshold: float = 0.95) -> list[tuple[int, int, float]]:
    """Find all placements of ``template`` in ``image`` scoring >= threshold.

    Returns ``(x, y, score)`` tuples sorted by descending score, with greedy
    non-maximum suppression so overlapping detections collapse to one.
    Used by POF extraction to find carets and focus-outline corners.
    """
    img = as_array(image)
    tmp = as_array(template)
    th, tw = tmp.shape
    if th > img.shape[0] or tw > img.shape[1]:
        return []
    windows = np.lib.stride_tricks.sliding_window_view(img, (th, tw))
    wh, ww = windows.shape[:2]
    flat = windows.reshape(wh * ww, th * tw)
    t = tmp.ravel() - tmp.mean()
    t_norm = np.sqrt(t @ t)
    means = flat.mean(axis=1, keepdims=True)
    centered = flat - means
    norms = np.sqrt(np.einsum("ij,ij->i", centered, centered))
    if t_norm < 1e-12:
        scores = np.where(norms < 1e-12, 1.0, 0.0)
    else:
        with np.errstate(invalid="ignore", divide="ignore"):
            scores = (centered @ t) / (norms * t_norm)
        scores = np.nan_to_num(scores, nan=0.0)
    hits = np.flatnonzero(scores >= threshold)
    ranked = sorted(((float(scores[i]), int(i % ww), int(i // ww)) for i in hits), reverse=True)
    kept: list[tuple[int, int, float]] = []
    for score, x, y in ranked:
        if any(abs(x - kx) < tw and abs(y - ky) < th for kx, ky, _s in kept):
            continue
        kept.append((x, y, score))
    return kept
