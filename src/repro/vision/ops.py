"""Low-level raster operations: convolution, blurs, morphology, resampling.

These are the numpy stand-ins for the OpenCV filtering routines the
vWitness prototype uses.  They are deliberately simple — correctness and
predictability matter more here than raw throughput, and the sizes involved
(32x32 element tiles up to ~1280x4000 long screenshots) stay comfortable.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.vision.image import DTYPE, as_array


def convolve2d(image, kernel, pad_value: float = 0.0) -> np.ndarray:
    """Same-size 2-D correlation of ``image`` with ``kernel``.

    The border is padded with ``pad_value``.  (This is correlation rather
    than true convolution — the kernel is not flipped — matching the
    convention of CNN libraries and OpenCV's ``filter2D``.)
    """
    img = as_array(image)
    ker = np.asarray(kernel, dtype=DTYPE)
    if ker.ndim != 2:
        raise ValueError(f"kernel must be 2-D, got shape {ker.shape}")
    kh, kw = ker.shape
    ph, pw = kh // 2, kw // 2
    padded = np.pad(img, ((ph, kh - 1 - ph), (pw, kw - 1 - pw)), constant_values=pad_value)
    # Build a strided view of all kh x kw windows, then contract with the kernel.
    windows = np.lib.stride_tricks.sliding_window_view(padded, (kh, kw))
    return np.einsum("ijkl,kl->ij", windows, ker)


def gaussian_kernel(sigma: float, radius: int | None = None) -> np.ndarray:
    """A normalized 2-D Gaussian kernel."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if radius is None:
        radius = max(1, int(np.ceil(2.5 * sigma)))
    ax = np.arange(-radius, radius + 1, dtype=DTYPE)
    g1 = np.exp(-(ax**2) / (2.0 * sigma**2))
    ker = np.outer(g1, g1)
    return ker / ker.sum()


def gaussian_blur(image, sigma: float) -> np.ndarray:
    """Gaussian blur with edge replication (separable, for speed)."""
    img = as_array(image)
    if sigma <= 0:
        return img.copy()
    radius = max(1, int(np.ceil(2.5 * sigma)))
    ax = np.arange(-radius, radius + 1, dtype=DTYPE)
    g = np.exp(-(ax**2) / (2.0 * sigma**2))
    g /= g.sum()
    padded = np.pad(img, ((radius, radius), (0, 0)), mode="edge")
    rows = np.lib.stride_tricks.sliding_window_view(padded, 2 * radius + 1, axis=0)
    out = rows @ g
    padded = np.pad(out, ((0, 0), (radius, radius)), mode="edge")
    cols = np.lib.stride_tricks.sliding_window_view(padded, 2 * radius + 1, axis=1)
    return cols @ g


def box_blur(image, radius: int) -> np.ndarray:
    """Mean filter over a (2r+1)^2 window, edge-replicated."""
    img = as_array(image)
    if radius <= 0:
        return img.copy()
    size = 2 * radius + 1
    padded = np.pad(img, radius, mode="edge")
    windows = np.lib.stride_tricks.sliding_window_view(padded, (size, size))
    return windows.mean(axis=(2, 3))


def sobel_edges(image) -> np.ndarray:
    """Gradient magnitude via Sobel operators (used for POF outline cues)."""
    gx = convolve2d(image, [[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]])
    gy = convolve2d(image, [[-1, -2, -1], [0, 0, 0], [1, 2, 1]])
    return np.hypot(gx, gy)


def erode(mask, radius: int = 1) -> np.ndarray:
    """Binary erosion with a square structuring element.

    Implemented as two separable passes of ``scipy.ndimage`` minimum
    filters (a square window factors into a horizontal and a vertical
    pass), which keeps per-frame differential detection cheap.
    """
    from scipy import ndimage

    arr = np.asarray(mask, dtype=bool)
    if radius <= 0:
        return arr.copy()
    size = 2 * radius + 1
    out = ndimage.minimum_filter1d(arr.view(np.uint8), size, axis=0, mode="constant", cval=1)
    out = ndimage.minimum_filter1d(out, size, axis=1, mode="constant", cval=1)
    return out.astype(bool)


def dilate(mask, radius: int = 1) -> np.ndarray:
    """Binary dilation with a square structuring element (separable)."""
    from scipy import ndimage

    arr = np.asarray(mask, dtype=bool)
    if radius <= 0:
        return arr.copy()
    size = 2 * radius + 1
    out = ndimage.maximum_filter1d(arr.view(np.uint8), size, axis=0, mode="constant", cval=0)
    out = ndimage.maximum_filter1d(out, size, axis=1, mode="constant", cval=0)
    return out.astype(bool)


def max_pool(image, factor: int) -> np.ndarray:
    """Downsample by taking the max of each ``factor`` x ``factor`` block."""
    img = as_array(image)
    if factor <= 0:
        raise ValueError(f"pooling factor must be positive, got {factor}")
    h = (img.shape[0] // factor) * factor
    w = (img.shape[1] // factor) * factor
    if h == 0 or w == 0:
        raise ValueError(f"image {img.shape} too small for pooling factor {factor}")
    blocks = img[:h, :w].reshape(h // factor, factor, w // factor, factor)
    return blocks.max(axis=(1, 3))


def resize_nearest(image, new_height: int, new_width: int) -> np.ndarray:
    """Nearest-neighbour resample (dynamically-scaled element support)."""
    img = as_array(image)
    if new_height <= 0 or new_width <= 0:
        raise ValueError(f"target size must be positive, got {new_height}x{new_width}")
    rows = np.minimum((np.arange(new_height) * img.shape[0] / new_height).astype(int), img.shape[0] - 1)
    cols = np.minimum((np.arange(new_width) * img.shape[1] / new_width).astype(int), img.shape[1] - 1)
    return img[np.ix_(rows, cols)]


#: Cached bilinear resample tables keyed by ``(src_h, src_w, dst_h,
#: dst_w)``: flat gather indices for the four neighbour taps plus the
#: interpolation weights.  Glyph extraction resizes the same handful of
#: geometries every frame, so the tables are computed once; the LRU
#: bound keeps pathological callers from accumulating tables.
_RESIZE_TABLES: "OrderedDict" = OrderedDict()
_RESIZE_TABLES_MAX = 32


def _resize_tables(src_h: int, src_w: int, new_height: int, new_width: int) -> tuple:
    key = (src_h, src_w, new_height, new_width)
    tables = _RESIZE_TABLES.get(key)
    if tables is not None:
        _RESIZE_TABLES.move_to_end(key)
        return tables
    ys = (np.arange(new_height) + 0.5) * src_h / new_height - 0.5
    xs = (np.arange(new_width) + 0.5) * src_w / new_width - 0.5
    ys = np.clip(ys, 0, src_h - 1)
    xs = np.clip(xs, 0, src_w - 1)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, src_h - 1)
    x1 = np.minimum(x0 + 1, src_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    tables = (
        y0[:, None] * src_w + x0[None, :],
        y0[:, None] * src_w + x1[None, :],
        y1[:, None] * src_w + x0[None, :],
        y1[:, None] * src_w + x1[None, :],
        wx,
        1.0 - wx,
        wy,
        1.0 - wy,
    )
    _RESIZE_TABLES[key] = tables
    if len(_RESIZE_TABLES) > _RESIZE_TABLES_MAX:
        _RESIZE_TABLES.popitem(last=False)
    return tables


def resize_bilinear(image, new_height: int, new_width: int, out=None, scratch=None) -> np.ndarray:
    """Bilinear resample; smoother than nearest, used when shrinking glyph tiles.

    Zero-copy form: with ``out=`` the result is written in place (any
    dtype — the cast happens on the final write), and with ``scratch=``
    (a ``(4, new_height, new_width)`` float64 array, e.g. a pooled plan
    buffer) no intermediary is allocated either.  The elementwise math is
    identical to the allocating form — same taps, same weights, same
    operation order in float64 — so results are bit-identical.
    """
    img = as_array(image)
    if new_height <= 0 or new_width <= 0:
        raise ValueError(f"target size must be positive, got {new_height}x{new_width}")
    src_h, src_w = img.shape
    i00, i01, i10, i11, wx, wx1m, wy, wy1m = _resize_tables(src_h, src_w, new_height, new_width)
    flat = img.reshape(-1)
    if scratch is None:
        # witness-lint: allow[hot-alloc] -- compat path: caller gave no scratch buffer
        scratch = np.empty((4, new_height, new_width), dtype=DTYPE)
    elif scratch.shape != (4, new_height, new_width) or scratch.dtype != DTYPE:
        raise ValueError(
            f"scratch must be float64 (4, {new_height}, {new_width}), "
            f"got {scratch.dtype} {scratch.shape}"
        )
    t00, t01, t10, t11 = scratch[0], scratch[1], scratch[2], scratch[3]
    np.take(flat, i00, out=t00)
    np.take(flat, i01, out=t01)
    np.take(flat, i10, out=t10)
    np.take(flat, i11, out=t11)
    np.multiply(t00, wx1m, out=t00)
    np.multiply(t01, wx, out=t01)
    np.add(t00, t01, out=t00)  # top row pair
    np.multiply(t10, wx1m, out=t10)
    np.multiply(t11, wx, out=t11)
    np.add(t10, t11, out=t10)  # bottom row pair
    np.multiply(t00, wy1m, out=t00)
    np.multiply(t10, wy, out=t10)
    np.add(t00, t10, out=t00)
    if out is None:
        # witness-lint: allow[hot-alloc] -- compat path: no out= target, result must be fresh
        return t00.copy()
    out[...] = t00
    return out
