"""Frame differencing for differential detection (paper §IV-A).

Because vWitness screenshots frequently, unchanged UI does not need to be
re-validated: only the regions that changed between two consecutive frames
are passed to the CNN verifiers.  This module computes those regions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vision.components import Rect, connected_components
from repro.vision.image import as_array
from repro.vision.ops import dilate


@dataclass(frozen=True)
class DiffRegion:
    """A changed rectangle plus the magnitude of the change inside it."""

    rect: Rect
    max_delta: float
    changed_pixels: int


def frame_difference(frame_a, frame_b, threshold: float = 4.0) -> np.ndarray:
    """Boolean mask of pixels whose intensity changed by more than ``threshold``.

    The threshold absorbs sub-quantization noise (e.g. blending rounding)
    without hiding real content changes, which move intensities by tens of
    levels even under anti-aliasing.
    """
    a = as_array(frame_a)
    b = as_array(frame_b)
    if a.shape != b.shape:
        raise ValueError(f"frames must share a shape, got {a.shape} vs {b.shape}")
    return np.abs(a - b) > threshold


def changed_regions(
    frame_a,
    frame_b,
    threshold: float = 4.0,
    merge_radius: int = 3,
    min_pixels: int = 1,
) -> list[DiffRegion]:
    """Rectangles covering everything that changed between two frames.

    Changed pixels are dilated by ``merge_radius`` so that nearby changes
    (e.g. the glyphs of a word being typed) merge into one region, then
    connected components give the bounding rectangles.  Returns an empty
    list when the frames are effectively identical.
    """
    mask = frame_difference(frame_a, frame_b, threshold)
    if not mask.any():
        return []
    if merge_radius > 0:
        mask = dilate(mask, merge_radius)
    delta = np.abs(as_array(frame_a) - as_array(frame_b))
    regions = []
    for rect in connected_components(mask):
        sub_delta = delta[rect.y : rect.y + rect.h, rect.x : rect.x + rect.w]
        sub_mask = mask[rect.y : rect.y + rect.h, rect.x : rect.x + rect.w]
        changed = int(np.count_nonzero(sub_mask & (sub_delta > threshold)))
        if changed >= min_pixels:
            regions.append(
                DiffRegion(rect=rect, max_delta=float(sub_delta.max()), changed_pixels=changed)
            )
    return regions
