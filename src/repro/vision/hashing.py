"""Digests and perceptual hashes over display regions.

Cryptographic digests key the validation caches (paper §IV-A: "the key is a
cryptographic digest of the corresponding display region").  Perceptual
hashes implement the image-hash *baseline* validator [21] that vWitness's
CNN approach is compared against.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.vision.image import DTYPE, as_array, to_uint8
from repro.vision.ops import resize_bilinear


def region_digest(image) -> str:
    """SHA-256 digest of a display region (cache key).

    The region is quantized to uint8 first so that float representation
    detail does not leak into the key: two regions that would display
    identically hash identically.
    """
    arr = to_uint8(image)
    h = hashlib.sha256()
    h.update(str(arr.shape).encode("ascii"))
    h.update(arr.tobytes())
    return h.hexdigest()


def average_hash(image, hash_size: int = 8) -> int:
    """aHash: threshold a downsampled tile against its mean intensity."""
    small = resize_bilinear(as_array(image), hash_size, hash_size)
    bits = (small > small.mean()).ravel()
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value


def difference_hash(image, hash_size: int = 8) -> int:
    """dHash: horizontal gradient signs of a downsampled tile."""
    small = resize_bilinear(as_array(image), hash_size, hash_size + 1)
    bits = (small[:, 1:] > small[:, :-1]).ravel()
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value


def hamming_distance(hash_a: int, hash_b: int) -> int:
    """Number of differing bits between two perceptual hashes."""
    return int(bin(hash_a ^ hash_b).count("1"))


def perceptual_match(image_a, image_b, hash_size: int = 8, max_distance: int = 5) -> bool:
    """The image-hash baseline's match rule: small Hamming distance on dHash."""
    da = difference_hash(image_a, hash_size)
    db = difference_hash(image_b, hash_size)
    return hamming_distance(da, db) <= max_distance


def content_fingerprint(image, block: int = 16) -> np.ndarray:
    """Blockwise mean fingerprint, used by tests to assert gross similarity."""
    arr = as_array(image)
    h = (arr.shape[0] // block) * block
    w = (arr.shape[1] // block) * block
    if h == 0 or w == 0:
        return np.asarray([[arr.mean()]], dtype=DTYPE)
    blocks = arr[:h, :w].reshape(h // block, block, w // block, block)
    return blocks.mean(axis=(1, 3))
