"""Classical computer-vision primitives used by vWitness (OpenCV substitute).

The paper's prototype uses OpenCV for frame-buffer processing: cropping
element regions, locating the browser viewport inside the expected "long"
page appearance, differencing consecutive screenshots, and extracting
point-of-focus (POF) cues from pixels.  This package provides exactly those
primitives on top of numpy.

All images in this package are 2-D ``float64`` numpy arrays in ``[0, 255]``
(grayscale).  The :class:`~repro.vision.image.Image` wrapper adds bounds-
checked crop/paste and convenience constructors but plain arrays are
accepted everywhere.
"""

from repro.vision.image import Image, as_array, to_uint8
from repro.vision.ops import (
    box_blur,
    convolve2d,
    dilate,
    erode,
    gaussian_blur,
    gaussian_kernel,
    max_pool,
    resize_nearest,
    sobel_edges,
)
from repro.vision.match import (
    MatchResult,
    best_vertical_offset,
    match_template,
    normalized_cross_correlation,
)
from repro.vision.diff import DiffRegion, changed_regions, frame_difference
from repro.vision.components import Rect, bounding_rect, connected_components, find_rectangles
from repro.vision.hashing import average_hash, difference_hash, hamming_distance, region_digest

__all__ = [
    "Image",
    "as_array",
    "to_uint8",
    "convolve2d",
    "gaussian_kernel",
    "gaussian_blur",
    "box_blur",
    "sobel_edges",
    "erode",
    "dilate",
    "max_pool",
    "resize_nearest",
    "MatchResult",
    "normalized_cross_correlation",
    "match_template",
    "best_vertical_offset",
    "frame_difference",
    "changed_regions",
    "DiffRegion",
    "Rect",
    "connected_components",
    "bounding_rect",
    "find_rectangles",
    "average_hash",
    "difference_hash",
    "hamming_distance",
    "region_digest",
]
