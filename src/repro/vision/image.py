"""Grayscale image container with bounds-checked region operations.

vWitness manipulates many rectangular regions (element bounding boxes,
viewport windows, diff regions).  :class:`Image` keeps those operations
explicit and validated so that a malformed VSPEC rectangle fails loudly
instead of silently wrapping around numpy indexing.
"""

from __future__ import annotations

import numpy as np

#: Canonical dtype for all vision processing.  Display rasters are
#: float64 by design (rendering accumulates sub-pixel coverage and blur
#: in double); the float32 discipline of the inference path begins at
#: the verifier normalization boundary, which casts model inputs once.
# witness-lint: allow[dtype-float64] -- display-raster canon; model inputs cast to float32 at the verifier boundary
DTYPE = np.float64

#: Maximum representable intensity.  Images are float arrays in [0, WHITE].
WHITE = 255.0


def as_array(image) -> np.ndarray:
    """Return the underlying 2-D float array of ``image``.

    Accepts :class:`Image`, 2-D arrays and nested lists.  Raises
    ``ValueError`` for anything that is not a 2-D raster.
    """
    if isinstance(image, Image):
        return image.pixels
    arr = np.asarray(image, dtype=DTYPE)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D grayscale raster, got shape {arr.shape}")
    return arr


def to_uint8(image) -> np.ndarray:
    """Clip to [0, 255] and convert to ``uint8`` (for digests and export)."""
    arr = as_array(image)
    return np.clip(np.rint(arr), 0, 255).astype(np.uint8)


class Image:
    """A grayscale raster with explicit, validated geometry.

    Coordinates follow the web convention used throughout the paper's
    VSPECs: ``x`` grows rightwards (columns), ``y`` grows downwards (rows),
    and rectangles are ``(x, y, width, height)``.
    """

    __slots__ = ("pixels",)

    def __init__(self, pixels) -> None:
        arr = np.asarray(pixels, dtype=DTYPE)
        if arr.ndim != 2:
            raise ValueError(f"Image requires a 2-D array, got shape {arr.shape}")
        self.pixels = arr

    # -- constructors -----------------------------------------------------

    @classmethod
    def blank(cls, width: int, height: int, color: float = WHITE) -> "Image":
        """A solid-color canvas of ``width`` x ``height``."""
        if width <= 0 or height <= 0:
            raise ValueError(f"blank image needs positive dims, got {width}x{height}")
        return cls(np.full((height, width), float(color), dtype=DTYPE))

    @classmethod
    def from_bitmap(cls, bitmap, on: float = 0.0, off: float = WHITE) -> "Image":
        """Build an image from a 0/1 bitmap (1 = ink)."""
        mask = np.asarray(bitmap, dtype=bool)
        return cls(np.where(mask, float(on), float(off)))

    # -- geometry ----------------------------------------------------------

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def shape(self) -> tuple:
        return self.pixels.shape

    def copy(self) -> "Image":
        return Image(self.pixels.copy())

    def _check_rect(self, x: int, y: int, w: int, h: int) -> None:
        if w <= 0 or h <= 0:
            raise ValueError(f"rectangle must have positive size, got {w}x{h}")
        if x < 0 or y < 0 or x + w > self.width or y + h > self.height:
            raise ValueError(
                f"rectangle ({x},{y},{w},{h}) escapes image {self.width}x{self.height}"
            )

    def crop(self, x: int, y: int, w: int, h: int) -> "Image":
        """Return a copy of the region ``(x, y, w, h)``."""
        self._check_rect(x, y, w, h)
        return Image(self.pixels[y : y + h, x : x + w].copy())

    def crop_clipped(self, x: int, y: int, w: int, h: int, fill: float = WHITE) -> "Image":
        """Crop, padding out-of-bounds areas with ``fill`` instead of raising."""
        out = np.full((h, w), float(fill), dtype=DTYPE)
        sx0, sy0 = max(x, 0), max(y, 0)
        sx1, sy1 = min(x + w, self.width), min(y + h, self.height)
        if sx1 > sx0 and sy1 > sy0:
            out[sy0 - y : sy1 - y, sx0 - x : sx1 - x] = self.pixels[sy0:sy1, sx0:sx1]
        return Image(out)

    def paste(self, other, x: int, y: int) -> None:
        """Overwrite the region at ``(x, y)`` with ``other`` (in place)."""
        src = as_array(other)
        h, w = src.shape
        self._check_rect(x, y, w, h)
        self.pixels[y : y + h, x : x + w] = src

    def blend(self, other, x: int, y: int, alpha: float) -> None:
        """Alpha-blend ``other`` onto the region at ``(x, y)`` (in place)."""
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0,1], got {alpha}")
        src = as_array(other)
        h, w = src.shape
        self._check_rect(x, y, w, h)
        dst = self.pixels[y : y + h, x : x + w]
        self.pixels[y : y + h, x : x + w] = (1.0 - alpha) * dst + alpha * src

    def fill_rect(self, x: int, y: int, w: int, h: int, color: float) -> None:
        """Fill a rectangle with a solid color (in place)."""
        self._check_rect(x, y, w, h)
        self.pixels[y : y + h, x : x + w] = float(color)

    def draw_border(self, x: int, y: int, w: int, h: int, color: float, thickness: int = 1) -> None:
        """Draw a rectangular border just inside ``(x, y, w, h)`` (in place)."""
        self._check_rect(x, y, w, h)
        t = min(thickness, w // 2 if w // 2 else 1, h // 2 if h // 2 else 1)
        t = max(t, 1)
        self.pixels[y : y + t, x : x + w] = color
        self.pixels[y + h - t : y + h, x : x + w] = color
        self.pixels[y : y + h, x : x + t] = color
        self.pixels[y : y + h, x + w - t : x + w] = color

    def draw_vline(self, x: int, y: int, h: int, color: float, thickness: int = 1) -> None:
        """Draw a vertical line (used for carets)."""
        self.fill_rect(x, y, thickness, h, color)

    def draw_hline(self, x: int, y: int, w: int, color: float, thickness: int = 1) -> None:
        """Draw a horizontal line (used for underlines/separators)."""
        self.fill_rect(x, y, w, thickness, color)

    def clip(self) -> "Image":
        """Return a copy with intensities clipped to [0, 255]."""
        return Image(np.clip(self.pixels, 0.0, WHITE))

    # -- comparisons ---------------------------------------------------------

    def equals(self, other, tolerance: float = 0.0) -> bool:
        """Pixel-exact (or tolerance-bounded) equality."""
        arr = as_array(other)
        if arr.shape != self.pixels.shape:
            return False
        return bool(np.max(np.abs(arr - self.pixels), initial=0.0) <= tolerance)

    def mean_abs_diff(self, other) -> float:
        """Mean absolute per-pixel difference with a same-shape image."""
        arr = as_array(other)
        if arr.shape != self.pixels.shape:
            raise ValueError(f"shape mismatch: {arr.shape} vs {self.pixels.shape}")
        return float(np.mean(np.abs(arr - self.pixels)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Image({self.width}x{self.height}, mean={self.pixels.mean():.1f})"
