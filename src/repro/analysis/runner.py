"""The orchestration layer: resolve once, run every checker, suppress.

:func:`run_analysis` is the one entry point tests and the CLI share.
Order of operations:

1. resolve the target tree (:class:`~repro.analysis.resolve.Project`);
2. run each checker over each module *in its configured scope*;
3. drop findings covered by an ``allow[rule]`` pragma on their line
   (each pragma records whether it was used, so stale pragmas are
   reportable);
4. split what remains against the baseline (grandfathered vs new).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.baseline import Baseline
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.core import AnalysisConfig, in_scope
from repro.analysis.resolve import Project


def _scope_for(checker, config: AnalysisConfig) -> tuple:
    return {
        "dtype": config.dtype_scope,
        "determinism": config.determinism_scope,
        "locks": config.lock_scope,
        "concurrency": config.conc_scope,
        "escape": config.escape_scope,
        "hotpath": config.hotpath_scope,
        "lifecycle": config.lifecycle_scope,
    }.get(checker.name, ("repro",))


@dataclass
class AnalysisResult:
    """Everything one run produced, pre-split for reporting."""

    findings: list  # new, non-suppressed, non-baselined (the failures)
    baselined: list  # matched a baseline entry
    suppressed: list  # (finding, pragma) pairs silenced inline
    stale_baseline: list  # baseline entries nothing matched
    modules_scanned: int = 0
    project: object = None

    @property
    def clean(self) -> bool:
        return not self.findings


def run_analysis(
    paths,
    config: AnalysisConfig | None = None,
    baseline: Baseline | None = None,
    checkers=None,
    only=None,
) -> AnalysisResult:
    """Run the full suite over ``paths`` (directories or files).

    ``only`` restricts the run to an iterable of rule ids: checkers
    owning none of them are skipped entirely (cheap pre-commit runs),
    and a multi-rule checker's other findings are dropped post-check.
    Unknown rule ids raise ``ValueError`` so a typo fails loud.
    """
    config = config or AnalysisConfig()
    baseline = baseline or Baseline.empty()
    project = Project.from_paths(paths)
    selected = list(checkers or ALL_CHECKERS)
    only_rules = set(only) if only else None
    if only_rules is not None:
        known = {rid for cls in selected for rid in (r.id for r in cls.rules)}
        unknown = only_rules - known
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        selected = [
            cls for cls in selected if only_rules & {r.id for r in cls.rules}
        ]
    checker_instances = [cls(config) for cls in selected]

    raw = []
    for module in project.modules:
        # The analyzer does not lint itself: its fixtures-of-bad-code in
        # docstrings and its rule tables would be a hall of mirrors.
        if module.module == "repro.analysis" or module.module.startswith("repro.analysis."):
            continue
        for checker in checker_instances:
            if not in_scope(module.module, _scope_for(checker, config)):
                continue
            found = checker.check(module, project)
            if only_rules is not None:
                found = [f for f in found if f.rule in only_rules]
            raw.extend(found)

    # Inline pragma suppression: a pragma silences findings of its rules
    # on its line (and records that it fired).
    pragma_index = {}
    for module in project.modules:
        for pragma in module.pragmas:
            for rule in pragma.rules:
                pragma_index[(module.path, pragma.line, rule)] = pragma

    findings, suppressed = [], []
    for finding in sorted(raw, key=lambda f: f.sort_key()):
        pragma = pragma_index.get((finding.path, finding.line, finding.rule))
        if pragma is not None:
            pragma.used = True
            suppressed.append((finding, pragma))
        else:
            findings.append(finding)

    new, grandfathered = baseline.split(findings)
    return AnalysisResult(
        findings=new,
        baselined=grandfathered,
        suppressed=suppressed,
        stale_baseline=baseline.stale(),
        modules_scanned=len(project.modules),
        project=project,
    )
