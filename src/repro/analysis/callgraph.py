"""Interprocedural call graph with lock-acquisition and blocking summaries.

The second shared pass (layered on :mod:`repro.analysis.resolve`): where
``resolve`` answers *what is this name*, this module answers *what does
calling this function do to the concurrency state*.  One build per
:class:`~repro.analysis.resolve.Project` produces:

* a conservative **call graph** over the scanned tree — self-methods,
  module functions, imported aliases, plus one level of attribute-type
  inference (``self.gate = AdmissionGate(...)`` in any method types
  ``self.gate.acquire(...)``; dict-of-constructors values type
  ``self._batchers[kind].submit(...)``);
* per-function **lock summaries** — which locks a function may acquire
  (directly via ``with self._lock:`` / module-global ``with _TWIN_LOCK:``
  nesting, or transitively through any resolvable call) and which
  blocking operations it may reach (``Condition.wait``, typed
  ``Thread.join``/``Queue`` ops, model forwards, ``time.sleep``),
  propagated to a fixpoint;
* the project-wide **lock-order graph**: an edge ``A -> B`` for every
  site that acquires ``B`` while ``A`` is held, including edges realized
  only through calls, each edge carrying its source location and call
  chain.  ``AnalysisConfig.declared_lock_order`` joins the graph as the
  audited, hand-declared ordering (the CONTRIBUTING lock ledger), so
  orderings the resolver cannot see — lock objects aliased across
  classes, calls through stored callables — are part of the model
  instead of invisible to it.

The model is deliberately conservative in both directions and says so:
calls through untyped callables resolve to nothing (no edge — the
runtime sanitizer twin in :mod:`repro.analysis.sanitizer` exists to
catch what static resolution misses), and an edge means "this ordering
can occur", not "these two locks are ever contended".

Lock node ids are stable strings shared with the sanitizer:
``module.Class.attr`` for instance locks, ``module.NAME`` for
module-level locks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Method names that are model forwards wherever they appear: a CNN
#: forward under a lock serializes every session behind one matrix
#: multiply (and deadlocks outright if the forward path re-enters the
#: runtime).  Name-based on purpose — the receiver is usually an
#: untypeable stored callable.
MODEL_FORWARD_METHODS = ("predict", "match_probability", "forward")

#: Fully-resolved call targets that block the calling thread outright.
BLOCKING_CALLS = ("time.sleep",)

#: Attribute-call blocking ops needing a *typed* receiver (``" ".join``
#: must never count).  ``wait``/``wait_for`` block on any receiver —
#: Condition/Event semantics make the name unambiguous.
TYPED_BLOCKING_METHODS = {
    "join": ("threading.Thread",),
    "get": ("queue.Queue", "queue.SimpleQueue", "multiprocessing.Queue"),
    "put": ("queue.Queue", "queue.SimpleQueue", "multiprocessing.Queue"),
}

#: ``with self.<attr>:`` counts as a lock acquisition when the attr is
#: factory-indexed on the class, or failing that when its name says so
#: (``Counter._lock`` is a lock handed in by its registry — no factory
#: assignment to index).
_LOCKISH_MARKERS = ("lock", "cond", "mutex")


@dataclass
class Acquisition:
    """One ``with <lock>:`` site and the locks already held there."""

    lock: str
    line: int
    col: int
    held: tuple


@dataclass
class BlockingOp:
    """One direct blocking operation site.

    ``releases`` is the lock id a ``Condition.wait`` releases while
    waiting (waiting on the condition you hold is the canonical pattern,
    not a finding) — ``None`` for every other blocking shape.
    """

    desc: str
    line: int
    col: int
    held: tuple
    releases: str | None = None


@dataclass
class CallSite:
    """One resolved intra-project call and the locks held around it."""

    callee: str
    line: int
    col: int
    held: tuple


@dataclass
class FunctionNode:
    """One function's direct facts plus its fixpoint summaries."""

    key: str
    module: object  # ModuleInfo
    info: object  # FunctionInfo
    cls_key: str | None
    acquisitions: list = field(default_factory=list)
    blocking: list = field(default_factory=list)
    calls: list = field(default_factory=list)
    #: lock id -> call chain (this function first) that reaches it.
    may_acquire: dict = field(default_factory=dict)
    #: blocking desc -> (call chain, released lock id or None).
    may_block: dict = field(default_factory=dict)


@dataclass
class LockEdge:
    """``src`` held while ``dst`` acquired, at a concrete site."""

    src: str
    dst: str
    module: object  # ModuleInfo owning the site
    line: int
    col: int
    func: str  # enclosing function key
    via: tuple = ()  # callee chain for edges realized through calls


class CallGraph:
    """The built graph; obtain via :func:`get` (memoized per project)."""

    def __init__(self, project, config) -> None:
        self.project = project
        self.config = config
        self.functions: dict = {}  # key -> FunctionNode
        self.class_modules: dict = {}  # cls_key -> ModuleInfo
        self.attr_types: dict = {}  # cls_key -> {attr: type key}
        self.attr_value_types: dict = {}  # cls_key -> {attr: container value type}
        self.attr_funcs: dict = {}  # cls_key -> {attr: stored function key}
        self.edges: list = []
        self._cycle_pairs: set | None = None
        self._build()

    # -- public queries ------------------------------------------------------

    def edge_pairs(self) -> set:
        """Inferred ∪ declared ``(src, dst)`` lock-order pairs."""
        pairs = {(e.src, e.dst) for e in self.edges}
        pairs.update(tuple(pair) for pair in self.config.declared_lock_order)
        return pairs

    def cycle_pairs(self) -> set:
        """Edge pairs participating in any lock-order cycle."""
        if self._cycle_pairs is None:
            self._cycle_pairs = _pairs_in_cycles(self.edge_pairs())
        return self._cycle_pairs

    def functions_of(self, module) -> list:
        return [fn for fn in self.functions.values() if fn.module is module]

    def stored_function(self, cls_key: str | None, attr: str) -> str | None:
        """The function key ``self.<attr>`` was assigned, if any."""
        if cls_key is None:
            return None
        return self.attr_funcs.get(cls_key, {}).get(attr)

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        for module in self.project.modules:
            for qual, cls in module.classes.items():
                self.class_modules[f"{module.module}.{qual}"] = module
            for fn_info in module.functions.values():
                key = f"{module.module}.{fn_info.qualname}"
                self.functions[key] = FunctionNode(
                    key=key,
                    module=module,
                    info=fn_info,
                    cls_key=self._owner_class(module, fn_info.qualname),
                )
        self._infer_attr_types()
        for fn in self.functions.values():
            self._collect_facts(fn)
        self._fixpoint()
        self._build_edges()

    def _owner_class(self, module, qualname: str) -> str | None:
        if "." not in qualname:
            return None
        prefix = qualname.rsplit(".", 1)[0]
        if prefix in module.classes:
            return f"{module.module}.{prefix}"
        return None

    def _type_of_value(self, module, value) -> str | None:
        """Resolved constructor type of an ``self.x = <value>`` RHS."""
        if isinstance(value, ast.BoolOp):  # `metrics or RuntimeMetrics()`
            for operand in value.values:
                t = self._type_of_value(module, operand)
                if t is not None:
                    return t
            return None
        if not isinstance(value, ast.Call):
            return None
        resolved = module.resolve_call(value)
        if not resolved:
            return None
        if resolved in self.class_modules:
            return resolved
        local = f"{module.module}.{resolved}"
        if "." not in resolved and local in self.class_modules:
            return local
        # External classes keep their dotted name (threading.Thread,
        # queue.Queue) so typed blocking ops can match them.
        return resolved if "." in resolved else None

    def _infer_attr_types(self) -> None:
        for module in self.project.modules:
            for qual, cls in module.classes.items():
                cls_key = f"{module.module}.{qual}"
                types, value_types, funcs = {}, {}, {}
                for node in ast.walk(cls.node):
                    if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                        continue
                    target = node.targets[0]
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    attr, value = target.attr, node.value
                    t = self._type_of_value(module, value)
                    if t is not None:
                        types.setdefault(attr, t)
                        continue
                    if isinstance(value, ast.Dict):
                        for v in value.values:
                            vt = self._type_of_value(module, v)
                            if vt is not None:
                                value_types.setdefault(attr, vt)
                                break
                    elif isinstance(value, ast.DictComp):
                        vt = self._type_of_value(module, value.value)
                        if vt is not None:
                            value_types.setdefault(attr, vt)
                    elif isinstance(value, (ast.Name, ast.Attribute)):
                        resolved = module.resolve_name(value)
                        if resolved:
                            for candidate in (resolved, f"{module.module}.{resolved}"):
                                if candidate in self.functions:
                                    funcs.setdefault(attr, candidate)
                                    break
                if types:
                    self.attr_types[cls_key] = types
                if value_types:
                    self.attr_value_types[cls_key] = value_types
                if funcs:
                    self.attr_funcs[cls_key] = funcs

    # -- lock identity -------------------------------------------------------

    def _lock_id(self, module, cls_key: str | None, expr) -> str | None:
        """Lock node id of a ``with`` item / wait receiver, or ``None``."""
        if isinstance(expr, ast.Name):
            if expr.id in module.lock_globals:
                return f"{module.module}.{expr.id}"
            return None
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and cls_key is not None
        ):
            attr = expr.attr
            cls = self._class_info(cls_key)
            if cls is not None and attr in cls.lock_attrs:
                return f"{cls_key}.{attr}"
            lowered = attr.lower()
            if any(marker in lowered for marker in _LOCKISH_MARKERS):
                return f"{cls_key}.{attr}"
        return None

    def _class_info(self, cls_key: str):
        module = self.class_modules.get(cls_key)
        if module is None:
            return None
        qual = cls_key[len(module.module) + 1 :]
        return module.classes.get(qual)

    # -- receiver typing and call resolution ---------------------------------

    def _receiver_type(self, module, cls_key, expr, locals_) -> str | None:
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return cls_key
            return locals_.get(expr.id)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and cls_key is not None
        ):
            return self.attr_types.get(cls_key, {}).get(expr.attr)
        if isinstance(expr, ast.Subscript):
            base = expr.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and cls_key is not None
            ):
                return self.attr_value_types.get(cls_key, {}).get(base.attr)
        return None

    def resolve_target(self, module, cls_key, call, locals_=None) -> str | None:
        """Function key a call resolves to, or ``None`` (conservative)."""
        locals_ = locals_ if locals_ is not None else {}
        func = call.func
        resolved = module.resolve_name(func)
        if resolved:
            if resolved in self.functions:
                return resolved
            local = f"{module.module}.{resolved}"
            if "." not in resolved and local in self.functions:
                return local
            for candidate in (resolved, local if "." not in resolved else None):
                if candidate and candidate in self.class_modules:
                    init = f"{candidate}.__init__"
                    return init if init in self.functions else None
        if isinstance(func, ast.Attribute):
            recv_type = self._receiver_type(module, cls_key, func.value, locals_)
            if recv_type is not None:
                key = f"{recv_type}.{func.attr}"
                if key in self.functions:
                    return key
                stored = self.stored_function(recv_type, func.attr)
                if stored is not None:
                    return stored
        return None

    def _local_type(self, module, cls_key, value, locals_) -> str | None:
        if isinstance(value, ast.Call):
            return self._type_of_value(module, value)
        if isinstance(value, (ast.Name, ast.Attribute, ast.Subscript)):
            return self._receiver_type(module, cls_key, value, locals_)
        return None

    # -- per-function fact collection ----------------------------------------

    def _collect_facts(self, fn: FunctionNode) -> None:
        module, cls_key = fn.module, fn.cls_key
        locals_: dict = {}

        def handle_call(call: ast.Call, held: tuple) -> None:
            resolved = module.resolve_call(call)
            if resolved in BLOCKING_CALLS:
                fn.blocking.append(
                    BlockingOp(resolved, call.lineno, call.col_offset, held)
                )
            elif isinstance(call.func, ast.Attribute):
                meth = call.func.attr
                if meth in ("wait", "wait_for"):
                    receiver = self._lock_id(module, cls_key, call.func.value)
                    label = receiver or module.resolve_name(call.func.value) or "<expr>"
                    fn.blocking.append(
                        BlockingOp(
                            f"{label}.{meth}()",
                            call.lineno,
                            call.col_offset,
                            held,
                            releases=receiver,
                        )
                    )
                elif meth in MODEL_FORWARD_METHODS:
                    fn.blocking.append(
                        BlockingOp(
                            f"model forward .{meth}()",
                            call.lineno,
                            call.col_offset,
                            held,
                        )
                    )
                elif meth in TYPED_BLOCKING_METHODS:
                    recv_type = self._receiver_type(
                        module, cls_key, call.func.value, locals_
                    )
                    if recv_type in TYPED_BLOCKING_METHODS[meth]:
                        fn.blocking.append(
                            BlockingOp(
                                f"{recv_type}.{meth}()",
                                call.lineno,
                                call.col_offset,
                                held,
                            )
                        )
            target = self.resolve_target(module, cls_key, call, locals_)
            if target is not None and target != fn.key:
                fn.calls.append(
                    CallSite(target, call.lineno, call.col_offset, held)
                )

        def visit(node, held: tuple) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = list(held)
                for item in node.items:
                    visit(item.context_expr, tuple(inner))
                    lock = self._lock_id(module, cls_key, item.context_expr)
                    if lock is not None:
                        fn.acquisitions.append(
                            Acquisition(
                                lock,
                                item.context_expr.lineno,
                                item.context_expr.col_offset,
                                tuple(inner),
                            )
                        )
                        if lock not in inner:
                            inner.append(lock)
                for stmt in node.body:
                    visit(stmt, tuple(inner))
                return
            if isinstance(node, ast.Call):
                handle_call(node, held)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    t = self._local_type(module, cls_key, node.value, locals_)
                    if t is not None:
                        locals_[target.id] = t
                    else:
                        locals_.pop(target.id, None)
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
                ):
                    continue  # separate unit; not executed at def site
                visit(child, held)

        for stmt in fn.info.node.body:
            visit(stmt, ())

    # -- summaries and edges -------------------------------------------------

    def _fixpoint(self) -> None:
        ordered = [self.functions[k] for k in sorted(self.functions)]
        for fn in ordered:
            for acq in fn.acquisitions:
                fn.may_acquire.setdefault(acq.lock, (fn.key,))
            for op in fn.blocking:
                fn.may_block.setdefault(op.desc, ((fn.key,), op.releases))
        changed = True
        while changed:
            changed = False
            for fn in ordered:
                for site in fn.calls:
                    callee = self.functions.get(site.callee)
                    if callee is None:
                        continue
                    for lock, chain in callee.may_acquire.items():
                        if lock not in fn.may_acquire:
                            fn.may_acquire[lock] = (fn.key,) + chain
                            changed = True
                    for desc, (chain, releases) in callee.may_block.items():
                        if desc not in fn.may_block:
                            fn.may_block[desc] = ((fn.key,) + chain, releases)
                            changed = True

    def _build_edges(self) -> None:
        for key in sorted(self.functions):
            fn = self.functions[key]
            for acq in fn.acquisitions:
                for held in acq.held:
                    if held != acq.lock:
                        self.edges.append(
                            LockEdge(
                                held,
                                acq.lock,
                                fn.module,
                                acq.line,
                                acq.col,
                                fn.key,
                            )
                        )
            for site in fn.calls:
                if not site.held:
                    continue
                callee = self.functions.get(site.callee)
                if callee is None:
                    continue
                for lock, chain in callee.may_acquire.items():
                    for held in site.held:
                        if held != lock:
                            self.edges.append(
                                LockEdge(
                                    held,
                                    lock,
                                    fn.module,
                                    site.line,
                                    site.col,
                                    fn.key,
                                    via=chain,
                                )
                            )


def _pairs_in_cycles(pairs: set) -> set:
    """The subset of ``(src, dst)`` pairs lying inside any cycle.

    A pair is cyclic iff ``dst`` can reach ``src``; computed over the
    whole graph (declared edges included) so a declared ordering closing
    a loop against an inferred one is caught.
    """
    adj: dict = {}
    for src, dst in pairs:
        adj.setdefault(src, set()).add(dst)

    reach_cache: dict = {}

    def reachable(start: str) -> set:
        if start in reach_cache:
            return reach_cache[start]
        seen: set = set()
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in adj.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        reach_cache[start] = seen
        return seen

    return {(src, dst) for src, dst in pairs if src in reachable(dst)}


def transitive_closure(pairs) -> frozenset:
    """All ordering pairs implied by ``pairs`` (the sanitizer's model)."""
    adj: dict = {}
    for src, dst in pairs:
        adj.setdefault(src, set()).add(dst)
    closed = set()
    for start in list(adj):
        seen: set = set()
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in adj.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        closed.update((start, dst) for dst in seen)
    return frozenset(closed)


def get(project, config) -> CallGraph:
    """The memoized :class:`CallGraph` for ``(project, config)``.

    Checkers run per module but the graph is project-global; caching on
    the project object keeps one build per analysis run.
    """
    cache = getattr(project, "_callgraph_cache", None)
    if cache is None:
        cache = {}
        project._callgraph_cache = cache
    key = id(config)
    graph = cache.get(key)
    if graph is None:
        graph = CallGraph(project, config)
        cache[key] = graph
    return graph
