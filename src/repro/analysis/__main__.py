"""Entry point: ``python -m repro.analysis [paths] [--format=...]``."""

import sys

from repro.analysis.cli import main

sys.exit(main())
