"""Grandfathered findings: the checked-in debt ledger.

A baseline entry acknowledges one existing finding without fixing it —
with a mandatory human-written justification, so the ledger reads as a
list of *decisions*, not a list of ignored noise.  Entries match on
``(rule, file, context, line_text)`` rather than line numbers, so
unrelated edits above a grandfathered line don't churn the file; each
entry consumes at most one finding per run (two identical violations
need two entries — debt is counted, not wildcarded).

``python -m repro.analysis --update-baseline`` rewrites the file from
the current findings, carrying existing justifications forward and
stamping ``TODO: justify`` on new entries (the self-check test fails on
unjustified entries, so the TODO cannot land).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

#: Default baseline filename, discovered at the repo root.
BASELINE_NAME = "witness-lint-baseline.json"


@dataclass
class BaselineEntry:
    rule: str
    file: str
    context: str
    line_text: str
    justification: str = ""
    used: bool = field(default=False, compare=False)

    def key(self) -> tuple:
        return (self.rule, self.file.replace(os.sep, "/"), self.context, self.line_text)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file.replace(os.sep, "/"),
            "context": self.context,
            "line": self.line_text,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    entries: list
    path: str | None = None

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=[], path=None)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls(entries=[], path=path)
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        entries = [
            BaselineEntry(
                rule=item["rule"],
                file=item["file"],
                context=item.get("context", "<module>"),
                line_text=item.get("line", ""),
                justification=item.get("justification", ""),
            )
            for item in data.get("entries", [])
        ]
        return cls(entries=entries, path=path)

    def save(self, path: str | None = None) -> str:
        path = path or self.path or BASELINE_NAME
        payload = {
            "_comment": (
                "witness-lint grandfathered findings; every entry needs a "
                "justification (see README 'Static analysis')"
            ),
            "entries": [entry.to_json() for entry in self.entries],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        return path

    # -- matching -----------------------------------------------------------

    def split(self, findings) -> tuple:
        """``(new, grandfathered)`` — each entry consumes one finding."""
        unused = {}
        for entry in self.entries:
            entry.used = False
            unused.setdefault(entry.key(), []).append(entry)
        new, grandfathered = [], []
        for finding in findings:
            key = (
                finding.rule,
                finding.path.replace(os.sep, "/"),
                finding.context,
                finding.line_text,
            )
            bucket = unused.get(key)
            if bucket:
                entry = bucket.pop(0)
                entry.used = True
                grandfathered.append(finding)
            else:
                new.append(finding)
        return new, grandfathered

    def stale(self) -> list:
        """Entries the last :meth:`split` matched nothing against."""
        return [entry for entry in self.entries if not entry.used]

    def unjustified(self) -> list:
        return [
            entry
            for entry in self.entries
            if not entry.justification or entry.justification.startswith("TODO")
        ]

    @classmethod
    def from_findings(cls, findings, previous: "Baseline | None" = None) -> "Baseline":
        """A fresh baseline for ``findings``, keeping old justifications."""
        carried = {}
        if previous is not None:
            for entry in previous.entries:
                carried.setdefault(entry.key(), []).append(entry.justification)
        entries = []
        for finding in findings:
            key = (
                finding.rule,
                finding.path.replace(os.sep, "/"),
                finding.context,
                finding.line_text,
            )
            justifications = carried.get(key)
            justification = justifications.pop(0) if justifications else "TODO: justify"
            entries.append(
                BaselineEntry(
                    rule=finding.rule,
                    file=finding.path,
                    context=finding.context,
                    line_text=finding.line_text,
                    justification=justification,
                )
            )
        return cls(entries=entries, path=previous.path if previous else None)


def discover_baseline(start: str) -> str | None:
    """Walk up from ``start`` looking for the checked-in baseline file."""
    directory = os.path.abspath(start)
    if os.path.isfile(directory):
        directory = os.path.dirname(directory)
    while True:
        candidate = os.path.join(directory, BASELINE_NAME)
        if os.path.exists(candidate):
            return candidate
        parent = os.path.dirname(directory)
        if parent == directory:
            return None
        directory = parent
