"""The shared resolution pass every checker builds on.

One parse of the tree produces, per module:

* the AST with a parent map (checkers ask "is this ``id()`` call inside
  a subscript?") and 1-indexed source lines;
* the *import alias table* — ``np`` → ``numpy``, ``rnd`` → ``random`` —
  so checkers match fully-qualified call targets instead of guessing at
  surface spellings;
* the *class index* — which classes own a lock (``self._lock =
  threading.Lock()`` in any method), which are frozen-net types
  (``is_frozen = True``), which are frozen dataclasses;
* the *function index* — qualnames and resolved decorators (how
  ``@hot_path`` marking is discovered);
* the *suppression pragmas* — ``# witness-lint: allow[rule]`` comments,
  extracted with :mod:`tokenize` so a ``#`` inside a string can never be
  misread as a pragma.

Module names are derived from the package structure on disk (walking up
while ``__init__.py`` exists), so the same machinery resolves the real
``repro`` tree and the fixture trees under ``tests/analysis_fixtures``.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field

#: ``# witness-lint: allow[rule-a,rule-b] -- optional justification``
PRAGMA_RE = re.compile(
    r"#\s*witness-lint:\s*allow\[([A-Za-z0-9_\-, ]+)\]\s*(?:--\s*(?P<why>.*))?"
)

#: Lock-like constructors: owning one of these is a claim that the
#: class's shared state is guarded (a Condition wraps a lock).
LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
}


@dataclass
class Pragma:
    """One ``allow[...]`` pragma: which rules it suppresses on which line."""

    line: int  # the line whose findings are suppressed
    rules: tuple
    justification: str = ""
    used: bool = False


@dataclass
class ClassInfo:
    name: str
    qualname: str
    node: ast.ClassDef
    #: ``self.<attr>`` names assigned a lock factory in any method.
    lock_attrs: tuple = ()
    #: Carries ``is_frozen = True`` (frozen-net executables).
    is_frozen_net: bool = False
    #: Declared ``@dataclass(frozen=True)``.
    is_frozen_dataclass: bool = False


@dataclass
class FunctionInfo:
    qualname: str
    node: object
    #: Resolved dotted decorator names (``repro.analysis.hot_path``).
    decorators: tuple = ()


@dataclass
class ModuleInfo:
    """Everything checkers need to know about one source file."""

    path: str
    module: str
    tree: ast.Module
    source_lines: list
    imports: dict = field(default_factory=dict)
    classes: dict = field(default_factory=dict)  # qualname -> ClassInfo
    functions: dict = field(default_factory=dict)  # id(node) -> FunctionInfo
    pragmas: list = field(default_factory=list)
    #: Module-level names assigned a lock factory (``_TWIN_LOCK =
    #: threading.Lock()``) — lock-graph nodes just like ``self._lock``.
    lock_globals: tuple = ()
    _parents: dict = field(default_factory=dict)

    # -- navigation --------------------------------------------------------

    def parent(self, node):
        return self._parents.get(id(node))

    def ancestors(self, node):
        """Yield ``node``'s ancestors, innermost first."""
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def enclosing_function(self, node):
        """The innermost enclosing function's :class:`FunctionInfo`."""
        for anc in [node, *self.ancestors(node)]:
            info = self.functions.get(id(anc))
            if info is not None:
                return info
        return None

    def enclosing_class(self, node):
        """The innermost enclosing class's :class:`ClassInfo`."""
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                for info in self.classes.values():
                    if info.node is anc:
                        return info
        return None

    def context_of(self, node) -> str:
        """Human-readable enclosing scope for a finding."""
        fn = self.enclosing_function(node)
        if fn is not None:
            return fn.qualname
        cls = self.enclosing_class(node)
        if cls is not None:
            return cls.qualname
        return "<module>"

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""

    # -- name resolution ---------------------------------------------------

    def resolve_name(self, node) -> str | None:
        """Dotted fully-qualified name of a Name/Attribute expression.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` through the import table; a name
        with no import mapping resolves to itself (locally defined).
        """
        parts = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.append(self.imports.get(cur.id, cur.id))
        return ".".join(reversed(parts))

    def resolve_call(self, call: ast.Call) -> str | None:
        """Fully-qualified dotted name of a call's target, or ``None``."""
        return self.resolve_name(call.func)


def _module_name_for(path: str) -> str:
    """Dotted module name of ``path`` from the package layout on disk."""
    path = os.path.abspath(path)
    directory = os.path.dirname(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    while os.path.exists(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    if parts[0] == "__init__":
        parts = parts[1:] or [os.path.basename(os.path.dirname(path))]
    return ".".join(reversed(parts))


def _extract_pragmas(source: str) -> list:
    """All ``allow[...]`` pragmas with the line each one suppresses.

    A pragma trailing code suppresses that line; a pragma standing alone
    on its own line suppresses the next line (so a long offending line
    can carry its justification above itself).
    """
    pragmas = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    code_lines = set()
    comments = []  # (line, col, text)
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comments.append((tok.start[0], tok.start[1], tok.string))
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
            tokenize.ENCODING,
        ):
            code_lines.add(tok.start[0])
    for line, _col, text in comments:
        match = PRAGMA_RE.search(text)
        if not match:
            continue
        rules = tuple(r.strip() for r in match.group(1).split(",") if r.strip())
        target = line if line in code_lines else line + 1
        pragmas.append(
            Pragma(line=target, rules=rules, justification=(match.group("why") or "").strip())
        )
    return pragmas


def _decorator_names(module: ModuleInfo, node) -> tuple:
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        resolved = module.resolve_name(target)
        if resolved:
            names.append(resolved)
    return tuple(names)


def _index_imports(module: ModuleInfo) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module.imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    module.imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                # Relative imports: qualify against this module's package.
                package = module.module.rsplit(".", max(node.level, 1))[0]
                base = f"{package}.{node.module}" if node.module else package
            else:
                base = node.module
            for alias in node.names:
                module.imports[alias.asname or alias.name] = f"{base}.{alias.name}"


def _is_lock_factory_call(module: ModuleInfo, value) -> bool:
    if not isinstance(value, ast.Call):
        return False
    resolved = module.resolve_call(value)
    return resolved in LOCK_FACTORIES


def _index_classes_and_functions(module: ModuleInfo) -> None:
    def visit(node, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qual = f"{prefix}{child.name}"
                lock_attrs = []
                is_frozen_net = False
                is_frozen_dc = False
                for dec in child.decorator_list:
                    target = dec.func if isinstance(dec, ast.Call) else dec
                    if module.resolve_name(target) in (
                        "dataclasses.dataclass",
                        "dataclass",
                    ) and isinstance(dec, ast.Call):
                        for kw in dec.keywords:
                            if (
                                kw.arg == "frozen"
                                and isinstance(kw.value, ast.Constant)
                                and kw.value.value is True
                            ):
                                is_frozen_dc = True
                for sub in ast.walk(child):
                    if isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                                and _is_lock_factory_call(module, sub.value)
                            ):
                                lock_attrs.append(target.attr)
                            if (
                                isinstance(target, ast.Name)
                                and target.id == "is_frozen"
                                and isinstance(sub.value, ast.Constant)
                                and sub.value.value is True
                            ):
                                is_frozen_net = True
                module.classes[qual] = ClassInfo(
                    name=child.name,
                    qualname=qual,
                    node=child,
                    lock_attrs=tuple(dict.fromkeys(lock_attrs)),
                    is_frozen_net=is_frozen_net,
                    is_frozen_dataclass=is_frozen_dc,
                )
                visit(child, f"{qual}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                module.functions[id(child)] = FunctionInfo(
                    qualname=qual,
                    node=child,
                    decorators=_decorator_names(module, child),
                )
                visit(child, f"{qual}.")
            else:
                visit(child, prefix)

    visit(module.tree, "")


def resolve_module(path: str, display_path: str | None = None) -> ModuleInfo:
    """Parse and fully index one source file."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    module = ModuleInfo(
        path=display_path or path,
        module=_module_name_for(path),
        tree=tree,
        source_lines=source.splitlines(),
    )
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            module._parents[id(child)] = parent
    _index_imports(module)
    _index_classes_and_functions(module)
    lock_globals = []
    for node in tree.body:
        if isinstance(node, ast.Assign) and _is_lock_factory_call(module, node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    lock_globals.append(target.id)
    module.lock_globals = tuple(dict.fromkeys(lock_globals))
    module.pragmas = _extract_pragmas(source)
    return module


@dataclass
class Project:
    """All resolved modules of one analysis run."""

    modules: list
    root: str

    @classmethod
    def from_paths(cls, paths) -> "Project":
        """Resolve every ``.py`` file under ``paths`` (files or trees)."""
        files = []
        roots = []
        for target in paths:
            target = os.path.abspath(target)
            roots.append(target if os.path.isdir(target) else os.path.dirname(target))
            if os.path.isdir(target):
                for dirpath, dirnames, filenames in os.walk(target):
                    dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                    for name in sorted(filenames):
                        if name.endswith(".py"):
                            files.append(os.path.join(dirpath, name))
            elif target.endswith(".py"):
                files.append(target)
            else:
                raise ValueError(f"not a Python file or directory: {target}")
        root = os.path.commonpath(roots) if roots else os.getcwd()
        cwd = os.getcwd()
        modules = []
        for path in files:
            try:
                display = os.path.relpath(path, cwd)
            except ValueError:  # different drive (windows)
                display = path
            if display.startswith(".."):
                display = path
            modules.append(resolve_module(path, display_path=display))
        return cls(modules=modules, root=root)

    def module_named(self, name: str) -> ModuleInfo | None:
        for module in self.modules:
            if module.module == name:
                return module
        return None

    def class_index(self) -> dict:
        """``module.Class`` qualname -> :class:`ClassInfo`, project-wide."""
        index = {}
        for module in self.modules:
            for qual, info in module.classes.items():
                index[f"{module.module}.{qual}"] = info
        return index
