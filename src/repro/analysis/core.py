"""Data model of witness-lint: rules, findings, configuration.

A *rule* is one named invariant (``dtype-float64``, ``lock-guard``, …)
with the historical incident it descends from; a *checker* owns a group
of related rules and implements the AST walk that enforces them; a
*finding* is one concrete violation at a file:line.  Scoping is
config-driven: each rule applies to a set of module prefixes (the
fingerprint-feeding modules for determinism, the raster/vision/nn
numeric stack for dtype discipline), so the same checkers run unchanged
over the real tree and over test fixture trees.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Rule:
    """One named invariant with its lineage and remediation hint."""

    id: str
    summary: str
    #: The historical bug this rule descends from (PR 3/4/5 incidents) —
    #: surfaces in ``--list-rules`` and the README catalog so a finding
    #: always answers "why does this matter here?".
    incident: str
    hint: str


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location."""

    rule: str
    path: str  # path as scanned (normally repo-relative)
    line: int  # 1-indexed
    col: int  # 0-indexed (ast convention)
    message: str
    #: Dotted name of the enclosing scope (``Class.method`` or function
    #: name), ``"<module>"`` at module level.  Baseline matching keys on
    #: it so entries survive unrelated line drift.
    context: str = "<module>"
    #: The stripped source line, for reports and baseline matching.
    line_text: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


class Checker:
    """Base class: one checker enforces one family of rules.

    Subclasses define ``name``, ``rules`` (the :class:`Rule` objects they
    may emit) and implement :meth:`check` over one resolved module.
    Scoping is handled by the runner: ``check`` is only called for
    modules matching the checker's configured scope, so checkers contain
    pure detection logic.
    """

    name: str = "checker"
    rules: tuple = ()

    def __init__(self, config: "AnalysisConfig") -> None:
        self.config = config

    def check(self, module, project) -> list:
        """Return :class:`Finding` objects for ``module``.

        ``module`` is a :class:`repro.analysis.resolve.ModuleInfo`;
        ``project`` the :class:`repro.analysis.resolve.Project` giving
        cross-module context (class index, lock owners).
        """
        raise NotImplementedError

    def rule_ids(self) -> tuple:
        return tuple(rule.id for rule in self.rules)


#: Module prefixes whose numeric code must stay float32-clean: the
#: raster/vision/nn stack feeding model inputs (PR 4's float64 leaks all
#: lived here), plus the core transport/validation layer since PR 7's
#: pooled plan buffers made float32 the canonical transport dtype
#: (``ValidationPlan.add_region`` once re-cast unit inputs to float64).
DTYPE_SCOPE = ("repro.core", "repro.nn", "repro.vision", "repro.raster")

#: Modules feeding the soak's engine-independent session fingerprint
#: (decision, server verification, per-frame verdicts): nondeterminism
#: anywhere here shows up as a cross-engine divergence.  Attack tooling,
#: datasets and crypto (the session nonce is *supposed* to be entropy)
#: stay out of scope.
DETERMINISM_SCOPE = (
    "repro.core",
    "repro.faults",
    "repro.nn",
    "repro.raster",
    "repro.runtime",
    "repro.scenarios",
    "repro.server",
    "repro.vision",
    "repro.vspec",
    "repro.web",
)

#: Lock discipline applies tree-wide: any class that owns a lock is
#: claiming its shared state is guarded.
LOCK_SCOPE = ("repro",)

#: Hot-path allocation discipline: the frozen engine, the runtime's
#: flush path, and — since PR 7's zero-copy plan transport — the core
#: collect pass and the vision resampler it writes through (everywhere
#: arenas/pooled buffers promise allocation-free steady state).
#: ``repro.obs`` joins for the tracer fast path: ``maybe_span`` and
#: ``SpanTracer.span`` sit inside every frame, so disabled tracing must
#: stay statically allocation-free (obs stays OUT of the determinism
#: scope — spans read wall-clock by design, never into a verdict).
#: ``repro.faults`` joins for the injector's ``decide`` fast-miss: a
#: disarmed seam sits inside every frame and must stay allocation-free.
HOTPATH_SCOPE = (
    "repro.core",
    "repro.faults",
    "repro.nn",
    "repro.obs",
    "repro.runtime",
    "repro.vision",
)

#: Frozen-lifecycle discipline applies tree-wide (a frozen net pickled
#: from *anywhere* resurrects stale weights).
LIFECYCLE_SCOPE = ("repro",)

#: Interprocedural concurrency rules (lock-order cycles, blocking under
#: a held lock) apply tree-wide: the lock graph spans packages — the
#: runtime's conditions nest through metrics calls, the zoo's registry
#: lock nests over the frozen-twin lock — so no package is exempt.
CONC_SCOPE = ("repro",)

#: Thread-confinement escape discipline: everywhere pooled transport
#: buffers (``planbuf.thread_pool``) and frozen-engine workspace arenas
#: circulate.
ESCAPE_SCOPE = ("repro.core", "repro.nn", "repro.runtime", "repro.vision")

#: Calls whose result is a thread-confined buffer pool: rows reserved
#: from one must never outlive the frame or cross a thread boundary.
POOL_FACTORIES = ("repro.core.planbuf.thread_pool",)

#: The audited lock-order ledger (CONTRIBUTING "lock discipline").  The
#: call-graph pass infers most ordering edges; orderings it cannot see —
#: lock objects aliased across classes (RuntimeMetrics hands its
#: ``_data_lock`` to every instrument, so instrument acquisitions are
#: ``_data_lock`` acquisitions at runtime), chains through stored
#: callables — are declared here so they join the static model the
#: runtime sanitizer cross-checks.  Node ids follow
#: :mod:`repro.analysis.callgraph` (``module.Class.attr`` /
#: ``module.NAME``).
DECLARED_LOCK_ORDER = (
    # Batcher/gate conditions are held while metrics instruments record:
    # registration takes _registry_lock, the instrument write takes the
    # shared _data_lock.  Audited one-way — metrics code never calls
    # back into the runtime, so no cycle can close.
    ("repro.runtime.batcher.MicroBatcher._cond", "repro.runtime.metrics.RuntimeMetrics._registry_lock"),
    ("repro.runtime.batcher.MicroBatcher._cond", "repro.runtime.metrics.RuntimeMetrics._data_lock"),
    ("repro.runtime.backpressure.AdmissionGate._cond", "repro.runtime.metrics.RuntimeMetrics._registry_lock"),
    ("repro.runtime.backpressure.AdmissionGate._cond", "repro.runtime.metrics.RuntimeMetrics._data_lock"),
    ("repro.runtime.metrics.RuntimeMetrics._registry_lock", "repro.runtime.metrics.RuntimeMetrics._data_lock"),
    # The zoo builds each model exactly once under its registry lock;
    # vending the frozen twin nests the twin-memo lock inside it.
    ("repro.nn.zoo._REGISTRY_LOCK", "repro.nn.infer._TWIN_LOCK"),
)


@dataclass(frozen=True)
class AnalysisConfig:
    """Which modules each rule family applies to, plus hot-path pins.

    ``hot_functions`` names functions that are hot paths even without a
    ``@hot_path`` decorator, as ``"module.path:Qual.name"`` entries —
    the frozen engine's stage executors are pinned here so the guarantee
    holds even if a refactor drops the decorator.
    """

    dtype_scope: tuple = DTYPE_SCOPE
    determinism_scope: tuple = DETERMINISM_SCOPE
    lock_scope: tuple = LOCK_SCOPE
    hotpath_scope: tuple = HOTPATH_SCOPE
    lifecycle_scope: tuple = LIFECYCLE_SCOPE
    conc_scope: tuple = CONC_SCOPE
    escape_scope: tuple = ESCAPE_SCOPE
    pool_factories: tuple = POOL_FACTORIES
    declared_lock_order: tuple = DECLARED_LOCK_ORDER
    hot_functions: tuple = (
        "repro.nn.infer:_ConvStage.run",
        "repro.nn.infer:_PoolStage.run",
        "repro.nn.infer:_FlattenStage.run",
        "repro.nn.infer:_DenseStage.run",
        "repro.nn.infer:_ReLUStage.run",
        "repro.nn.infer:FrozenNet._run",
        "repro.runtime.batcher:MicroBatcher._execute",
        # PR 7 zero-copy plan transport: the buffer-writing flush/gather
        # and resample paths stay allocation-free (the collect-side
        # writers in repro.core.verifiers carry @hot_path directly).
        "repro.runtime.batcher:MicroBatcher._gather",
        "repro.vision.ops:resize_bilinear",
    )

    def scoped_to(self, prefix: str) -> "AnalysisConfig":
        """The same config re-rooted onto ``prefix`` (fixture trees)."""
        def remap(scope: tuple) -> tuple:
            return tuple(
                s.replace("repro", prefix, 1) if s == "repro" or s.startswith("repro.") else s
                for s in scope
            )

        def remap_name(name: str) -> str:
            return name.replace("repro", prefix, 1) if name.startswith("repro.") else name

        return replace(
            self,
            dtype_scope=remap(self.dtype_scope),
            determinism_scope=remap(self.determinism_scope),
            lock_scope=remap(self.lock_scope),
            hotpath_scope=remap(self.hotpath_scope),
            lifecycle_scope=remap(self.lifecycle_scope),
            conc_scope=remap(self.conc_scope),
            escape_scope=remap(self.escape_scope),
            pool_factories=tuple(remap_name(f) for f in self.pool_factories),
            declared_lock_order=tuple(
                (remap_name(a), remap_name(b)) for a, b in self.declared_lock_order
            ),
            hot_functions=tuple(
                f.replace("repro", prefix, 1) for f in self.hot_functions
            ),
        )


def in_scope(module_name: str, scope: tuple) -> bool:
    """Whether dotted ``module_name`` falls under any prefix in ``scope``."""
    for prefix in scope:
        if module_name == prefix or module_name.startswith(prefix + "."):
            return True
    return False
