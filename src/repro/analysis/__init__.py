"""witness-lint: AST-based invariant checking for the witness codebase.

The witness's correctness story rests on invariants Python's type system
cannot express: float32 end-to-end on the inference path, bit-identical
engine-independent session fingerprints, lock-guarded shared state, and
allocation-free frozen forwards.  Each was historically enforced by a
human reading diffs (or by a 2460-frame soak finding the regression
after the fact).  This package enforces them mechanically:

* :mod:`repro.analysis.resolve` parses a source tree once into a shared
  module/symbol index (imports, classes, lock ownership, decorators,
  suppression pragmas);
* :mod:`repro.analysis.checkers` runs pluggable rule sets over that
  index (dtype discipline, determinism, lock discipline, hot-path
  allocation, frozen lifecycle);
* :mod:`repro.analysis.baseline` grandfathers justified findings;
* ``python -m repro.analysis`` is the CLI (text/JSON/GitHub output).

This module is imported by production code (for :func:`hot_path`), so it
stays dependency-free and cheap: the analyzer machinery loads lazily.
"""

from __future__ import annotations

__all__ = ["hot_path", "run_analysis", "Finding", "AnalysisConfig"]


def hot_path(fn):
    """Mark ``fn`` as an allocation-free hot path (a no-op at runtime).

    witness-lint's ``hot-alloc`` rule flags array-allocating calls inside
    any function carrying this decorator: the frozen engine's workspace
    arenas exist so that steady-state forwards allocate nothing, and this
    marker is how new code opts into that guarantee being *checked*
    rather than hoped for.
    """
    fn.__witness_hot_path__ = True
    return fn


def __getattr__(name):
    # Lazy: importing repro.analysis from hot production modules must not
    # drag the whole analyzer (ast walking, checkers) into their import.
    if name == "run_analysis":
        from repro.analysis.runner import run_analysis

        return run_analysis
    if name == "Finding":
        from repro.analysis.core import Finding

        return Finding
    if name == "AnalysisConfig":
        from repro.analysis.core import AnalysisConfig

        return AnalysisConfig
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
