"""Frozen-lifecycle discipline: frozen things stay frozen.

Two invariants from PR 4's freeze semantics:

* ``frozen-save`` — frozen nets are compiled weight *snapshots*; the
  serializer refuses them at runtime (``nn/serialize.py``), but that
  guard only fires when the bad path executes.  This rule flags the
  static shapes: ``save_model``/``pickle.dump(s)`` applied to a value
  that locally came from ``freeze()``/``frozen_twin()``, and any
  serialization call written *inside* a frozen-net class (``is_frozen =
  True``).  Persist the training model and re-freeze after load.
* ``frozen-config-write`` — :class:`~repro.core.service.WitnessConfig`
  is a frozen dataclass shared by every session of a service; mutating
  a field (including via ``object.__setattr__``, which bypasses the
  dataclass guard) changes another session's semantics mid-flight.
  Derive variations with ``config.replace(...)`` instead.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Finding, Rule

#: Calls that persist their argument.
SERIALIZERS = {
    "pickle.dump",
    "pickle.dumps",
    "repro.nn.serialize.save_model",
    "repro.nn.save_model",
    "save_model",
}

#: Factories whose result is a frozen executable.
FREEZERS = {
    "repro.nn.infer.freeze",
    "repro.nn.infer.frozen_twin",
    "freeze",
    "frozen_twin",
}

#: Names of the immutable shared-config type.
CONFIG_TYPES = {"WitnessConfig", "repro.core.service.WitnessConfig"}


def _frozen_locals(module, fn_node) -> set:
    """Names bound from ``freeze()``/``frozen_twin()`` within ``fn_node``."""
    names = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if module.resolve_call(node.value) in FREEZERS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _config_locals(module, fn_node) -> set:
    """Names statically known to hold a ``WitnessConfig`` in ``fn_node``."""
    names = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            resolved = module.resolve_call(node.value)
            if resolved in CONFIG_TYPES or (
                resolved is not None and resolved.endswith(".WitnessConfig")
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    if isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for arg in [*fn_node.args.posonlyargs, *fn_node.args.args, *fn_node.args.kwonlyargs]:
            ann = arg.annotation
            if ann is None:
                continue
            if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                if ann.value.split(".")[-1] == "WitnessConfig":
                    names.add(arg.arg)
                continue
            resolved = module.resolve_name(ann) if isinstance(ann, (ast.Name, ast.Attribute)) else None
            if resolved is not None and resolved.split(".")[-1] == "WitnessConfig":
                names.add(arg.arg)
    return names


class LifecycleChecker(Checker):
    name = "lifecycle"
    rules = (
        Rule(
            id="frozen-save",
            summary="serializing a frozen net (a stale-weight snapshot)",
            incident=(
                "PR 4: save_model/load_model refuse frozen nets at runtime "
                "and invalidate memoized twins on reload — serializing the "
                "compiled snapshot resurrects stale weights after retraining"
            ),
            hint="persist the training model; re-freeze (or frozen_twin) after load",
        ),
        Rule(
            id="frozen-config-write",
            summary="mutating a WitnessConfig field",
            incident=(
                "PR 1/3: WitnessConfig is immutable and shared by every "
                "session of a service; in-place mutation changes concurrent "
                "sessions' semantics mid-flight"
            ),
            hint="derive a variant with config.replace(...)",
        ),
    )

    def check(self, module, project) -> list:
        findings = []
        findings.extend(self._check_frozen_saves(module))
        findings.extend(self._check_config_writes(module))
        return findings

    # -- frozen-save --------------------------------------------------------

    def _check_frozen_saves(self, module) -> list:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.resolve_call(node)
            if resolved not in SERIALIZERS:
                continue
            finding = self._judge_serializer_call(module, node, resolved)
            if finding is not None:
                findings.append(finding)
        return findings

    def _judge_serializer_call(self, module, call: ast.Call, resolved: str):
        short = resolved.split(".")[-1]
        # Inside a frozen-net class, any serialization call is suspect.
        cls = module.enclosing_class(call)
        if cls is not None and cls.is_frozen_net:
            return self._finding(
                module,
                call,
                "frozen-save",
                f"{short}() inside frozen-net type {cls.name}",
            )
        if not call.args:
            return None
        payload = call.args[0]
        if isinstance(payload, ast.Call) and module.resolve_call(payload) in FREEZERS:
            return self._finding(
                module,
                call,
                "frozen-save",
                f"{short}() applied directly to a freeze()/frozen_twin() result",
            )
        fn = module.enclosing_function(call)
        if fn is not None and isinstance(payload, ast.Name):
            if payload.id in _frozen_locals(module, fn.node):
                return self._finding(
                    module,
                    call,
                    "frozen-save",
                    f"{short}({payload.id}) where {payload.id} came from freeze()/frozen_twin()",
                )
        return None

    # -- frozen-config-write -------------------------------------------------

    def _check_config_writes(self, module) -> list:
        findings = []
        seen_fns = set()
        for fn_id, fn_info in module.functions.items():
            if fn_id in seen_fns:
                continue
            seen_fns.add(fn_id)
            config_names = _config_locals(module, fn_info.node)
            for node in ast.walk(fn_info.node):
                finding = self._judge_config_write(module, node, config_names)
                if finding is not None:
                    findings.append(finding)
        # object.__setattr__ at module level too.
        for node in ast.walk(module.tree):
            if module.enclosing_function(node) is None:
                finding = self._judge_config_write(module, node, set())
                if finding is not None:
                    findings.append(finding)
        unique = {}
        for f in findings:
            unique.setdefault((f.line, f.col, f.rule), f)
        return list(unique.values())

    def _judge_config_write(self, module, node, config_names):
        # cfg.field = ... / self.config.field = ...
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                base = target.value
                if isinstance(base, ast.Name) and base.id in config_names:
                    return self._finding(
                        module,
                        node,
                        "frozen-config-write",
                        f"assignment to {base.id}.{target.attr} mutates an immutable WitnessConfig",
                    )
                if isinstance(base, ast.Attribute) and base.attr in ("config", "_config"):
                    return self._finding(
                        module,
                        node,
                        "frozen-config-write",
                        f"assignment to <…>.{base.attr}.{target.attr} mutates a shared WitnessConfig",
                    )
        # object.__setattr__(cfg, "field", value)
        if isinstance(node, ast.Call):
            resolved = module.resolve_call(node)
            if resolved == "object.__setattr__" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name) and (not config_names or first.id in config_names):
                    return self._finding(
                        module,
                        node,
                        "frozen-config-write",
                        "object.__setattr__ bypasses the frozen-dataclass guard",
                    )
        return None

    def _finding(self, module, node, rule: str, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            message=message,
            context=module.context_of(node),
            line_text=module.line_text(node.lineno),
        )
