"""Thread-confinement escape analysis for pooled buffers.

PR 7's ``planbuf.thread_pool()`` pools and PR 4's ``infer.Workspace``
arenas hand out *views into thread-owned resident memory*: a reserved
row is valid for the current frame on the current thread and is
overwritten by the next reservation.  CONTRIBUTING states the rule in
prose ("pooled buffers are thread-confined, no cross-frame row refs");
``conc-escape`` makes the two statically-decidable shapes mechanical:

* a pooled row (or a view of one) **stashed on** ``self`` — the object
  outlives the frame, so the stashed array silently mutates under it on
  the next reservation;
* a pooled row **crossing a thread boundary** — passed to
  ``executor.submit(...)`` / ``threading.Thread(...)`` directly or
  captured by a closure that is, violating pool ownership.

Taint starts at ``thread_pool()`` results (``.reserve`` on them) and at
``Workspace.buf`` reservations, and follows views (subscripts/slices,
``reshape``/``view``); ``.copy()`` launders it, which is exactly the
documented way to keep a row.  Plain returns are *not* findings —
returning a pooled view to a same-thread caller is the transport
pattern itself (``MicroBatcher._gather``) — and plan-owned pools
(``self.buffers.reserve``) are their owner's to stash; the runtime
sanitizer twin covers the dynamic remainder (any cross-thread access,
however the reference traveled).
"""

from __future__ import annotations

import ast

from repro.analysis import callgraph
from repro.analysis.core import Checker, Finding, Rule

#: Methods whose result is a view of (and as pooled as) their receiver.
_VIEW_METHODS = ("reshape", "view", "ravel", "squeeze")

#: Call attr names that hand work (and captured references) to another
#: thread: executor submissions and thread constructors.
_SUBMIT_METHODS = ("submit",)
_THREAD_FACTORIES = ("threading.Thread", "concurrent.futures.ThreadPoolExecutor")


class EscapeChecker(Checker):
    name = "escape"
    rules = (
        Rule(
            id="conc-escape",
            summary="pooled buffer row escapes its owning frame or thread",
            incident=(
                "PR 7's pooled plan transport and PR 4's workspace arenas "
                "reuse backing memory every frame; the confinement rule "
                "('no cross-frame row refs, pools are thread-confined') "
                "lived only in CONTRIBUTING prose — one stashed row means "
                "verdicts computed over a later frame's pixels"
            ),
            hint=(
                "don't keep pooled rows: .copy() the data if it must "
                "outlive the frame, and never hand a pooled view to "
                "another thread (reserve from the receiving thread's own "
                "pool instead)"
            ),
        ),
    )

    def check(self, module, project) -> list:
        graph = callgraph.get(project, self.config)
        findings = []
        for fn in graph.functions_of(module):
            findings.extend(self._check_function(graph, module, fn))
        return findings

    # -- taint ----------------------------------------------------------------

    def _taint_of(self, graph, module, cls_key, expr, tainted: dict) -> str | None:
        """``"pool"``/``"row"`` if ``expr`` is pool-derived, else ``None``."""
        if isinstance(expr, ast.Name):
            return tainted.get(expr.id)
        if isinstance(expr, ast.Subscript):
            inner = self._taint_of(graph, module, cls_key, expr.value, tainted)
            return "row" if inner == "row" else None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute):
                recv = self._taint_of(graph, module, cls_key, func.value, tainted)
                if func.attr in _VIEW_METHODS and recv == "row":
                    return "row"
                if func.attr == "reserve" and recv == "pool":
                    return "row"
                if func.attr == "buf":
                    return "row"  # Workspace.buf — the arena reservation
            target = graph.resolve_target(module, cls_key, expr)
            if target is None:
                resolved = module.resolve_call(expr)
                target = resolved
            if target in self.config.pool_factories:
                return "pool"
        return None

    def _tainted_names_in(self, node, tainted: dict) -> list:
        names = []
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and tainted.get(sub.id) == "row"
            ):
                names.append(sub.id)
        return names

    # -- per-function walk ----------------------------------------------------

    def _check_function(self, graph, module, fn) -> list:
        findings = []
        tainted: dict = {}
        cls_key = fn.cls_key

        def finding(node, message: str) -> None:
            findings.append(
                Finding(
                    rule="conc-escape",
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                    context=fn.info.qualname,
                    line_text=module.line_text(node.lineno),
                )
            )

        def is_self_store(target) -> str | None:
            base = target
            if isinstance(base, ast.Subscript):
                base = base.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                return base.attr
            return None

        def check_thread_handoff(call: ast.Call) -> None:
            func = call.func
            crosses = (
                isinstance(func, ast.Attribute) and func.attr in _SUBMIT_METHODS
            ) or (module.resolve_call(call) in _THREAD_FACTORIES)
            if not crosses:
                return
            for arg in [*call.args, *[kw.value for kw in call.keywords]]:
                if isinstance(arg, ast.Lambda):
                    caught = self._tainted_names_in(arg.body, tainted)
                    if caught:
                        finding(
                            call,
                            f"closure passed across a thread boundary captures "
                            f"pooled row(s) {sorted(set(caught))} — the worker "
                            "thread reads memory owned by this thread's pool",
                        )
                        return
                    continue
                if isinstance(arg, ast.Name) and arg.id in closures:
                    caught = closures[arg.id]
                    if caught:
                        finding(
                            call,
                            f"closure {arg.id!r} passed across a thread "
                            f"boundary captures pooled row(s) {sorted(set(caught))}",
                        )
                        return
                    continue
                caught = self._tainted_names_in(arg, tainted)
                taint = self._taint_of(graph, module, cls_key, arg, tainted)
                if caught or taint == "row":
                    finding(
                        call,
                        "pooled row passed across a thread boundary — the "
                        "receiving thread must reserve from its own pool",
                    )
                    return

        closures: dict = {}  # nested def name -> captured tainted names

        def visit(node) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not fn.info.node:
                    closures[node.name] = self._tainted_names_in(node, tainted)
                    return
            if isinstance(node, ast.Assign):
                taint = self._taint_of(graph, module, cls_key, node.value, tainted)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if taint is not None:
                            tainted[target.id] = taint
                        else:
                            tainted.pop(target.id, None)
                        continue
                    attr = is_self_store(target)
                    if attr is not None and taint == "row":
                        finding(
                            node,
                            f"pooled row stored on self.{attr} outlives the "
                            "frame — the backing buffer is rewritten by the "
                            "next reservation (copy the data instead)",
                        )
            elif isinstance(node, ast.Call):
                check_thread_handoff(node)
            for child in ast.iter_child_nodes(node):
                visit(child)

        for stmt in fn.info.node.body:
            visit(stmt)
        return findings
