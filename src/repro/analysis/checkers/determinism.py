"""Determinism: nothing feeding the session fingerprint may wobble.

The soak harness (PR 5) proves every engine combination reduces a
session to a bit-identical fingerprint.  Both PR 5 incidents were
nondeterminism bugs of exactly the shapes below: a cache keyed by
``id()`` (recycled addresses made expected-state composition depend on
allocator history) and order-sensitive composition.  These rules police
the fingerprint-feeding modules:

* ``det-wallclock`` — ``time.time()`` / ``datetime.now()``: session
  timing flows from the virtual machine clock and ``perf_counter``
  measurements; wall-clock reads make replays diverge.
* ``det-unseeded-rng`` — ``random.*`` module functions, legacy
  ``np.random.*`` draws, and ``np.random.default_rng()`` with no seed:
  every stochastic choice must derive from an explicit seed.
* ``det-id-key`` — ``id(x)`` used as a dict/set key or lookup argument:
  CPython recycles addresses, so an ``id()``-keyed cache returns stale
  entries for fresh objects (the PR 5 padded-expected cache bug).
* ``det-set-order`` — iterating a set into an order-sensitive consumer
  (``for`` loops, ``list()``/``tuple()``/``join`` and comprehensions):
  set iteration order varies with insertion/hash history; sort first.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Finding, Rule

WALLCLOCK_CALLS = {
    "time.time": "time.time() reads the wall clock",
    "datetime.datetime.now": "datetime.now() reads the wall clock",
    "datetime.datetime.utcnow": "datetime.utcnow() reads the wall clock",
    "datetime.datetime.today": "datetime.today() reads the wall clock",
    "datetime.date.today": "date.today() reads the wall clock",
}

#: Seeded-generator constructors that are fine (and the only sanctioned
#: entropy entry point when given an explicit seed).
SEEDED_FACTORIES = {"numpy.random.default_rng", "numpy.random.SeedSequence"}

#: ``random`` module attributes that are *not* draws.
RANDOM_MODULE_OK = {"random.Random", "random.SystemRandom", "random.getstate"}

#: Methods whose argument is a lookup/storage key.
KEYED_METHODS = {"get", "setdefault", "pop", "add", "discard", "remove", "__contains__"}

#: Order-sensitive consumers of an iterable argument.
ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "iter", "next"}


def _is_set_expr(module, node) -> bool:
    """Whether ``node`` statically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if module.resolve_call(node) in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra: s1 | s2 etc. — a set if either side clearly is.
        return _is_set_expr(module, node.left) or _is_set_expr(module, node.right)
    return False


class DeterminismChecker(Checker):
    name = "determinism"
    rules = (
        Rule(
            id="det-wallclock",
            summary="wall-clock read in a fingerprint-feeding module",
            incident=(
                "PR 5 soak: session fingerprints must be bit-identical across "
                "engines and replays; wall-clock reads diverge per run"
            ),
            hint="use the session's virtual clock, or time.perf_counter for pure measurement",
        ),
        Rule(
            id="det-unseeded-rng",
            summary="unseeded or global-state randomness",
            incident=(
                "PR 5 soak: every stochastic choice (pages, scripts, sampling) "
                "derives from an explicit seed so scenarios replay exactly"
            ),
            hint="thread an np.random.default_rng(seed) through instead",
        ),
        Rule(
            id="det-id-key",
            summary="id() used as a cache/dict/set key",
            incident=(
                "PR 5: the padded-expected cache was keyed by array id(); "
                "CPython recycles addresses, so fresh rasters hit stale "
                "entries — fixed by keying on tracked-state content"
            ),
            hint="key on content (digest, tracked-state key), not object identity",
        ),
        Rule(
            id="det-set-order",
            summary="set iteration order escaping into ordered data",
            incident=(
                "PR 5: expected-state composition had to be made order-"
                "independent; set iteration order varies with hash/insertion "
                "history and diverges fingerprints"
            ),
            hint="wrap in sorted(...) before iterating into ordered output",
        ),
    )

    def check(self, module, project) -> list:
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(module, node.iter):
                    findings.append(self._set_order(module, node.iter))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(module, gen.iter):
                        findings.append(self._set_order(module, gen.iter))
        return findings

    # -- individual detections ---------------------------------------------

    def _check_call(self, module, call: ast.Call) -> list:
        findings = []
        resolved = module.resolve_call(call)
        if resolved in WALLCLOCK_CALLS:
            findings.append(
                self._finding(module, call, "det-wallclock", WALLCLOCK_CALLS[resolved])
            )
        findings.extend(self._check_rng(module, call, resolved))
        if resolved == "id":
            finding = self._check_id_key(module, call)
            if finding is not None:
                findings.append(finding)
        if (
            resolved in ORDER_SENSITIVE_CALLS
            and call.args
            and _is_set_expr(module, call.args[0])
        ):
            findings.append(self._set_order(module, call))
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "join"
            and call.args
            and _is_set_expr(module, call.args[0])
        ):
            findings.append(self._set_order(module, call))
        return findings

    def _check_rng(self, module, call: ast.Call, resolved) -> list:
        if resolved is None:
            return []
        if resolved in SEEDED_FACTORIES:
            if not call.args and not call.keywords:
                return [
                    self._finding(
                        module,
                        call,
                        "det-unseeded-rng",
                        "np.random.default_rng() without a seed draws from OS entropy",
                    )
                ]
            return []
        if resolved.startswith("numpy.random.") and resolved not in (
            "numpy.random.Generator",
        ):
            return [
                self._finding(
                    module,
                    call,
                    "det-unseeded-rng",
                    f"legacy global-state draw {resolved.replace('numpy', 'np')}()",
                )
            ]
        if (
            resolved.startswith("random.")
            and resolved not in RANDOM_MODULE_OK
        ):
            return [
                self._finding(
                    module,
                    call,
                    "det-unseeded-rng",
                    f"{resolved}() draws from the process-global Mersenne state",
                )
            ]
        return []

    def _check_id_key(self, module, call: ast.Call):
        """Flag ``id()`` when its value flows into a key position."""
        prev = call
        for anc in module.ancestors(call):
            if isinstance(anc, ast.Subscript) and prev is not anc.value:
                return self._finding(
                    module, call, "det-id-key", "id() used as a subscript key"
                )
            if isinstance(anc, ast.Dict) and prev in anc.keys:
                return self._finding(
                    module, call, "det-id-key", "id() used as a dict-literal key"
                )
            if (
                isinstance(anc, ast.Call)
                and isinstance(anc.func, ast.Attribute)
                and anc.func.attr in KEYED_METHODS
                and prev in anc.args
            ):
                return self._finding(
                    module,
                    call,
                    "det-id-key",
                    f"id() passed to .{anc.func.attr}() as a key",
                )
            if isinstance(anc, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in anc.ops
            ):
                return self._finding(
                    module, call, "det-id-key", "id() membership-tested as a key"
                )
            if isinstance(anc, ast.stmt):
                break
            prev = anc
        return None

    # -- finding constructors ----------------------------------------------

    def _set_order(self, module, node) -> Finding:
        return self._finding(
            module,
            node,
            "det-set-order",
            "set iteration order escapes into ordered data (sort first)",
        )

    def _finding(self, module, node, rule: str, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            message=message,
            context=module.context_of(node),
            line_text=module.line_text(node.lineno),
        )
