"""The pluggable checker suite (one module per rule family)."""

from __future__ import annotations

from repro.analysis.checkers.concurrency import ConcurrencyChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.dtype import DtypeChecker
from repro.analysis.checkers.escape import EscapeChecker
from repro.analysis.checkers.hotpath import HotPathChecker
from repro.analysis.checkers.lifecycle import LifecycleChecker
from repro.analysis.checkers.locks import LockChecker

#: Every shipped checker, in report order.
ALL_CHECKERS = (
    DtypeChecker,
    DeterminismChecker,
    LockChecker,
    ConcurrencyChecker,
    EscapeChecker,
    HotPathChecker,
    LifecycleChecker,
)


def all_rules():
    """Every rule of every shipped checker (the ``--list-rules`` catalog)."""
    rules = []
    for checker_cls in ALL_CHECKERS:
        rules.extend(checker_cls.rules)
    return rules
