"""Hot-path allocation discipline: frozen forwards allocate nothing.

PR 4's frozen engine gets its speed from per-shape :class:`Workspace`
arenas — every scratch buffer is allocated once per ``(net, thread,
shape)`` and reused forever.  That guarantee decays one convenience
``np.zeros`` at a time, and nothing at runtime notices (the forward
still returns the right numbers, just slower and GC-churnier).  The
``hot-alloc`` rule pins it:

    Inside any function carrying ``@repro.analysis.hot_path`` (or pinned
    by config — the frozen stage executors and the runtime flush path),
    no array-allocating call is allowed: constructors (``np.zeros`` &
    co), copying converters (``ascontiguousarray``, ``.copy()``,
    ``.astype()``), concatenation builders, and whole-array ufunc-style
    ops *without* an ``out=`` target.

The designated allocation points (``Workspace.buf``'s one-time
``np.zeros``, the single documented result copy of a forward) carry
``allow[hot-alloc]`` pragmas naming their justification.
"""

from __future__ import annotations

import ast
import fnmatch

from repro.analysis.core import Checker, Finding, Rule, in_scope

#: Calls that always allocate a fresh array.
ALLOCATING_CALLS = {
    "numpy.zeros",
    "numpy.empty",
    "numpy.ones",
    "numpy.full",
    "numpy.array",
    "numpy.ascontiguousarray",
    "numpy.copy",
    "numpy.concatenate",
    "numpy.stack",
    "numpy.vstack",
    "numpy.hstack",
    "numpy.dstack",
    "numpy.tile",
    "numpy.repeat",
    "numpy.pad",
    "numpy.arange",
    "numpy.linspace",
    "numpy.meshgrid",
    "numpy.zeros_like",
    "numpy.empty_like",
    "numpy.ones_like",
    "numpy.full_like",
    "numpy.where",
}

#: Ufunc-style ops that allocate their result unless told where to write.
OUT_PARAM_CALLS = {
    "numpy.matmul",
    "numpy.dot",
    "numpy.add",
    "numpy.subtract",
    "numpy.multiply",
    "numpy.divide",
    "numpy.maximum",
    "numpy.minimum",
    "numpy.exp",
    "numpy.log",
    "numpy.clip",
}

#: Allocating array methods (``x.copy()``, ``x.astype(...)``).
ALLOCATING_METHODS = {"copy", "astype", "flatten", "tolist"}

#: The decorator spellings that mark a hot path.
HOT_DECORATORS = {"repro.analysis.hot_path", "analysis.hot_path", "hot_path"}


def _is_hot(module, fn_info, config) -> bool:
    if fn_info is None:
        return False
    for dec in fn_info.decorators:
        if dec in HOT_DECORATORS or dec.endswith(".hot_path"):
            return True
    pinned = f"{module.module}:{fn_info.qualname}"
    return any(fnmatch.fnmatch(pinned, pattern) for pattern in config.hot_functions)


class HotPathChecker(Checker):
    name = "hotpath"
    rules = (
        Rule(
            id="hot-alloc",
            summary="array allocation inside an allocation-free hot path",
            incident=(
                "PR 4: frozen forwards are allocation-free via per-shape "
                "Workspace arenas; a stray constructor silently re-introduces "
                "per-call allocation and GC churn on the hottest loop"
            ),
            hint=(
                "write into a Workspace buffer (ws.buf) or pass out=; the "
                "designated allocation point carries allow[hot-alloc]"
            ),
        ),
    )

    def check(self, module, project) -> list:
        findings = []
        for fn_id, fn_info in module.functions.items():
            if not _is_hot(module, fn_info, self.config):
                continue
            findings.extend(self._check_function(module, fn_info))
        return findings

    def _check_function(self, module, fn_info) -> list:
        findings = []
        for node in ast.walk(fn_info.node):
            if not isinstance(node, ast.Call):
                continue
            # Nested functions are their own (non-hot unless marked) scope.
            if module.enclosing_function(node).node is not fn_info.node:
                continue
            message = self._allocation_message(module, node)
            if message is None:
                continue
            findings.append(
                Finding(
                    rule="hot-alloc",
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=f"{message} inside hot path {fn_info.qualname}",
                    context=fn_info.qualname,
                    line_text=module.line_text(node.lineno),
                )
            )
        return findings

    def _allocation_message(self, module, call: ast.Call) -> str | None:
        resolved = module.resolve_call(call)
        short = (resolved or "").replace("numpy", "np")
        if resolved in ALLOCATING_CALLS:
            return f"allocating call {short}(...)"
        if resolved in OUT_PARAM_CALLS:
            if not any(kw.arg == "out" for kw in call.keywords):
                return f"{short}(...) without out= allocates its result"
            return None
        if isinstance(call.func, ast.Attribute) and call.func.attr in ALLOCATING_METHODS:
            # `.copy()` / `.flatten()` / `.tolist()` with no args, or any
            # `.astype(...)`: all produce a fresh array (or list).
            if call.func.attr == "astype" or (not call.args and not call.keywords):
                return f"allocating method .{call.func.attr}()"
        return None
