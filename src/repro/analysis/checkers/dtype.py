"""dtype discipline: the numeric stack is float32-clean by contract.

PR 4 hand-fixed a crop of silent float64 leaks (``one_hot`` defaulting
to float64, losses upcasting, dtype-less constructors) that made the
inference path slower and made training/frozen parity claims fragile.
These rules make the discipline mechanical inside ``repro.nn``,
``repro.vision`` and ``repro.raster``:

* ``dtype-float64`` — any spelled-out float64 (``np.float64``,
  ``dtype=float``, ``dtype="float64"``, ``astype(float)``): deliberate
  uses carry an ``allow`` pragma saying *why* double precision is right
  there (gradient checks, constant folding), accidental ones are leaks.
* ``dtype-missing`` — allocation constructors with no ``dtype=``
  (``np.zeros``/``np.empty``/``np.ones``/``np.full``) and
  ``np.array``/``np.asarray`` over a list/tuple literal: NumPy defaults
  every one of them to float64, so each is a promotion waiting to flow
  downstream.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Finding, Rule

#: Constructors that always take their dtype from the ``dtype=`` kwarg.
ALLOC_CALLS = {
    "numpy.zeros",
    "numpy.empty",
    "numpy.ones",
    "numpy.full",
}

#: Converters whose dtype is inferred from the payload: flagged only
#: when the payload is a literal display (where inference means float64
#: for any float content).
LITERAL_CONVERTERS = {
    "numpy.array",
    "numpy.asarray",
    "numpy.ascontiguousarray",
}

#: Spellings that name float64 outright.
FLOAT64_NAMES = {"numpy.float64", "float"}


def _names_float64(module, node) -> bool:
    """Whether expression ``node`` denotes the float64 dtype."""
    if isinstance(node, ast.Constant) and node.value in ("float64", "double", "f8"):
        return True
    resolved = module.resolve_name(node) if isinstance(node, (ast.Name, ast.Attribute)) else None
    return resolved in FLOAT64_NAMES


def _has_dtype_kwarg(call: ast.Call) -> bool:
    return any(kw.arg == "dtype" for kw in call.keywords)


class DtypeChecker(Checker):
    name = "dtype"
    rules = (
        Rule(
            id="dtype-float64",
            summary="explicit float64 in the float32-clean numeric stack",
            incident=(
                "PR 4: float64 leaks in one_hot/losses/sigmoid made the "
                "inference path silently upcast; frozen parity depends on "
                "float32 end-to-end"
            ),
            hint=(
                "use repro.nn.tensorops.DEFAULT_DTYPE (or np.float32); if "
                "double precision is deliberate, justify it with "
                "# witness-lint: allow[dtype-float64] -- <why>"
            ),
        ),
        Rule(
            id="dtype-missing",
            summary="array constructor with no dtype= (defaults to float64)",
            incident=(
                "PR 4: dtype-less np.zeros/np.array constructors were how "
                "most float64 leaks entered the model-input pipeline"
            ),
            hint="pass dtype= explicitly (DEFAULT_DTYPE / vision.image.DTYPE)",
        ),
    )

    def check(self, module, project) -> list:
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Name, ast.Attribute)):
                if module.resolve_name(node) == "numpy.float64":
                    findings.append(self._float64_finding(module, node, "np.float64"))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node))
        # Deduplicate: an `astype(np.float64)` call hits both the name
        # walk and the call walk; keep the first finding per location.
        unique = {}
        for f in findings:
            unique.setdefault((f.line, f.col, f.rule), f)
        return list(unique.values())

    def _check_call(self, module, call: ast.Call) -> list:
        findings = []
        resolved = module.resolve_call(call)
        # dtype=float / dtype="float64" on any call.
        for kw in call.keywords:
            if kw.arg == "dtype" and _names_float64(module, kw.value):
                if module.resolve_name(kw.value) != "numpy.float64":  # np.float64 already flagged
                    findings.append(
                        self._float64_finding(module, kw.value, "dtype=float64")
                    )
        # .astype(float) / .astype("float64")
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "astype"
            and call.args
            and _names_float64(module, call.args[0])
            and module.resolve_name(call.args[0]) != "numpy.float64"
        ):
            findings.append(self._float64_finding(module, call, "astype(float64)"))
        if resolved in ALLOC_CALLS and not _has_dtype_kwarg(call):
            findings.append(
                Finding(
                    rule="dtype-missing",
                    path=module.path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"{resolved.replace('numpy', 'np')}(...) without dtype= "
                        "defaults to float64"
                    ),
                    context=module.context_of(call),
                    line_text=module.line_text(call.lineno),
                )
            )
        elif (
            resolved in LITERAL_CONVERTERS
            and not _has_dtype_kwarg(call)
            and call.args
            and isinstance(call.args[0], (ast.List, ast.Tuple))
        ):
            findings.append(
                Finding(
                    rule="dtype-missing",
                    path=module.path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"{resolved.replace('numpy', 'np')}(<literal>) without "
                        "dtype= promotes float content to float64"
                    ),
                    context=module.context_of(call),
                    line_text=module.line_text(call.lineno),
                )
            )
        return findings

    def _float64_finding(self, module, node, spelling: str) -> Finding:
        return Finding(
            rule="dtype-float64",
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            message=f"{spelling} inside the float32-clean stack",
            context=module.context_of(node),
            line_text=module.line_text(node.lineno),
        )
