"""Lock discipline: a class that owns a lock must use it on every write.

PR 3's ``SessionRegistry`` race was exactly this shape: the class owned
``self._lock``, ``register()`` updated ``self._total_opened`` and
``self._peak_active`` under it, but the stats readers (and one writer
path) touched the bare attributes — torn pairs under concurrency, found
by hand.  The ``lock-guard`` rule makes the contract mechanical:

    In any class that assigns ``self.<x> = threading.Lock()`` (or
    ``RLock``/``Condition``), every write to a ``self._``-prefixed
    attribute outside ``__init__``/``__new__`` must sit lexically inside
    a ``with self.<x>:`` block.

Caller-holds-lock protocols (the matchers' ``infer_lock``) are real and
legitimate — they carry an ``allow[lock-guard]`` pragma naming the
protocol, so the exception is visible and audited rather than silent.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Finding, Rule

#: Methods whose writes establish, rather than mutate, the guarded state.
CONSTRUCTOR_METHODS = {"__init__", "__new__", "__post_init__"}


def _write_targets(node):
    """Yield the target expressions a statement writes to."""
    if isinstance(node, ast.Assign):
        yield from node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(node, ast.AnnAssign) and node.value is None:
            return
        yield node.target
    elif isinstance(node, ast.Delete):
        yield from node.targets


def _self_private_attr(target) -> str | None:
    """``_name`` if ``target`` writes ``self._name`` (or ``self._d[k]``)."""
    if isinstance(target, ast.Tuple):
        for elt in target.elts:
            attr = _self_private_attr(elt)
            if attr is not None:
                return attr
        return None
    if isinstance(target, ast.Subscript):
        target = target.value
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
        and target.attr.startswith("_")
        and not target.attr.startswith("__")
    ):
        return target.attr
    return None


def _locks_held(module, node, lock_attrs) -> bool:
    """Whether ``node`` sits inside a ``with self.<lock>:`` block."""
    for anc in module.ancestors(node):
        if isinstance(anc, (ast.With, ast.AsyncWith)):
            for item in anc.items:
                expr = item.context_expr
                # accept `with self._lock:` and `with self._cond:` plus
                # explicit `with self._lock.acquire_timeout(...)` shapes.
                if isinstance(expr, ast.Call):
                    expr = expr.func
                while isinstance(expr, ast.Attribute) and expr.attr not in lock_attrs:
                    expr = expr.value
                if (
                    isinstance(expr, ast.Attribute)
                    and expr.attr in lock_attrs
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                ):
                    return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            break
    return False


class LockChecker(Checker):
    name = "locks"
    rules = (
        Rule(
            id="lock-guard",
            summary="write to self._<attr> outside the owning class's lock",
            incident=(
                "PR 3: SessionRegistry.total_opened/peak_active were written "
                "under the registry lock but exposed as bare attributes — a "
                "torn-pair stats race fixed by hand; this rule catches the "
                "shape at commit time"
            ),
            hint=(
                "wrap the write in `with self._lock:`; for caller-holds-lock "
                "protocols add # witness-lint: allow[lock-guard] -- <protocol>"
            ),
        ),
    )

    def check(self, module, project) -> list:
        findings = []
        for class_info in module.classes.values():
            if not class_info.lock_attrs:
                continue
            findings.extend(self._check_class(module, class_info))
        return findings

    def _check_class(self, module, class_info) -> list:
        findings = []
        lock_attrs = set(class_info.lock_attrs)
        for node in ast.walk(class_info.node):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
                continue
            fn = module.enclosing_function(node)
            if fn is None or fn.qualname.split(".")[-1] in CONSTRUCTOR_METHODS:
                continue
            # Only police writes belonging to *this* class's methods (a
            # nested class with its own lock is checked on its own turn).
            owner = module.enclosing_class(node)
            if owner is not class_info:
                continue
            for target in _write_targets(node):
                attr = _self_private_attr(target)
                if attr is None or attr in lock_attrs:
                    continue
                if _locks_held(module, node, lock_attrs):
                    continue
                findings.append(
                    Finding(
                        rule="lock-guard",
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{class_info.name} owns {sorted(lock_attrs)} but "
                            f"writes self.{attr} outside any `with self.<lock>:` block"
                        ),
                        context=module.context_of(node),
                        line_text=module.line_text(node.lineno),
                    )
                )
        return findings
