"""Interprocedural lock discipline: ordering cycles, blocking under locks.

Built on the :mod:`repro.analysis.callgraph` pass.  Two rules:

``conc-lock-cycle``
    The project-wide lock-order graph (every ``with`` nesting, direct or
    reached through resolvable calls, plus the declared ledger in
    ``AnalysisConfig.declared_lock_order``) must be acyclic.  A cycle
    means two threads can acquire the participating locks in opposite
    orders — the classic deadlock — and every *site* contributing an
    edge to a cycle is reported, so an AB/BA pair yields a finding at
    each half.

``conc-blocking-under-lock``
    No blocking operation may be reachable while a lock is held:
    ``Condition.wait``/``Event.wait`` (except waiting on the very
    condition being held — that is what conditions are for),
    ``Thread.join``/``Queue`` ops on typed receivers, ``time.sleep``,
    and model forwards by method name.  PR 9 established the shape this
    protects: the flusher's restart backoff sleeps *outside* ``_cond``
    and the batcher re-queues crashed batches under the lock but
    executes nothing there — one misplaced sleep or forward serializes
    every submitting session behind it (or deadlocks it outright if the
    blocked path needs the held lock to make progress).
"""

from __future__ import annotations

from repro.analysis import callgraph
from repro.analysis.core import Checker, Finding, Rule


def _chain_text(via: tuple) -> str:
    return " -> ".join(via)


class ConcurrencyChecker(Checker):
    name = "concurrency"
    rules = (
        Rule(
            id="conc-lock-cycle",
            summary="lock-acquisition ordering cycle (potential deadlock)",
            incident=(
                "PR 9 made the runtime's locks nest across classes for the "
                "first time (flusher supervision re-queues under _cond while "
                "metrics instruments take the registry's locks); ROADMAP "
                "item 1 multiplies the lock owners across processes — an "
                "ordering cycle anywhere in that graph is a deadlock waiting "
                "for load"
            ),
            hint=(
                "acquire locks in one global order (see the declared ledger "
                "in AnalysisConfig.declared_lock_order / CONTRIBUTING); "
                "break the cycle by narrowing one critical section or "
                "deferring the inner acquisition until the outer lock drops"
            ),
        ),
        Rule(
            id="conc-blocking-under-lock",
            summary="blocking operation reachable while a lock is held",
            incident=(
                "PR 9's flusher supervision: the restart backoff sleep and "
                "the submitter rendezvous wait deliberately sit outside "
                "_cond — earlier drafts stalled every submitting session "
                "behind one crashed flush by blocking under the lock"
            ),
            hint=(
                "move the wait/sleep/forward outside the critical section "
                "(take what you need under the lock, release, then block); "
                "for deliberate serialize-under-lock protocols add "
                "# witness-lint: allow[conc-blocking-under-lock] -- <protocol>"
            ),
        ),
    )

    def check(self, module, project) -> list:
        graph = callgraph.get(project, self.config)
        findings = []
        findings.extend(self._cycle_findings(graph, module))
        findings.extend(self._blocking_findings(graph, module))
        return findings

    # -- conc-lock-cycle -----------------------------------------------------

    def _cycle_findings(self, graph, module) -> list:
        cyclic = graph.cycle_pairs()
        findings = []
        seen = set()
        for edge in graph.edges:
            if edge.module is not module:
                continue
            pair = (edge.src, edge.dst)
            if pair not in cyclic:
                continue
            dedup = (edge.line, pair)
            if dedup in seen:
                continue
            seen.add(dedup)
            via = f" via {_chain_text(edge.via)}" if edge.via else ""
            findings.append(
                Finding(
                    rule="conc-lock-cycle",
                    path=module.path,
                    line=edge.line,
                    col=edge.col,
                    message=(
                        f"acquiring {edge.dst} while holding {edge.src}{via} "
                        "closes a lock-order cycle (opposite-order acquisition "
                        "elsewhere in the graph can deadlock here)"
                    ),
                    context=edge.func[len(module.module) + 1 :],
                    line_text=module.line_text(edge.line),
                )
            )
        return findings

    # -- conc-blocking-under-lock -------------------------------------------

    def _blocking_findings(self, graph, module) -> list:
        findings = []
        for fn in graph.functions_of(module):
            for op in fn.blocking:
                hazards = [h for h in op.held if h != op.releases]
                if not hazards:
                    continue
                findings.append(
                    Finding(
                        rule="conc-blocking-under-lock",
                        path=module.path,
                        line=op.line,
                        col=op.col,
                        message=(
                            f"{op.desc} blocks while holding "
                            f"{', '.join(sorted(hazards))}"
                        ),
                        context=fn.info.qualname,
                        line_text=module.line_text(op.line),
                    )
                )
            seen_calls = set()
            for site in fn.calls:
                if not site.held or site.line in seen_calls:
                    continue
                callee = graph.functions.get(site.callee)
                if callee is None or not callee.may_block:
                    continue
                for desc, (chain, releases) in callee.may_block.items():
                    hazards = [h for h in site.held if h != releases]
                    if not hazards:
                        continue
                    seen_calls.add(site.line)
                    findings.append(
                        Finding(
                            rule="conc-blocking-under-lock",
                            path=module.path,
                            line=site.line,
                            col=site.col,
                            message=(
                                f"call to {site.callee} may block ({desc} via "
                                f"{_chain_text(chain)}) while holding "
                                f"{', '.join(sorted(hazards))}"
                            ),
                            context=fn.info.qualname,
                            line_text=module.line_text(site.line),
                        )
                    )
                    break  # one finding per call site
        return findings
