"""Finding reports: human text, machine JSON, GitHub annotations.

``--format=text`` is the terminal default (grouped by file, with rule
ids and the offending line); ``--format=json`` is the machine-readable
findings report consumed by tooling; ``--format=github`` emits
``::error``/``::warning`` workflow commands so CI findings surface as
inline PR annotations.
"""

from __future__ import annotations

import json

from repro.analysis.checkers import all_rules


def render_text(result) -> str:
    lines = []
    if result.findings:
        lines.append(f"witness-lint: {len(result.findings)} finding(s)")
        lines.append("")
        current = None
        for f in result.findings:
            if f.path != current:
                current = f.path
                lines.append(f"{f.path}:")
            lines.append(f"  {f.line}:{f.col}  [{f.rule}]  {f.message}  (in {f.context})")
            if f.line_text:
                lines.append(f"      > {f.line_text}")
        lines.append("")
    summary = (
        f"{result.modules_scanned} module(s) scanned, "
        f"{len(result.findings)} new finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.suppressed)} pragma-suppressed"
    )
    lines.append(("FAIL  " if result.findings else "OK  ") + summary)
    if result.stale_baseline:
        lines.append(
            f"note: {len(result.stale_baseline)} stale baseline entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} matched "
            "nothing (fixed code? remove them):"
        )
        for entry in result.stale_baseline:
            lines.append(f"  - [{entry.rule}] {entry.file} ({entry.context})")
    return "\n".join(lines)


def render_json(result) -> str:
    def finding_json(f):
        return {
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "message": f.message,
            "context": f.context,
            "line_text": f.line_text,
        }

    payload = {
        "clean": result.clean,
        "modules_scanned": result.modules_scanned,
        "findings": [finding_json(f) for f in result.findings],
        "baselined": [finding_json(f) for f in result.baselined],
        "suppressed": [
            {**finding_json(f), "justification": pragma.justification}
            for f, pragma in result.suppressed
        ],
        "stale_baseline": [entry.to_json() for entry in result.stale_baseline],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _escape_data(value: str) -> str:
    """Escape a workflow-command message per the actions spec."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _escape_prop(value: str) -> str:
    """Escape a workflow-command property (also : and ,)."""
    return _escape_data(value).replace(":", "%3A").replace(",", "%2C")


def render_github(result) -> str:
    lines = []
    for f in result.findings:
        lines.append(
            f"::error file={_escape_prop(f.path)},line={f.line},col={f.col + 1},"
            f"title={_escape_prop(f'witness-lint {f.rule}')}::{_escape_data(f.message)}"
        )
    for entry in result.stale_baseline:
        lines.append(
            f"::warning title=witness-lint stale baseline::"
            f"{_escape_data(f'[{entry.rule}] {entry.file} ({entry.context}) matched nothing')}"
        )
    lines.append(
        f"witness-lint: {len(result.findings)} new, {len(result.baselined)} "
        f"baselined, {len(result.suppressed)} suppressed over "
        f"{result.modules_scanned} modules"
    )
    return "\n".join(lines)


def render_rules() -> str:
    """The ``--list-rules`` catalog with incident lineage."""
    lines = ["witness-lint rule catalog", ""]
    for rule in all_rules():
        lines.append(f"{rule.id}")
        lines.append(f"    {rule.summary}")
        lines.append(f"    incident: {rule.incident}")
        lines.append(f"    fix: {rule.hint}")
        lines.append("")
    return "\n".join(lines).rstrip()


FORMATS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}
