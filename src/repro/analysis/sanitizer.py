"""witness-san: the runtime twin of the static concurrency checkers.

The callgraph pass (:mod:`repro.analysis.callgraph`) is deliberately
conservative: calls through untyped callables resolve to nothing, lock
objects handed across constructors alias invisibly, and dynamic
dispatch hides nesting entirely.  This module closes that gap from the
other side — it *observes* the concurrency the process actually
performs and cross-checks it against the static model:

* ``threading.Lock`` / ``RLock`` / ``Condition`` are monkeypatched with
  wrapper factories while enabled.  Only locks created by modules under
  the tracked prefixes (``repro.*``) are wrapped — stdlib internals
  (``queue``, ``concurrent.futures``, ``logging``) get real locks, so
  instrumentation never changes their behavior.  Each wrapped lock
  resolves its own stable node id lazily (scan the creating ``self``'s
  attributes, else the creating module's globals), producing exactly
  the ids the callgraph uses: ``module.Class.attr`` / ``module.NAME``.
* every acquisition records the ``held -> new`` ordering pairs for the
  acquiring thread (a per-thread stack with reentrancy depths;
  ``Condition.wait`` keeps the stack unchanged — the wait atomically
  releases and reacquires the same condition).
* pooled-buffer checkouts are ownership-tagged: ``PlanBuffers.reserve``
  and ``_Arena.workspace`` call :meth:`SanitizerState.note_pool_use`
  through the module-global ``_SAN`` seam (``None`` when disabled — the
  ``NULL_SPAN`` / ``FaultInjector`` disarmed pattern, one ``is None``
  test of overhead).  The first reservation claims the pool for its
  thread; any later reservation from another thread is a confinement
  violation, however the reference traveled.

:meth:`SanitizerState.check` then fails on

* **inversions** — both ``(A, B)`` and ``(B, A)`` observed at runtime
  (a deadlock needs only unlucky timing);
* **unmodeled edges** — a runtime ordering outside the transitive
  closure of the static graph (inferred edges plus the declared ledger
  in ``AnalysisConfig.declared_lock_order``): either the nesting is new
  and must join the ledger, or the static pass has a blind spot worth
  recording;
* **pool violations** — cross-thread pooled-buffer use.

Module-level locks created at import time (``infer._TWIN_LOCK``,
``zoo._REGISTRY_LOCK``) predate :func:`enable` and stay real: the
sanitizer observes orderings among locks created while armed, which in
practice means every per-object runtime lock.  Zero cost when off:
nothing is patched and the pool seam is a ``None`` check.
"""

from __future__ import annotations

import contextlib
import sys
import threading
import weakref

#: Only locks created by these module prefixes are wrapped.
TRACKED_PREFIXES = ("repro",)


def _creator_context():
    """(module name, weakref to creating ``self``) of a factory call."""
    frame = sys._getframe(2)  # factory -> caller
    module = frame.f_globals.get("__name__", "")
    owner = frame.f_locals.get("self")
    ref = None
    if owner is not None:
        try:
            ref = weakref.ref(owner)
        except TypeError:
            ref = None
    return module, ref


class _Tracked:
    """Shared wrapper behavior: delegation plus lazy node-id naming."""

    __slots__ = ("_state", "_real", "_san_module", "_san_owner", "_san_seq", "_san_name", "__weakref__")

    def __init__(self, state, real, module, owner_ref, seq) -> None:
        self._state = state
        self._real = real
        self._san_module = module
        self._san_owner = owner_ref
        self._san_seq = seq
        self._san_name = None

    # -- naming --------------------------------------------------------------

    def san_name(self) -> str:
        """This lock's node id (callgraph format), resolved once.

        Resolution order mirrors how repro code creates locks: an
        attribute on the object whose ``__init__`` ran the factory
        (``self._lock = threading.Lock()`` — including locks *handed on*
        to other objects, which keep their creator's name, exactly the
        aliasing the declared ledger documents), else a global of the
        creating module, else a stable per-creation fallback.
        """
        if self._san_name is None:
            self._san_name = self._resolve_name()
        return self._san_name

    def _resolve_name(self) -> str:
        owner = self._san_owner() if self._san_owner is not None else None
        if owner is not None:
            attrs = getattr(owner, "__dict__", None) or {}
            for attr, value in attrs.items():
                if value is self:
                    cls = type(owner)
                    return f"{cls.__module__}.{cls.__qualname__}.{attr}"
        mod = sys.modules.get(self._san_module)
        if mod is not None:
            for name, value in vars(mod).items():
                if value is self:
                    return f"{self._san_module}.{name}"
        return f"{self._san_module}.<lock#{self._san_seq}>"

    # -- lock protocol -------------------------------------------------------

    def acquire(self, *args, **kwargs):
        got = self._real.acquire(*args, **kwargs)
        if got:
            self._state.note_acquire(self)
        return got

    def release(self):
        self._state.note_release(self)
        self._real.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False


class _SanLock(_Tracked):
    """Wrapped ``Lock``/``RLock`` (the real lock keeps the semantics)."""

    __slots__ = ()

    def locked(self):
        return self._real.locked()


class _SanCondition(_Tracked):
    """Wrapped ``Condition``.

    ``wait``/``wait_for`` delegate with the per-thread stack unchanged:
    the real condition atomically releases and reacquires its own lock,
    so from an ordering standpoint the thread still "holds" it for the
    whole critical section (and acquires nothing while parked).
    """

    __slots__ = ()

    def wait(self, timeout=None):
        return self._real.wait(timeout)

    def wait_for(self, predicate, timeout=None):
        return self._real.wait_for(predicate, timeout)

    def notify(self, n=1):
        return self._real.notify(n)

    def notify_all(self):
        return self._real.notify_all()


class SanitizerState:
    """Everything one armed session records, plus the cross-check."""

    def __init__(self, prefixes=TRACKED_PREFIXES) -> None:
        self.prefixes = tuple(prefixes)
        self._orig = None  # (Lock, RLock, Condition) while installed
        self._tls = threading.local()
        # Internal bookkeeping uses a *real* lock, held only as a leaf
        # around dict updates — it is invisible to its own tracking.
        self._book = threading.Lock()
        self.pairs: dict = {}  # (src, dst) node ids -> first site seen
        self.violations: list = []
        self.acquires = 0
        self.pool_checks = 0
        self._seq = 0

    # -- install / uninstall -------------------------------------------------

    def install(self) -> None:
        if self._orig is not None:
            return
        self._orig = (threading.Lock, threading.RLock, threading.Condition)
        orig_lock, orig_rlock, orig_cond = self._orig
        state = self

        def make_lock(orig):
            def factory():
                module, owner_ref = _creator_context()
                if not module.startswith(state.prefixes):
                    return orig()
                return _SanLock(state, orig(), module, owner_ref, state._next_seq())

            return factory

        def condition_factory(lock=None):
            module, owner_ref = _creator_context()
            inner = lock._real if isinstance(lock, _Tracked) else lock
            if not module.startswith(state.prefixes):
                return orig_cond(inner) if inner is not None else orig_cond()
            real = orig_cond(inner) if inner is not None else orig_cond()
            return _SanCondition(state, real, module, owner_ref, state._next_seq())

        threading.Lock = make_lock(orig_lock)
        threading.RLock = make_lock(orig_rlock)
        threading.Condition = condition_factory
        self._set_seams(self)

    def uninstall(self) -> None:
        if self._orig is None:
            return
        threading.Lock, threading.RLock, threading.Condition = self._orig
        self._orig = None
        self._set_seams(None)

    @staticmethod
    def _set_seams(value) -> None:
        from repro.core import planbuf
        from repro.nn import infer

        planbuf._SAN = value
        infer._SAN = value

    def _next_seq(self) -> int:
        with self._book:
            self._seq += 1
            return self._seq

    # -- event recording -----------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def note_acquire(self, wrapper) -> None:
        stack = self._stack()
        for entry in stack:
            if entry[0] is wrapper:  # RLock reentry: no new ordering
                entry[1] += 1
                return
        if stack:
            dst = wrapper.san_name()
            # Anonymous locks never join ordering pairs: a name that
            # resolves to neither an owner attribute nor a module global
            # is almost always a lock created *through* repro code by a
            # C-level callee (numpy's Generator lock under
            # ``default_rng``) — C calls push no Python frame, so the
            # creator filter sees the repro caller.  Such locks have no
            # static node to check against; repro's own locks all
            # resolve (every one is ``self.<attr>`` or a module global).
            if "<lock#" not in dst:
                for held, _depth in stack:
                    src = held.san_name()
                    if src != dst and "<lock#" not in src:
                        self._record_pair(src, dst)
        stack.append([wrapper, 1])
        self.acquires += 1

    def note_release(self, wrapper) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] is wrapper:
                stack[i][1] -= 1
                if stack[i][1] == 0:
                    del stack[i]
                return

    def _record_pair(self, src: str, dst: str) -> None:
        key = (src, dst)
        if key in self.pairs:  # racy pre-check; setdefault settles it
            return
        site = f"{_caller_site()} [{threading.current_thread().name}]"
        with self._book:
            self.pairs.setdefault(key, site)

    def note_pool_use(self, pool, kind: str) -> None:
        """Ownership check for one pooled checkout (see module doc)."""
        self.pool_checks += 1
        ident = threading.get_ident()
        owner = pool.owner_ident
        if owner is None:
            pool.owner_ident = ident
            return
        if owner != ident:
            thread = threading.current_thread().name
            with self._book:
                self.violations.append(
                    f"cross-thread {kind} access: pool owned by thread id "
                    f"{owner} used from {thread!r} at {_caller_site()} — "
                    "pooled buffers are thread-confined (reserve from the "
                    "receiving thread's own pool, or .copy() the data)"
                )

    # -- the cross-check ------------------------------------------------------

    def check(self, model=None) -> list:
        """Problem strings: inversions, unmodeled edges, pool violations."""
        with self._book:
            pairs = dict(self.pairs)
            problems = list(self.violations)
        for (a, b), site in sorted(pairs.items()):
            if a < b and (b, a) in pairs:
                problems.append(
                    f"lock-order inversion: {a} <-> {b} "
                    f"({site} vs {pairs[(b, a)]})"
                )
        if model is None:
            model = static_lock_model()
        for (a, b), site in sorted(pairs.items()):
            if (a, b) not in model:
                problems.append(
                    f"unmodeled lock-order edge {a} -> {b} at {site}: add "
                    "it to AnalysisConfig.declared_lock_order (the static "
                    "pass cannot see this nesting) or fix the nesting"
                )
        return problems

    def summary(self) -> dict:
        with self._book:
            return {
                "acquires": self.acquires,
                "pairs": len(self.pairs),
                "pool_checks": self.pool_checks,
                "violations": len(self.violations),
            }


def _caller_site() -> str:
    """First frame outside this module and ``threading`` (the real site)."""
    frame = sys._getframe(1)
    here = __name__
    while frame is not None:
        mod = frame.f_globals.get("__name__", "")
        if mod != here and mod != "threading":
            return f"{frame.f_code.co_filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


# ---------------------------------------------------------------------------
# The static model (computed lazily; the check's reference truth)
# ---------------------------------------------------------------------------

_MODEL_CACHE = None


def static_lock_model(paths=None, refresh: bool = False) -> frozenset:
    """Transitive closure of the static lock-order graph over ``paths``
    (default: the installed ``repro`` sources) — inferred edges plus the
    declared ledger.  Runtime orderings must stay inside this set.
    """
    global _MODEL_CACHE
    if _MODEL_CACHE is not None and not refresh and paths is None:
        return _MODEL_CACHE
    from repro.analysis import callgraph
    from repro.analysis.cli import default_target
    from repro.analysis.core import AnalysisConfig
    from repro.analysis.resolve import Project

    project = Project.from_paths(list(paths) if paths is not None else [default_target()])
    graph = callgraph.get(project, AnalysisConfig())
    model = callgraph.transitive_closure(graph.edge_pairs())
    if paths is None:
        _MODEL_CACHE = model
    return model


# ---------------------------------------------------------------------------
# Arming
# ---------------------------------------------------------------------------

_STATE: SanitizerState | None = None


def enable(prefixes=TRACKED_PREFIXES) -> SanitizerState:
    """Arm the sanitizer (idempotent); returns the active state."""
    global _STATE
    if _STATE is None:
        _STATE = SanitizerState(prefixes)
        _STATE.install()
    return _STATE


def disable() -> SanitizerState | None:
    """Disarm and return the final state (None if never armed)."""
    global _STATE
    state, _STATE = _STATE, None
    if state is not None:
        state.uninstall()
    return state


def current() -> SanitizerState | None:
    return _STATE


@contextlib.contextmanager
def sanitized(prefixes=TRACKED_PREFIXES):
    """``with sanitized() as state:`` — armed for the block's duration."""
    state = enable(prefixes)
    try:
        yield state
    finally:
        disable()
