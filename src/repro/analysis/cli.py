"""``python -m repro.analysis`` — the witness-lint command line.

Exit codes: 0 clean (baselined/suppressed findings don't fail the run),
1 new findings, 2 usage error.  With no path arguments the scanned tree
defaults to the installed ``repro`` package sources (so CI and local
runs agree without spelling the path).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.baseline import Baseline, discover_baseline
from repro.analysis.core import AnalysisConfig
from repro.analysis.report import FORMATS, render_rules
from repro.analysis.runner import run_analysis


def default_target() -> str:
    """The ``repro`` package source tree this module was imported from."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "witness-lint: AST invariant checks for dtype, determinism, "
            "lock, hot-path-allocation and frozen-lifecycle discipline"
        ),
    )
    parser.add_argument(
        "paths_pos",
        nargs="*",
        metavar="path",
        help="files or directories to scan (default: the repro package sources)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(FORMATS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: witness-lint-baseline.json discovered upward)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from current findings (keeps old justifications)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report the full debt)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (with incident lineage) and exit",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="RULE[,RULE...]",
        help="run only these rule ids (comma-separated), e.g. "
        "--only conc-lock-cycle,conc-escape",
    )
    parser.add_argument(
        "--paths",
        nargs="+",
        default=None,
        metavar="FILE",
        help="additional files/directories to scan (alongside positional "
        "paths; lets pre-commit pass just the changed files)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rules())
        return 0

    paths = list(args.paths_pos) + list(args.paths or [])
    if not paths:
        paths = [default_target()]
    for path in paths:
        if not os.path.exists(path):
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2

    only = None
    if args.only:
        only = [r.strip() for r in args.only.split(",") if r.strip()]
        if not only:
            print("error: --only given but no rule ids parsed", file=sys.stderr)
            return 2

    baseline = Baseline.empty()
    baseline_path = args.baseline
    if not args.no_baseline:
        if baseline_path is None:
            baseline_path = discover_baseline(paths[0])
        if baseline_path is not None:
            baseline = Baseline.load(baseline_path)

    try:
        result = run_analysis(
            paths, config=AnalysisConfig(), baseline=baseline, only=only
        )
    except ValueError as exc:  # unknown --only rule id
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        fresh = Baseline.from_findings(result.findings + result.baselined, previous=baseline)
        out_path = fresh.save(baseline_path or args.baseline)
        print(f"baseline rewritten: {out_path} ({len(fresh.entries)} entries)")
        return 0

    print(FORMATS[args.format](result))
    return 0 if result.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
