"""Replay attacks on certified requests and VSPECs (paper §V-A)."""

from __future__ import annotations

from dataclasses import replace

from repro.crypto.signing import CertifiedRequest


class ReplayAttacker:
    """Captures certified requests and replays them later.

    The signature is valid (it really was signed by vWitness), so the
    defense is entirely the session-ID freshness check: each VSPEC's
    nonce is accepted exactly once.
    """

    def __init__(self) -> None:
        self.captured: list = []

    def capture(self, request: CertifiedRequest) -> None:
        self.captured.append(request)

    def replay_last(self) -> CertifiedRequest:
        if not self.captured:
            raise RuntimeError("nothing captured to replay")
        return self.captured[-1]

    def replay_with_body_swap(self, **overrides) -> CertifiedRequest:
        """Replay with a modified body (breaks the signature — detectable)."""
        original = self.replay_last()
        body = dict(original.body)
        body.update(overrides)
        return replace(original, body=body)

    def replay_with_stale_vspec(self, stale_digest: str) -> CertifiedRequest:
        """Re-bind the request to an old VSPEC digest (breaks the signature)."""
        return replace(self.replay_last(), vspec_digest=stale_digest)
