"""UI tampering attacks (paper Fig. 2, Table I row 3).

Privileged malware can paint anything into the framebuffer.  These
helpers implement the classic shapes: swapping displayed text (the paper's
"only the displayed text are altered" example), overlaying opaque decoys,
and full click-redressing where a benign-looking screen hides the real
page.
"""

from __future__ import annotations

import numpy as np

from repro.raster.stacks import RenderStack, reference_stack
from repro.raster.text import render_text_line
from repro.vision.image import Image
from repro.web.hypervisor import Machine


def swap_text_on_display(
    machine: Machine,
    x: int,
    y: int,
    new_text: str,
    size: int = 16,
    stack: RenderStack | None = None,
    background: float = 255.0,
) -> None:
    """Overwrite a text region with different text (e.g. "No" -> "Yes").

    Renders the replacement with the client's own stack so the forgery is
    pixel-plausible — the attack the CNN text verifier must catch
    semantically, not via rendering artifacts.
    """
    stack = stack or reference_stack()
    line = render_text_line(new_text, size=size, stack=stack, background=background)
    fb = machine.framebuffer_handle()
    w = min(line.width, fb.width - x)
    h = min(line.height, fb.height - y)
    if w <= 0 or h <= 0:
        raise ValueError(f"tamper region ({x},{y}) outside the display")
    fb.fill_rect(x, y, w, h, background)
    fb.paste(line.crop(0, 0, w, h), x, y)


def overlay_rectangle(machine: Machine, x: int, y: int, w: int, h: int, color: float = 255.0, text: str = "") -> None:
    """Paint an opaque rectangle (optionally labelled) over the UI.

    The clickjacking building block: hide a sensitive element behind an
    innocuous-looking surface.
    """
    fb = machine.framebuffer_handle()
    fb.fill_rect(x, y, w, h, color)
    if text:
        line = render_text_line(text, size=14, background=color)
        tw = min(line.width, w - 4)
        th = min(line.height, h - 4)
        if tw > 0 and th > 0:
            fb.paste(line.crop(0, 0, tw, th), x + (w - tw) // 2, y + (h - th) // 2)


def redress_ui(machine: Machine, decoy: Image) -> None:
    """Replace the whole display with a decoy screen (full redressing)."""
    fb = machine.framebuffer_handle()
    if decoy.shape != fb.shape:
        raise ValueError(f"decoy {decoy.shape} must match display {fb.shape}")
    fb.pixels[...] = decoy.pixels


def tamper_image_region(machine: Machine, x: int, y: int, region: Image) -> None:
    """Replace an image element's pixels (e.g. swap a trusted logo)."""
    fb = machine.framebuffer_handle()
    fb.paste(region, x, y)


def inject_text_into_image(machine: Machine, x: int, y: int, w: int, h: int, text: str) -> None:
    """Blend text into an existing image region (the Clickbench FN case)."""
    fb = machine.framebuffer_handle()
    char_size = max(8, min(h - 2, (w - 2) // max(len(text), 1)))
    line = render_text_line(text, size=char_size, background=255.0)
    tw = min(line.width, w)
    th = min(line.height, h)
    region = fb.pixels[y : y + th, x : x + tw]
    fb.pixels[y : y + th, x : x + tw] = region * (line.pixels[:th, :tw] / 255.0)


def shift_viewport_content(machine: Machine, dy: int, fill: float = 255.0) -> None:
    """Scroll the framebuffer content without the browser knowing.

    Misaligns what the user sees from what the page believes is shown —
    caught by viewport/element validation.
    """
    fb = machine.framebuffer_handle()
    fb.pixels[...] = np.roll(fb.pixels, dy, axis=0)
    if dy > 0:
        fb.pixels[:dy, :] = fill
    elif dy < 0:
        fb.pixels[dy:, :] = fill
