"""Time-of-check to time-of-use display flipping (paper §III-C, §V-A).

The attacker shows the tampered UI to the user but tries to restore the
honest UI whenever vWitness samples.  Against *periodic* sampling the
attacker wins by synchronizing; against the paper's randomized sampling
the flip is caught with probability proportional to how long the tampered
content stays up.
"""

from __future__ import annotations

import numpy as np

from repro.web.hypervisor import Machine


class DisplayFlipper:
    """Alternates the framebuffer between honest and tampered content.

    The attacker flips on a fixed period (it cannot observe dom0's
    sampling schedule).  ``drive(total_ms)`` advances the virtual clock in
    small steps, swapping content on the attacker's schedule; any vWitness
    sample that lands in a tampered window sees the tampering.
    """

    def __init__(
        self,
        machine: Machine,
        honest_pixels: np.ndarray,
        tampered_pixels: np.ndarray,
        period_ms: float = 400.0,
        tampered_fraction: float = 0.5,
        offset_ms: float = 0.0,
    ) -> None:
        if honest_pixels.shape != tampered_pixels.shape:
            raise ValueError("honest and tampered frames must share a shape")
        if not 0.0 < tampered_fraction < 1.0:
            raise ValueError(f"tampered_fraction must be in (0,1), got {tampered_fraction}")
        self.machine = machine
        self.honest = honest_pixels
        self.tampered = tampered_pixels
        self.period_ms = period_ms
        self.tampered_fraction = tampered_fraction
        self.offset_ms = offset_ms

    def content_at(self, t_ms: float) -> np.ndarray:
        phase = ((t_ms + self.offset_ms) % self.period_ms) / self.period_ms
        return self.tampered if phase < self.tampered_fraction else self.honest

    def drive(self, total_ms: float, step_ms: float = 10.0) -> None:
        """Run the flipping attack for ``total_ms`` of virtual time.

        The framebuffer is updated *before* each clock advance, so any
        sampling triggered by the advance observes the attacker's current
        content — the attacker gets the strongest possible timing.
        """
        elapsed = 0.0
        fb = self.machine.framebuffer_handle()
        while elapsed < total_ms:
            now = self.machine.clock.now()
            fb.pixels[...] = self.content_at(now + step_ms)
            self.machine.clock.advance(step_ms)
            elapsed += step_ms

    def evasion_probability(self) -> float:
        """P(one uniform random sample misses the tampered content)."""
        return 1.0 - self.tampered_fraction
