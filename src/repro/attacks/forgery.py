"""Request forgery/tampering and dishonest-extension attacks (Table I)."""

from __future__ import annotations

from repro.web.browser import Browser
from repro.web.extension import BrowserExtension, InputHint


def forge_request_body(page_values: dict, **overrides) -> dict:
    """Malware-constructed request: the page's values with attacker edits.

    This is Scranos-style request forgery — the body is indistinguishable
    from a legitimate one at the network level; only the missing/failed
    vWitness certification gives it away.
    """
    body = dict(page_values)
    body.update(overrides)
    return body


def tamper_request_field(body: dict, fieldname: str, new_value) -> dict:
    """In-flight request tampering (e.g. cryptocurrency address rewrite)."""
    if fieldname not in body:
        raise KeyError(f"request has no field {fieldname!r}")
    out = dict(body)
    out[fieldname] = new_value
    return out


class DishonestExtension(BrowserExtension):
    """An extension under malware control (paper §V-A).

    Supports the attack repertoire the paper analyzes: lying about the
    window width, forging input hints for values the user never entered,
    hinting wrong positions, delaying ``begin_session`` and submitting
    attacker-modified bodies.
    """

    def __init__(self, browser: Browser, server, vwitness) -> None:
        super().__init__(browser, server, vwitness)
        self.width_lie: int | None = None
        self.suppress_hints = False
        self.value_overrides: dict = {}

    def reported_width(self) -> int:
        if self.width_lie is not None:
            return self.width_lie
        return super().reported_width()

    def forge_hint(self, input_name: str, value: str, rect: tuple | None = None) -> None:
        """Hint an input update that never happened on the UI."""
        if rect is None:
            try:
                element = self.browser.page.find_input(input_name)
                rect = element.rect.as_tuple() if element.rect else (0, 0, 1, 1)
            except KeyError:
                rect = (0, 0, 1, 1)
        self.vwitness.receive_hint(
            InputHint(
                timestamp=self.browser.machine.clock.now(),
                input_name=input_name,
                rect=rect,
                value=value,
            )
        )

    def _on_input_changed(self, element, old_value, new_value) -> None:
        if self.suppress_hints:
            return
        if element.name in self.value_overrides:
            new_value = self.value_overrides[element.name]
        super()._on_input_changed(element, old_value, new_value)


def background_submit(browser: Browser, vwitness, body: dict):
    """Submit without the user: page logic driven directly by malware.

    No hardware I/O accompanies this submission, and the display never
    showed the values — both independently fatal to certification.
    """
    return vwitness.end_session(body)
