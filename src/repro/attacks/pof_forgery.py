"""Forged point-of-focus cues (paper §III-C2 / §IV-A).

An attacker may draw extra POFs to confuse vWitness about where the user
is typing — e.g. "the user thinks she is interacting with field A, but
vWitness is validating inputs from field B".  The consistency rules
(instance counts, same-field, mutual exclusivity) are the defense.
"""

from __future__ import annotations

from repro.vision.components import Rect
from repro.web.hypervisor import Machine
from repro.web.render import DEFAULT_POF, POFStyle


def draw_fake_focus_outline(
    machine: Machine, rect: Rect, style: POFStyle = DEFAULT_POF
) -> None:
    """Paint a focus ring around an arbitrary rectangle."""
    fb = machine.framebuffer_handle()
    ring = rect.expanded(style.outline_margin)
    fb.draw_border(ring.x, ring.y, ring.w, ring.h, style.outline_intensity, style.outline_thickness)


def draw_fake_caret(machine: Machine, x: int, y: int, height: int = 20, style: POFStyle = DEFAULT_POF) -> None:
    """Paint a caret where no input is happening."""
    fb = machine.framebuffer_handle()
    fb.draw_vline(x, y, height, style.caret_intensity, style.caret_width)


def draw_second_outline(machine: Machine, rect_a: Rect, rect_b: Rect, style: POFStyle = DEFAULT_POF) -> None:
    """The paper's dual-POF confusion attack: two fields appear focused."""
    draw_fake_focus_outline(machine, rect_a, style)
    draw_fake_focus_outline(machine, rect_b, style)


def draw_caret_and_highlight(
    machine: Machine, caret_x: int, caret_y: int, highlight: Rect, style: POFStyle = DEFAULT_POF
) -> None:
    """Violate mutual exclusivity: caret and selection at the same time."""
    draw_fake_caret(machine, caret_x, caret_y, style=style)
    fb = machine.framebuffer_handle()
    fb.fill_rect(highlight.x, highlight.y, highlight.w, highlight.h, style.highlight_intensity)
