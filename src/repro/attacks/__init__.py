"""Attack implementations for the paper's threat model (Table I, §V).

All attacks run with OS-level privilege inside the guest: they can drive
the browser, rewrite the framebuffer directly, subvert the extension and
replay old messages — but they cannot touch the hypervisor, intercept
dom0's sampling, or fabricate hardware interrupts.

* :mod:`repro.attacks.tamper` — UI tampering: text swaps, overlays,
  clickjacking-style redressing (Fig. 2 of the paper).
* :mod:`repro.attacks.forgery` — request forgery/tampering and dishonest
  extension hints.
* :mod:`repro.attacks.toctou` — display flipping timed against sampling.
* :mod:`repro.attacks.replay` — session/VSPEC replay.
* :mod:`repro.attacks.pof_forgery` — forged/duplicated POF cues.
"""

from repro.attacks.tamper import (
    overlay_rectangle,
    redress_ui,
    swap_text_on_display,
    tamper_image_region,
)
from repro.attacks.forgery import DishonestExtension, forge_request_body, tamper_request_field
from repro.attacks.toctou import DisplayFlipper
from repro.attacks.replay import ReplayAttacker
from repro.attacks.pof_forgery import draw_fake_caret, draw_fake_focus_outline, draw_second_outline

__all__ = [
    "swap_text_on_display",
    "overlay_rectangle",
    "redress_ui",
    "tamper_image_region",
    "forge_request_body",
    "tamper_request_field",
    "DishonestExtension",
    "DisplayFlipper",
    "ReplayAttacker",
    "draw_fake_focus_outline",
    "draw_fake_caret",
    "draw_second_outline",
]
