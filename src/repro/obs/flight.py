"""The divergence flight recorder: last-N frame traces, dumpable on demand.

Every soak divergence so far was debugged by *rerunning* the failing
scenario with extra prints.  The flight recorder inverts that: a bounded
ring buffer keeps the most recent per-frame :class:`~repro.obs.spans.\
FrameTrace` records (offsets, plan sizes, retry rounds, cache-hit
deltas, failure details, span timings), and the moment something goes
wrong — an ``on_violation`` hook, a decision mismatch, a fingerprint
divergence in the soak harness — :meth:`FlightRecorder.dump` writes the
evidence to a JSON artifact.  ``python -m repro.obs artifact.json``
pretty-prints one.

The ring is shared by every traced session of a service (records carry
their ``session_id``), bounded by ``capacity`` frames, and guarded by a
single lock — recording happens once per frame, far off the unit-input
hot path.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque

#: Default ring capacity (frames); see ``WitnessConfig.flight_frames``.
DEFAULT_CAPACITY = 64


class FlightRecorder:
    """A bounded, thread-safe ring of recent :class:`FrameTrace` records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)
        self.recorded = 0
        self.evicted = 0
        self.dumps = 0

    def record(self, trace) -> None:
        """Append one finished frame trace, evicting the oldest at capacity."""
        with self._lock:
            if len(self._ring) == self.capacity:
                self.evicted += 1
            self._ring.append(trace)
            self.recorded += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def snapshot(self, session_ids=None) -> list:
        """The ring's traces as JSON-serializable dicts, oldest first.

        ``session_ids`` (an iterable of ints) filters to the sessions
        involved in an incident; ``None`` keeps everything.
        """
        with self._lock:
            traces = list(self._ring)
        if session_ids is not None:
            wanted = set(session_ids)
            traces = [t for t in traces if t.session_id in wanted]
        return [t.as_dict() for t in traces]

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "frames": len(self._ring),
                "recorded": self.recorded,
                "evicted": self.evicted,
                "dumps": self.dumps,
            }

    def dump(self, path: str, reason: str = "", session_ids=None) -> str:
        """Write the current ring (plus ``reason``) to a JSON artifact.

        Creates parent directories as needed; returns the path written.
        The artifact shape is stable: ``{"reason", "capacity",
        "recorded_total", "evicted_total", "frames": [FrameTrace dicts]}``.
        """
        frames = self.snapshot(session_ids)
        with self._lock:
            self.dumps += 1
            payload = {
                "reason": reason,
                "capacity": self.capacity,
                "recorded_total": self.recorded,
                "evicted_total": self.evicted,
                "frames": frames,
            }
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
        return path
