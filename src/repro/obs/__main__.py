"""Pretty-print a telemetry or flight-recorder dump.

Usage::

    python -m repro.obs dump.json            # human summary
    python -m repro.obs dump.json --format json
    python -m repro.obs dump.json --format prom
    some-producer | python -m repro.obs -    # read stdin

Detects the payload shape: a flight-recorder artifact (has ``frames``)
is summarized frame by frame; anything else is treated as a
:class:`~repro.obs.telemetry.TelemetrySnapshot` dump.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.telemetry import TelemetrySnapshot


def _describe_flight(payload: dict) -> str:
    lines = [
        f"flight recording: {payload.get('reason') or '(no reason)'}",
        "  {n} frames captured (ring capacity {cap}, {rec} recorded, "
        "{ev} evicted)".format(
            n=len(payload.get("frames", [])),
            cap=payload.get("capacity"),
            rec=payload.get("recorded_total"),
            ev=payload.get("evicted_total"),
        ),
    ]
    for frame in payload.get("frames", []):
        flags = []
        if frame.get("skipped_unchanged"):
            flags.append("skipped")
        if frame.get("violations"):
            flags.append(f"{len(frame['violations'])} violation(s)")
        if frame.get("failures"):
            flags.append(f"{len(frame['failures'])} failure(s)")
        lines.append(
            "  s{sid} f{idx}: ok={ok} offset={off} units={t}+{i} "
            "retries={r} {ms:.2f}ms {flags}".format(
                sid=frame.get("session_id"),
                idx=frame.get("index"),
                ok=frame.get("ok"),
                off=frame.get("offset_y"),
                t=frame.get("plan_text_units", 0),
                i=frame.get("plan_image_pairs", 0),
                r=frame.get("text_retry_rounds", 0),
                ms=frame.get("elapsed_ms", 0.0),
                flags=" ".join(flags),
            ).rstrip()
        )
        for v in frame.get("violations", []):
            lines.append(f"      violation[{v.get('rule')}]: {v.get('detail')}")
        for f in frame.get("failures", []):
            lines.append(f"      failure[{f.get('kind')}]@{f.get('rect')}: {f.get('reason')}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Pretty-print a repro telemetry or flight-recorder JSON dump.",
    )
    parser.add_argument("path", help="dump file, or '-' for stdin")
    parser.add_argument(
        "--format",
        choices=("text", "json", "prom"),
        default="text",
        help="output format (default: human text)",
    )
    args = parser.parse_args(argv)

    if args.path == "-":
        payload = json.load(sys.stdin)
    else:
        with open(args.path, encoding="utf-8") as fh:
            payload = json.load(fh)

    if isinstance(payload, dict) and "frames" in payload:
        if args.format == "json":
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(_describe_flight(payload))
        return 0

    snapshot = TelemetrySnapshot(payload)
    if args.format == "json":
        print(snapshot.to_json())
    elif args.format == "prom":
        print(snapshot.to_prometheus(), end="")
    else:
        print(snapshot.describe())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
