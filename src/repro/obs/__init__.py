"""``repro.obs``: frame-span tracing, unified telemetry, flight recording.

Three pieces (see each module's docstring):

* :mod:`repro.obs.spans` — the per-frame span tracer and its stage
  taxonomy; off by default, enabled by ``WitnessConfig.tracing``.
* :mod:`repro.obs.telemetry` — the hub federating every stats island
  into one :class:`TelemetrySnapshot` (``WitnessService.telemetry()``).
* :mod:`repro.obs.flight` — the bounded ring of recent frame traces
  that violations and divergences dump as JSON artifacts.

This ``__init__`` stays import-light on purpose: :mod:`repro.runtime.\
batcher` imports :func:`maybe_span` from the hot path, so pulling the
telemetry hub (which reaches into :mod:`repro.nn.infer` and
:mod:`repro.core.planbuf`) is deferred until someone actually asks for a
snapshot.
"""

from repro.obs.flight import FlightRecorder
from repro.obs.spans import (
    NULL_SPAN,
    ROOT_STAGE,
    SPAN_BUCKETS_MS,
    STAGES,
    FrameTrace,
    SpanTracer,
    maybe_span,
    span_snapshots,
)

__all__ = [
    "NULL_SPAN",
    "ROOT_STAGE",
    "SPAN_BUCKETS_MS",
    "STAGES",
    "FlightRecorder",
    "FrameTrace",
    "SpanTracer",
    "TelemetrySnapshot",
    "build_snapshot",
    "maybe_span",
    "span_snapshots",
]


def __getattr__(name: str):
    # Lazy: the telemetry hub imports planbuf/infer, which the span fast
    # path must not drag in at import time.
    if name in ("TelemetrySnapshot", "build_snapshot"):
        from repro.obs import telemetry

        return getattr(telemetry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
