"""Frame-span tracing: per-stage latency of a frame's life as a tree.

A sampled frame flows ``frame.sample`` → ``frame.locate`` →
``plan.collect`` → ``plan.execute`` → per-kind ``forward.*`` /
``runtime.submit.*`` / ``flush.wait.*`` → ``verdict.scatter``.  A
:class:`SpanTracer` times each stage with :func:`time.perf_counter`
(wall time never enters a verdict or fingerprint) and records two
things per span:

* an observation into a per-stage latency :class:`~repro.runtime.\
metrics.Histogram` (shared service-wide, so percentiles aggregate over
  every traced session), and
* a span record ``{stage, parent, ms, thread}`` appended to the current
  :class:`FrameTrace` — the flight-recorder evidence unit.

Design constraints, in order:

1. **Disabled tracing is free.**  Call sites guard with
   :func:`maybe_span`, which returns one shared no-op span object when
   the tracer is ``None`` — no allocation, no lock, no branch beyond the
   ``is None`` test.  The function is ``@hot_path``-decorated and
   ``repro.obs`` sits inside witness-lint's ``HOTPATH_SCOPE``, so the
   fast path is statically checked allocation-free.
2. **Tracing never changes a verdict.**  The tracer only reads
   ``perf_counter`` and appends to Python lists; it touches no pixels,
   no caches, no RNG.  The soak harness asserts fingerprints are
   bit-identical with tracing on vs off.
3. **Thread safety without a hot lock.**  Span *stacks* (for parentage)
   are thread-local per tracer: the session thread and the runtime pool
   thread executing the image side of the same plan each nest within
   their own stack.  A span opened on a thread with an empty stack
   parents to the synthetic root ``"frame"`` — so cross-thread spans
   (the image plan on a pool worker) appear as children of the frame,
   which is where they belong.  Appends to the shared
   ``FrameTrace.spans`` list are atomic under the GIL; histogram
   observations take the metrics registry's own data lock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis import hot_path

if TYPE_CHECKING:  # import-light on purpose: the runtime's hot path
    # (batcher/executor) imports maybe_span, and repro.runtime's package
    # init imports the batcher — a real metrics import here would cycle.
    from repro.runtime.metrics import RuntimeMetrics

#: Bucket bounds (milliseconds) for per-stage span latency histograms.
#: Finer at the bottom than the runtime's flush buckets: stages like
#: ``verdict.scatter`` routinely finish in tens of microseconds.
SPAN_BUCKETS_MS = (0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000)

#: The synthetic root stage every top-level span parents to.
ROOT_STAGE = "frame"

#: Instrument-name prefix of span histograms in the metrics registry.
SPAN_PREFIX = "span_ms."

#: Canonical stage taxonomy (the stable observability surface; per-kind
#: stages are suffixed ``.text`` / ``.image``).  New pipeline stages must
#: be added here so telemetry consumers can rely on the vocabulary.
STAGES = (
    "frame",
    "frame.sample",
    "frame.locate",
    "plan.collect",
    "plan.execute",
    "forward.text",
    "forward.image",
    "runtime.submit.text",
    "runtime.submit.image",
    "flush.wait.text",
    "flush.wait.image",
    "verdict.scatter",
)


class _NullSpan:
    """The shared do-nothing span: ``maybe_span(None, ...)`` returns it."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton no-op span — disabled tracing allocates nothing.
NULL_SPAN = _NullSpan()


@hot_path
def maybe_span(tracer: "SpanTracer | None", stage: str):
    """``tracer.span(stage)`` when tracing, the shared no-op otherwise.

    The designated call-site guard: hot pipeline code writes
    ``with maybe_span(self.tracer, "plan.execute"):`` unconditionally and
    pays one ``is None`` test when tracing is off.
    """
    if tracer is None:
        return NULL_SPAN
    return tracer.span(stage)


class _Span:
    """One timed stage; a context manager vended by :meth:`SpanTracer.span`."""

    __slots__ = ("tracer", "stage", "parent", "t0")

    def __init__(self, tracer: "SpanTracer", stage: str) -> None:
        self.tracer = tracer
        self.stage = stage
        self.parent = ROOT_STAGE
        self.t0 = 0.0

    def __enter__(self) -> "_Span":
        stack = self.tracer._stack()
        if stack:
            self.parent = stack[-1].stage
        stack.append(self)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed_ms = (time.perf_counter() - self.t0) * 1000.0
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self.tracer._observe(self.stage, self.parent, elapsed_ms)
        return False


@dataclass
class FrameTrace:
    """Everything the tracer saw of one frame (the flight-record unit)."""

    session_id: int
    index: int
    #: Span records ``{stage, parent, ms, thread}`` in completion order.
    spans: list = field(default_factory=list)
    ok: bool = True
    offset_y: int = 0
    skipped_unchanged: bool = False
    plan_text_units: int = 0
    plan_image_pairs: int = 0
    text_retry_rounds: int = 0
    text_forwards: int = 0
    image_forwards: int = 0
    #: Shared-digest-cache hit/miss delta over this frame.  Exact for a
    #: lone session; approximate under concurrent sessions (the cache is
    #: shared by design).
    cache_hits: int = 0
    cache_misses: int = 0
    failures: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    elapsed_ms: float = 0.0

    def as_dict(self) -> dict:
        """A JSON-serializable record of this frame."""
        return {
            "session_id": self.session_id,
            "index": self.index,
            "ok": self.ok,
            "offset_y": self.offset_y,
            "skipped_unchanged": self.skipped_unchanged,
            "plan_text_units": self.plan_text_units,
            "plan_image_pairs": self.plan_image_pairs,
            "text_retry_rounds": self.text_retry_rounds,
            "text_forwards": self.text_forwards,
            "image_forwards": self.image_forwards,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "failures": list(self.failures),
            "violations": list(self.violations),
            "elapsed_ms": self.elapsed_ms,
            "spans": list(self.spans),
        }


class SpanTracer:
    """One session's span tracer over a service-shared metrics registry.

    Vended by :meth:`repro.core.service.WitnessService.session_tracer`
    only when ``WitnessConfig.tracing`` is on; pipeline code receives
    ``tracer=None`` otherwise and :func:`maybe_span` short-circuits.
    """

    def __init__(
        self,
        session_id: int,
        metrics: "RuntimeMetrics",
        recorder=None,
        cache=None,
    ) -> None:
        self.session_id = session_id
        self.metrics = metrics
        #: Optional :class:`repro.obs.flight.FlightRecorder` receiving
        #: every finished :class:`FrameTrace`.
        self.recorder = recorder
        #: Optional :class:`repro.core.caches.DigestCache` whose hit/miss
        #: counters are delta'd per frame.
        self.cache = cache
        self._tls = threading.local()
        #: The frame currently being traced.  Written only by the session
        #: thread (``begin_frame``/``finish_frame``); pool threads read it
        #: to append span records — a benign race only if a frame boundary
        #: interleaves with a straggling pool span, in which case the span
        #: lands in the neighboring frame's record (histograms are exact
        #: regardless).
        self._trace: FrameTrace | None = None
        self._cache_hits0 = 0
        self._cache_misses0 = 0

    # -- span API ----------------------------------------------------------

    @hot_path
    def span(self, stage: str) -> _Span:
        """A context manager timing ``stage`` (nested spans form a tree)."""
        return _Span(self, stage)

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _observe(self, stage: str, parent: str, elapsed_ms: float) -> None:
        self.metrics.histogram(SPAN_PREFIX + stage, SPAN_BUCKETS_MS).observe(elapsed_ms)
        trace = self._trace
        if trace is not None:
            trace.spans.append(
                {
                    "stage": stage,
                    "parent": parent,
                    "ms": elapsed_ms,
                    "thread": threading.current_thread().name,
                }
            )

    # -- frame lifecycle ---------------------------------------------------

    def begin_frame(self, index: int) -> None:
        """Open the trace for frame ``index`` (called by the session)."""
        if self.cache is not None:
            self._cache_hits0 = self.cache.hits
            self._cache_misses0 = self.cache.misses
        self._trace = FrameTrace(session_id=self.session_id, index=index)

    def finish_frame(self, outcome) -> FrameTrace | None:
        """Seal the current trace from a frame's ``FrameOutcome``.

        Observes the whole-frame latency under the root stage, pushes the
        trace into the flight recorder, and returns it.  Must run before
        hook dispatch so a violation dump already contains this frame.
        """
        trace = self._trace
        if trace is None:
            return None
        self._trace = None
        trace.ok = outcome.ok
        trace.offset_y = outcome.offset_y
        trace.skipped_unchanged = outcome.skipped_unchanged
        trace.plan_text_units = outcome.plan_text_units
        trace.plan_image_pairs = outcome.plan_image_pairs
        trace.text_retry_rounds = outcome.text_retry_rounds
        trace.text_forwards = outcome.text_forwards
        trace.image_forwards = outcome.image_forwards
        trace.failures = [
            {"kind": f.kind, "rect": list(f.rect), "reason": f.reason}
            for f in outcome.failures
        ]
        trace.violations = [
            {"rule": v.rule, "detail": v.detail} for v in outcome.new_violations
        ]
        trace.elapsed_ms = outcome.elapsed_seconds * 1000.0
        if self.cache is not None:
            trace.cache_hits = self.cache.hits - self._cache_hits0
            trace.cache_misses = self.cache.misses - self._cache_misses0
        self.metrics.histogram(SPAN_PREFIX + ROOT_STAGE, SPAN_BUCKETS_MS).observe(
            trace.elapsed_ms
        )
        if self.recorder is not None:
            self.recorder.record(trace)
        return trace


def span_snapshots(metrics: "RuntimeMetrics | None") -> dict:
    """Per-stage histogram snapshots keyed by stage name.

    Strips the ``span_ms.`` instrument prefix; returns ``{}`` when no
    traced session has run.
    """
    if metrics is None:
        return {}
    histograms = metrics.snapshot()["histograms"]
    return {
        name[len(SPAN_PREFIX):]: snap
        for name, snap in histograms.items()
        if name.startswith(SPAN_PREFIX)
    }
