"""The telemetry hub: one namespaced snapshot of every stats island.

Observability grew organically, one island per subsystem:
``RuntimeMetrics`` sees only the shared executor, arena stats live on
the frozen twins (:mod:`repro.nn.infer`), transport-pool stats in
:mod:`repro.core.planbuf`, cache accounting on the
:class:`~repro.core.caches.DigestCache`, session counters in the
:class:`~repro.core.service.SessionRegistry`, span latencies in the span
metrics.  :func:`build_snapshot` federates them into one
:class:`TelemetrySnapshot` with stable namespaces::

    service   executor/inference/batched/caching/tracing knobs
    sessions  registry counters (active/total_opened/peak_active)
    cache     DigestCache stats (entries/hits/misses/evictions/hit_rate)
    runtime   executor metrics (counters/gauges/histograms), or None
    health    degradation-ladder state (healthy/degraded/failed, crash/
              restart/quarantine counters, fault-injector arming)
    faults    fault-injector schedule accounting (per-point calls/fires),
              or None when no FaultPlan is armed
    spans     per-stage latency histograms incl. p50/p95/p99, or {}
    flight    flight-recorder ring stats, or None
    arenas    frozen-twin workspace arenas per model kind (+ totals)
    planbuf   execute-side transport pools (+ totals)

Exports: :meth:`~TelemetrySnapshot.to_json` (stable, sorted keys),
:meth:`~TelemetrySnapshot.to_prometheus` (text exposition format:
scalars as gauges, histograms as cumulative ``_bucket``/``_sum``/
``_count`` series), and :meth:`~TelemetrySnapshot.describe` (human
summary; also behind ``python -m repro.obs``).

CONTRIBUTING rule: a new subsystem that keeps stats must surface them
through a namespace here — islands don't get rediscovered by operators.
"""

from __future__ import annotations

import json
import re

from repro.core.planbuf import pool_stats, pool_totals
from repro.nn.infer import arena_stats
from repro.obs.spans import span_snapshots

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _arena_section(text_model, image_model) -> dict:
    """Workspace-arena stats of both models' memoized frozen twins.

    Purely observational: a model that never dispatched frozen inference
    has no twin and reports ``None`` (telemetry must not force a
    compile).
    """
    per_model = {"text": arena_stats(text_model), "image": arena_stats(image_model)}
    totals = {"hits": 0, "misses": 0, "evictions": 0, "allocations": 0, "nbytes": 0}
    for stats in per_model.values():
        if stats is None:
            continue
        for net_stats in stats.values():
            for arena in _iter_arenas(net_stats):
                for key in totals:
                    totals[key] += arena.get(key, 0)
    return {"totals": totals, "models": per_model}


def _iter_arenas(net_stats):
    """Flatten a net's workspace stats into per-thread arena dicts.

    ``FrozenMatcher.workspace_stats()`` nests ``{net: [arena, ...]}`` one
    level deeper than ``FrozenNet.workspace_stats()`` (a plain list);
    accept both.
    """
    if isinstance(net_stats, dict) and "nbytes" in net_stats:
        yield net_stats
    elif isinstance(net_stats, dict):
        for value in net_stats.values():
            yield from _iter_arenas(value)
    elif isinstance(net_stats, list):
        for item in net_stats:
            yield from _iter_arenas(item)


class TelemetrySnapshot:
    """One point-in-time federation of every subsystem's stats."""

    def __init__(self, sections: dict) -> None:
        self.sections = sections

    def __getitem__(self, name: str):
        return self.sections[name]

    def as_dict(self) -> dict:
        return self.sections

    def to_json(self) -> str:
        """Stable JSON: sorted keys, so equal snapshots serialize equally."""
        return json.dumps(self.sections, indent=2, sort_keys=True, default=str)

    # -- Prometheus text exposition ---------------------------------------

    def to_prometheus(self) -> str:
        """The snapshot in Prometheus text format (metric prefix ``repro_``).

        Numeric scalars become gauges named by their namespace path;
        histogram-shaped dicts (anything carrying ``buckets``) become
        cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``
        and ``_p50``/``_p95``/``_p99`` gauges.  Strings, ``None`` and raw
        per-thread lists are skipped — they are JSON-side detail.
        """
        lines: list = []
        self._emit("repro", self.sections, lines)
        return "\n".join(lines) + "\n"

    def _emit(self, prefix: str, value, lines: list) -> None:
        if isinstance(value, dict):
            if "buckets" in value and "count" in value:
                self._emit_histogram(prefix, value, lines)
                return
            for key, sub in sorted(value.items()):
                self._emit(f"{prefix}_{_sanitize(key)}", sub, lines)
        elif isinstance(value, bool):
            lines.append(f"{prefix} {int(value)}")
        elif isinstance(value, (int, float)):
            lines.append(f"{prefix} {_fmt(value)}")
        # str / None / list: JSON-side detail, not a time series.

    def _emit_histogram(self, name: str, snap: dict, lines: list) -> None:
        counts = list(snap["buckets"].values())
        bounds = snap.get("bounds", [])
        cum = 0
        for bound, count in zip(bounds, counts):
            cum += count
            lines.append(f'{name}_bucket{{le="{bound:g}"}} {cum}')
        cum += counts[-1] if len(counts) > len(bounds) else 0
        lines.append(f'{name}_bucket{{le="+Inf"}} {cum}')
        lines.append(f"{name}_sum {_fmt(snap['sum'])}")
        lines.append(f"{name}_count {snap['count']}")
        for q in ("p50", "p95", "p99"):
            if q in snap:
                lines.append(f"{name}_{q} {_fmt(snap[q])}")

    # -- human summary -----------------------------------------------------

    def describe(self) -> str:
        """A terse operator-facing summary of the interesting numbers."""
        s = self.sections
        lines = [
            "repro telemetry",
            "  service: executor={executor} inference={inference} batched={batched} "
            "tracing={tracing}".format(**s["service"]),
            "  sessions: active={active} opened={total_opened} peak={peak_active}".format(
                **s["sessions"]
            ),
        ]
        cache = s.get("cache")
        if cache:
            lines.append(
                "  cache: {entries}/{capacity} entries, {hits} hits / {misses} misses "
                "({rate:.1%} hit rate), {evictions} evictions".format(
                    rate=cache["hit_rate"], **{k: cache[k] for k in
                    ("entries", "capacity", "hits", "misses", "evictions")}
                )
            )
        spans = s.get("spans") or {}
        if spans:
            lines.append("  spans (ms):")
            for stage in sorted(spans):
                snap = spans[stage]
                lines.append(
                    f"    {stage:<22} n={snap['count']:<6} "
                    f"p50={snap['p50']:.3f} p95={snap['p95']:.3f} p99={snap['p99']:.3f}"
                )
        flight = s.get("flight")
        if flight:
            lines.append(
                "  flight: {frames}/{capacity} frames buffered, {recorded} recorded, "
                "{evicted} evicted, {dumps} dumps".format(**flight)
            )
        runtime = s.get("runtime")
        if runtime:
            lines.append(
                "  runtime: forwards={forwards_total} saved={forwards_saved_total}".format(
                    **runtime
                )
            )
        health = s.get("health")
        if health:
            lines.append(
                "  health: state={state} quarantined={quarantined_sessions}".format(
                    **health
                )
            )
        faults = s.get("faults")
        if faults:
            lines.append(
                "  faults: plan={plan} fired={total_fired}".format(**faults)
            )
        arenas = s.get("arenas")
        if arenas:
            lines.append(
                "  arenas: hits={hits} misses={misses} nbytes={nbytes}".format(
                    **arenas["totals"]
                )
            )
        planbuf = s.get("planbuf")
        if planbuf:
            lines.append(
                "  planbuf: pools={pools} hits={hits} allocations={allocations} "
                "nbytes={nbytes}".format(**planbuf["totals"])
            )
        return "\n".join(lines)


def _sanitize(name) -> str:
    return _NAME_OK.sub("_", str(name))


def _fmt(value) -> str:
    if value is None:
        return "0"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def build_snapshot(service) -> TelemetrySnapshot:
    """Federate ``service``'s stats islands into one snapshot.

    The implementation of :meth:`repro.core.service.WitnessService.telemetry`.
    """
    cfg = service.config
    runtime = service.runtime
    cache = service.shared_cache
    recorder = service.flight_recorder
    sections = {
        "service": {
            "executor": cfg.executor,
            "inference": cfg.inference,
            "batched": cfg.batched,
            "caching": cfg.caching,
            "tracing": cfg.tracing,
        },
        "sessions": service.registry.stats(),
        "cache": cache.stats() if cache is not None else None,
        "runtime": runtime.stats() if runtime is not None else None,
        "health": service.health(),
        "faults": (
            service.fault_injector.snapshot()
            if service.fault_injector is not None
            else None
        ),
        "spans": span_snapshots(service.span_metrics),
        "flight": recorder.stats() if recorder is not None else None,
        "arenas": _arena_section(service.text_model, service.image_model),
        "planbuf": {"totals": pool_totals(), "pools": pool_stats()},
    }
    return TelemetrySnapshot(sections)
