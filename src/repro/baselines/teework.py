"""Element-support models of the TEE-based prior work (Table X).

Fidelius [17] implements a minimal trusted renderer supporting textboxes
and keyboard input only — no mouse, so no buttons, checkboxes, radios or
selects.  ProtectION [6] adds trusted mouse I/O and a few widgets but
still renders only a small HTML subset.  vWitness supports everything it
can *see and predict*: all standard widgets, excluding file inputs
(invisible interaction), videos (excessive dynamism), external iframes
(unpredictable content) and canvas-drawn custom widgets (no tag-to-type
mapping).
"""

from __future__ import annotations

FIDELIUS_SUPPORTED = {"text", "text-input"}

PROTECTION_SUPPORTED = {"text", "text-input", "button", "checkbox"}

VWITNESS_SUPPORTED = {
    "text",
    "image",
    "text-input",
    "checkbox",
    "radio",
    "select",
    "button",
    "scrollable",
}

SYSTEMS = {
    "Fidelius": FIDELIUS_SUPPORTED,
    "ProtectION": PROTECTION_SUPPORTED,
    "vWitness": VWITNESS_SUPPORTED,
}


def compatible_forms(corpus: list, supported_kinds: set, threshold: float = 0.9) -> int:
    """Forms with at least ``threshold`` of elements supported (Table X)."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0,1], got {threshold}")
    return sum(1 for form in corpus if form.supported_fraction(supported_kinds) >= threshold)


def system_support_table(corpus: list, threshold: float = 0.9) -> dict:
    """System -> (compatible count, fraction) over the corpus."""
    total = len(corpus)
    table = {}
    for name, kinds in SYSTEMS.items():
        count = compatible_forms(corpus, kinds, threshold)
        table[name] = (count, count / total if total else 0.0)
    return table
