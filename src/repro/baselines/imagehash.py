"""Image-hash display validation — the perceptual-hash baseline [21].

Robust hashes tolerate *some* benign variation but trade detection for
it: a hash distance threshold loose enough to accept cross-stack renders
also accepts small malicious edits (a swapped word moves few hash bits).
"""

from __future__ import annotations

import numpy as np

from repro.vision.hashing import difference_hash, hamming_distance


class ImageHashValidator:
    """Accepts a region iff the dHash distance is within a threshold."""

    def __init__(self, hash_size: int = 8, max_distance: int = 6) -> None:
        if hash_size < 4:
            raise ValueError(f"hash size too small: {hash_size}")
        self.hash_size = hash_size
        self.max_distance = max_distance
        self.invocations = 0

    def verify_region(self, observed, expected, background: float = 255.0) -> bool:
        self.invocations += 1
        observed = np.asarray(observed, dtype=float)
        expected = np.asarray(expected, dtype=float)
        if observed.shape != expected.shape:
            return False
        d_obs = difference_hash(observed, self.hash_size)
        d_exp = difference_hash(expected, self.hash_size)
        return hamming_distance(d_obs, d_exp) <= self.max_distance
