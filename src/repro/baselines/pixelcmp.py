"""Pixel-by-pixel display validation — the naive baseline (paper §III-C1).

"vWitness could naively perform a pixel-by-pixel comparison of the
observed element with that in the VSPEC, but this would result in many
false alarms due to benign rendering variations."  This validator exists
to measure exactly that.
"""

from __future__ import annotations

import numpy as np


class PixelCompareValidator:
    """Accepts a region iff (almost) every pixel matches within tolerance."""

    def __init__(self, tolerance: float = 8.0, max_bad_fraction: float = 0.001) -> None:
        if tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {tolerance}")
        self.tolerance = tolerance
        self.max_bad_fraction = max_bad_fraction
        self.invocations = 0

    def verify_region(self, observed, expected, background: float = 255.0) -> bool:
        self.invocations += 1
        observed = np.asarray(observed, dtype=float)
        expected = np.asarray(expected, dtype=float)
        if observed.shape != expected.shape:
            return False
        bad = np.abs(observed - expected) > self.tolerance
        return float(bad.mean()) <= self.max_bad_fraction

    def verify_tiles(self, tiles, chars) -> np.ndarray:  # pragma: no cover - interface parity
        raise NotImplementedError("pixel comparison has no text-model analogue")
