"""Baselines the paper compares against.

* :mod:`repro.baselines.pixelcmp` — pixel-by-pixel display comparison
  (VButton's approach [5]): exact up to a small tolerance, so benign
  rendering variation triggers false alarms.
* :mod:`repro.baselines.imagehash` — robust image hash comparison [21].
* :mod:`repro.baselines.teework` — element-support models of the
  TEE-based clients (Fidelius, ProtectION) for the Table X compatibility
  comparison.
"""

from repro.baselines.pixelcmp import PixelCompareValidator
from repro.baselines.imagehash import ImageHashValidator
from repro.baselines.teework import (
    FIDELIUS_SUPPORTED,
    PROTECTION_SUPPORTED,
    VWITNESS_SUPPORTED,
    compatible_forms,
    system_support_table,
)

__all__ = [
    "PixelCompareValidator",
    "ImageHashValidator",
    "FIDELIUS_SUPPORTED",
    "PROTECTION_SUPPORTED",
    "VWITNESS_SUPPORTED",
    "compatible_forms",
    "system_support_table",
]
