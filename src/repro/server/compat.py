"""The incompatibility script (paper §IV-B "Addressing Incompatibilities").

Operates on page HTML exactly as the paper describes: removes external
iframes (nondeterministic ads content), adds ``maxlength`` to textual
inputs so values stay visible, scans CSS for POF-overriding keywords, and
warns about unsupported HTML (file inputs, drag&drop, video).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.web import elements as el
from repro.web.html import parse_form

#: CSS keywords whose presence may override the POF styles vWitness
#: recognizes (§IV-B).
POF_CSS_KEYWORDS = ("outline", "caret", ".focus")

#: Default maxlength ensuring a value fits visibly in a standard field.
DEFAULT_MAXLENGTH = 40


@dataclass
class CompatReport:
    """Outcome of the compatibility pass over one page."""

    removed_iframes: list = field(default_factory=list)
    maxlength_added: list = field(default_factory=list)
    warnings: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.warnings


def apply_compat_fixes(page: el.Page, css: str = "") -> CompatReport:
    """Fix what is fixable in place; warn about the rest."""
    report = CompatReport()

    kept = []
    for element in page.elements:
        if isinstance(element, el.IFrame) and element.external:
            report.removed_iframes.append(element.src)
            continue
        kept.append(element)
    page.elements = kept

    for element in page.elements:
        if isinstance(element, el.TextInput) and element.max_length is None:
            element.max_length = _visible_maxlength(element, page.width)
            report.maxlength_added.append(element.name)

    for keyword in POF_CSS_KEYWORDS:
        if keyword in css:
            report.warnings.append(
                f"CSS contains {keyword!r}: page may override POF styles vWitness recognizes"
            )

    for element in page.elements:
        if isinstance(element, el.FileInput):
            report.warnings.append(
                f"file input {element.name!r}: invisible interaction, cannot be validated"
            )
        elif isinstance(element, el.VideoElement):
            report.warnings.append("video element: excessively dynamic, cannot be validated")

    return report


def _visible_maxlength(element: el.TextInput, page_width: int) -> int:
    """Largest value length that stays visible in the rendered box."""
    from repro.raster.text import char_advance
    from repro.web import layout as lay

    box_w = page_width - 2 * lay.MARGIN_X - 2 * lay.INPUT_PAD_X
    return max(1, min(DEFAULT_MAXLENGTH, box_w // char_advance(element.text_size) - 1))


def apply_compat_fixes_html(html_source: str) -> tuple:
    """HTML-level variant: returns (fixed_page_report, parsed_form).

    Used by tests exercising the paper's script at the markup level; the
    structural fixes happen on the Page object via
    :func:`apply_compat_fixes`, and this reports what the markup scan sees.
    """
    form = parse_form(html_source)
    report = CompatReport()
    report.removed_iframes = [t.attrs.get("src", "") for t in form.external_iframes()]
    for tag in form.inputs():
        if tag.attrs.get("type", "text") in ("text", None) and "maxlength" not in tag.attrs:
            report.maxlength_added.append(tag.attrs.get("name", "?"))
    for keyword in POF_CSS_KEYWORDS:
        if keyword in form.css:
            report.warnings.append(f"CSS contains {keyword!r}")
    for tag in form.find_all("input"):
        if tag.attrs.get("type") == "file":
            report.warnings.append(f"file input {tag.attrs.get('name', '?')!r}")
        if "ondrop" in tag.attrs:
            report.warnings.append(f"drag&drop input {tag.attrs.get('name', '?')!r}")
    if form.find_all("video"):
        report.warnings.append("video element")
    return report, form


def check_compatibility(page: el.Page) -> dict:
    """Per-element support census (feeds the Table X comparison).

    Returns ``{"supported": n, "total": n, "fraction": f}`` under
    vWitness's support model: everything except external iframes, file
    inputs and videos.
    """
    total = len(page.elements)
    if total == 0:
        return {"supported": 0, "total": 0, "fraction": 1.0}
    supported = sum(1 for e in page.elements if e.supported_by_vwitness)
    return {"supported": supported, "total": total, "fraction": supported / total}
