"""Server-side vWitness support (paper §III-A, §IV-B).

* :mod:`repro.server.generate` — automatic VSPEC construction: render the
  page, annotate elements via the HTML tag-to-validation-type mapping,
  record per-character ground truth and per-state appearances.
* :mod:`repro.server.compat` — the incompatibility script: strip external
  iframes, add ``maxlength``, warn on POF-overriding CSS and unsupported
  elements.
* :mod:`repro.server.webserver` — VSPEC issuance with fresh session IDs
  and certified-request verification (signature, VSPEC echo, freshness),
  plus :class:`~repro.server.webserver.WitnessedSite`, the one-object
  deployment coupling a web server with a
  :class:`~repro.core.service.WitnessService`.
"""

from repro.server.generate import build_vspec
from repro.server.compat import CompatReport, apply_compat_fixes, check_compatibility
from repro.server.webserver import (
    ClientConnection,
    VerificationResult,
    WebServer,
    WitnessedSite,
)

__all__ = [
    "build_vspec",
    "apply_compat_fixes",
    "check_compatibility",
    "CompatReport",
    "WebServer",
    "WitnessedSite",
    "ClientConnection",
    "VerificationResult",
]
