"""The protected web server: VSPEC issuance and request verification.

Implements the server side of the workflow (paper §III-B): serving VSPECs
tailored to the client width with fresh session IDs, and — on receiving a
certified request — verifying the certificate chain, the signature, the
VSPEC echo and session freshness (replay defense).

:class:`WitnessedSite` couples a :class:`WebServer` with a
:class:`~repro.core.service.WitnessService`: one long-lived deployment
that provisions the witness once and connects any number of concurrent
guest clients, each getting its own machine, browser, extension and
witness session handle.
"""

from __future__ import annotations

import copy
import secrets
from dataclasses import dataclass

from repro.core.service import WitnessConfig, WitnessService, WitnessSession
from repro.crypto.ca import CertificateAuthority, CertificateError
from repro.crypto.signing import CertifiedRequest, SignatureError, verify_request
from repro.server.generate import build_vspec
from repro.vspec.serialize import vspec_digest
from repro.vspec.spec import VSpec
from repro.web.elements import Page


@dataclass(frozen=True)
class VerificationResult:
    """The server's verdict on a certified request."""

    ok: bool
    reason: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


class WebServer:
    """A server hosting vWitness-protected pages."""

    def __init__(self, ca: CertificateAuthority) -> None:
        self.ca = ca
        self._pages: dict = {}
        self._validations: dict = {}
        self._issued: dict = {}  # session_id -> vspec digest
        self._used_sessions: set = set()

    # -- setup ------------------------------------------------------------

    def register_page(self, page_id: str, page: Page, validation=None) -> None:
        """One-time page registration (VSPEC template built lazily per width).

        The server keeps its own pristine copy: whatever a client later
        does to its served page cannot leak into issued VSPECs.
        """
        if page_id in self._pages:
            raise ValueError(f"page {page_id!r} already registered")
        self._pages[page_id] = copy.deepcopy(page)
        self._validations[page_id] = validation

    def page(self, page_id: str) -> Page:
        """The server's canonical (pristine) page object."""
        return self._pages[page_id]

    def serve_page(self, page_id: str) -> Page:
        """A fresh page copy for a client (what an HTTP response delivers)."""
        return copy.deepcopy(self._pages[page_id])

    # -- VSPEC issuance --------------------------------------------------------

    def vspec_for(self, page_id: str, client_width: int) -> VSpec:
        """Issue a fresh-session VSPEC for a client at ``client_width``.

        The expected appearance is a function of the client width; a width
        the page was not designed for is a client-side incompatibility the
        extension must resolve (our pages are fixed-width, so a mismatch
        is rejected here — the viewport detector would fail anyway).
        """
        if page_id not in self._pages:
            raise KeyError(f"unknown page {page_id!r}")
        page = self._pages[page_id]
        if client_width != page.width:
            raise ValueError(
                f"client width {client_width} unsupported for page {page_id!r} "
                f"(expected {page.width})"
            )
        session_id = secrets.token_hex(16)
        vspec = build_vspec(
            page,
            page_id,
            validation=self._validations[page_id],
            session_id=session_id,
            extra_fields={"session_id": session_id},
        )
        self._issued[session_id] = vspec_digest(vspec)
        return vspec

    # -- request verification -----------------------------------------------------

    def verify(self, request: CertifiedRequest) -> VerificationResult:
        """Steps 1-3 of the server-side workflow plus freshness."""
        try:
            verify_request(request, self.ca)
        except CertificateError as exc:
            return VerificationResult(False, f"certificate: {exc}")
        except SignatureError as exc:
            return VerificationResult(False, f"signature: {exc}")

        session_id = str(request.body.get("session_id", ""))
        if session_id not in self._issued:
            return VerificationResult(False, "unknown session id (no VSPEC issued)")
        if session_id in self._used_sessions:
            return VerificationResult(False, "replayed session id")
        if request.vspec_digest != self._issued[session_id]:
            return VerificationResult(False, "VSPEC echo does not match the issued VSPEC")
        self._used_sessions.add(session_id)
        return VerificationResult(True, "request certified with interaction integrity")

    def accept_uncertified(self, body: dict) -> VerificationResult:
        """What happens to a bare request: rejected for missing certification."""
        return VerificationResult(False, "request lacks vWitness certification")


@dataclass
class ClientConnection:
    """One guest client wired into a :class:`WitnessedSite` deployment.

    Every connection must end in :meth:`submit` or :meth:`close` —
    otherwise its witness session stays registered with the long-lived
    service forever.  Use it as a context manager to guarantee that.
    """

    machine: object
    browser: object
    extension: object
    witness: WitnessSession
    vspec: VSpec

    def submit_body(self, **overrides) -> dict:
        """The request body the page would build, plus ``overrides``."""
        body = dict(self.browser.page.form_values())
        body["session_id"] = self.vspec.session_id
        body.update(overrides)
        return body

    def submit(self, body: dict | None = None, **overrides):
        """End the witness session over ``body`` (default: the page's own)."""
        return self.extension.end_session(
            body if body is not None else self.submit_body(**overrides)
        )

    def close(self) -> None:
        """Abandon the connection without certifying (idempotent)."""
        self.witness.close()

    def __enter__(self) -> "ClientConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def connect_guest(
    server: WebServer,
    service: WitnessService,
    page_id: str,
    *,
    display=(640, 480),
    stack=None,
    sampler_seed: int | None = None,
) -> ClientConnection:
    """Wire up one guest client against any server/service pair.

    The single implementation of the machine/browser/extension/session
    boilerplate: :meth:`WitnessedSite.connect` and the scenario soak both
    delegate here.  ``sampler_seed`` pins the witness sampling schedule
    (deterministic replay); ``None`` keeps the service's derived seeds.
    """
    from repro.web.browser import Browser
    from repro.web.extension import BrowserExtension
    from repro.web.hypervisor import Machine

    machine = Machine(*display)
    kwargs = {"stack": stack} if stack is not None else {}
    browser = Browser(machine, server.serve_page(page_id), **kwargs)
    witness = service.open_session(machine, sampler_seed=sampler_seed)
    try:
        extension = BrowserExtension(browser, server, witness)
        vspec = extension.acquire_vspecs(page_id)
        browser.paint()
        extension.begin_session()
    except BaseException:
        # Wiring failed mid-way (e.g. a raising frame-0 hook): the
        # caller never gets a handle, so release the session here.
        witness.close()
        raise
    return ClientConnection(machine, browser, extension, witness, vspec)


class WitnessedSite:
    """A protected deployment: one web server plus one witness service.

    Owns the CA, the :class:`WebServer` and the
    :class:`~repro.core.service.WitnessService` (provisioned once —
    models, sealed key, certificate, shared cache) and vends fully wired
    client connections via :meth:`connect`, so examples and benchmarks
    need none of the machine/browser/extension boilerplate.
    """

    def __init__(
        self,
        ca: CertificateAuthority | None = None,
        config: WitnessConfig | None = None,
        *,
        text_model=None,
        image_model=None,
    ) -> None:
        self.ca = ca or CertificateAuthority()
        self.server = WebServer(self.ca)
        self.service = WitnessService(
            self.ca, config, text_model=text_model, image_model=image_model
        )

    def register_page(self, page_id: str, page: Page, validation=None) -> None:
        self.server.register_page(page_id, page, validation)

    def connect(self, page_id: str, display=(640, 480), stack=None) -> ClientConnection:
        """Wire up one guest client and begin its witnessed session.

        End every connection with ``submit()`` or ``close()`` (or use it
        as a context manager) so the service drops the session handle.
        """
        return connect_guest(self.server, self.service, page_id, display=display, stack=stack)

    def verify(self, decision) -> VerificationResult:
        """Server-side verification of a certified decision's request."""
        if decision.request is None:
            return VerificationResult(False, "request was not certified by the witness")
        return self.server.verify(decision.request)
