"""Automatic VSPEC construction (paper §IV-B "Generating VSPECs").

The script (1) renders the web page with the server's reference stack and
(2) annotates elements with validation types via the HTML tag mapping.
Per-character cells reproduce the renderer's layout geometry exactly —
that agreement is what lets the client-side validator crop the right
pixels for each expected character.
"""

from __future__ import annotations

import copy

from repro.raster.text import char_advance, layout_text
from repro.vision.components import Rect
from repro.vspec.spec import CharCell, ManifestEntry, NestedSpec, VSpec
from repro.vspec.validation import JsonMatchValidation
from repro.web import elements as el
from repro.web import layout as lay
from repro.web.render import render_page


def _char_cells(text: str, origin_x: int, origin_y: int, size: int) -> list:
    """Manifest cells for one rendered text line (spaces skipped)."""
    cells = []
    for placed in layout_text(text, size):
        if placed.char == " ":
            continue
        cells.append(
            CharCell(x=origin_x + placed.x, y=origin_y + placed.y, w=placed.w, h=placed.h, char=placed.char)
        )
    return cells


def _wrapped_cells(element: el.TextBlock) -> list:
    cells = []
    lines = lay.wrap_text(element.text, element.size, element.rect.w)
    for i, line in enumerate(lines):
        cells.extend(
            _char_cells(line, element.rect.x, element.rect.y + i * (element.size + 4), element.size)
        )
    return cells


def _text_entry_rect(cells: list, fallback: Rect) -> Rect:
    if not cells:
        return fallback
    rect = cells[0].rect
    for cell in cells[1:]:
        rect = rect.union(cell.rect)
    return rect


def _render_state(page: el.Page, mutate) -> "np.ndarray":
    """Render the page with a temporary element mutation applied."""
    snapshot = copy.deepcopy(page)
    mutate(snapshot)
    return render_page(snapshot, include_title=True).pixels


def _checkbox_states(page: el.Page, element: el.Checkbox, box: Rect) -> dict:
    states = {}
    for value, checked in (("on", True), ("off", False)):
        def mutate(p, checked=checked):
            target = p.find(element.element_id)
            target.checked = checked

        full = _render_state(page, mutate)
        states[value] = full[box.y : box.y2, box.x : box.x2]
    return states


def _radio_states(page: el.Page, element: el.RadioGroup) -> dict:
    rect = element.rect
    states = {}
    choices = [("", None)] + [(opt, i) for i, opt in enumerate(element.options)]
    for value, index in choices:
        def mutate(p, index=index):
            target = p.find(element.element_id)
            target.selected = index

        full = _render_state(page, mutate)
        states[value] = full[rect.y : rect.y2, rect.x : rect.x2]
    return states


def _select_states(page: el.Page, element: el.SelectBox) -> dict:
    rect = element.rect
    states = {}
    for index, option in enumerate(element.options):
        def mutate(p, index=index):
            target = p.find(element.element_id)
            target.selected = index
            target.open = False

        full = _render_state(page, mutate)
        states[option] = full[rect.y : rect.y2, rect.x : rect.x2]
    return states


def _scrollable_nested(element: el.ScrollableList) -> NestedSpec:
    """Merged expected appearance: every row of the list, full height."""
    from repro.vision.image import Image
    from repro.raster.stacks import reference_stack
    from repro.web.render import _draw_text  # shared text drawing

    row_h = lay.ROW_HEIGHT
    strip = Image.blank(element.rect.w, row_h * len(element.items) + 4, 252.0)
    entries = []
    stack = reference_stack()
    for i, item in enumerate(element.items):
        y = 2 + i * row_h
        _draw_text(strip, item, 8, y + 4, lay.LABEL_SIZE, stack)
        cells = _char_cells(item, 8, y + 4, lay.LABEL_SIZE)
        entries.append(
            ManifestEntry(
                kind="text",
                rect=_text_entry_rect(cells, Rect(8, y, max(element.rect.w - 16, 1), row_h)),
                chars=cells,
            )
        )
    return NestedSpec(axis="vertical", expected=strip.pixels, entries=entries)


def build_vspec(
    page: el.Page,
    page_id: str,
    validation=None,
    session_id: str = "",
    extra_fields: dict | None = None,
) -> VSpec:
    """Construct the VSPEC for ``page`` at its configured width.

    ``validation`` defaults to the paper's simplest case: a JSON match
    over every user-input field on the page.
    """
    pristine = copy.deepcopy(page)
    height = lay.layout_page(pristine)
    expected = render_page(pristine, include_title=True)

    entries: list = []
    nested: dict = {}

    # The title band is text ground truth too.
    title_cells = _char_cells(pristine.title, lay.MARGIN_X, 10, 18)
    if title_cells:
        entries.append(
            ManifestEntry(
                kind="text",
                rect=_text_entry_rect(title_cells, Rect(lay.MARGIN_X, 10, 10, 18)),
                chars=title_cells,
            )
        )

    for element in pristine.elements:
        rect = element.rect
        if isinstance(element, el.TextBlock):
            cells = _wrapped_cells(element)
            entries.append(
                ManifestEntry(kind="text", rect=_text_entry_rect(cells, rect), chars=cells)
            )
        elif isinstance(element, el.ImageElement):
            entries.append(ManifestEntry(kind="image", rect=rect))
        elif isinstance(element, el.TextInput):
            if element.label:
                cells = _char_cells(element.label, rect.x, rect.y, lay.LABEL_SIZE)
                entries.append(
                    ManifestEntry(kind="text", rect=_text_entry_rect(cells, rect), chars=cells)
                )
            box = lay.input_box_rect(element)
            entries.append(
                ManifestEntry(
                    kind="input",
                    rect=box,
                    input_name=element.name,
                    text_size=element.text_size,
                    initial_value=element.value,
                )
            )
        elif isinstance(element, el.Checkbox):
            size = lay.CHECKBOX_SIZE
            box = Rect(rect.x, rect.y + (rect.h - size) // 2, size, size)
            entries.append(
                ManifestEntry(
                    kind="checkbox",
                    rect=box,
                    input_name=element.name,
                    state_appearances=_checkbox_states(pristine, element, box),
                    initial_value="on" if element.checked else "off",
                )
            )
            cells = _char_cells(
                element.label, rect.x + size + 8, rect.y + (rect.h - lay.LABEL_SIZE) // 2, lay.LABEL_SIZE
            )
            entries.append(
                ManifestEntry(kind="text", rect=_text_entry_rect(cells, rect), chars=cells)
            )
        elif isinstance(element, el.RadioGroup):
            entries.append(
                ManifestEntry(
                    kind="radio",
                    rect=rect,
                    input_name=element.name,
                    state_appearances=_radio_states(pristine, element),
                    initial_value=element.request_fields()[element.name],
                )
            )
            for i, option in enumerate(element.options):
                cells = _char_cells(
                    option,
                    rect.x + lay.RADIO_SIZE + 8,
                    rect.y + i * lay.ROW_HEIGHT + 3,
                    lay.LABEL_SIZE,
                )
                entries.append(
                    ManifestEntry(kind="text", rect=_text_entry_rect(cells, rect), chars=cells)
                )
        elif isinstance(element, el.SelectBox):
            entries.append(
                ManifestEntry(
                    kind="select",
                    rect=rect,
                    input_name=element.name,
                    state_appearances=_select_states(pristine, element),
                    initial_value=element.options[element.selected],
                )
            )
        elif isinstance(element, el.Button):
            entries.append(ManifestEntry(kind="button", rect=rect))
            cells = _char_cells(
                element.label, rect.x + 12, rect.y + (rect.h - 14) // 2, 14
            )
            entries.append(
                ManifestEntry(kind="text", rect=_text_entry_rect(cells, rect), chars=cells)
            )
        elif isinstance(element, el.ScrollableList):
            nested_id = f"nested-{element.element_id}"
            nested[nested_id] = _scrollable_nested(element)
            entries.append(
                ManifestEntry(
                    kind="scroll-v",
                    rect=rect,
                    input_name=element.name,
                    nested_id=nested_id,
                    initial_value=element.request_fields()[element.name],
                )
            )
        elif isinstance(element, el.IFrame) and not element.external:
            entries.append(ManifestEntry(kind="image", rect=rect))
        else:
            raise ValueError(
                f"page {page_id!r} contains unsupported element "
                f"{type(element).__name__}; run apply_compat_fixes first"
            )

    if validation is None:
        field_names = tuple(sorted(pristine.form_values()))
        validation = JsonMatchValidation(fields=field_names)

    return VSpec(
        page_id=page_id,
        width=pristine.width,
        height=expected.height,
        expected=expected.pixels,
        entries=entries,
        background=pristine.background,
        validation=validation,
        session_id=session_id,
        extra_fields=dict(extra_fields or {}),
        nested=nested,
    )
