"""repro.faults: deterministic fault injection for the witness pipeline.

The dependability argument of the witness is fail-closed certification:
no fault anywhere in the pipeline may ever turn into a certification the
user did not earn.  This package is how that claim is *exercised* rather
than asserted:

* :class:`~repro.faults.plan.FaultPlan` — a frozen, seeded schedule of
  named fault points (:data:`~repro.faults.plan.FAULT_POINTS`), armed
  through ``WitnessConfig(faults=plan)``.
* :class:`~repro.faults.injector.FaultInjector` — the per-service armed
  state: call counters, per-point seeded RNGs, fire accounting.
* The shipped plan catalog (:func:`~repro.faults.plan.shipped_plans`) —
  one plan per failure family, each annotated with what an honest
  session may expect (bit-identical recovery, certify-with-different-
  evidence, or a clean refusal).

Seams stay zero-cost when disarmed: every injection site is guarded by
``if <injector> is not None`` — the same pattern as ``repro.obs``'s
``NULL_SPAN`` — and the witness-lint ``hot-alloc`` rule covers this
package, so the disarmed hot path is statically allocation-free.
"""

from repro.faults.injector import CacheFault, FaultInjector, InjectedFault
from repro.faults.plan import (
    FAULT_POINTS,
    HONEST_EXPECTATIONS,
    FaultPlan,
    FaultSpec,
    admission_timeout_plan,
    cache_fault_plan,
    flush_stall_plan,
    flusher_crash_plan,
    forward_raise_plan,
    frame_corruption_plan,
    frame_drop_plan,
    nan_logits_plan,
    shipped_plans,
)

__all__ = [
    "FAULT_POINTS",
    "HONEST_EXPECTATIONS",
    "CacheFault",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "admission_timeout_plan",
    "cache_fault_plan",
    "flush_stall_plan",
    "flusher_crash_plan",
    "forward_raise_plan",
    "frame_corruption_plan",
    "frame_drop_plan",
    "nan_logits_plan",
    "shipped_plans",
]
