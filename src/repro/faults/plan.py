"""Fault plans: deterministic, seedable schedules of named fault points.

A :class:`FaultPlan` is pure data — *which* seams fire, *when*, and what
an honest session is entitled to expect while they do.  The runtime
state that actually counts invocations and fires lives in
:class:`repro.faults.injector.FaultInjector`; keeping the plan frozen
means a soak can hand the same plan to many services and every run
replays the same schedule.

Fault points are the named seams threaded through the pipeline
(:data:`FAULT_POINTS`); a plan schedules a point either positionally
(``at_calls`` — fire on exactly these 1-based invocations of the seam)
or statistically (``rate`` — a per-invocation seeded coin, optionally
capped by ``max_fires``).  Both forms are deterministic given the plan
seed: the rate coin comes from a per-point ``np.random.default_rng``
seeded from ``(plan.seed, point name)``.

``honest_expectation`` classifies the plan for the fault soak:

* ``"identical"`` — the faults are recoverable; an honest session must
  certify with a session fingerprint bit-identical to the fault-free
  run (flusher crash, flush stall, admission timeout, forward raise,
  cache fault).
* ``"certify"`` — the faults perturb *evidence collection* (dropped or
  delayed samples), so fingerprints legitimately differ, but an honest
  session must still certify and pass server verification.
* ``"refuse"`` — the faults are unrecoverable corruption; an honest
  session must reach a clean refuse-to-certify decision (never a wedge,
  never a crash, and *never* a certification it didn't earn).

Tampered sessions must refuse under **every** plan — that invariant is
unconditional and is what "fail closed" means here.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Every injection seam in the pipeline, with the layer that hosts it.
#: CONTRIBUTING rule: a new pipeline seam ships a fault point here and a
#: fail-closed test exercising it.
FAULT_POINTS = {
    "sampler.drop": "core.service — a scheduled screenshot is never taken",
    "sampler.delay": "core.service — a scheduled screenshot is deferred",
    "sampler.bitflip": "core.service — sampled pixels are corrupted in flight",
    "infer.raise": "nn.infer — a model forward raises mid-predict",
    "infer.nan": "nn.infer — a model forward returns NaN logits",
    "runtime.flusher_crash": "runtime.batcher — the flusher thread dies",
    "runtime.flush_stall": "runtime.batcher — a flush stalls past the deadline",
    "runtime.admission_timeout": "runtime.backpressure — the gate times out",
    "cache.error": "core.caches — a digest-cache lookup raises",
}

#: What the fault soak may expect of honest sessions under a plan.
HONEST_EXPECTATIONS = ("identical", "certify", "refuse")


@dataclass(frozen=True)
class FaultSpec:
    """One fault point's schedule within a plan."""

    point: str
    #: 1-based seam invocations that fire unconditionally.
    at_calls: tuple = ()
    #: Per-invocation fire probability (seeded, deterministic).
    rate: float = 0.0
    #: Cap on total fires (``None`` = unbounded).  Applies to rate fires
    #: and ``at_calls`` fires combined.
    max_fires: int | None = None
    #: ``sampler.delay``: how far the schedule is pushed (virtual ms).
    delay_ms: float = 100.0
    #: ``runtime.flush_stall``: how long the flusher sleeps (wall seconds).
    stall_seconds: float = 0.5
    #: ``sampler.bitflip``: inverted square patches per corrupted frame,
    #: and their side length in pixels.
    patches: int = 2
    patch_side: int = 48

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; known: {sorted(FAULT_POINTS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if any(c < 1 for c in self.at_calls):
            raise ValueError(f"at_calls are 1-based invocation indexes, got {self.at_calls}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError(f"max_fires must be None or >= 1, got {self.max_fires}")
        if not self.at_calls and self.rate == 0.0:
            raise ValueError(f"spec for {self.point!r} can never fire (no at_calls, rate=0)")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule over one or more fault points."""

    name: str
    specs: tuple = ()
    seed: int = 0
    honest_expectation: str = "identical"
    #: ``WitnessConfig`` overrides the plan needs to be observable at
    #: test scale (e.g. a short ``runtime_submit_timeout_s`` so a stalled
    #: flush is *noticed* within the soak's budget), as ``(field, value)``
    #: pairs — tuples keep the plan hashable.
    config_overrides: tuple = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a FaultPlan needs a name")
        if self.honest_expectation not in HONEST_EXPECTATIONS:
            raise ValueError(
                f"honest_expectation must be one of {HONEST_EXPECTATIONS}, "
                f"got {self.honest_expectation!r}"
            )
        if not self.specs:
            raise ValueError("a FaultPlan needs at least one FaultSpec")
        seen = set()
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"specs must be FaultSpec instances, got {spec!r}")
            if spec.point in seen:
                raise ValueError(f"duplicate spec for fault point {spec.point!r}")
            seen.add(spec.point)

    @property
    def points(self) -> tuple:
        return tuple(spec.point for spec in self.specs)

    def spec_for(self, point: str) -> FaultSpec | None:
        for spec in self.specs:
            if spec.point == point:
                return spec
        return None


# -- the shipped plan catalog ----------------------------------------------


def frame_drop_plan(seed: int = 0) -> FaultPlan:
    """Drop ~1 in 6 scheduled samples and defer ~1 in 10: honest sessions
    lose evidence density but must still certify (the random schedule
    already tolerates sparse observation)."""
    return FaultPlan(
        name="frame-drop",
        seed=seed,
        honest_expectation="certify",
        specs=(
            FaultSpec("sampler.drop", rate=1 / 6),
            FaultSpec("sampler.delay", rate=0.1, delay_ms=120.0),
        ),
    )


def frame_corruption_plan(seed: int = 0) -> FaultPlan:
    """Invert pixel patches in every sampled frame: unrecoverable evidence
    corruption — honest sessions must refuse cleanly, never certify."""
    return FaultPlan(
        name="frame-corruption",
        seed=seed,
        honest_expectation="refuse",
        specs=(FaultSpec("sampler.bitflip", rate=1.0),),
    )


def forward_raise_plan(seed: int = 0) -> FaultPlan:
    """One early model forward raises: recovered by the verifier's (or
    executor's) retry — fingerprints must stay bit-identical."""
    return FaultPlan(
        name="forward-raise",
        seed=seed,
        honest_expectation="identical",
        specs=(FaultSpec("infer.raise", at_calls=(1,), max_fires=1),),
    )


def nan_logits_plan(seed: int = 0) -> FaultPlan:
    """Every forward returns NaN logits: the fail-closed verdict
    sanitization maps non-finite to mismatch, so honest sessions refuse
    instead of certifying garbage."""
    return FaultPlan(
        name="nan-logits",
        seed=seed,
        honest_expectation="refuse",
        specs=(FaultSpec("infer.nan", rate=1.0),),
    )


def flusher_crash_plan(seed: int = 0) -> FaultPlan:
    """The shared runtime's flusher thread dies twice mid-fleet: the
    supervisor restarts it and re-drains, losing no waiting session —
    fingerprints must stay bit-identical."""
    return FaultPlan(
        name="flusher-crash",
        seed=seed,
        honest_expectation="identical",
        specs=(FaultSpec("runtime.flusher_crash", at_calls=(1, 2), max_fires=2),),
    )


def flush_stall_plan(seed: int = 0) -> FaultPlan:
    """One flush stalls past the submit deadline: the submitter times out
    and degrades to an inline forward — same verdicts, coalescing lost."""
    return FaultPlan(
        name="flush-stall",
        seed=seed,
        honest_expectation="identical",
        specs=(FaultSpec("runtime.flush_stall", at_calls=(1,), max_fires=1, stall_seconds=1.0),),
        config_overrides=(("runtime_submit_timeout_s", 0.25),),
    )


def admission_timeout_plan(seed: int = 0) -> FaultPlan:
    """The admission gate times out one submission: typed
    ``AdmissionTimeout``, counted, degraded to inline — bit-identical."""
    return FaultPlan(
        name="admission-timeout",
        seed=seed,
        honest_expectation="identical",
        specs=(FaultSpec("runtime.admission_timeout", at_calls=(1,), max_fires=1),),
    )


def cache_fault_plan(seed: int = 0) -> FaultPlan:
    """~1 in 4 digest-cache lookups raise: verifiers treat the error as a
    miss and recompute — same verdicts, colder cache."""
    return FaultPlan(
        name="cache-fault",
        seed=seed,
        honest_expectation="identical",
        specs=(FaultSpec("cache.error", rate=0.25),),
    )


def shipped_plans(seed: int = 0) -> tuple:
    """Every plan the acceptance soak runs, in catalog order."""
    return (
        frame_drop_plan(seed),
        frame_corruption_plan(seed),
        forward_raise_plan(seed),
        nan_logits_plan(seed),
        flusher_crash_plan(seed),
        flush_stall_plan(seed),
        admission_timeout_plan(seed),
        cache_fault_plan(seed),
    )
