"""The armed runtime of a :class:`~repro.faults.plan.FaultPlan`.

One :class:`FaultInjector` per :class:`~repro.core.service.WitnessService`
whose config arms a plan.  Every seam in the pipeline asks the injector
whether to fire — but only when a plan is armed at all: the seams
themselves are guarded by ``if self._faults is not None`` (the
``NULL_SPAN`` pattern from :mod:`repro.obs.spans`), so the disarmed hot
path costs one ``is None`` test and zero allocations.

Determinism: each point owns a seeded RNG derived from ``(plan seed,
point name)`` and a call counter, both advanced under one small lock.
A single-threaded scenario therefore replays the exact same fault
schedule on every run; under concurrency (flusher threads racing
session threads) the *set* of recoverable faults may interleave
differently, which is fine — recoverable faults by definition do not
change verdicts, and the fault soak only demands bit-identical
fingerprints of plans whose faults are all recoverable.

Exceptions raised by fired points subclass
:class:`repro.runtime.errors.RuntimeFaultError`, so the recovery code
(executor degradation ladder, session quarantine) handles injected and
organic faults through the same ``except`` clause — injection proves
the organic paths.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.faults.plan import FaultPlan, FaultSpec
from repro.runtime.errors import RuntimeFaultError


class InjectedFault(RuntimeFaultError):
    """An injected failure surfaced at a fault point."""


class CacheFault(InjectedFault):
    """An injected digest-cache lookup failure."""


class _PointState:
    """One fault point's armed counters (guarded by the injector lock)."""

    __slots__ = ("spec", "calls", "fires", "rng")

    def __init__(self, spec: FaultSpec, seed: int) -> None:
        self.spec = spec
        self.calls = 0
        self.fires = 0
        # Seeded per (plan, point): schedules replay bit-identically.
        self.rng = np.random.default_rng([seed, *spec.point.encode("utf-8")])


class FaultInjector:
    """Counts seam invocations and fires a plan's scheduled faults."""

    def __init__(self, plan: FaultPlan) -> None:
        if not isinstance(plan, FaultPlan):
            raise TypeError(f"FaultInjector needs a FaultPlan, got {plan!r}")
        self.plan = plan
        self._lock = threading.Lock()
        self._points = {spec.point: _PointState(spec, plan.seed) for spec in plan.specs}

    # -- the one decision every seam asks -----------------------------------

    def decide(self, point: str) -> bool:
        """Count one invocation of ``point``; ``True`` means fire now."""
        state = self._points.get(point)
        if state is None:
            return False
        with self._lock:
            state.calls += 1
            coin = state.rng.random() if state.spec.rate else 1.0
            fired = state.calls in state.spec.at_calls or coin < state.spec.rate
            if (
                fired
                and state.spec.max_fires is not None
                and state.fires >= state.spec.max_fires
            ):
                fired = False
            if fired:
                state.fires += 1
            return fired

    def fire(self, point: str) -> None:
        """Raise :class:`InjectedFault` if ``point`` is scheduled to fire."""
        if self.decide(point):
            raise InjectedFault(f"injected fault at {point}")

    # -- seam-specific helpers ----------------------------------------------

    def sampler_delay_ms(self) -> float:
        """How far to defer the sampling schedule (0.0 = no delay fired)."""
        state = self._points.get("sampler.delay")
        if state is None or not self.decide("sampler.delay"):
            return 0.0
        return state.spec.delay_ms

    def stall_seconds(self, point: str) -> float:
        """Wall-clock stall to impose at ``point`` (0.0 = none fired)."""
        state = self._points.get(point)
        if state is None or not self.decide(point):
            return 0.0
        return state.spec.stall_seconds

    def corrupt_frame(self, pixels: np.ndarray) -> np.ndarray:
        """A corrupted copy of sampled pixels: seeded inverted patches.

        Only called after ``decide("sampler.bitflip")`` fired.  The
        original frame is never mutated — the machine's framebuffer is
        not the attack surface here, the witness's *view* of it is.
        """
        state = self._points["sampler.bitflip"]
        spec = state.spec
        out = pixels.copy()
        h, w = out.shape[0], out.shape[1]
        side = min(spec.patch_side, h, w)
        with self._lock:
            for _ in range(spec.patches):
                y = int(state.rng.integers(0, max(1, h - side + 1)))
                x = int(state.rng.integers(0, max(1, w - side + 1)))
                out[y : y + side, x : x + side] = 255.0 - out[y : y + side, x : x + side]
        return out

    def wrap_predict(self, fn):
        """Wrap a model predict callable with the ``infer.*`` seams.

        Returns ``fn`` unchanged when the plan schedules neither point,
        so un-faulted inference keeps its exact callable (and its exact
        performance).  NaN poisoning replaces the verdict array with
        non-finite garbage — exactly what a numerically-diverged model
        would emit — which the fail-closed sanitization downstream must
        map to mismatch, never to match.
        """
        if "infer.raise" not in self._points and "infer.nan" not in self._points:
            return fn

        def faulty_predict(observed, expected, *args, **kwargs):
            if self.decide("infer.raise"):
                raise InjectedFault("injected model-forward failure at infer.raise")
            raw = fn(observed, expected, *args, **kwargs)
            if self.decide("infer.nan"):
                return np.full(np.shape(raw), np.nan)
            return raw

        return faulty_predict

    def cache_hook(self, op: str, key: str) -> None:
        """The :attr:`repro.core.caches.DigestCache.fault_hook` seam."""
        if op == "get" and self.decide("cache.error"):
            raise CacheFault(f"injected digest-cache failure on get({key!r})")

    # -- accounting ----------------------------------------------------------

    @property
    def total_fired(self) -> int:
        with self._lock:
            return sum(state.fires for state in self._points.values())

    def snapshot(self) -> dict:
        """One consistent accounting snapshot for telemetry/benchmarks."""
        with self._lock:
            return {
                "plan": self.plan.name,
                "seed": self.plan.seed,
                "honest_expectation": self.plan.honest_expectation,
                "total_fired": sum(s.fires for s in self._points.values()),
                "points": {
                    point: {"calls": state.calls, "fires": state.fires}
                    for point, state in sorted(self._points.items())
                },
            }
