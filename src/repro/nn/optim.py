"""Optimizers updating model parameters in place."""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base optimizer over a params/grads provider (a model or layer)."""

    def __init__(self, target) -> None:
        self.target = target

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, target, lr: float = 0.01, momentum: float = 0.9) -> None:
        super().__init__(target)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict = {}

    def step(self) -> None:
        params = self.target.params()
        grads = self.target.grads()
        for name, p in params.items():
            g = grads.get(name)
            if g is None:
                continue
            v = self._velocity.get(name)
            if v is None:
                v = np.zeros_like(p)
            v *= self.momentum
            v -= self.lr * g
            self._velocity[name] = v
            p += v


class Adam(Optimizer):
    """Adam with bias correction (the paper's Keras default optimizer)."""

    def __init__(
        self,
        target,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(target)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict = {}
        self._v: dict = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        params = self.target.params()
        grads = self.target.grads()
        b1, b2 = self.beta1, self.beta2
        for name, p in params.items():
            g = grads.get(name)
            if g is None:
                continue
            m = self._m.get(name)
            v = self._v.get(name)
            if m is None:
                m = np.zeros_like(p)
                v = np.zeros_like(p)
            m = b1 * m + (1 - b1) * g
            v = b2 * v + (1 - b2) * (g * g)
            self._m[name] = m
            self._v[name] = v
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
