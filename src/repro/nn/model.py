"""Model containers: ``Sequential`` chains and the two-input ``MatcherModel``.

``MatcherModel`` is the topology both vWitness verifiers share (paper
Table II): a CNN feature extractor over the *observed* raster, a second
branch encoding the *expected* ground truth (a character one-hot for the
text model, another CNN over the expected raster for the graphics model),
and a dense head over the concatenated features producing one match logit.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.nn.layers import Layer
from repro.nn.losses import sigmoid, softmax

#: Default upper bound on the per-forward batch during inference.  Plan-level
#: batching can hand a whole frame's unit inputs to one ``predict`` call;
#: chunking bounds peak activation memory (conv im2col buffers grow linearly
#: with batch size) without changing results — forwards are per-sample.
PREDICT_CHUNK = 512


def _chunked_probability(forward, observed, expected, chunk_size) -> np.ndarray:
    """Sigmoid-of-forward over ``(observed, expected)`` in bounded chunks.

    Caller holds the inference lock; layer activation caches are only valid
    for the most recent forward, which is why chunks run inside one lock
    acquisition rather than per-chunk.
    """
    n = observed.shape[0]
    if chunk_size is None or n <= chunk_size:
        return sigmoid(forward(observed, expected)).reshape(-1)
    parts = [
        sigmoid(forward(observed[i : i + chunk_size], expected[i : i + chunk_size])).reshape(-1)
        for i in range(0, n, chunk_size)
    ]
    return np.concatenate(parts)


class Sequential(Layer):
    """A chain of layers applied in order."""

    def __init__(self, layers: list) -> None:
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def params(self) -> dict:
        out = {}
        for i, layer in enumerate(self.layers):
            for name, arr in layer.params().items():
                out[f"{i}.{name}"] = arr
        return out

    def grads(self) -> dict:
        out = {}
        for i, layer in enumerate(self.layers):
            for name, arr in layer.grads().items():
                out[f"{i}.{name}"] = arr
        return out

    # Convenience for classifier use -------------------------------------

    def predict_logits(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return softmax(self.forward(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x).argmax(axis=1)


class MatcherModel:
    """Two-input binary matcher (the vWitness verifier topology).

    Args:
        observed_branch: feature extractor over the observed raster input.
        expected_branch: encoder of the expected ground truth (one-hot for
            text, raster CNN for graphics).
        head: dense layers mapping concatenated features to one logit.
        threshold: detection threshold on the match probability; the paper
            hardens models by raising this to 0.99 (Table III row t6).
    """

    def __init__(
        self,
        observed_branch: Sequential,
        expected_branch: Sequential,
        head: Sequential,
        threshold: float = 0.5,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0,1), got {threshold}")
        self.observed_branch = observed_branch
        self.expected_branch = expected_branch
        self.head = head
        self.threshold = threshold
        self._obs_features: np.ndarray | None = None
        self._exp_features: np.ndarray | None = None
        # Layers cache forward activations for backward, so a forward pass
        # mutates shared state; concurrent inference on one (possibly
        # zoo-memoized) model must serialize through this lock.
        self.infer_lock = threading.Lock()

    # -- forward/backward --------------------------------------------------

    def forward(self, observed: np.ndarray, expected: np.ndarray) -> np.ndarray:
        """Match logits ``(N, 1)`` for observed/expected input pairs."""
        fo = self.observed_branch.forward(observed)
        fe = self.expected_branch.forward(expected)
        if fo.shape[0] != fe.shape[0]:
            raise ValueError(f"batch mismatch: {fo.shape[0]} vs {fe.shape[0]}")
        self._obs_features = fo  # witness-lint: allow[lock-guard] -- caller-holds-lock protocol: every inference entry point serializes on infer_lock
        self._exp_features = fe  # witness-lint: allow[lock-guard] -- caller-holds-lock protocol: every inference entry point serializes on infer_lock
        return self.head.forward(np.concatenate([fo, fe], axis=1))

    def backward(self, grad_logits: np.ndarray) -> tuple:
        """Backprop to both inputs; returns ``(d_observed, d_expected)``."""
        if self._obs_features is None or self._exp_features is None:
            raise RuntimeError("backward called before forward")
        grad_cat = self.head.backward(grad_logits)
        no = self._obs_features.shape[1]
        d_obs = self.observed_branch.backward(grad_cat[:, :no])
        d_exp = self.expected_branch.backward(grad_cat[:, no:])
        return d_obs, d_exp

    def input_gradient(self, observed, expected, grad_logits) -> np.ndarray:
        """Gradient of a scalar-through-logits loss w.r.t. the observed raster."""
        self.forward(observed, expected)
        d_obs, _d_exp = self.backward(grad_logits)
        return d_obs

    # -- inference -----------------------------------------------------------

    def _frozen_dispatch(self, frozen: bool | None):
        """The frozen twin to route inference through, or ``None``.

        ``frozen=None`` (the default) uses the memoized twin if one has
        been attached (the zoo attaches one to every trained model);
        ``True`` compiles one on demand; ``False`` forces the training
        ``Sequential`` path — the knob benchmarks A/B against.
        """
        if frozen is None:
            return getattr(self, "_frozen_twin", None)
        if frozen:
            from repro.nn.infer import frozen_twin

            return frozen_twin(self)
        return None

    def match_probability(
        self,
        observed: np.ndarray,
        expected: np.ndarray,
        chunk_size: int | None = PREDICT_CHUNK,
        frozen: bool | None = None,
    ) -> np.ndarray:
        """P(observed is a benign rendering of expected), shape ``(N,)``.

        Batches larger than ``chunk_size`` run as successive forwards under
        one lock acquisition; ``chunk_size=None`` disables chunking.  When
        a frozen twin is attached (see ``frozen``), inference runs on its
        fused, workspace-reusing forward — lock-free, since frozen
        forwards keep no shared mutable state.
        """
        twin = self._frozen_dispatch(frozen)
        if twin is not None:
            # Threshold views share branches but not thresholds; the twin
            # only matters for its forward here, so probability routing is
            # always safe.
            return twin.match_probability(observed, expected, chunk_size)
        with self.infer_lock:
            return _chunked_probability(self.forward, observed, expected, chunk_size)

    def predict(
        self,
        observed: np.ndarray,
        expected: np.ndarray,
        chunk_size: int | None = PREDICT_CHUNK,
        frozen: bool | None = None,
    ) -> np.ndarray:
        """Boolean match decision at the configured threshold."""
        return self.match_probability(observed, expected, chunk_size, frozen) >= self.threshold

    def with_threshold(self, threshold: float) -> "MatcherModel":
        """A view of this model with a different detection threshold.

        Shares parameters with the original — raising the threshold is a
        pure inference-time hardening (paper §V-B "High Detection
        Threshold").
        """
        clone = MatcherModel(
            self.observed_branch, self.expected_branch, self.head, threshold=threshold
        )
        clone.infer_lock = self.infer_lock  # shared branches, shared lock
        twin = getattr(self, "_frozen_twin", None)
        if twin is not None:
            # Inherit the compiled twin (shared nets/arenas) at the new
            # threshold so threshold hardening keeps the frozen engine.
            clone._frozen_twin = twin.with_threshold(threshold)
        return clone

    # -- parameters ------------------------------------------------------------

    def params(self) -> dict:
        out = {}
        for prefix, part in (
            ("obs", self.observed_branch),
            ("exp", self.expected_branch),
            ("head", self.head),
        ):
            for name, arr in part.params().items():
                out[f"{prefix}.{name}"] = arr
        return out

    def grads(self) -> dict:
        out = {}
        for prefix, part in (
            ("obs", self.observed_branch),
            ("exp", self.expected_branch),
            ("head", self.head),
        ):
            for name, arr in part.grads().items():
                out[f"{prefix}.{name}"] = arr
        return out

    @property
    def num_params(self) -> int:
        return int(sum(p.size for p in self.params().values()))


class ChannelPairMatcher:
    """Binary matcher over channel-stacked (observed, expected) rasters.

    The graphics verifier compares two same-shape rasters.  Feeding them
    as the two input channels of one CNN lets the first convolution see
    both simultaneously — per-pixel comparison becomes a linear filter,
    so "is this a benign variation of that?" is learnable with very little
    capacity.  The interface mirrors :class:`MatcherModel`, including the
    input gradient needed by adversarial attacks.
    """

    def __init__(self, network: Sequential, threshold: float = 0.5) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0,1), got {threshold}")
        self.network = network
        self.threshold = threshold
        self.infer_lock = threading.Lock()

    def forward(self, observed: np.ndarray, expected: np.ndarray) -> np.ndarray:
        if observed.shape != expected.shape:
            raise ValueError(f"raster shapes differ: {observed.shape} vs {expected.shape}")
        if observed.ndim != 4 or observed.shape[1] != 1:
            raise ValueError(f"expected (N, 1, H, W) rasters, got {observed.shape}")
        stacked = np.concatenate([observed, expected], axis=1)
        return self.network.forward(stacked)

    def backward(self, grad_logits: np.ndarray) -> tuple:
        d_stacked = self.network.backward(grad_logits)
        return d_stacked[:, :1], d_stacked[:, 1:]

    _frozen_dispatch = MatcherModel._frozen_dispatch

    def match_probability(
        self,
        observed: np.ndarray,
        expected: np.ndarray,
        chunk_size: int | None = PREDICT_CHUNK,
        frozen: bool | None = None,
    ) -> np.ndarray:
        twin = self._frozen_dispatch(frozen)
        if twin is not None:
            return twin.match_probability(observed, expected, chunk_size)
        with self.infer_lock:
            return _chunked_probability(self.forward, observed, expected, chunk_size)

    def predict(
        self,
        observed: np.ndarray,
        expected: np.ndarray,
        chunk_size: int | None = PREDICT_CHUNK,
        frozen: bool | None = None,
    ) -> np.ndarray:
        return self.match_probability(observed, expected, chunk_size, frozen) >= self.threshold

    def with_threshold(self, threshold: float) -> "ChannelPairMatcher":
        """A parameter-sharing view with a different detection threshold."""
        clone = ChannelPairMatcher(self.network, threshold=threshold)
        clone.infer_lock = self.infer_lock  # shared network, shared lock
        twin = getattr(self, "_frozen_twin", None)
        if twin is not None:
            clone._frozen_twin = twin.with_threshold(threshold)
        return clone

    def params(self) -> dict:
        return self.network.params()

    def grads(self) -> dict:
        return self.network.grads()

    @property
    def num_params(self) -> int:
        return int(sum(p.size for p in self.params().values()))
