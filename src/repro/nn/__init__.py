"""From-scratch neural-network library (TensorFlow/Keras substitute).

vWitness's verifiers are small CNNs (Table II): a *text model* comparing a
locally rendered 32x32 character tile against an expected character, and a
*graphics model* comparing a rendered 32x32 sub-region against its expected
appearance.  Both are binary "is this a benign rendering variation of the
expected content?" matchers.

This package implements the pieces needed to train those models and to
attack them with white-box adversarial examples:

* :mod:`repro.nn.layers` — Conv2D (im2col), Dense, ReLU, MaxPool, Flatten
  with full backward passes *including input gradients*.
* :mod:`repro.nn.model` — ``Sequential`` and the two-input
  ``MatcherModel`` topology used by both verifiers.
* :mod:`repro.nn.losses` — numerically stable BCE/CE on logits.
* :mod:`repro.nn.optim` — SGD with momentum and Adam.
* :mod:`repro.nn.train` — minibatch training loop with metrics.
* :mod:`repro.nn.data` — training-corpus generation from the raster
  substrate (the paper's §IV-A data collection process).
* :mod:`repro.nn.zoo` — named pretrained models with a disk cache.
* :mod:`repro.nn.infer` — the frozen inference engine: trained matchers
  compiled into allocation-free, fused float32 forward paths.
"""

from repro.nn.infer import (
    INFERENCE_MODES,
    FrozenMatcher,
    FrozenNet,
    FrozenPairMatcher,
    freeze,
    frozen_twin,
    invalidate_frozen,
)
from repro.nn.layers import Conv2D, Dense, Flatten, Layer, MaxPool2D, ReLU
from repro.nn.model import MatcherModel, Sequential
from repro.nn.losses import (
    bce_loss_with_logits,
    ce_loss_with_logits,
    sigmoid,
    softmax,
)
from repro.nn.optim import SGD, Adam
from repro.nn.train import TrainReport, train_classifier, train_matcher
from repro.nn.serialize import load_model, save_model

__all__ = [
    "Layer",
    "Conv2D",
    "Dense",
    "Flatten",
    "MaxPool2D",
    "ReLU",
    "Sequential",
    "MatcherModel",
    "INFERENCE_MODES",
    "FrozenNet",
    "FrozenMatcher",
    "FrozenPairMatcher",
    "freeze",
    "frozen_twin",
    "invalidate_frozen",
    "sigmoid",
    "softmax",
    "bce_loss_with_logits",
    "ce_loss_with_logits",
    "SGD",
    "Adam",
    "TrainReport",
    "train_matcher",
    "train_classifier",
    "save_model",
    "load_model",
]
