"""Minibatch training loops for matchers and classifiers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import bce_loss_with_logits, ce_loss_with_logits
from repro.nn.model import MatcherModel, Sequential
from repro.nn.optim import Adam
from repro.nn.tensorops import DEFAULT_DTYPE, batch_iter


@dataclass
class TrainReport:
    """Per-epoch metrics from a training run."""

    losses: list = field(default_factory=list)
    accuracies: list = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else float("nan")


def train_matcher(
    model: MatcherModel,
    observed: np.ndarray,
    expected: np.ndarray,
    labels: np.ndarray,
    epochs: int = 3,
    batch_size: int = 128,
    lr: float = 2e-3,
    seed: int = 0,
    verbose: bool = False,
) -> TrainReport:
    """Train a two-input matcher with BCE on match labels in {0, 1}."""
    if len(observed) != len(expected) or len(observed) != len(labels):
        raise ValueError(
            f"misaligned training arrays: {len(observed)}/{len(expected)}/{len(labels)}"
        )
    optimizer = Adam(model, lr=lr)
    rng = np.random.default_rng(seed)
    y = np.asarray(labels, dtype=DEFAULT_DTYPE).reshape(-1, 1)
    report = TrainReport()
    for epoch in range(epochs):
        epoch_loss = 0.0
        correct = 0
        for idx in batch_iter(len(observed), batch_size, rng):
            logits = model.forward(observed[idx], expected[idx])
            loss, grad = bce_loss_with_logits(logits, y[idx])
            model.backward(grad)
            optimizer.step()
            epoch_loss += loss * len(idx)
            correct += int(np.sum((logits.reshape(-1) > 0) == (y[idx].reshape(-1) > 0.5)))
        report.losses.append(epoch_loss / len(observed))
        report.accuracies.append(correct / len(observed))
        if verbose:  # pragma: no cover - console aid
            print(
                f"epoch {epoch + 1}/{epochs}: loss={report.losses[-1]:.4f} "
                f"acc={report.accuracies[-1]:.4f}"
            )
    return report


def train_classifier(
    model: Sequential,
    x: np.ndarray,
    labels: np.ndarray,
    epochs: int = 3,
    batch_size: int = 128,
    lr: float = 1e-3,
    seed: int = 0,
    verbose: bool = False,
) -> TrainReport:
    """Train a softmax classifier (the reference models of §V-B)."""
    if len(x) != len(labels):
        raise ValueError(f"misaligned training arrays: {len(x)} vs {len(labels)}")
    optimizer = Adam(model, lr=lr)
    rng = np.random.default_rng(seed)
    y = np.asarray(labels, dtype=int)
    report = TrainReport()
    for epoch in range(epochs):
        epoch_loss = 0.0
        correct = 0
        for idx in batch_iter(len(x), batch_size, rng):
            logits = model.forward(x[idx])
            loss, grad = ce_loss_with_logits(logits, y[idx])
            model.backward(grad)
            optimizer.step()
            epoch_loss += loss * len(idx)
            correct += int(np.sum(logits.argmax(axis=1) == y[idx]))
        report.losses.append(epoch_loss / len(x))
        report.accuracies.append(correct / len(x))
        if verbose:  # pragma: no cover - console aid
            print(
                f"epoch {epoch + 1}/{epochs}: loss={report.losses[-1]:.4f} "
                f"acc={report.accuracies[-1]:.4f}"
            )
    return report


def matcher_accuracy(model: MatcherModel, observed, expected, labels, batch_size: int = 256) -> float:
    """Accuracy of a matcher at its configured threshold."""
    y = np.asarray(labels, dtype=DEFAULT_DTYPE).reshape(-1)
    correct = 0
    for start in range(0, len(observed), batch_size):
        sl = slice(start, start + batch_size)
        pred = model.predict(observed[sl], expected[sl])
        correct += int(np.sum(pred == (y[sl] > 0.5)))
    return correct / len(observed)


def classifier_accuracy(model: Sequential, x, labels, batch_size: int = 256) -> float:
    """Top-1 accuracy of a classifier."""
    y = np.asarray(labels, dtype=int)
    correct = 0
    for start in range(0, len(x), batch_size):
        sl = slice(start, start + batch_size)
        correct += int(np.sum(model.predict(x[sl]) == y[sl]))
    return correct / len(x)
