"""Named model builders and a disk cache of trained verifiers.

Training CNNs from scratch on every test run would dominate wall-clock
time, so the zoo trains each named model once and caches its parameters
under ``$REPRO_MODEL_DIR`` (default: ``~/.cache/repro-vwitness``).  The
named variants mirror the rows of the paper's Table III:

=========  ======================================================
name       paper row
=========  ======================================================
text-ref   t1  reference multi-class character classifier
text-base  t2  base text matcher (many fonts)
text-font-<i>  t3  single-font specialized matchers
text-sans  t4  sans-serif-specialized matcher
text-serif t5  serif-specialized matcher
(t6 is ``text-sans`` with ``with_threshold(0.99)`` — same weights)
image-ref  g1  reference multi-class icon classifier
image-base g2/g3 graphics matcher (icons + natural patches)
=========  ======================================================
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.nn.data import (
    CHARSET,
    image_dataset,
    reference_image_dataset,
    reference_text_dataset,
    text_dataset,
)
from repro.nn.infer import frozen_twin
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.model import ChannelPairMatcher, MatcherModel, Sequential
from repro.nn.serialize import load_model, save_model
from repro.nn.train import train_classifier, train_matcher
from repro.raster.fonts import font_registry, sans_serif_fonts, serif_fonts
from repro.raster.stacks import stack_registry


def model_cache_dir() -> str:
    """Directory holding trained-model parameter files."""
    return os.environ.get(
        "REPRO_MODEL_DIR", os.path.join(os.path.expanduser("~"), ".cache", "repro-vwitness")
    )


# ---------------------------------------------------------------------------
# Architectures
# ---------------------------------------------------------------------------


def _conv_feature_branch(rng: np.random.Generator) -> Sequential:
    """Conv feature extractor: 32x32x1 -> 64 features."""
    return Sequential(
        [
            Conv2D(1, 8, kernel=3, pad=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(8, 16, kernel=3, pad=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(16 * 8 * 8, 64, rng=rng),
            ReLU(),
        ]
    )


def build_text_matcher(seed: int = 0, threshold: float = 0.5) -> MatcherModel:
    """Text verifier: observed glyph tile + expected character one-hot."""
    rng = np.random.default_rng(seed)
    observed = _conv_feature_branch(rng)
    expected = Sequential([Dense(len(CHARSET), 64, rng=rng), ReLU()])
    head = Sequential([Dense(128, 64, rng=rng), ReLU(), Dense(64, 1, rng=rng)])
    return MatcherModel(observed, expected, head, threshold=threshold)


def build_image_matcher(seed: int = 0, threshold: float = 0.5) -> ChannelPairMatcher:
    """Graphics verifier: observed/expected rasters as CNN input channels.

    Table II describes two feature extractions; stacking the rasters as
    channels fuses those extractions into the first convolution, which
    trains far more reliably at this model scale (see DESIGN.md).
    """
    rng = np.random.default_rng(seed)
    network = Sequential(
        [
            Conv2D(2, 12, kernel=3, pad=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(12, 16, kernel=3, pad=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(16 * 8 * 8, 64, rng=rng),
            ReLU(),
            Dense(64, 1, rng=rng),
        ]
    )
    return ChannelPairMatcher(network, threshold=threshold)


def build_text_reference(seed: int = 0) -> Sequential:
    """Reference multi-class character classifier (paper's MNIST analogue)."""
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Conv2D(1, 8, kernel=3, pad=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(8, 16, kernel=3, pad=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(16 * 8 * 8, 128, rng=rng),
            ReLU(),
            Dense(128, len(CHARSET), rng=rng),
        ]
    )


def build_image_reference(seed: int = 0, num_classes: int = 10) -> Sequential:
    """Reference multi-class icon classifier (paper's CIFAR-10 analogue)."""
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Conv2D(1, 8, kernel=3, pad=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(8, 16, kernel=3, pad=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(16 * 8 * 8, 128, rng=rng),
            ReLU(),
            Dense(128, num_classes, rng=rng),
        ]
    )


# ---------------------------------------------------------------------------
# Training profiles
# ---------------------------------------------------------------------------

#: Corpus/epoch sizing.  "fast" keeps unit tests snappy; "full" is used by
#: the benchmark suite for the headline numbers.
PROFILES = {
    "fast": {"fonts": 4, "stacks": 3, "expansions": 2, "epochs": 14, "styles": ("normal",)},
    "full": {"fonts": 8, "stacks": 5, "expansions": 1, "epochs": 20, "styles": ("normal", "bold")},
}


def _profile() -> dict:
    name = os.environ.get("REPRO_MODEL_PROFILE", "fast")
    if name not in PROFILES:
        raise ValueError(f"unknown model profile {name!r}; expected one of {sorted(PROFILES)}")
    return dict(PROFILES[name], name=name)


def _cache_path(name: str) -> str:
    profile = _profile()["name"]
    return os.path.join(model_cache_dir(), f"{name}-{profile}.npz")


# ---------------------------------------------------------------------------
# Process-wide model registry
# ---------------------------------------------------------------------------

#: Memoized trained models, keyed by (model name, profile, cache dir).  The
#: disk cache already avoids *retraining* across processes; this registry
#: avoids re-*loading* (and, on a cold disk cache, re-training) within one
#: process, so a second witness or service constructed anywhere reuses the
#: exact same model objects.  The lock is held across load/train so that
#: concurrent first requests for one model build it exactly once.
_REGISTRY: dict = {}
_REGISTRY_LOCK = threading.RLock()
_REGISTRY_STATS = {"hits": 0, "loads": 0, "trains": 0}


def model_registry_stats() -> dict:
    """Snapshot of registry activity: ``hits``/``loads``/``trains``/``entries``.

    ``trains`` counts from-scratch training runs; tests assert it stays
    flat when a second service spins up against warm models.
    """
    with _REGISTRY_LOCK:
        return dict(_REGISTRY_STATS, entries=len(_REGISTRY))


def clear_model_registry() -> None:
    """Drop memoized models (tests only; the disk cache is untouched)."""
    with _REGISTRY_LOCK:
        _REGISTRY.clear()
        _REGISTRY_STATS.update(hits=0, loads=0, trains=0)


def _vend(model):
    """Attach the memoized frozen inference twin before vending.

    Freezing happens strictly post-load/post-train (weights are final),
    so every consumer of a zoo model — verifiers, the runtime executor,
    ``predict``'s automatic dispatch — shares one compiled twin.
    Sequential reference classifiers are vended unfrozen; callers can
    :func:`repro.nn.infer.freeze` them explicitly.
    """
    if hasattr(model, "match_probability"):
        frozen_twin(model)
    return model


def _load_or_train(name: str, builder, trainer):
    key = (name, _profile()["name"], model_cache_dir())
    with _REGISTRY_LOCK:
        cached = _REGISTRY.get(key)
        if cached is not None:
            _REGISTRY_STATS["hits"] += 1
            return _vend(cached)
        path = _cache_path(name)
        model = builder()
        if os.path.exists(path):
            try:
                model = load_model(model, path)
                _REGISTRY_STATS["loads"] += 1
                _REGISTRY[key] = model
                return _vend(model)
            except ValueError:
                os.remove(path)  # stale architecture; retrain below
                model = builder()
        model = trainer(model)
        _REGISTRY_STATS["trains"] += 1
        save_model(model, path)
        _REGISTRY[key] = model
        return _vend(model)


def get_text_model(variant: str = "base") -> MatcherModel:
    """A trained text verifier.

    Variants: ``base`` (t2), ``font-<i>`` single-font (t3), ``sans`` (t4),
    ``serif`` (t5).  Apply ``.with_threshold(0.99)`` for t6.
    """
    prof = _profile()
    if variant == "base":
        fonts = font_registry()[: prof["fonts"]]
    elif variant.startswith("font-"):
        index = int(variant.split("-", 1)[1])
        registry = font_registry()
        if not 0 <= index < len(registry):
            raise ValueError(f"font index {index} out of range")
        fonts = [registry[index]]
    elif variant == "sans":
        fonts = sans_serif_fonts(max(2, prof["fonts"] // 2))
    elif variant == "serif":
        fonts = serif_fonts(max(2, prof["fonts"] // 2))
    else:
        raise ValueError(f"unknown text model variant {variant!r}")

    # Specialized variants see far fewer (font, char) combinations, so
    # they compensate with heavier augmentation and longer training.
    single = variant.startswith("font-")

    def trainer(model):
        prof_local = _profile()
        stacks = stack_registry()[: prof_local["stacks"]]
        obs, exp, labels = text_dataset(
            fonts,
            stacks=stacks,
            styles=prof_local["styles"],
            expansions=max(4, prof_local["expansions"]) if single else prof_local["expansions"],
            seed=7,
        )
        epochs = prof_local["epochs"] + (6 if single else 0)
        train_matcher(model, obs, exp, labels, epochs=epochs, seed=7)
        return model

    return _load_or_train(f"text-{variant}", lambda: build_text_matcher(seed=7), trainer)


def get_image_model() -> MatcherModel:
    """The trained graphics verifier (g2/g3 weights)."""
    prof = _profile()

    def trainer(model):
        stacks = stack_registry()[: prof["stacks"]]
        obs, exp, labels = image_dataset(stacks=stacks, seed=11)
        train_matcher(model, obs, exp, labels, epochs=max(3, prof["epochs"]), seed=11)
        return model

    return _load_or_train("image-base", lambda: build_image_matcher(seed=11), trainer)


def get_text_reference() -> Sequential:
    """The trained reference character classifier (t1)."""
    prof = _profile()

    def trainer(model):
        fonts = font_registry()[: max(2, prof["fonts"] // 2)]
        stacks = stack_registry()[: prof["stacks"]]
        x, y = reference_text_dataset(fonts, stacks=stacks, seed=13)
        train_classifier(model, x, y, epochs=max(4, prof["epochs"] + 2), seed=13)
        return model

    return _load_or_train("text-ref", lambda: build_text_reference(seed=13), trainer)


def get_image_reference() -> Sequential:
    """The trained reference icon classifier (g1)."""
    prof = _profile()

    def trainer(model):
        stacks = stack_registry()[: prof["stacks"]]
        x, y = reference_image_dataset(stacks=stacks, per_class=8, seed=17)
        train_classifier(model, x, y, epochs=max(4, prof["epochs"] + 2), seed=17)
        return model

    return _load_or_train("image-ref", lambda: build_image_reference(seed=17), trainer)
