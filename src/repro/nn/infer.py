"""Frozen inference engine: trained matchers compiled into fused forward paths.

Training and inference want opposite things from a forward pass.  The
``Sequential`` path keeps every layer separate and caches every
activation because backward needs them; inference reads none of that, yet
(before this module) every verifier forward still paid for it — fresh
im2col buffers per call, backward caches nobody consumes, non-contiguous
transposed conv outputs that make every downstream op crawl.

:func:`freeze` compiles a trained model into an inference-only
executable:

* **No grad bookkeeping.**  Compiled stages hold weights only; nothing is
  cached for a backward pass that will never run.
* **Fused stages.**  ``Conv2D`` absorbs its bias add and a following
  ``ReLU`` into one stage (GEMM into a preallocated buffer, bias and
  rectify in place); ``Dense`` likewise.  Chains of ``Dense`` layers with
  no activation between them are constant-folded into a single affine
  stage at compile time.
* **float32 end-to-end.**  All weights are cast once to contiguous
  ``float32``; inputs are cast on entry; every intermediate buffer is
  ``float32``.  No silent float64 upcast anywhere on the path.
* **Channel-last execution.**  Internally activations flow NHWC, so each
  conv GEMM's output *is* the next stage's contiguous input — the
  training path's transposed views (and the cache-hostile copies they
  force downstream) disappear.  Values are bit-identical: layout is an
  execution detail, and every rearrangement is an exact copy or an exact
  ``max``.
* **Workspace arenas.**  All scratch (pad rings, im2col columns, GEMM
  outputs, pool temporaries) lives in a per-shape :class:`Workspace`,
  keyed by input shape and reused across calls — the steady state of the
  runtime's flusher threads, which replay the same micro-batch shapes all
  day, allocates nothing.  Workspaces are thread-confined (one arena per
  thread, LRU-evicted past ``max_shapes``), so frozen forwards need no
  inference lock at all.

Parity guarantee
----------------

Dense stages, pooling, and every copy are exact, so a dense-only path
reproduces training logits bit for bit.  Conv stages build their column
matrix in ``(k, k, c)`` order (channel-contiguous gathers are ~5x faster
than the training path's ``(c, k, k)`` order) with the weight rows
permuted to match: the GEMM sums the *same* products in a different
order, so conv logits agree with the training path to float32 rounding
(~1e-6 relative) rather than bit for bit — the same magnitude of drift a
BLAS thread-count change produces.  Accept/reject *decisions* are
identical on the parity corpus (asserted by
``benchmarks/test_inference_engine.py`` and the property tests in
``tests/test_nn_infer.py``); trained matchers' margins sit orders of
magnitude above the drift.  Constant-folding an actual
``Dense``-``Dense`` chain likewise reassociates float arithmetic and is
*decision*-preserving; no shipped model contains such a chain.

Freezing snapshots weights: it happens **post-load** (the zoo attaches a
twin after :func:`~repro.nn.serialize.load_model` / training finishes),
and anything that mutates parameters in place afterwards must call
:func:`invalidate_frozen` (``load_model`` does) or the twin goes stale.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict

import numpy as np

from repro.analysis import hot_path
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.losses import softmax
from repro.nn.model import (
    PREDICT_CHUNK,
    ChannelPairMatcher,
    MatcherModel,
    Sequential,
    _chunked_probability,
)
from repro.nn.tensorops import conv_output_size

#: Valid ``WitnessConfig.inference`` modes.
INFERENCE_MODES = ("frozen", "training")

#: The one and only dtype of a frozen forward.
INFER_DTYPE = np.float32

#: Default bound on distinct input shapes cached per thread before LRU
#: eviction.  Matcher traffic is shape-repetitive (chunked batches, the
#: runtime's micro-batches), so a handful of slots covers the steady
#: state while a session storm of odd shapes cannot grow memory without
#: bound.
DEFAULT_MAX_SHAPES = 8

#: witness-san seam (see :mod:`repro.analysis.sanitizer`): the active
#: sanitizer state, or ``None`` when disarmed — arena checkouts pay one
#: ``is None`` test, the same disarmed-seam pattern as ``obs.NULL_SPAN``.
_SAN = None


class Workspace:
    """Preallocated scratch buffers for one input shape.

    A workspace belongs to exactly one ``(net, thread, input shape)``
    triple, so every buffer's shape is fully determined by its key and a
    repeated-shape call reuses every allocation of the first.
    """

    __slots__ = ("_bufs", "allocations", "nbytes")

    def __init__(self) -> None:
        self._bufs: dict = {}
        self.allocations = 0
        self.nbytes = 0

    def buf(self, key, shape: tuple) -> np.ndarray:
        """The scratch array registered under ``key`` (allocated once).

        Buffers are zeroed at allocation only: pad-ring buffers rely on
        their border staying zero across calls (the interior is fully
        overwritten every call), which saves a full memset per conv.
        """
        b = self._bufs.get(key)
        if b is None:
            b = np.zeros(shape, dtype=INFER_DTYPE)
            self._bufs[key] = b
            self.allocations += 1
            self.nbytes += b.nbytes
        return b


class _Arena:
    """One thread's LRU of :class:`Workspace` objects keyed by input shape."""

    __slots__ = ("max_shapes", "_workspaces", "hits", "misses", "evictions", "thread", "owner_ident")

    def __init__(self, max_shapes: int) -> None:
        self.max_shapes = max_shapes
        self._workspaces: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.thread = threading.current_thread().name
        #: witness-san ownership tag — pinned to the creating thread by
        #: ``_ArenaSet.arena()`` (arenas are thread-local and never
        #: migrate, unlike plan-owned transport pools).
        self.owner_ident = None

    def workspace(self, shape: tuple) -> Workspace:
        if _SAN is not None:
            _SAN.note_pool_use(self, "workspace-arena")
        ws = self._workspaces.get(shape)
        if ws is not None:
            self._workspaces.move_to_end(shape)
            self.hits += 1
            return ws
        self.misses += 1
        ws = Workspace()
        self._workspaces[shape] = ws
        if len(self._workspaces) > self.max_shapes:
            self._workspaces.popitem(last=False)
            self.evictions += 1
        return ws

    def stats(self) -> dict:
        return {
            "thread": self.thread,
            "shapes": len(self._workspaces),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "allocations": sum(ws.allocations for ws in self._workspaces.values()),
            "nbytes": sum(ws.nbytes for ws in self._workspaces.values()),
        }


class _ArenaSet:
    """Thread-local arenas plus a registry so stats can see all threads.

    Registry entries pair each arena with its owning thread; dead
    threads' entries are pruned whenever a new thread registers, so a
    process-global frozen twin does not accumulate workspace memory
    across thread churn (fleets of short-lived worker pools).
    """

    def __init__(self, max_shapes: int) -> None:
        self.max_shapes = max_shapes
        self._tls = threading.local()
        self._entries: list = []  # (thread, arena)
        self._lock = threading.Lock()

    def arena(self) -> _Arena:
        arena = getattr(self._tls, "arena", None)
        if arena is None:
            arena = _Arena(self.max_shapes)
            # Thread-local by construction: pin witness-san ownership at
            # creation so any foreign checkout is a violation outright.
            arena.owner_ident = threading.get_ident()
            self._tls.arena = arena
            with self._lock:
                self._entries = [(t, a) for t, a in self._entries if t.is_alive()]
                self._entries.append((threading.current_thread(), arena))
        return arena

    def stats(self) -> list:
        with self._lock:
            return [arena.stats() for _thread, arena in self._entries]


# ---------------------------------------------------------------------------
# Compiled stages (all operate on float32, channel-last activations)
# ---------------------------------------------------------------------------


def _f32(arr: np.ndarray) -> np.ndarray:
    """One-time cast to contiguous float32 (no copy when already there)."""
    return np.ascontiguousarray(arr, dtype=INFER_DTYPE)


class _ConvStage:
    """Fused conv + bias + optional ReLU over NHWC input via im2col GEMM.

    The column matrix is gathered in ``(n, h2, w2, k, k, c)`` order —
    channel-contiguous inner runs, ~5x faster to build than the training
    path's ``(c, k, k)`` ordering — with the weight rows permuted once at
    compile time to match.  The GEMM therefore sums the same products in
    a different order: logits match the training conv to float32
    rounding, decisions exactly (see the module parity note).
    """

    __slots__ = ("w", "b", "kernel", "stride", "pad", "relu", "in_channels", "index")

    def __init__(self, layer: Conv2D, relu: bool, index: int) -> None:
        k, c, f = layer.kernel, layer.in_channels, layer.out_channels
        # (c*k*k, f) rows reordered from (c, k, k) to (k, k, c).
        self.w = _f32(
            layer.w.reshape(c, k, k, f).transpose(1, 2, 0, 3).reshape(c * k * k, f)
        )
        self.b = _f32(layer.b)
        self.kernel = k
        self.stride = layer.stride
        self.pad = layer.pad
        self.relu = relu
        self.in_channels = c
        self.index = index

    @hot_path
    def run(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        n, h, w, c = x.shape
        if c != self.in_channels:
            raise ValueError(f"Conv stage expected {self.in_channels} channels, got {c}")
        k, s, p = self.kernel, self.stride, self.pad
        h2 = conv_output_size(h, k, s, p)
        w2 = conv_output_size(w, k, s, p)
        if p:
            # Interior fully overwritten; the zero border persists from
            # the buffer's one-time allocation (see Workspace.buf).
            xp = ws.buf((self.index, "pad"), (n, h + 2 * p, w + 2 * p, c))
            xp[:, p : p + h, p : p + w, :] = x
        else:
            xp = x
        windows = np.lib.stride_tricks.sliding_window_view(xp, (k, k), axis=(1, 2))
        if s > 1:
            windows = windows[:, ::s, ::s]
        col = ws.buf((self.index, "col"), (n * h2 * w2, c * k * k))
        np.copyto(col.reshape(n, h2, w2, k, k, c), windows.transpose(0, 1, 2, 4, 5, 3))
        out = ws.buf((self.index, "out"), (n * h2 * w2, self.w.shape[1]))
        np.matmul(col, self.w, out=out)
        out += self.b
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out.reshape(n, h2, w2, self.w.shape[1])


class _PoolStage:
    """Non-overlapping max pool over NHWC input, computed as exact
    pairwise maxima (multi-axis ``max(out=)`` hits a slow reduction path;
    strided ``np.maximum`` does not, and max is order-insensitive)."""

    __slots__ = ("size", "index")

    def __init__(self, layer: MaxPool2D, index: int) -> None:
        self.size = layer.size
        self.index = index

    @hot_path
    def run(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        n, h, w, c = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"MaxPool2D({s}) needs H, W divisible by {s}, got {h}x{w}")
        rows = ws.buf((self.index, "rows"), (n, h // s, w, c))
        np.copyto(rows, x[:, 0::s])
        for i in range(1, s):
            np.maximum(rows, x[:, i::s], out=rows)
        out = ws.buf((self.index, "out"), (n, h // s, w // s, c))
        np.copyto(out, rows[:, :, 0::s])
        for i in range(1, s):
            np.maximum(out, rows[:, :, i::s], out=out)
        return out


class _FlattenStage:
    """NHWC -> flat channel-major rows (the training ``Flatten`` order)."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    @hot_path
    def run(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        if x.ndim == 2:
            return x
        n, h, w, c = x.shape
        out = ws.buf((self.index, "out"), (n, c, h, w))
        np.copyto(out, x.transpose(0, 3, 1, 2))
        return out.reshape(n, c * h * w)


class _DenseStage:
    """Fused affine + optional ReLU; folded chains arrive pre-multiplied."""

    __slots__ = ("w", "b", "relu", "index")

    def __init__(self, w: np.ndarray, b: np.ndarray, relu: bool, index: int) -> None:
        self.w = _f32(w)
        self.b = _f32(b)
        self.relu = relu
        self.index = index

    @hot_path
    def run(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.w.shape[0]:
            raise ValueError(f"Dense stage expected (N, {self.w.shape[0]}), got {x.shape}")
        out = ws.buf((self.index, "out"), (x.shape[0], self.w.shape[1]))
        np.matmul(x, self.w, out=out)
        out += self.b
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out


class _ReLUStage:
    """Standalone rectifier (a ReLU not preceded by conv/dense)."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    @hot_path
    def run(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        out = ws.buf((self.index, "out"), x.shape)
        np.maximum(x, 0.0, out=out)
        return out


def _compile_stages(layers: list, counter=None) -> list:
    """Compile a layer chain into fused stages (see module docstring).

    ``counter`` issues workspace-buffer indices; one counter is shared
    through nested ``Sequential`` recursion so every stage's index (and
    therefore every workspace key) is unique across the whole net.
    """
    if counter is None:
        counter = itertools.count()
    stages: list = []
    i = 0
    while i < len(layers):
        layer = layers[i]
        if isinstance(layer, Sequential):
            stages.extend(_compile_stages(layer.layers, counter))
            i += 1
        elif isinstance(layer, Conv2D):
            relu = i + 1 < len(layers) and isinstance(layers[i + 1], ReLU)
            stages.append(_ConvStage(layer, relu, next(counter)))
            i += 2 if relu else 1
        elif isinstance(layer, Dense):
            # Constant-fold an affine chain: (x@W1+b1)@W2+b2 == x@(W1@W2)
            # + (b1@W2+b2).  Folded in float64, cast once; a chain of one
            # keeps its arrays verbatim so the common case stays
            # bit-exact.
            chain = [layer]
            j = i + 1
            while j < len(layers) and isinstance(layers[j], Dense):
                chain.append(layers[j])
                j += 1
            if len(chain) == 1:
                w, b = layer.w, layer.b
            else:
                # witness-lint: allow[dtype-float64] -- fold the affine chain in double, cast once at stage build
                w = chain[0].w.astype(np.float64)
                # witness-lint: allow[dtype-float64] -- fold the affine chain in double, cast once at stage build
                b = chain[0].b.astype(np.float64)
                for nxt in chain[1:]:
                    w = w @ nxt.w
                    b = b @ nxt.w + nxt.b
            relu = j < len(layers) and isinstance(layers[j], ReLU)
            stages.append(_DenseStage(w, b, relu, next(counter)))
            i = j + (1 if relu else 0)
        elif isinstance(layer, MaxPool2D):
            stages.append(_PoolStage(layer, next(counter)))
            i += 1
        elif isinstance(layer, Flatten):
            stages.append(_FlattenStage(next(counter)))
            i += 1
        elif isinstance(layer, ReLU):
            stages.append(_ReLUStage(next(counter)))
            i += 1
        else:
            raise TypeError(f"cannot freeze layer type {type(layer).__name__}")
    return stages


# ---------------------------------------------------------------------------
# Frozen executables
# ---------------------------------------------------------------------------


class FrozenNet:
    """An inference-only compiled ``Sequential``.

    Thread-safe without locks: weights are read-only after compilation
    and all scratch lives in thread-confined workspace arenas.
    """

    is_frozen = True

    def __init__(self, stages: list, max_shapes: int = DEFAULT_MAX_SHAPES) -> None:
        if not stages:
            raise ValueError("FrozenNet needs at least one stage")
        if max_shapes < 1:
            raise ValueError(f"max_shapes must be >= 1, got {max_shapes}")
        self.stages = stages
        self.max_shapes = max_shapes
        self._arenas = _ArenaSet(max_shapes)

    # -- execution ---------------------------------------------------------

    def forward(self, x: np.ndarray, copy: bool = True) -> np.ndarray:
        """Logits for ``x`` (NCHW raster or ``(N, D)`` feature rows).

        With ``copy=False`` the result is a view into this thread's
        workspace, valid only until the next forward on this thread —
        internal composition uses it to skip the final copy.
        """
        x = _f32(np.asarray(x))
        if x.ndim == 4:
            n, c, h, w = x.shape
            if c == 1:
                # (N, 1, H, W) and (N, H, W, 1) share one memory order.
                return self._run_nhwc(x.reshape(n, h, w, 1), copy)
            ws_key = ("nchw", x.shape)
            arena = self._arenas.arena()
            ws = arena.workspace(ws_key)
            nhwc = ws.buf(("entry",), (n, h, w, c))
            np.copyto(nhwc, x.transpose(0, 2, 3, 1))
            return self._run(nhwc, ws, copy)
        arena = self._arenas.arena()
        return self._run(x, arena.workspace(("flat", x.shape)), copy)

    def forward_nhwc(self, x: np.ndarray, copy: bool = True) -> np.ndarray:
        """Forward a channel-last raster batch (already float32 NHWC)."""
        return self._run_nhwc(x, copy)

    def _run_nhwc(self, x: np.ndarray, copy: bool) -> np.ndarray:
        arena = self._arenas.arena()
        return self._run(x, arena.workspace(("nhwc", x.shape)), copy)

    @hot_path
    def _run(self, x: np.ndarray, ws: Workspace, copy: bool) -> np.ndarray:
        for stage in self.stages:
            x = stage.run(x, ws)
        return x.copy() if copy else x  # witness-lint: allow[hot-alloc] -- the single documented result copy (copy=False skips it)

    # -- classifier conveniences (mirror Sequential) -----------------------

    def predict_logits(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return softmax(self.forward(x, copy=False))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, copy=False).argmax(axis=1)

    # -- observability -----------------------------------------------------

    def workspace_stats(self) -> list:
        """Per-thread arena statistics (tests and capacity planning)."""
        return self._arenas.stats()


def _aggregate_stats(nets: dict) -> dict:
    return {name: net.workspace_stats() for name, net in nets.items()}


class FrozenMatcher:
    """Inference-only twin of :class:`~repro.nn.model.MatcherModel`.

    Mirrors the inference API (``forward`` / ``match_probability`` /
    ``predict`` / ``with_threshold``); there is deliberately no backward.
    """

    is_frozen = True

    def __init__(
        self,
        observed_net: FrozenNet,
        expected_net: FrozenNet,
        head_net: FrozenNet,
        threshold: float = 0.5,
        max_shapes: int = DEFAULT_MAX_SHAPES,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0,1), got {threshold}")
        self.observed_net = observed_net
        self.expected_net = expected_net
        self.head_net = head_net
        self.threshold = threshold
        self._arenas = _ArenaSet(max_shapes)

    def forward(self, observed: np.ndarray, expected: np.ndarray) -> np.ndarray:
        fo = self.observed_net.forward(observed, copy=False)
        fe = self.expected_net.forward(expected, copy=False)
        if fo.shape[0] != fe.shape[0]:
            raise ValueError(f"batch mismatch: {fo.shape[0]} vs {fe.shape[0]}")
        no, ne = fo.shape[1], fe.shape[1]
        ws = self._arenas.arena().workspace((fo.shape[0], no + ne))
        cat = ws.buf(("cat",), (fo.shape[0], no + ne))
        cat[:, :no] = fo
        cat[:, no:] = fe
        return self.head_net.forward(cat)

    def match_probability(
        self, observed: np.ndarray, expected: np.ndarray, chunk_size: int | None = PREDICT_CHUNK
    ) -> np.ndarray:
        """P(observed matches expected); same chunk semantics as the
        training model, no lock needed (workspaces are thread-confined)."""
        return _chunked_probability(self.forward, observed, expected, chunk_size)

    def predict(
        self, observed: np.ndarray, expected: np.ndarray, chunk_size: int | None = PREDICT_CHUNK
    ) -> np.ndarray:
        return self.match_probability(observed, expected, chunk_size) >= self.threshold

    def with_threshold(self, threshold: float) -> "FrozenMatcher":
        """A view sharing nets (and their arenas) at a new threshold."""
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0,1), got {threshold}")
        clone = FrozenMatcher.__new__(FrozenMatcher)
        clone.observed_net = self.observed_net
        clone.expected_net = self.expected_net
        clone.head_net = self.head_net
        clone.threshold = threshold
        clone._arenas = self._arenas
        return clone

    def workspace_stats(self) -> dict:
        return _aggregate_stats(
            {
                "observed": self.observed_net,
                "expected": self.expected_net,
                "head": self.head_net,
            }
        )


class FrozenPairMatcher:
    """Inference-only twin of :class:`~repro.nn.model.ChannelPairMatcher`."""

    is_frozen = True

    def __init__(
        self, net: FrozenNet, threshold: float = 0.5, max_shapes: int = DEFAULT_MAX_SHAPES
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0,1), got {threshold}")
        self.net = net
        self.threshold = threshold
        self._arenas = _ArenaSet(max_shapes)

    def forward(self, observed: np.ndarray, expected: np.ndarray) -> np.ndarray:
        observed = np.asarray(observed)
        expected = np.asarray(expected)
        if observed.shape != expected.shape:
            raise ValueError(f"raster shapes differ: {observed.shape} vs {expected.shape}")
        if observed.ndim != 4 or observed.shape[1] != 1:
            raise ValueError(f"expected (N, 1, H, W) rasters, got {observed.shape}")
        n, _c, h, w = observed.shape
        ws = self._arenas.arena().workspace((n, h, w))
        stacked = ws.buf(("stack",), (n, h, w, 2))
        # Channel-last stacking: channel 0 observed, 1 expected — the same
        # column order the training path's channel concatenation produces.
        stacked[:, :, :, 0] = observed[:, 0]
        stacked[:, :, :, 1] = expected[:, 0]
        return self.net.forward_nhwc(stacked)

    def match_probability(
        self, observed: np.ndarray, expected: np.ndarray, chunk_size: int | None = PREDICT_CHUNK
    ) -> np.ndarray:
        return _chunked_probability(self.forward, observed, expected, chunk_size)

    def predict(
        self, observed: np.ndarray, expected: np.ndarray, chunk_size: int | None = PREDICT_CHUNK
    ) -> np.ndarray:
        return self.match_probability(observed, expected, chunk_size) >= self.threshold

    def with_threshold(self, threshold: float) -> "FrozenPairMatcher":
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0,1), got {threshold}")
        clone = FrozenPairMatcher.__new__(FrozenPairMatcher)
        clone.net = self.net
        clone.threshold = threshold
        clone._arenas = self._arenas
        return clone

    def workspace_stats(self) -> dict:
        return _aggregate_stats({"network": self.net})


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


def freeze(model, max_shapes: int = DEFAULT_MAX_SHAPES):
    """Compile a trained model into its frozen inference executable.

    Accepts ``Sequential`` (→ :class:`FrozenNet`), ``MatcherModel``
    (→ :class:`FrozenMatcher`) and ``ChannelPairMatcher``
    (→ :class:`FrozenPairMatcher`); an already-frozen model is returned
    unchanged.  Weights are snapshotted (cast once to contiguous
    float32): freeze after loading/training, and re-freeze (or
    :func:`invalidate_frozen`) after any in-place parameter mutation.
    """
    if getattr(model, "is_frozen", False):
        return model
    if isinstance(model, MatcherModel):
        return FrozenMatcher(
            FrozenNet(_compile_stages(model.observed_branch.layers), max_shapes),
            FrozenNet(_compile_stages(model.expected_branch.layers), max_shapes),
            FrozenNet(_compile_stages(model.head.layers), max_shapes),
            threshold=model.threshold,
            max_shapes=max_shapes,
        )
    if isinstance(model, ChannelPairMatcher):
        return FrozenPairMatcher(
            FrozenNet(_compile_stages(model.network.layers), max_shapes),
            threshold=model.threshold,
            max_shapes=max_shapes,
        )
    if isinstance(model, Sequential):
        return FrozenNet(_compile_stages(model.layers), max_shapes)
    raise TypeError(f"cannot freeze {type(model).__name__}")


_TWIN_LOCK = threading.Lock()


def frozen_twin(model, max_shapes: int = DEFAULT_MAX_SHAPES):
    """The memoized frozen twin of ``model`` (compiled once per instance).

    The twin is cached on the model object itself so every caller —
    verifiers, the runtime executor, ``MatcherModel.predict``'s automatic
    dispatch — shares one set of compiled weights.
    :func:`~repro.nn.serialize.load_model` invalidates the cache when it
    overwrites parameters in place.
    """
    if getattr(model, "is_frozen", False):
        return model
    with _TWIN_LOCK:
        twin = model.__dict__.get("_frozen_twin")
        if twin is None:
            twin = freeze(model, max_shapes)
            model.__dict__["_frozen_twin"] = twin
        return twin


def invalidate_frozen(model) -> None:
    """Drop ``model``'s memoized frozen twin (after in-place mutation)."""
    with _TWIN_LOCK:
        model.__dict__.pop("_frozen_twin", None)


def arena_stats(model) -> dict | None:
    """Workspace-arena stats of ``model``'s memoized frozen twin, or None.

    Purely observational — the telemetry hub calls this for models that
    may never have dispatched frozen inference, and querying stats must
    not trigger a compile.  A model that *is* a frozen executable reports
    its own arenas.
    """
    if getattr(model, "is_frozen", False):
        return model.workspace_stats()
    with _TWIN_LOCK:
        twin = model.__dict__.get("_frozen_twin") if hasattr(model, "__dict__") else None
    return None if twin is None else twin.workspace_stats()


def predict_fn(model, inference: str):
    """Resolve the ``predict(observed, expected, chunk_size)`` callable a
    consumer (verifier, runtime flusher) should feed unit inputs to.

    ``"frozen"`` routes through the memoized frozen twin; a model the
    compiler does not understand (duck-typed test doubles, exotic
    matchers) falls back to its own ``predict`` unchanged.
    ``"training"`` forces the layer-by-layer path, explicitly bypassing
    any attached twin on the real matcher classes.
    """
    if inference not in INFERENCE_MODES:
        raise ValueError(f"inference must be one of {INFERENCE_MODES}, got {inference!r}")
    if inference == "frozen":
        try:
            return frozen_twin(model).predict
        except TypeError:
            return model.predict
    if isinstance(model, (MatcherModel, ChannelPairMatcher)):

        def training_predict(observed, expected, chunk_size=PREDICT_CHUNK):
            return model.predict(observed, expected, chunk_size, frozen=False)

        return training_predict
    return model.predict


def fail_closed_verdicts(raw) -> np.ndarray:
    """Sanitize a predict output into fail-closed boolean verdicts.

    A healthy matcher returns a boolean array, which passes through
    untouched (no copy, no allocation).  Anything else — float logits
    from a duck-typed double, or NaN/Inf garbage from a numerically
    diverged (or fault-injected) forward — is coerced so that only a
    *finite, non-zero* value reads as a match.  The trap this exists to
    close: ``bool(float("nan"))`` is ``True``, so un-sanitized NaN
    logits would certify every mismatch they touched — the one failure
    the witness must never convert into a certification.
    """
    verdicts = np.asarray(raw)
    if verdicts.dtype == np.bool_:
        return verdicts
    if verdicts.dtype.kind in "fc":
        # NaN != 0 is True, so the isfinite mask is what fails it closed.
        return np.isfinite(verdicts) & (verdicts != 0)
    return verdicts != 0
