"""Training-corpus generation (the paper's §IV-A data collection).

Text corpus: "94 characters ... using 231 unique fonts, three styles ...
three renderers ... on two platforms", expanded by enlarging/shifting,
intensity changes and random bit flips, balanced with false pairs that
assign another character to each image.

Image corpus: icons (Material stand-ins) and natural patches (CIFAR
stand-ins) across rendering stacks, with text-injected negatives so that
"unexpected text in the images will be detected".
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensorops import one_hot
from repro.raster.fonts import STYLES, FontFace
from repro.raster.glyphs import CHARSET
from repro.raster.icons import icon_names, icon_with_text, natural_patch, render_icon, rotate_icon_90
from repro.raster.stacks import RenderStack, reference_stack
from repro.raster.text import render_char_tile
from repro.vision.image import Image
from repro.vision.ops import resize_bilinear

#: Page text sizes the verifier sees in the wild.  Tiles rendered at these
#: sizes are upscaled to the model's 32x32 input, so training must cover
#: the same upscaling blur the display validator produces.
RENDER_SIZES = (13, 14, 16, 18, 24, 32)

#: Index of each charset character (the text model's expected-input space).
CHAR_TO_INDEX = {c: i for i, c in enumerate(CHARSET)}

#: Visually ambiguous character groups used for collapsed-label training
#: (paper §IV-A: "optionally trained text models with collapsed expected
#: text (i.e. 's' and 'S')").
COLLAPSED_GROUPS = [
    "sS", "cC", "oO0", "xX", "zZ", "vV", "wW", "uU", "kK", "pP",
    "il1|I!", "j;", ":.", "`'", "-_~",
]

_COLLAPSE_MAP = {}
for _group in COLLAPSED_GROUPS:
    for _ch in _group:
        _COLLAPSE_MAP[_ch] = _group[0]


def collapse_char(char: str) -> str:
    """Canonical representative of a character's ambiguity group."""
    return _COLLAPSE_MAP.get(char, char)


def chars_conflict(a: str, b: str) -> bool:
    """True when two characters are visually interchangeable when collapsed."""
    return collapse_char(a) == collapse_char(b)


def _augment(tile: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """One random expansion of a glyph tile (shift/intensity/bit flips)."""
    out = tile.copy()
    # Shift: roll by up to 2 pixels with background fill.
    dx, dy = rng.integers(-2, 3, size=2)
    if dx or dy:
        bg = float(np.median(out))
        out = np.roll(out, (dy, dx), axis=(0, 1))
        if dy > 0:
            out[:dy, :] = bg
        elif dy < 0:
            out[dy:, :] = bg
        if dx > 0:
            out[:, :dx] = bg
        elif dx < 0:
            out[:, dx:] = bg
    # Intensity change plus sensor/compositor noise: rendered pages pass
    # through two dither stages (glyph-level and canvas-level), so tiles
    # sampled from real frames are noisier than isolated glyph renders.
    out = np.clip(out * rng.uniform(0.9, 1.1) + rng.normal(0.0, 1.3, out.shape), 0.0, 255.0)
    # Random bit flips: a small set of pixels inverted.
    n_flips = int(rng.integers(0, 6))
    if n_flips:
        ys = rng.integers(0, out.shape[0], n_flips)
        xs = rng.integers(0, out.shape[1], n_flips)
        out[ys, xs] = 255.0 - out[ys, xs]
    return out


def _simulate_cell_crop(tile: np.ndarray, size: int) -> np.ndarray:
    """Reproduce the renderer's cell cropping on a square glyph tile.

    Page text cells are ``char_advance(size)`` wide; when the advance is
    narrower than the glyph square, the renderer crops the tile's sides
    and the display validator pads them back with background.  Training
    tiles must go through the same lossy round-trip.
    """
    from repro.raster.text import char_advance

    advance = char_advance(size)
    if advance >= size:
        return tile
    margin = (size - advance) // 2
    out = np.full_like(tile, float(np.median(tile[0])))
    out[:, margin : margin + advance] = tile[:, margin : margin + advance]
    return out


def _negative_char(char: str, rng: np.random.Generator, collapsed: bool) -> str:
    """A different character to pair as a false label."""
    while True:
        other = CHARSET[int(rng.integers(len(CHARSET)))]
        if other == char:
            continue
        if collapsed and chars_conflict(other, char):
            continue
        return other


def text_dataset(
    fonts: list,
    stacks: list | None = None,
    styles: tuple = STYLES,
    chars: str = CHARSET,
    expansions: int = 1,
    collapsed_labels: bool = True,
    seed: int = 0,
) -> tuple:
    """Balanced text-matcher corpus.

    Returns ``(observed, expected, labels)`` where ``observed`` is
    ``(N, 1, 32, 32)`` in [0, 1], ``expected`` is a ``(N, 94)`` one-hot of
    the expected character and ``labels`` are match bits.  Each rendered
    tile contributes one positive (paired with its true character) and one
    negative (paired with a different character), yielding the paper's
    "perfectly balanced training set".
    """
    if not fonts:
        raise ValueError("text_dataset needs at least one font")
    stacks = stacks or [reference_stack()]
    rng = np.random.default_rng(seed)
    tiles = []
    pos_chars = []
    combo_index = 0
    for font in fonts:
        for style in styles:
            face = font.styled(style)
            for stack in stacks:
                combo_index += 1
                for char_index, char in enumerate(chars):
                    # Cycle sizes deterministically so every character is
                    # seen at every render size across the font/stack grid
                    # (random sampling leaves (char, size) holes that show
                    # up as deterministic unit-input false negatives).
                    size = int(RENDER_SIZES[(combo_index + char_index) % len(RENDER_SIZES)])
                    tile = render_char_tile(char, size=size, font=face, stack=stack).pixels
                    tile = _simulate_cell_crop(tile, size)
                    if size != 32:
                        tile = resize_bilinear(tile, 32, 32)
                    tiles.append(tile)
                    pos_chars.append(char)
                    for _ in range(expansions):
                        tiles.append(_augment(tile, rng))
                        pos_chars.append(char)
    observed = []
    expected_idx = []
    labels = []
    for tile, char in zip(tiles, pos_chars):
        expected_true = collapse_char(char) if collapsed_labels else char
        observed.append(tile)
        expected_idx.append(CHAR_TO_INDEX[expected_true])
        labels.append(1.0)
        neg = _negative_char(char, rng, collapsed_labels)
        observed.append(tile)
        expected_idx.append(CHAR_TO_INDEX[collapse_char(neg) if collapsed_labels else neg])
        labels.append(0.0)
    obs = (np.stack(observed)[:, None, :, :] / 255.0).astype(np.float32)
    exp = one_hot(expected_idx, len(CHARSET)).astype(np.float32)
    return obs, exp, np.asarray(labels, dtype=np.float32)


def ui_fragment(seed: int, stack: RenderStack | None = None, size: int = 32) -> np.ndarray:
    """A deterministic 32x32 UI fragment (borders, fills, text, glyphs).

    The graphics model must judge arbitrary screen regions — the
    Clickbench evaluation treats whole screenshots as one image — so its
    corpus needs tiles that look like *interface* (button edges, field
    borders, label fragments), not just icons and photos.  The fragment's
    structure is a function of ``seed``; the rendering varies with the
    stack, giving cross-stack positive pairs.
    """
    from repro.raster.text import render_text_line

    stack = stack or reference_stack()
    rng = np.random.default_rng(seed)
    img = Image.blank(size, size, stack.background)
    kind = int(rng.integers(4))
    if kind == 0:
        # A field/button corner: border plus fill.
        fill = float(rng.uniform(215, 253))
        x = int(rng.integers(0, size // 2))
        y = int(rng.integers(0, size // 2))
        w = int(rng.integers(size // 2, size - x))
        h = int(rng.integers(size // 2, size - y))
        img.fill_rect(x, y, w, h, fill)
        img.draw_border(x, y, w, h, 90.0, 1)
    elif kind == 1:
        # A label fragment.
        text = "".join(CHARSET[int(rng.integers(len(CHARSET)))] for _ in range(3))
        line = render_text_line(text, size=int(rng.integers(12, 17)), stack=stack)
        w = min(line.width, size - 2)
        h = min(line.height, size - 2)
        img.paste(Image(line.pixels[:h, :w]), 1, int(rng.integers(0, size - h)))
    elif kind == 2:
        # Horizontal rules / separators.
        for _ in range(int(rng.integers(1, 4))):
            y = int(rng.integers(2, size - 2))
            img.draw_hline(0, y, size, float(rng.uniform(60, 150)), 1)
    else:
        # Border-meets-text: the densest kind of form chrome.
        img.draw_border(0, 0, size, size, 90.0, 1)
        text = "".join(CHARSET[int(rng.integers(len(CHARSET)))] for _ in range(2))
        line = render_text_line(text, size=14, stack=stack)
        w = min(line.width, size - 4)
        img.paste(Image(line.pixels[:14, :w]), 2, int(rng.integers(2, size - 16)))
    return stack.apply_noise(img.pixels, salt=seed)


def _image_pool(n_icons: int, n_patches: int, stack: RenderStack, seed: int) -> list:
    """(key, tile) pairs for icons and natural patches under one stack."""
    names = icon_names()
    pool = []
    for i in range(min(n_icons, len(names))):
        pool.append((f"icon:{names[i]}", render_icon(names[i], stack=stack).pixels))
    rng = np.random.default_rng(seed)
    for _ in range(n_patches):
        patch_seed = int(rng.integers(1, 2**31))
        pool.append((f"patch:{patch_seed}", natural_patch(patch_seed, stack=stack).pixels))
    for _ in range(n_patches):
        frag_seed = int(rng.integers(1, 2**31))
        pool.append((f"ui:{frag_seed}", ui_fragment(frag_seed, stack=stack)))
    return pool


def image_dataset(
    stacks: list | None = None,
    n_icons: int = 12,
    n_patches: int = 24,
    seed: int = 0,
) -> tuple:
    """Balanced graphics-matcher corpus.

    Returns ``(observed, expected, labels)`` with both rasters shaped
    ``(N, 1, 32, 32)`` in [0, 1].  ``expected`` is always the reference-
    stack render (the VSPEC ground truth); ``observed`` is either the same
    content under a different stack (positive) or one of three negative
    types: different content, rotated content, or content with injected
    text (the paper's dedicated text-in-image negatives).
    """
    stacks = stacks or [reference_stack()]
    rng = np.random.default_rng(seed)
    ref = reference_stack()
    ref_pool = dict(_image_pool(n_icons, n_patches, ref, seed))
    keys = list(ref_pool)
    observed, expected, labels = [], [], []
    words = ["OK", "NO", "pay", "yes", "87"]
    # Identity positives: the expected render *is* what is displayed
    # (e.g. client and server share a stack) — trivially benign.
    for key in keys:
        observed.append(ref_pool[key])
        expected.append(ref_pool[key])
        labels.append(1.0)
    for stack in stacks:
        stack_pool = _image_pool(n_icons, n_patches, stack, seed)
        for key, tile in stack_pool:
            exp_tile = ref_pool[key]
            # Positive: same content, different rendering stack.
            observed.append(tile)
            expected.append(exp_tile)
            labels.append(1.0)
            # Extra positive: the same stack render against itself.
            observed.append(tile)
            expected.append(tile)
            labels.append(1.0)
            # Negative 1: different content.
            other = keys[int(rng.integers(len(keys)))]
            if other == key:
                other = keys[(keys.index(key) + 1) % len(keys)]
            observed.append(ref_pool[other])
            expected.append(exp_tile)
            labels.append(0.0)
            # Negative 2: rotated content (structure preserved, layout not).
            observed.append(rotate_icon_90(Image(tile)).pixels)
            expected.append(exp_tile)
            labels.append(0.0)
            # Negative 3: injected text (or an overlay for UI fragments).
            word = words[int(rng.integers(len(words)))]
            if key.startswith("icon:"):
                tampered = icon_with_text(key.split(":", 1)[1], word, stack=stack).pixels
            elif key.startswith("patch:"):
                tampered = icon_with_text(int(key.split(":", 1)[1]), word, stack=stack).pixels
            else:
                overlaid = Image(tile.copy())
                ox = int(rng.integers(0, 16))
                oy = int(rng.integers(0, 16))
                overlaid.fill_rect(ox, oy, 14, 12, float(rng.uniform(0, 200)))
                tampered = overlaid.pixels
            observed.append(tampered)
            expected.append(exp_tile)
            labels.append(0.0)
    obs = (np.stack(observed)[:, None, :, :] / 255.0).astype(np.float32)
    exp = (np.stack(expected)[:, None, :, :] / 255.0).astype(np.float32)
    return obs, exp, np.asarray(labels, dtype=np.float32)


def reference_text_dataset(
    fonts: list,
    stacks: list | None = None,
    styles: tuple = ("normal",),
    chars: str = CHARSET,
    seed: int = 0,
) -> tuple:
    """Multi-class corpus for the reference text classifier (§V-B t1).

    Returns ``(x, labels)`` with labels indexing into :data:`CHARSET` —
    the "MNIST classifier" analogue whose robustness vWitness is compared
    against.
    """
    stacks = stacks or [reference_stack()]
    rng = np.random.default_rng(seed)
    xs, ys = [], []
    for font in fonts:
        for style in styles:
            face = font.styled(style)
            for stack in stacks:
                for char in chars:
                    tile = render_char_tile(char, size=32, font=face, stack=stack).pixels
                    xs.append(tile)
                    ys.append(CHAR_TO_INDEX[char])
                    xs.append(_augment(tile, rng))
                    ys.append(CHAR_TO_INDEX[char])
    return (np.stack(xs)[:, None, :, :] / 255.0).astype(np.float32), np.asarray(ys, dtype=int)


def reference_image_dataset(stacks: list | None = None, per_class: int = 6, seed: int = 0) -> tuple:
    """Multi-class corpus for the reference image classifier (§V-B g1).

    Ten icon classes rendered across stacks — the "CIFAR-10 classifier"
    analogue.
    """
    stacks = stacks or [reference_stack()]
    names = icon_names()[:10]
    rng = np.random.default_rng(seed)
    xs, ys = [], []
    for label, name in enumerate(names):
        for stack in stacks:
            for _ in range(per_class):
                tile = render_icon(name, stack=stack).pixels
                xs.append(_augment(tile, rng))
                ys.append(label)
    return (np.stack(xs)[:, None, :, :] / 255.0).astype(np.float32), np.asarray(ys, dtype=int)
