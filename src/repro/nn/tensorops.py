"""im2col/col2im and friends — the workhorse behind Conv2D.

Tensors are channel-first: images are ``(N, C, H, W)`` float arrays.
Every helper here is dtype-preserving: feed float32 (the
:data:`DEFAULT_DTYPE` the layers initialize their weights in, and the
only dtype the frozen inference path accepts) and the whole unfold/fold
round-trip stays float32; gradient-check code that wants float64 keeps
float64.  Nothing silently upcasts.
"""

from __future__ import annotations

import numpy as np

#: The library-wide working dtype.  float32 halves memory traffic with no
#: measurable loss in verifier accuracy; gradient-check tests override it
#: per layer with float64.
DEFAULT_DTYPE = np.float32


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution collapses dimension: size={size} kernel={kernel} stride={stride} pad={pad}"
        )
    return out


def im2col(x: np.ndarray, kernel: int, stride: int, pad: int) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into ``(N*H2*W2, C*k*k)`` patch rows."""
    n, c, h, w = x.shape
    h2 = conv_output_size(h, kernel, stride, pad)
    w2 = conv_output_size(w, kernel, stride, pad)
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (N, C, H2, W2, k, k)
    col = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * h2 * w2, c * kernel * kernel)
    return np.ascontiguousarray(col)


def col2im(
    col: np.ndarray,
    x_shape: tuple,
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold patch-row gradients back into an input gradient (im2col adjoint)."""
    n, c, h, w = x_shape
    h2 = conv_output_size(h, kernel, stride, pad)
    w2 = conv_output_size(w, kernel, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    x_pad = np.zeros((n, c, hp, wp), dtype=col.dtype)
    patches = col.reshape(n, h2, w2, c, kernel, kernel).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kernel):
        for j in range(kernel):
            x_pad[:, :, i : i + stride * h2 : stride, j : j + stride * w2 : stride] += patches[
                :, :, :, :, i, j
            ]
    if pad:
        return x_pad[:, :, pad : hp - pad, pad : wp - pad]
    return x_pad


def one_hot(indices, num_classes: int, dtype=DEFAULT_DTYPE) -> np.ndarray:
    """One-hot encode integer labels into ``(N, num_classes)`` floats.

    Encodings default to :data:`DEFAULT_DTYPE` so expected-character
    inputs enter the matchers in the same dtype as the weights instead of
    smuggling float64 onto the forward path.
    """
    idx = np.asarray(indices, dtype=int)
    if idx.ndim != 1:
        raise ValueError(f"one_hot expects a 1-D index array, got shape {idx.shape}")
    if idx.size and (idx.min() < 0 or idx.max() >= num_classes):
        raise ValueError(f"label out of range [0, {num_classes}): {idx.min()}..{idx.max()}")
    out = np.zeros((idx.shape[0], num_classes), dtype=dtype)
    out[np.arange(idx.shape[0]), idx] = 1.0
    return out


def batch_iter(n: int, batch_size: int, rng: np.random.Generator | None = None):
    """Yield index batches covering ``range(n)``, shuffled when ``rng`` given."""
    order = np.arange(n)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]
