"""Neural-network layers with forward and backward passes.

Every layer supports ``backward`` returning the gradient with respect to
its *input* — adversarial example generation (paper §V-B) differentiates
the loss all the way back to the screenshot pixels, so input gradients are
a first-class requirement here, not an afterthought.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensorops import DEFAULT_DTYPE, col2im, conv_output_size, im2col


class Layer:
    """Base layer: stateless unless it has parameters.

    Subclasses implement :meth:`forward` (caching what backward needs) and
    :meth:`backward` (consuming the cache, populating parameter ``grads``
    and returning the input gradient).
    """

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> dict:
        """Mapping of parameter name -> array (shared, updated in place)."""
        return {}

    def grads(self) -> dict:
        """Mapping of parameter name -> gradient of the last backward pass."""
        return {}

    @property
    def num_params(self) -> int:
        return int(sum(p.size for p in self.params().values()))


#: Training dtype — canonical definition lives in ``repro.nn.tensorops``
#: (imported above) so the array helpers and the layers agree on one
#: default; re-exported here for backward compatibility.  float32 halves
#: memory traffic with no measurable loss in verifier accuracy;
#: gradient-check tests override it per layer with float64.


def _he_init(rng: np.random.Generator, shape: tuple, fan_in: int, dtype) -> np.ndarray:
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), shape).astype(dtype)


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        dtype=DEFAULT_DTYPE,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError(f"Dense needs positive sizes, got {in_features}->{out_features}")
        rng = rng or np.random.default_rng(0)
        self.w = _he_init(rng, (in_features, out_features), in_features, dtype)
        self.b = np.zeros(out_features, dtype=dtype)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.w.shape[0]:
            raise ValueError(f"Dense expected (N, {self.w.shape[0]}), got {x.shape}")
        self._x = x
        return x @ self.w + self.b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.dw = self._x.T @ grad_out
        self.db = grad_out.sum(axis=0)
        return grad_out @ self.w.T

    def params(self) -> dict:
        return {"w": self.w, "b": self.b}

    def grads(self) -> dict:
        return {"w": self.dw, "b": self.db}


class Conv2D(Layer):
    """2-D convolution over ``(N, C, H, W)`` tensors via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        pad: int = 1,
        rng: np.random.Generator | None = None,
        dtype=DEFAULT_DTYPE,
    ):
        if min(in_channels, out_channels, kernel, stride) <= 0 or pad < 0:
            raise ValueError("Conv2D hyper-parameters must be positive (pad >= 0)")
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel * kernel
        self.w = _he_init(rng, (fan_in, out_channels), fan_in, dtype)
        self.b = np.zeros(out_channels, dtype=dtype)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self._col: np.ndarray | None = None
        self._x_shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n, _c, h, w = x.shape
        h2 = conv_output_size(h, self.kernel, self.stride, self.pad)
        w2 = conv_output_size(w, self.kernel, self.stride, self.pad)
        col = im2col(x, self.kernel, self.stride, self.pad)
        self._col = col
        self._x_shape = x.shape
        out = col @ self.w + self.b
        return out.reshape(n, h2, w2, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._col is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, f, h2, w2 = grad_out.shape
        flat = grad_out.transpose(0, 2, 3, 1).reshape(n * h2 * w2, f)
        self.dw = self._col.T @ flat
        self.db = flat.sum(axis=0)
        dcol = flat @ self.w.T
        return col2im(dcol, self._x_shape, self.kernel, self.stride, self.pad)

    def params(self) -> dict:
        return {"w": self.w, "b": self.b}

    def grads(self) -> dict:
        return {"w": self.dw, "b": self.db}


class ReLU(Layer):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class MaxPool2D(Layer):
    """Non-overlapping max pooling over square windows."""

    def __init__(self, size: int = 2) -> None:
        if size <= 1:
            raise ValueError(f"pool size must exceed 1, got {size}")
        self.size = size
        self._x: np.ndarray | None = None
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"MaxPool2D({s}) needs H, W divisible by {s}, got {h}x{w}")
        self._x = x
        blocks = x.reshape(n, c, h // s, s, w // s, s)
        out = blocks.max(axis=(3, 5))
        self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None or self._out is None:
            raise RuntimeError("backward called before forward")
        s = self.size
        upsampled_out = np.repeat(np.repeat(self._out, s, axis=2), s, axis=3)
        upsampled_grad = np.repeat(np.repeat(grad_out, s, axis=2), s, axis=3)
        mask = self._x == upsampled_out
        # Split gradient between ties so the adjoint stays exact.
        counts = (
            mask.reshape(*mask.shape[:2], mask.shape[2] // s, s, mask.shape[3] // s, s)
            .sum(axis=(3, 5), keepdims=True)
        )
        counts = np.repeat(np.repeat(counts.squeeze(axis=(3, 5)), s, axis=2), s, axis=3)
        return np.where(mask, upsampled_grad / np.maximum(counts, 1), 0.0)


class Flatten(Layer):
    """Reshape ``(N, ...)`` to ``(N, prod(...))``."""

    def __init__(self) -> None:
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)
