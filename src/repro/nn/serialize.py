"""Model parameter persistence.

Architectures are rebuilt from code (the zoo's named builders); only the
parameter arrays are stored, as an ``.npz`` keyed by the same names that
``params()`` exposes.  This mirrors how the paper ships Keras H5 /
TensorFlow Lite weight files alongside known architectures.

Frozen inference twins (:mod:`repro.nn.infer`) are deliberately **not**
serialized: freezing is a cheap post-load compilation step (weight cast
+ fusion), and persisting compiled float32 snapshots next to the
training float32/float64-agnostic parameters would create two files that
can silently disagree.  The contract is: persist the *training* model,
freeze after load.  ``save_model``/``load_model`` refuse frozen objects
with a pointed error, and ``load_model`` invalidates any memoized twin
on the target model so the zoo's memoization and a reload always agree
on which weights the frozen representation caches.
"""

from __future__ import annotations

import os

import numpy as np


def _reject_frozen(model, verb: str) -> None:
    if getattr(model, "is_frozen", False):
        raise TypeError(
            f"cannot {verb} a frozen inference net: persist the training model "
            "and re-freeze after load (repro.nn.infer.freeze / frozen_twin)"
        )


def save_model(model, path: str) -> None:
    """Write a model's parameters to ``path`` (``.npz``)."""
    _reject_frozen(model, "save")
    params = model.params()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **params)


def load_model(model, path: str):
    """Load parameters saved by :func:`save_model` into ``model`` (in place).

    The model must have been built with the same architecture; any shape
    mismatch raises ``ValueError`` rather than silently truncating.  Any
    memoized frozen twin is dropped — it snapshots the pre-load weights.
    """
    _reject_frozen(model, "load into")
    with np.load(path) as data:
        params = model.params()
        missing = set(params) - set(data.files)
        extra = set(data.files) - set(params)
        if missing or extra:
            raise ValueError(
                f"parameter name mismatch loading {path}: missing={sorted(missing)} "
                f"extra={sorted(extra)}"
            )
        for name, arr in params.items():
            stored = data[name]
            if stored.shape != arr.shape:
                raise ValueError(
                    f"shape mismatch for {name}: file {stored.shape} vs model {arr.shape}"
                )
            arr[...] = stored
    from repro.nn.infer import invalidate_frozen

    invalidate_frozen(model)  # any memoized twin snapshots the pre-load weights
    return model
