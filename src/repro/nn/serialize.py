"""Model parameter persistence.

Architectures are rebuilt from code (the zoo's named builders); only the
parameter arrays are stored, as an ``.npz`` keyed by the same names that
``params()`` exposes.  This mirrors how the paper ships Keras H5 /
TensorFlow Lite weight files alongside known architectures.
"""

from __future__ import annotations

import os

import numpy as np


def save_model(model, path: str) -> None:
    """Write a model's parameters to ``path`` (``.npz``)."""
    params = model.params()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **params)


def load_model(model, path: str):
    """Load parameters saved by :func:`save_model` into ``model`` (in place).

    The model must have been built with the same architecture; any shape
    mismatch raises ``ValueError`` rather than silently truncating.
    """
    with np.load(path) as data:
        params = model.params()
        missing = set(params) - set(data.files)
        extra = set(data.files) - set(params)
        if missing or extra:
            raise ValueError(
                f"parameter name mismatch loading {path}: missing={sorted(missing)} "
                f"extra={sorted(extra)}"
            )
        for name, arr in params.items():
            stored = data[name]
            if stored.shape != arr.shape:
                raise ValueError(
                    f"shape mismatch for {name}: file {stored.shape} vs model {arr.shape}"
                )
            arr[...] = stored
    return model
